//! Closed-form attack-slowdown models of Appendix B (Equations 6–10).
//!
//! Under an attack that combines Rowhammer and Row-Press (the parameterized pattern of
//! Figure 17), the only performance cost of ImPress-P for memory-controller trackers is
//! the mitigative refreshes they trigger. Appendix B derives the slowdown analytically:
//!
//! * **Graphene** mitigates once every `T/2` counted activations; each mitigation costs
//!   4 victim activations, so the slowdown is `8/T` regardless of the Row-Press
//!   parameter K (Equations 6–9, Figure 18).
//! * **PARA** mitigates each loop iteration with probability `min(1, p·(K+1))`, so the
//!   slowdown is `4·min(1, p·(K+1))/(K+1)` (Equation 10, Figure 19), which equals `4p`
//!   until the probability saturates and then decays.

/// Slowdown (as a fraction, e.g. 0.002 = 0.2%) of ImPress-P with Graphene under the
/// combined attack pattern with Row-Press parameter `k` (Equation 9).
///
/// The result is independent of `k`: ImPress-P converts Row-Press into an equivalent
/// amount of Rowhammer, so the mitigation cost per unit of attack time is constant.
pub fn graphene_attack_slowdown(trh: u64, k: u64) -> f64 {
    let _ = k;
    8.0 / trh as f64
}

/// Slowdown (as a fraction) of ImPress-P with PARA under the combined attack pattern
/// with Row-Press parameter `k` (Equation 10), given PARA's per-activation probability
/// `p`.
pub fn para_attack_slowdown_with_p(p: f64, k: u64) -> f64 {
    let iterations = (k + 1) as f64;
    4.0 * (p * iterations).min(1.0) / iterations
}

/// Slowdown of ImPress-P with PARA for a Rowhammer threshold `trh`, using the
/// Appendix-B probability (p = 1/84 at TRH = 4000, scaling as 1/TRH).
pub fn para_attack_slowdown(trh: u64, k: u64) -> f64 {
    para_attack_slowdown_with_p(
        impress_trackers::analysis::para_probability_appendix_b(trh),
        k,
    )
}

/// The K value beyond which PARA's mitigation probability saturates at 1 and the
/// slowdown starts to decrease (`K ≥ 1/p − 1`).
pub fn para_saturation_k(p: f64) -> u64 {
    assert!(p > 0.0 && p <= 1.0, "probability must be in (0, 1]");
    (1.0 / p - 1.0).ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graphene_slowdown_matches_figure18() {
        // Appendix B: 0.2% / 0.4% / 0.8% for T = 4000 / 2000 / 1000.
        assert!((graphene_attack_slowdown(4_000, 0) - 0.002).abs() < 1e-12);
        assert!((graphene_attack_slowdown(2_000, 10) - 0.004).abs() < 1e-12);
        assert!((graphene_attack_slowdown(1_000, 100) - 0.008).abs() < 1e-12);
    }

    #[test]
    fn graphene_slowdown_is_independent_of_k() {
        let base = graphene_attack_slowdown(4_000, 0);
        for k in [1u64, 10, 50, 100] {
            assert_eq!(graphene_attack_slowdown(4_000, k), base);
        }
    }

    #[test]
    fn para_slowdown_matches_figure19_at_k0() {
        // Appendix B: at p = 1/84 the Rowhammer mitigation overhead of PARA is 4.76%.
        let s = para_attack_slowdown(4_000, 0);
        assert!((s - 4.0 / 84.0).abs() < 1e-9);
        assert!((s - 0.0476).abs() < 1e-3);
    }

    #[test]
    fn para_slowdown_plateaus_then_decays() {
        let p = 1.0 / 84.0;
        let k_sat = para_saturation_k(p);
        assert_eq!(k_sat, 83);
        // Before saturation the slowdown is flat at 4p.
        assert!((para_attack_slowdown_with_p(p, 10) - 4.0 * p).abs() < 1e-12);
        assert!((para_attack_slowdown_with_p(p, 82) - 4.0 * p).abs() < 1e-12);
        // After saturation it decays as 4/(K+1).
        let s100 = para_attack_slowdown_with_p(p, 100);
        assert!((s100 - 4.0 / 101.0).abs() < 1e-12);
        assert!(s100 < 4.0 * p);
    }

    #[test]
    fn rowhammer_is_the_most_potent_attack_for_para() {
        // Appendix B: "Rowhammer is still the most potent attack" — the slowdown the
        // attacker suffers never *increases* with K.
        let p = 1.0 / 84.0;
        let mut prev = para_attack_slowdown_with_p(p, 0);
        for k in 1..=200u64 {
            let s = para_attack_slowdown_with_p(p, k);
            assert!(s <= prev + 1e-12);
            prev = s;
        }
    }

    #[test]
    fn lower_thresholds_increase_para_overhead() {
        assert!(para_attack_slowdown(1_000, 0) > para_attack_slowdown(2_000, 0));
        assert!(para_attack_slowdown(2_000, 0) > para_attack_slowdown(4_000, 0));
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn saturation_rejects_invalid_probability() {
        let _ = para_saturation_k(0.0);
    }
}
