//! Attack-pattern generators and attack-time performance models for the ImPress
//! reproduction.
//!
//! The paper exercises its defenses with three families of patterns:
//!
//! * **Rowhammer** — repeated minimum-length activations of an aggressor row (§II-C).
//! * **Row-Press** — the aggressor row is kept open as long as the DDR specification
//!   allows before being closed and re-opened (§II-D, Figure 2).
//! * **The parameterized combined pattern** of Appendix B (Figure 17): each round is an
//!   activation followed by `K` extra `tRC` of open time, with `K = 0` degenerating to
//!   Rowhammer and large `K` to long Row-Press.
//!
//! [`patterns`] builds these as iterators of [`impress_core::AggressorAccess`] that can
//! be fed straight into [`impress_core::SecurityHarness`]. [`analytic`] contains the
//! closed-form slowdown models of Appendix B (Equations 6–10), and [`runner`] replays
//! the combined pattern against a mitigation engine to measure the slowdown that the
//! analytic model predicts (Figures 18 and 19).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analytic;
pub mod patterns;
pub mod runner;

pub use analytic::{graphene_attack_slowdown, para_attack_slowdown};
pub use patterns::{
    AttackPattern, CombinedPattern, EvasionPattern, RotatingAggressorPattern, RowPressPattern,
    RowhammerPattern, ThresholdStraddlingPattern,
};
pub use runner::{AttackPerformanceReport, AttackRunner};
