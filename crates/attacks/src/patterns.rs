//! Attack-pattern generators (Rowhammer, Row-Press, combined, evasion).

use impress_core::AggressorAccess;
use impress_dram::address::RowId;
use impress_dram::timing::{Cycle, DramTimings};

/// A generator of aggressor access sequences.
///
/// Patterns are infinite in principle (the attacker repeats until a bit flips or the
/// refresh window ends); [`AttackPattern::accesses`] returns the first `n` rounds.
pub trait AttackPattern: std::fmt::Debug {
    /// The access performed in round `i`.
    fn round(&self, i: u64) -> AggressorAccess;

    /// Human-readable name for experiment output.
    fn name(&self) -> String;

    /// The first `n` rounds of the pattern.
    fn accesses(&self, n: u64) -> Vec<AggressorAccess> {
        (0..n).map(|i| self.round(i)).collect()
    }

    /// An iterator over the first `n` rounds (avoids materialising huge patterns).
    fn iter(&self, n: u64) -> PatternIter<'_>
    where
        Self: Sized,
    {
        PatternIter {
            pattern: self,
            next: 0,
            end: n,
        }
    }
}

/// Iterator over a pattern's rounds, produced by [`AttackPattern::iter`].
#[derive(Debug)]
pub struct PatternIter<'a> {
    pattern: &'a dyn AttackPattern,
    next: u64,
    end: u64,
}

impl Iterator for PatternIter<'_> {
    type Item = AggressorAccess;

    fn next(&mut self) -> Option<AggressorAccess> {
        if self.next >= self.end {
            return None;
        }
        let access = self.pattern.round(self.next);
        self.next += 1;
        Some(access)
    }
}

/// Classic single-sided Rowhammer: minimum-length activations of one aggressor row.
#[derive(Debug, Clone, Copy)]
pub struct RowhammerPattern {
    /// The aggressor row.
    pub aggressor: RowId,
}

impl RowhammerPattern {
    /// Creates a Rowhammer pattern on `aggressor`.
    pub fn new(aggressor: RowId) -> Self {
        Self { aggressor }
    }
}

impl AttackPattern for RowhammerPattern {
    fn round(&self, _i: u64) -> AggressorAccess {
        AggressorAccess::hammer(self.aggressor)
    }

    fn name(&self) -> String {
        format!("Rowhammer(row {})", self.aggressor)
    }
}

/// Row-Press: the aggressor row is held open for `t_on` cycles every round (Figure 2).
#[derive(Debug, Clone, Copy)]
pub struct RowPressPattern {
    /// The aggressor row.
    pub aggressor: RowId,
    /// Open time per round, in cycles.
    pub t_on: Cycle,
}

impl RowPressPattern {
    /// Creates a Row-Press pattern holding `aggressor` open for `t_on` cycles.
    pub fn new(aggressor: RowId, t_on: Cycle) -> Self {
        Self { aggressor, t_on }
    }

    /// The strongest pattern the DDR specification allows: the row stays open until the
    /// last postponed refresh forces it closed ((1 + max postponed) × tREFI).
    pub fn maximal(aggressor: RowId, timings: &DramTimings) -> Self {
        Self {
            aggressor,
            t_on: (1 + timings.max_postponed_ref as u64) * timings.t_refi,
        }
    }
}

impl AttackPattern for RowPressPattern {
    fn round(&self, _i: u64) -> AggressorAccess {
        AggressorAccess::press(self.aggressor, self.t_on)
    }

    fn name(&self) -> String {
        format!(
            "Row-Press(row {}, tON {} cycles)",
            self.aggressor, self.t_on
        )
    }
}

/// The parameterized combined pattern of Appendix B (Figure 17): every round keeps the
/// row open for `tRAS + K·tRC`, so the round time is `(K + 1)·tRC`.
#[derive(Debug, Clone, Copy)]
pub struct CombinedPattern {
    /// The aggressor row.
    pub aggressor: RowId,
    /// The Row-Press parameter K (0 = Rowhammer, 72 ≈ a full tREFI in DDR5).
    pub k: u64,
    /// Open time per round (derived from K and the timings).
    t_on: Cycle,
}

impl CombinedPattern {
    /// Creates the combined pattern with parameter `k`.
    pub fn new(aggressor: RowId, k: u64, timings: &DramTimings) -> Self {
        Self {
            aggressor,
            k,
            t_on: timings.t_ras + k * timings.t_rc,
        }
    }

    /// Duration of one round of this pattern: `(K + 1) × tRC` (Appendix B).
    pub fn round_time(&self, timings: &DramTimings) -> Cycle {
        (self.k + 1) * timings.t_rc
    }
}

impl AttackPattern for CombinedPattern {
    fn round(&self, _i: u64) -> AggressorAccess {
        AggressorAccess::press(self.aggressor, self.t_on)
    }

    fn name(&self) -> String {
        format!("Combined(row {}, K = {})", self.aggressor, self.k)
    }
}

/// The ImPress-N evasion pattern of Figure 10: the aggressor is opened just before a
/// window boundary (so the ORA misses it) and kept open for `tRC + tRAS`, with a decoy
/// activation closing it before it would be sampled twice.
///
/// Against ImPress-N this pattern leaks `(1 + α)` units of charge per tracked
/// activation, reducing the tolerated threshold to `TRH/(1 + α)` (Equation 5). Against
/// ImPress-P it gains nothing (the full open time is converted into EACT).
#[derive(Debug, Clone, Copy)]
pub struct EvasionPattern {
    /// The aggressor row.
    pub aggressor: RowId,
    /// A decoy row in the same bank used to force the precharge.
    pub decoy: RowId,
    t_on: Cycle,
}

impl EvasionPattern {
    /// Creates the evasion pattern; `decoy` must differ from `aggressor` and should be
    /// far enough away not to share victims.
    pub fn new(aggressor: RowId, decoy: RowId, timings: &DramTimings) -> Self {
        assert_ne!(aggressor, decoy, "decoy must differ from the aggressor");
        Self {
            aggressor,
            decoy,
            t_on: timings.t_rc + timings.t_ras,
        }
    }

    /// Charge leaked per round on the aggressor's victims (in RH units) under the CLM
    /// with parameter `alpha`.
    pub fn charge_per_round(&self, alpha: f64) -> f64 {
        1.0 + alpha
    }
}

impl AttackPattern for EvasionPattern {
    fn round(&self, i: u64) -> AggressorAccess {
        // Alternate the long aggressor access with a minimum-length decoy access (the
        // decoy both closes the aggressor row and hides the pattern's regularity).
        if i.is_multiple_of(2) {
            AggressorAccess::press(self.aggressor, self.t_on)
        } else {
            AggressorAccess::hammer(self.decoy)
        }
    }

    fn name(&self) -> String {
        format!(
            "ImPress-N evasion(row {}, decoy {})",
            self.aggressor, self.decoy
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timings() -> DramTimings {
        DramTimings::ddr5()
    }

    #[test]
    fn rowhammer_rounds_are_minimum_length() {
        let p = RowhammerPattern::new(5);
        assert_eq!(p.round(0), AggressorAccess::hammer(5));
        assert_eq!(p.accesses(10).len(), 10);
        assert!(p.name().contains("Rowhammer"));
    }

    #[test]
    fn combined_pattern_degenerates_to_rowhammer_at_k0() {
        let t = timings();
        let p = CombinedPattern::new(7, 0, &t);
        assert_eq!(p.round(0).t_on, t.t_ras);
        assert_eq!(p.round_time(&t), t.t_rc);
    }

    #[test]
    fn combined_pattern_round_time_scales_with_k() {
        let t = timings();
        let p = CombinedPattern::new(7, 72, &t);
        assert_eq!(p.round_time(&t), 73 * t.t_rc);
        assert_eq!(p.round(3).t_on, t.t_ras + 72 * t.t_rc);
    }

    #[test]
    fn maximal_rowpress_uses_postponement_limit() {
        let t = timings();
        let p = RowPressPattern::maximal(9, &t);
        assert_eq!(p.t_on, 5 * t.t_refi);
    }

    #[test]
    fn evasion_alternates_aggressor_and_decoy() {
        let t = timings();
        let p = EvasionPattern::new(10, 500, &t);
        assert_eq!(p.round(0).row, 10);
        assert_eq!(p.round(1).row, 500);
        assert_eq!(p.round(0).t_on, t.t_rc + t.t_ras);
        assert!((p.charge_per_round(1.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "decoy")]
    fn evasion_rejects_same_row() {
        let _ = EvasionPattern::new(10, 10, &timings());
    }

    #[test]
    fn iter_matches_accesses() {
        let p = RowPressPattern::new(3, 1000);
        let via_iter: Vec<_> = p.iter(5).collect();
        assert_eq!(via_iter, p.accesses(5));
    }
}
