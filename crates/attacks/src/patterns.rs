//! Attack-pattern generators (Rowhammer, Row-Press, combined, evasion).

use impress_core::AggressorAccess;
use impress_dram::address::RowId;
use impress_dram::timing::{Cycle, DramTimings};

/// A generator of aggressor access sequences.
///
/// Patterns are infinite in principle (the attacker repeats until a bit flips or the
/// refresh window ends); [`AttackPattern::accesses`] returns the first `n` rounds.
pub trait AttackPattern: std::fmt::Debug {
    /// The access performed in round `i`.
    fn round(&self, i: u64) -> AggressorAccess;

    /// Human-readable name for experiment output.
    fn name(&self) -> String;

    /// The first `n` rounds of the pattern.
    fn accesses(&self, n: u64) -> Vec<AggressorAccess> {
        (0..n).map(|i| self.round(i)).collect()
    }

    /// An iterator over the first `n` rounds (avoids materialising huge patterns).
    fn iter(&self, n: u64) -> PatternIter<'_>
    where
        Self: Sized,
    {
        PatternIter {
            pattern: self,
            next: 0,
            end: n,
        }
    }
}

/// Iterator over a pattern's rounds, produced by [`AttackPattern::iter`].
#[derive(Debug)]
pub struct PatternIter<'a> {
    pattern: &'a dyn AttackPattern,
    next: u64,
    end: u64,
}

impl Iterator for PatternIter<'_> {
    type Item = AggressorAccess;

    fn next(&mut self) -> Option<AggressorAccess> {
        if self.next >= self.end {
            return None;
        }
        let access = self.pattern.round(self.next);
        self.next += 1;
        Some(access)
    }
}

/// Classic single-sided Rowhammer: minimum-length activations of one aggressor row.
#[derive(Debug, Clone, Copy)]
pub struct RowhammerPattern {
    /// The aggressor row.
    pub aggressor: RowId,
}

impl RowhammerPattern {
    /// Creates a Rowhammer pattern on `aggressor`.
    pub fn new(aggressor: RowId) -> Self {
        Self { aggressor }
    }
}

impl AttackPattern for RowhammerPattern {
    fn round(&self, _i: u64) -> AggressorAccess {
        AggressorAccess::hammer(self.aggressor)
    }

    fn name(&self) -> String {
        format!("Rowhammer(row {})", self.aggressor)
    }
}

/// Row-Press: the aggressor row is held open for `t_on` cycles every round (Figure 2).
#[derive(Debug, Clone, Copy)]
pub struct RowPressPattern {
    /// The aggressor row.
    pub aggressor: RowId,
    /// Open time per round, in cycles.
    pub t_on: Cycle,
}

impl RowPressPattern {
    /// Creates a Row-Press pattern holding `aggressor` open for `t_on` cycles.
    pub fn new(aggressor: RowId, t_on: Cycle) -> Self {
        Self { aggressor, t_on }
    }

    /// The strongest pattern the DDR specification allows: the row stays open until the
    /// last postponed refresh forces it closed ((1 + max postponed) × tREFI).
    pub fn maximal(aggressor: RowId, timings: &DramTimings) -> Self {
        Self {
            aggressor,
            t_on: (1 + timings.max_postponed_ref as u64) * timings.t_refi,
        }
    }
}

impl AttackPattern for RowPressPattern {
    fn round(&self, _i: u64) -> AggressorAccess {
        AggressorAccess::press(self.aggressor, self.t_on)
    }

    fn name(&self) -> String {
        format!(
            "Row-Press(row {}, tON {} cycles)",
            self.aggressor, self.t_on
        )
    }
}

/// The parameterized combined pattern of Appendix B (Figure 17): every round keeps the
/// row open for `tRAS + K·tRC`, so the round time is `(K + 1)·tRC`.
#[derive(Debug, Clone, Copy)]
pub struct CombinedPattern {
    /// The aggressor row.
    pub aggressor: RowId,
    /// The Row-Press parameter K (0 = Rowhammer, 72 ≈ a full tREFI in DDR5).
    pub k: u64,
    /// Open time per round (derived from K and the timings).
    t_on: Cycle,
}

impl CombinedPattern {
    /// Creates the combined pattern with parameter `k`.
    pub fn new(aggressor: RowId, k: u64, timings: &DramTimings) -> Self {
        Self {
            aggressor,
            k,
            t_on: timings.t_ras + k * timings.t_rc,
        }
    }

    /// Duration of one round of this pattern: `(K + 1) × tRC` (Appendix B).
    pub fn round_time(&self, timings: &DramTimings) -> Cycle {
        (self.k + 1) * timings.t_rc
    }
}

impl AttackPattern for CombinedPattern {
    fn round(&self, _i: u64) -> AggressorAccess {
        AggressorAccess::press(self.aggressor, self.t_on)
    }

    fn name(&self) -> String {
        format!("Combined(row {}, K = {})", self.aggressor, self.k)
    }
}

/// The ImPress-N evasion pattern of Figure 10: the aggressor is opened just before a
/// window boundary (so the ORA misses it) and kept open for `tRC + tRAS`, with a decoy
/// activation closing it before it would be sampled twice.
///
/// Against ImPress-N this pattern leaks `(1 + α)` units of charge per tracked
/// activation, reducing the tolerated threshold to `TRH/(1 + α)` (Equation 5). Against
/// ImPress-P it gains nothing (the full open time is converted into EACT).
#[derive(Debug, Clone, Copy)]
pub struct EvasionPattern {
    /// The aggressor row.
    pub aggressor: RowId,
    /// A decoy row in the same bank used to force the precharge.
    pub decoy: RowId,
    t_on: Cycle,
}

impl EvasionPattern {
    /// Creates the evasion pattern; `decoy` must differ from `aggressor` and should be
    /// far enough away not to share victims.
    pub fn new(aggressor: RowId, decoy: RowId, timings: &DramTimings) -> Self {
        assert_ne!(aggressor, decoy, "decoy must differ from the aggressor");
        Self {
            aggressor,
            decoy,
            t_on: timings.t_rc + timings.t_ras,
        }
    }

    /// Charge leaked per round on the aggressor's victims (in RH units) under the CLM
    /// with parameter `alpha`.
    pub fn charge_per_round(&self, alpha: f64) -> f64 {
        1.0 + alpha
    }
}

impl AttackPattern for EvasionPattern {
    fn round(&self, i: u64) -> AggressorAccess {
        // Alternate the long aggressor access with a minimum-length decoy access (the
        // decoy both closes the aggressor row and hides the pattern's regularity).
        if i.is_multiple_of(2) {
            AggressorAccess::press(self.aggressor, self.t_on)
        } else {
            AggressorAccess::hammer(self.decoy)
        }
    }

    fn name(&self) -> String {
        format!(
            "ImPress-N evasion(row {}, decoy {})",
            self.aggressor, self.decoy
        )
    }
}

/// Rotating-aggressor churn: round-robin over a row set larger than any tracker
/// table, so (after warm-up) nearly every access misses the table and exercises
/// the eviction path — the worst case the stream-summary engine is built for,
/// and the shape `perf_report`'s churn gate measures.
///
/// Each row recurs every `rows` accesses; with `rows` greater than the table
/// entry count a row is usually displaced before it returns, so the tracker
/// sees a permanent miss storm while every row's true activation rate stays far
/// below the Rowhammer threshold (the disturbance is spread, not concentrated).
#[derive(Debug, Clone, Copy)]
pub struct RotatingAggressorPattern {
    /// First row of the rotation.
    pub base: RowId,
    /// Number of rows rotated over (choose > tracker entries for full churn).
    pub rows: u32,
    /// Distance between consecutive rows (≥ 1; > 2×blast radius keeps victim
    /// sets disjoint so no single victim accumulates compound damage).
    pub stride: u32,
    /// Open time per access (0 = minimum-length Rowhammer accesses).
    pub t_on: Cycle,
}

impl RotatingAggressorPattern {
    /// Creates a minimum-open-time rotation over `rows` rows starting at `base`.
    pub fn new(base: RowId, rows: u32, stride: u32) -> Self {
        assert!(rows > 0, "rotation needs at least one row");
        assert!(stride > 0, "stride must be positive");
        Self {
            base,
            rows,
            stride,
            t_on: 0,
        }
    }

    /// The same rotation with a Row-Press open time per access.
    pub fn with_press(mut self, t_on: Cycle) -> Self {
        self.t_on = t_on;
        self
    }
}

impl AttackPattern for RotatingAggressorPattern {
    fn round(&self, i: u64) -> AggressorAccess {
        let k = (i % u64::from(self.rows)) as u32;
        AggressorAccess {
            row: self.base + k * self.stride,
            t_on: self.t_on,
        }
    }

    fn name(&self) -> String {
        format!(
            "Rotating({} rows from {}, stride {}, tON {})",
            self.rows, self.base, self.stride, self.t_on
        )
    }
}

/// Threshold-straddling churn: a small set of aggressors is driven in bursts
/// that approach (but keep re-arming below) the tracker's internal threshold,
/// while one-shot churn rows are injected between bursts.
///
/// The aggressors pin high-count table entries near the mitigation threshold;
/// the churn rows force a steady stream of insert/evict decisions at the bottom
/// of the count order, with frequent ties. This maximizes evictions *while*
/// counts straddle the threshold — the adversarial shape for an eviction engine,
/// since a wrong victim choice (e.g. displacing a near-threshold aggressor) is
/// immediately visible as extra unmitigated disturbance in the security harness
/// A/B gate.
#[derive(Debug, Clone, Copy)]
pub struct ThresholdStraddlingPattern {
    /// First aggressor row.
    pub base: RowId,
    /// Number of aggressors cycled burst-by-burst.
    pub aggressors: u32,
    /// Consecutive accesses per aggressor burst (size toward
    /// `internal_threshold / aggressors` so counts climb to the threshold over
    /// one rotation without crossing inside a single burst).
    pub burst: u32,
    /// One-shot churn rows injected after each burst.
    pub churn_per_burst: u32,
    /// Number of distinct churn rows before the injection sequence repeats.
    pub churn_universe: u32,
    /// Open time for aggressor accesses (0 = Rowhammer; churn rows always use
    /// minimum-length accesses).
    pub t_on: Cycle,
}

impl ThresholdStraddlingPattern {
    /// Creates a straddling pattern with `aggressors` hot rows from `base` and
    /// `churn_per_burst` eviction-forcing rows injected per burst.
    pub fn new(base: RowId, aggressors: u32, burst: u32, churn_per_burst: u32) -> Self {
        assert!(aggressors > 0 && burst > 0, "need at least one hot access");
        Self {
            base,
            aggressors,
            burst,
            churn_per_burst,
            churn_universe: (churn_per_burst.max(1)) * 64,
            t_on: 0,
        }
    }

    /// The same pattern with a Row-Press open time on the aggressor accesses.
    pub fn with_press(mut self, t_on: Cycle) -> Self {
        self.t_on = t_on;
        self
    }

    /// First row of the churn range (kept clear of the aggressors' victims).
    fn churn_base(&self) -> RowId {
        self.base + self.aggressors * 8 + 16
    }
}

impl AttackPattern for ThresholdStraddlingPattern {
    fn round(&self, i: u64) -> AggressorAccess {
        let period = u64::from(self.burst + self.churn_per_burst);
        let block = i / period;
        let j = i % period;
        if j < u64::from(self.burst) {
            let aggressor = (block % u64::from(self.aggressors)) as u32;
            AggressorAccess {
                // Aggressors spaced so their victim sets stay disjoint.
                row: self.base + aggressor * 8,
                t_on: self.t_on,
            }
        } else {
            let injected = block * u64::from(self.churn_per_burst) + (j - u64::from(self.burst));
            let churn = (injected % u64::from(self.churn_universe.max(1))) as u32;
            AggressorAccess::hammer(self.churn_base() + churn)
        }
    }

    fn name(&self) -> String {
        format!(
            "Straddling({} aggressors from {}, burst {}, {} churn/burst, tON {})",
            self.aggressors, self.base, self.burst, self.churn_per_burst, self.t_on
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timings() -> DramTimings {
        DramTimings::ddr5()
    }

    #[test]
    fn rowhammer_rounds_are_minimum_length() {
        let p = RowhammerPattern::new(5);
        assert_eq!(p.round(0), AggressorAccess::hammer(5));
        assert_eq!(p.accesses(10).len(), 10);
        assert!(p.name().contains("Rowhammer"));
    }

    #[test]
    fn combined_pattern_degenerates_to_rowhammer_at_k0() {
        let t = timings();
        let p = CombinedPattern::new(7, 0, &t);
        assert_eq!(p.round(0).t_on, t.t_ras);
        assert_eq!(p.round_time(&t), t.t_rc);
    }

    #[test]
    fn combined_pattern_round_time_scales_with_k() {
        let t = timings();
        let p = CombinedPattern::new(7, 72, &t);
        assert_eq!(p.round_time(&t), 73 * t.t_rc);
        assert_eq!(p.round(3).t_on, t.t_ras + 72 * t.t_rc);
    }

    #[test]
    fn maximal_rowpress_uses_postponement_limit() {
        let t = timings();
        let p = RowPressPattern::maximal(9, &t);
        assert_eq!(p.t_on, 5 * t.t_refi);
    }

    #[test]
    fn evasion_alternates_aggressor_and_decoy() {
        let t = timings();
        let p = EvasionPattern::new(10, 500, &t);
        assert_eq!(p.round(0).row, 10);
        assert_eq!(p.round(1).row, 500);
        assert_eq!(p.round(0).t_on, t.t_rc + t.t_ras);
        assert!((p.charge_per_round(1.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "decoy")]
    fn evasion_rejects_same_row() {
        let _ = EvasionPattern::new(10, 10, &timings());
    }

    #[test]
    fn iter_matches_accesses() {
        let p = RowPressPattern::new(3, 1000);
        let via_iter: Vec<_> = p.iter(5).collect();
        assert_eq!(via_iter, p.accesses(5));
    }

    #[test]
    fn rotating_pattern_cycles_distinct_rows() {
        let p = RotatingAggressorPattern::new(100, 5, 8);
        let rows: Vec<RowId> = (0..10).map(|i| p.round(i).row).collect();
        assert_eq!(rows[..5], [100, 108, 116, 124, 132]);
        assert_eq!(rows[5..], rows[..5], "rotation repeats");
        assert_eq!(p.round(0).t_on, 0);
        let pressed = p.with_press(9_999);
        assert_eq!(pressed.round(3).t_on, 9_999);
        assert!(p.name().contains("Rotating"));
    }

    #[test]
    fn straddling_pattern_interleaves_bursts_and_churn() {
        let p = ThresholdStraddlingPattern::new(1_000, 2, 3, 2);
        // Block 0: aggressor 0 (row 1000) x3, then two churn rows.
        for i in 0..3 {
            assert_eq!(p.round(i).row, 1_000);
        }
        let c0 = p.round(3).row;
        let c1 = p.round(4).row;
        assert!(c0 >= p.churn_base() && c1 >= p.churn_base());
        assert_ne!(c0, c1, "churn rows are one-shot within a block");
        // Block 1 bursts the next aggressor, spaced by 8 rows.
        assert_eq!(p.round(5).row, 1_008);
        // Churn rows keep advancing across blocks before wrapping.
        assert_ne!(p.round(8).row, c0);
        assert!(p.name().contains("Straddling"));
    }

    #[test]
    fn straddling_churn_rows_avoid_aggressor_victims() {
        let p = ThresholdStraddlingPattern::new(500, 4, 10, 3);
        let last_aggressor = 500 + 3 * 8;
        assert!(p.churn_base() > last_aggressor + 2, "victim sets disjoint");
    }
}
