//! Replays attack patterns against a mitigation engine and measures the attacker-visible
//! slowdown (the simulated counterpart of the analytic models in [`crate::analytic`]).

use impress_core::config::ProtectionConfig;
use impress_core::engine::BankMitigationEngine;
use impress_dram::bank::ClosedRow;
use impress_dram::timing::{Cycle, DramTimings};

use crate::patterns::AttackPattern;

/// Outcome of replaying an attack pattern against a protected bank, from the attacker's
/// performance point of view (Appendix B).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackPerformanceReport {
    /// Number of attack rounds replayed.
    pub rounds: u64,
    /// Time the rounds would take with no mitigation, in cycles.
    pub baseline_cycles: Cycle,
    /// Extra cycles spent on mitigative refreshes triggered by the attack.
    pub mitigation_cycles: Cycle,
    /// Number of mitigations triggered.
    pub mitigations: u64,
}

impl AttackPerformanceReport {
    /// The attacker-visible slowdown: mitigation time relative to the unmitigated
    /// attack time (Appendix B's "Slowdown").
    pub fn slowdown(&self) -> f64 {
        if self.baseline_cycles == 0 {
            0.0
        } else {
            self.mitigation_cycles as f64 / self.baseline_cycles as f64
        }
    }
}

/// Replays attack patterns against a single protected bank, accounting only for the
/// memory-side mitigation cost (in-DRAM mitigations happen under REF/RFM and do not
/// slow the attacker down, as noted in Appendix B).
#[derive(Debug)]
pub struct AttackRunner {
    engine: BankMitigationEngine,
    timings: DramTimings,
    /// Cycles added per mitigation: blast radius 2 → 4 victim refreshes of tRC each.
    mitigation_cost: Cycle,
}

impl AttackRunner {
    /// Creates a runner for the given protection configuration.
    pub fn new(config: &ProtectionConfig, timings: &DramTimings) -> Self {
        Self {
            engine: BankMitigationEngine::new(config, timings),
            timings: timings.clone(),
            mitigation_cost: 4 * timings.t_rc,
        }
    }

    /// Replays `rounds` rounds of `pattern` and reports the attacker-visible slowdown.
    pub fn run(&mut self, pattern: &dyn AttackPattern, rounds: u64) -> AttackPerformanceReport {
        let mut now: Cycle = 0;
        let mut baseline: Cycle = 0;
        let mut mitigation_cycles: Cycle = 0;
        let mut mitigations = 0u64;

        for i in 0..rounds {
            let access = pattern.round(i);
            let t_on = access.t_on.max(self.timings.t_ras);
            let round_time = t_on + self.timings.t_pre;
            baseline += round_time;

            let handle = |requests: Vec<impress_trackers::MitigationRequest>,
                          now: &mut Cycle,
                          mitigation_cycles: &mut Cycle,
                          mitigations: &mut u64| {
                for _ in requests {
                    *now += self.mitigation_cost;
                    *mitigation_cycles += self.mitigation_cost;
                    *mitigations += 1;
                }
            };

            let opened_at = now;
            let reqs = self.engine.on_activate(access.row, opened_at);
            handle(reqs, &mut now, &mut mitigation_cycles, &mut mitigations);

            let closed_at = opened_at + t_on;
            let closed = ClosedRow {
                row: access.row,
                open_cycles: t_on,
                opened_at,
                closed_at,
            };
            now = closed_at + self.timings.t_pre;
            let reqs = self.engine.on_close(&closed);
            handle(reqs, &mut now, &mut mitigation_cycles, &mut mitigations);
        }

        AttackPerformanceReport {
            rounds,
            baseline_cycles: baseline,
            mitigation_cycles,
            mitigations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic::{graphene_attack_slowdown, para_attack_slowdown_with_p};
    use crate::patterns::CombinedPattern;
    use impress_core::config::{DefenseKind, TrackerChoice};
    use impress_trackers::analysis::para_probability_appendix_b;

    fn timings() -> DramTimings {
        DramTimings::ddr5()
    }

    #[test]
    fn graphene_measured_slowdown_matches_equation9() {
        let t = timings();
        for trh in [1_000u64, 4_000] {
            let cfg = ProtectionConfig {
                rowhammer_threshold: trh,
                ..ProtectionConfig::paper_default(
                    TrackerChoice::Graphene,
                    DefenseKind::impress_p_default(),
                )
            };
            let mut runner = AttackRunner::new(&cfg, &t);
            let pattern = CombinedPattern::new(300, 8, &t);
            let report = runner.run(&pattern, 60_000);
            let analytic = graphene_attack_slowdown(trh, 8);
            // Graphene's internal threshold is TRH/3 rather than the TRH/2 idealised in
            // Appendix B, so the measured mitigation rate is within ~2x of Equation 9
            // and, crucially, stays sub-1% and independent of K.
            assert!(
                report.slowdown() < 3.0 * analytic && report.slowdown() > 0.2 * analytic,
                "measured {} vs analytic {}",
                report.slowdown(),
                analytic
            );
        }
    }

    #[test]
    fn graphene_slowdown_is_flat_in_k() {
        let t = timings();
        let cfg = ProtectionConfig::paper_default(
            TrackerChoice::Graphene,
            DefenseKind::impress_p_default(),
        );
        let slowdowns: Vec<f64> = [0u64, 16, 64]
            .iter()
            .map(|&k| {
                let mut runner = AttackRunner::new(&cfg, &t);
                let pattern = CombinedPattern::new(300, k, &t);
                runner.run(&pattern, 30_000).slowdown()
            })
            .collect();
        let max = slowdowns.iter().cloned().fold(f64::MIN, f64::max);
        let min = slowdowns.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max - min < 0.002, "slowdowns vary too much: {slowdowns:?}");
    }

    #[test]
    fn para_measured_slowdown_matches_equation10() {
        let t = timings();
        let trh = 4_000u64;
        let p = para_probability_appendix_b(trh);
        for k in [0u64, 40, 100] {
            let cfg = ProtectionConfig {
                rowhammer_threshold: trh,
                seed: 77,
                ..ProtectionConfig::paper_default(
                    TrackerChoice::Para,
                    DefenseKind::impress_p_default(),
                )
            };
            // Use the Appendix-B probability for an apples-to-apples comparison.
            let mut runner = AttackRunner::new(&cfg, &t);
            let pattern = CombinedPattern::new(300, k, &t);
            let report = runner.run(&pattern, 40_000);
            // PARA's default probability (1/184) differs from Appendix B's (1/84);
            // rescale the analytic expectation accordingly.
            let default_p = impress_trackers::analysis::para_probability(trh);
            let analytic = para_attack_slowdown_with_p(default_p, k);
            let _ = p;
            assert!(
                (report.slowdown() - analytic).abs() < 0.35 * analytic + 0.002,
                "K={k}: measured {} vs analytic {}",
                report.slowdown(),
                analytic
            );
        }
    }

    #[test]
    fn rowpress_does_not_outrun_rowhammer_for_para() {
        // The attacker gains nothing (in mitigation overhead avoided) by adding
        // Row-Press when ImPress-P is deployed.
        let t = timings();
        let cfg =
            ProtectionConfig::paper_default(TrackerChoice::Para, DefenseKind::impress_p_default());
        let slowdown_at = |k: u64| {
            let mut runner = AttackRunner::new(&cfg, &t);
            let pattern = CombinedPattern::new(300, k, &t);
            runner.run(&pattern, 40_000).slowdown()
        };
        assert!(slowdown_at(200) <= slowdown_at(0) + 0.01);
    }
}
