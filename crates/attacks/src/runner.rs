//! Replays attack patterns against a mitigation engine and measures the attacker-visible
//! slowdown (the simulated counterpart of the analytic models in [`crate::analytic`]).

use impress_core::clm::ChargeLossModel;
use impress_core::config::ProtectionConfig;
use impress_core::engine::BankMitigationEngine;
use impress_dram::bank::ClosedRow;
use impress_dram::timing::{Cycle, DramTimings};

use crate::patterns::AttackPattern;

/// Outcome of replaying an attack pattern against a protected bank, from the attacker's
/// performance point of view (Appendix B).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackPerformanceReport {
    /// Number of attack rounds replayed.
    pub rounds: u64,
    /// Time the rounds would take with no mitigation, in cycles.
    pub baseline_cycles: Cycle,
    /// Extra cycles spent on mitigative refreshes triggered by the attack.
    pub mitigation_cycles: Cycle,
    /// Number of mitigations triggered.
    pub mitigations: u64,
    /// Total Unified-CLM damage (in RH units) the replayed rounds inflict on each
    /// immediately adjacent victim row, ignoring refreshes — the attack's gross
    /// charge budget, evaluated with the vectorized batch kernel.
    pub aggressor_charge_units: f64,
}

impl AttackPerformanceReport {
    /// The attacker-visible slowdown: mitigation time relative to the unmitigated
    /// attack time (Appendix B's "Slowdown").
    pub fn slowdown(&self) -> f64 {
        if self.baseline_cycles == 0 {
            0.0
        } else {
            self.mitigation_cycles as f64 / self.baseline_cycles as f64
        }
    }

    /// Mean CLM damage per round, in RH units (1.0 = a pure Rowhammer round; larger
    /// means the pattern leans on Row-Press open time).
    pub fn charge_per_round(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.aggressor_charge_units / self.rounds as f64
        }
    }
}

/// Replays attack patterns against a single protected bank, accounting only for the
/// memory-side mitigation cost (in-DRAM mitigations happen under REF/RFM and do not
/// slow the attacker down, as noted in Appendix B).
#[derive(Debug)]
pub struct AttackRunner {
    engine: BankMitigationEngine,
    clm: ChargeLossModel,
    timings: DramTimings,
    /// Cycles added per mitigation: blast radius 2 → 4 victim refreshes of tRC each.
    mitigation_cost: Cycle,
}

impl AttackRunner {
    /// Creates a runner for the given protection configuration, using the paper's
    /// conservative α = 1 as the ground-truth damage model for charge accounting.
    pub fn new(config: &ProtectionConfig, timings: &DramTimings) -> Self {
        Self {
            engine: BankMitigationEngine::new(config, timings),
            clm: ChargeLossModel::new(1.0, timings),
            timings: timings.clone(),
            mitigation_cost: 4 * timings.t_rc,
        }
    }

    /// Replays `rounds` rounds of `pattern` and reports the attacker-visible slowdown
    /// plus the pattern's gross CLM charge budget.
    ///
    /// Rounds are consumed in chunks: the open times of a whole chunk are clamped
    /// and pushed through [`ChargeLossModel::charge_loss_batch`] up front (patterns
    /// are pure functions of the round index, so this reorders no observable
    /// work), then the event loop interleaves the precomputed damages with the
    /// mitigation machinery.
    pub fn run(&mut self, pattern: &dyn AttackPattern, rounds: u64) -> AttackPerformanceReport {
        /// Rounds evaluated per batch kernel call.
        const CHUNK: usize = 256;
        let mut now: Cycle = 0;
        let mut baseline: Cycle = 0;
        let mut mitigation_cycles: Cycle = 0;
        let mut mitigations = 0u64;
        let mut charge_units = 0.0f64;

        let mut rows = [0u32; CHUNK];
        let mut open = [0 as Cycle; CHUNK];
        let mut charge = [0.0f64; CHUNK];

        let mut next_round = 0u64;
        while next_round < rounds {
            let filled = ((rounds - next_round) as usize).min(CHUNK);
            for (k, slot) in open.iter_mut().enumerate().take(filled) {
                let access = pattern.round(next_round + k as u64);
                rows[k] = access.row;
                *slot = access.t_on.max(self.timings.t_ras);
            }
            self.clm
                .charge_loss_batch(&open[..filled], &mut charge[..filled]);

            for k in 0..filled {
                let t_on = open[k];
                let round_time = t_on + self.timings.t_pre;
                baseline += round_time;
                charge_units += charge[k];

                let handle = |requests: Vec<impress_trackers::MitigationRequest>,
                              now: &mut Cycle,
                              mitigation_cycles: &mut Cycle,
                              mitigations: &mut u64| {
                    for _ in requests {
                        *now += self.mitigation_cost;
                        *mitigation_cycles += self.mitigation_cost;
                        *mitigations += 1;
                    }
                };

                let opened_at = now;
                let reqs = self.engine.on_activate(rows[k], opened_at);
                handle(reqs, &mut now, &mut mitigation_cycles, &mut mitigations);

                let closed_at = opened_at + t_on;
                let closed = ClosedRow {
                    row: rows[k],
                    open_cycles: t_on,
                    opened_at,
                    closed_at,
                };
                now = closed_at + self.timings.t_pre;
                let reqs = self.engine.on_close(&closed);
                handle(reqs, &mut now, &mut mitigation_cycles, &mut mitigations);
            }
            next_round += filled as u64;
        }

        AttackPerformanceReport {
            rounds,
            baseline_cycles: baseline,
            mitigation_cycles,
            mitigations,
            aggressor_charge_units: charge_units,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic::{graphene_attack_slowdown, para_attack_slowdown_with_p};
    use crate::patterns::CombinedPattern;
    use impress_core::config::{DefenseKind, TrackerChoice};
    use impress_trackers::analysis::para_probability_appendix_b;

    fn timings() -> DramTimings {
        DramTimings::ddr5()
    }

    #[test]
    fn graphene_measured_slowdown_matches_equation9() {
        let t = timings();
        for trh in [1_000u64, 4_000] {
            let cfg = ProtectionConfig {
                rowhammer_threshold: trh,
                ..ProtectionConfig::paper_default(
                    TrackerChoice::Graphene,
                    DefenseKind::impress_p_default(),
                )
            };
            let mut runner = AttackRunner::new(&cfg, &t);
            let pattern = CombinedPattern::new(300, 8, &t);
            let report = runner.run(&pattern, 60_000);
            let analytic = graphene_attack_slowdown(trh, 8);
            // Graphene's internal threshold is TRH/3 rather than the TRH/2 idealised in
            // Appendix B, so the measured mitigation rate is within ~2x of Equation 9
            // and, crucially, stays sub-1% and independent of K.
            assert!(
                report.slowdown() < 3.0 * analytic && report.slowdown() > 0.2 * analytic,
                "measured {} vs analytic {}",
                report.slowdown(),
                analytic
            );
        }
    }

    #[test]
    fn graphene_slowdown_is_flat_in_k() {
        let t = timings();
        let cfg = ProtectionConfig::paper_default(
            TrackerChoice::Graphene,
            DefenseKind::impress_p_default(),
        );
        let slowdowns: Vec<f64> = [0u64, 16, 64]
            .iter()
            .map(|&k| {
                let mut runner = AttackRunner::new(&cfg, &t);
                let pattern = CombinedPattern::new(300, k, &t);
                runner.run(&pattern, 30_000).slowdown()
            })
            .collect();
        let max = slowdowns.iter().cloned().fold(f64::MIN, f64::max);
        let min = slowdowns.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max - min < 0.002, "slowdowns vary too much: {slowdowns:?}");
    }

    #[test]
    fn para_measured_slowdown_matches_equation10() {
        let t = timings();
        let trh = 4_000u64;
        let p = para_probability_appendix_b(trh);
        for k in [0u64, 40, 100] {
            let cfg = ProtectionConfig {
                rowhammer_threshold: trh,
                seed: 77,
                ..ProtectionConfig::paper_default(
                    TrackerChoice::Para,
                    DefenseKind::impress_p_default(),
                )
            };
            // Use the Appendix-B probability for an apples-to-apples comparison.
            let mut runner = AttackRunner::new(&cfg, &t);
            let pattern = CombinedPattern::new(300, k, &t);
            let report = runner.run(&pattern, 40_000);
            // PARA's default probability (1/184) differs from Appendix B's (1/84);
            // rescale the analytic expectation accordingly.
            let default_p = impress_trackers::analysis::para_probability(trh);
            let analytic = para_attack_slowdown_with_p(default_p, k);
            let _ = p;
            assert!(
                (report.slowdown() - analytic).abs() < 0.35 * analytic + 0.002,
                "K={k}: measured {} vs analytic {}",
                report.slowdown(),
                analytic
            );
        }
    }

    #[test]
    fn rowpress_does_not_outrun_rowhammer_for_para() {
        // The attacker gains nothing (in mitigation overhead avoided) by adding
        // Row-Press when ImPress-P is deployed.
        let t = timings();
        let cfg =
            ProtectionConfig::paper_default(TrackerChoice::Para, DefenseKind::impress_p_default());
        let slowdown_at = |k: u64| {
            let mut runner = AttackRunner::new(&cfg, &t);
            let pattern = CombinedPattern::new(300, k, &t);
            runner.run(&pattern, 40_000).slowdown()
        };
        assert!(slowdown_at(200) <= slowdown_at(0) + 0.01);
    }

    #[test]
    fn charge_accounting_matches_scalar_clm() {
        // The batch-evaluated charge budget must equal the sequential scalar sum,
        // bitwise, including across chunk boundaries (rounds not a CHUNK multiple).
        let t = timings();
        let cfg = ProtectionConfig::paper_default(
            TrackerChoice::Graphene,
            DefenseKind::impress_p_default(),
        );
        let clm = ChargeLossModel::new(1.0, &t);
        for rounds in [1u64, 255, 256, 1_000] {
            let pattern = CombinedPattern::new(300, 16, &t);
            let mut runner = AttackRunner::new(&cfg, &t);
            let report = runner.run(&pattern, rounds);
            let scalar: f64 = (0..rounds)
                .map(|i| clm.charge_loss(pattern.round(i).t_on.max(t.t_ras)))
                .sum();
            assert_eq!(
                report.aggressor_charge_units.to_bits(),
                scalar.to_bits(),
                "rounds = {rounds}"
            );
            assert!(report.charge_per_round() >= 1.0);
        }
        // A pure Rowhammer pattern costs exactly 1 RH unit per round.
        let hammer = CombinedPattern::new(300, 0, &t);
        let mut runner = AttackRunner::new(&cfg, &t);
        let report = runner.run(&hammer, 500);
        assert_eq!(report.charge_per_round(), 1.0);
    }
}
