//! Criterion micro-benchmarks: Unified Charge-Loss Model and EACT conversion.

use criterion::{criterion_group, criterion_main, Criterion};
use impress_core::{Alpha, ChargeLossModel};
use impress_dram::DramTimings;
use impress_trackers::Eact;
use std::hint::black_box;

fn bench_charge_model(c: &mut Criterion) {
    let timings = DramTimings::ddr5();
    let clm = ChargeLossModel::new(Alpha::LongDuration, &timings);

    c.bench_function("clm_charge_loss", |b| {
        let mut t = 96u64;
        b.iter(|| {
            t = (t + 97) % 200_000;
            black_box(clm.charge_loss(black_box(t)))
        });
    });

    c.bench_function("clm_pattern_1000_accesses", |b| {
        let pattern: Vec<u64> = (0..1000u64).map(|i| 96 + (i * 131) % 50_000).collect();
        b.iter(|| black_box(clm.pattern_charge_loss(pattern.iter().copied())));
    });

    c.bench_function("eact_from_open_time", |b| {
        let mut t = 96u64;
        b.iter(|| {
            t = (t + 61) % 100_000;
            black_box(Eact::from_open_time(black_box(t), 32, 128, 7))
        });
    });
}

criterion_group!(benches, bench_charge_model);
criterion_main!(benches);
