//! Criterion micro-benchmarks: Unified Charge-Loss Model and EACT conversion.

use criterion::{criterion_group, criterion_main, Criterion};
use impress_core::{Alpha, ChargeLossModel};
use impress_dram::DramTimings;
use impress_trackers::Eact;
use std::hint::black_box;

fn bench_charge_model(c: &mut Criterion) {
    let timings = DramTimings::ddr5();
    let clm = ChargeLossModel::new(Alpha::LongDuration, &timings);

    c.bench_function("clm_charge_loss", |b| {
        let mut t = 96u64;
        b.iter(|| {
            t = (t + 97) % 200_000;
            black_box(clm.charge_loss(black_box(t)))
        });
    });

    c.bench_function("clm_pattern_1000_accesses", |b| {
        let pattern: Vec<u64> = (0..1000u64).map(|i| 96 + (i * 131) % 50_000).collect();
        b.iter(|| black_box(clm.pattern_charge_loss(pattern.iter().copied())));
    });

    // Before/after pair for the vectorized kernel: the scalar loop above vs the
    // chunked batch kernel (and its accumulate variant) over the same 1000 open
    // times. The batch results are bitwise-identical per element.
    c.bench_function("clm_batch_1000_accesses", |b| {
        let pattern: Vec<u64> = (0..1000u64).map(|i| 96 + (i * 131) % 50_000).collect();
        let mut out = vec![0.0f64; pattern.len()];
        b.iter(|| {
            clm.charge_loss_batch(black_box(&pattern), &mut out);
            black_box(out.iter().sum::<f64>())
        });
    });

    c.bench_function("clm_accumulate_1000_accesses", |b| {
        let pattern: Vec<u64> = (0..1000u64).map(|i| 96 + (i * 131) % 50_000).collect();
        let mut acc = vec![0.0f64; pattern.len()];
        b.iter(|| {
            clm.charge_loss_accumulate(black_box(&pattern), &mut acc);
            black_box(acc[0])
        });
    });

    c.bench_function("eact_from_open_time", |b| {
        let mut t = 96u64;
        b.iter(|| {
            t = (t + 61) % 100_000;
            black_box(Eact::from_open_time(black_box(t), 32, 128, 7))
        });
    });
}

criterion_group!(benches, bench_charge_model);
criterion_main!(benches);
