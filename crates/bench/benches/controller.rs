//! Criterion micro-benchmarks: memory-controller access throughput with and without
//! ImPress-P protection.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use impress_core::config::{DefenseKind, ProtectionConfig, TrackerChoice};
use impress_dram::PhysicalAddress;
use impress_memctrl::{ControllerConfig, MemoryController};
use std::hint::black_box;

fn bench_controller(c: &mut Criterion) {
    let mut group = c.benchmark_group("controller_access");
    let configs = [
        ("unprotected", ControllerConfig::baseline()),
        (
            "graphene_impress_p",
            ControllerConfig::baseline().with_protection(ProtectionConfig::paper_default(
                TrackerChoice::Graphene,
                DefenseKind::impress_p_default(),
            )),
        ),
    ];
    for (name, config) in configs {
        group.bench_with_input(BenchmarkId::from_parameter(name), &config, |b, config| {
            let mut mc = MemoryController::new(config.clone());
            let capacity = config.organization.capacity_bytes();
            let mut now = 0u64;
            let mut addr = 0u64;
            b.iter(|| {
                addr = (addr + 64) % capacity;
                let out = mc
                    .access_physical(PhysicalAddress::new(addr), false, now)
                    .unwrap();
                now = out.completed_at;
                black_box(out.outcome)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_controller);
criterion_main!(benches);
