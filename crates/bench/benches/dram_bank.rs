//! Criterion micro-benchmarks: DRAM bank state machine and address mapping.

use criterion::{criterion_group, criterion_main, Criterion};
use impress_dram::{AddressMapping, Bank, DramOrganization, DramTimings, PhysicalAddress};
use std::hint::black_box;

fn bench_bank(c: &mut Criterion) {
    let timings = DramTimings::ddr5();

    c.bench_function("bank_act_pre_cycle", |b| {
        let mut bank = Bank::new(0);
        let mut now = 0u64;
        b.iter(|| {
            bank.activate(black_box((now % 65_536) as u32), now, &timings)
                .unwrap();
            now += timings.t_ras;
            bank.precharge(now, &timings).unwrap();
            now += timings.t_rc - timings.t_ras;
            black_box(bank.stats().activations)
        });
    });

    c.bench_function("mop_address_decode", |b| {
        let org = DramOrganization::baseline();
        let mapping = AddressMapping::paper_default();
        let mut addr = 0u64;
        b.iter(|| {
            addr = (addr + 4096) % org.capacity_bytes();
            black_box(mapping.decode(PhysicalAddress::new(addr), &org).unwrap())
        });
    });
}

criterion_group!(benches, bench_bank);
criterion_main!(benches);
