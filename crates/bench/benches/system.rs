//! Criterion macro-benchmark: a small end-to-end system simulation (8 cores, STREAM
//! copy, Graphene + ImPress-P) — the unit of work behind every performance figure.

use criterion::{criterion_group, criterion_main, Criterion};
use impress_core::config::{DefenseKind, ProtectionConfig, TrackerChoice};
use impress_memctrl::ControllerConfig;
use impress_sim::{System, SystemConfig};
use impress_workloads::WorkloadMix;
use std::hint::black_box;

fn bench_system(c: &mut Criterion) {
    let mut group = c.benchmark_group("system_run");
    group.sample_size(10);
    group.bench_function("copy_graphene_impress_p_2k_requests", |b| {
        b.iter(|| {
            let protection = ProtectionConfig::paper_default(
                TrackerChoice::Graphene,
                DefenseKind::impress_p_default(),
            );
            let config = SystemConfig {
                requests_per_core: 2_000,
                controller: ControllerConfig::baseline().with_protection(protection),
                ..SystemConfig::baseline()
            };
            let mix = WorkloadMix::by_name("copy", 1).unwrap();
            black_box(System::new(config, mix).run().performance.elapsed_cycles)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_system);
criterion_main!(benches);
