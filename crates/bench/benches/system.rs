//! Criterion macro-benchmark: a small end-to-end system simulation (8 cores, STREAM
//! copy, Graphene + ImPress-P) — the unit of work behind every performance figure.

use criterion::{criterion_group, criterion_main, Criterion};
use impress_core::config::{DefenseKind, ProtectionConfig, TrackerChoice};
use impress_memctrl::ControllerConfig;
use impress_sim::{System, SystemConfig};
use impress_workloads::WorkloadMix;
use std::hint::black_box;

fn bench_system(c: &mut Criterion) {
    let mut group = c.benchmark_group("system_run");
    group.sample_size(10);
    let build = || {
        let protection = ProtectionConfig::paper_default(
            TrackerChoice::Graphene,
            DefenseKind::impress_p_default(),
        );
        let config = SystemConfig {
            requests_per_core: 2_000,
            controller: ControllerConfig::baseline().with_protection(protection),
            ..SystemConfig::baseline()
        };
        let mix = WorkloadMix::by_name("copy", 1).unwrap();
        System::new(config, mix)
    };
    group.bench_function("copy_graphene_impress_p_2k_requests", |b| {
        b.iter(|| black_box(build().run().performance.elapsed_cycles));
    });
    // Same run with the channel shards on two workers (bit-identical output; this
    // pair measures the epoch-pool overhead/speedup on this host).
    group.bench_function("copy_graphene_impress_p_2k_requests_sharded", |b| {
        b.iter(|| black_box(build().run_with_threads(2).performance.elapsed_cycles));
    });
    group.finish();
}

criterion_group!(benches, bench_system);
criterion_main!(benches);
