//! Criterion micro-benchmarks: per-activation cost of each Rowhammer tracker, plus
//! before/after comparisons for the PR 2 hot-path rewrites (flat-table PRAC vs the
//! seed's `HashMap`, single-pass Graphene/Mithril vs the seed's multi-scan updates)
//! and the PR 5 eviction engines (`eviction_churn/*`: linear-scan vs stream-summary
//! victim selection on miss-heavy churn).

use std::collections::HashMap;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use impress_trackers::eact::EactCounter;
use impress_trackers::graphene::GrapheneConfig;
use impress_trackers::mithril::MithrilConfig;
use impress_trackers::{Eact, EvictionEngine, Graphene, Mint, Mithril, Para, Prac, RowTracker};
use std::hint::black_box;

fn bench_trackers(c: &mut Criterion) {
    let mut group = c.benchmark_group("tracker_record");
    let mut trackers: Vec<(&str, Box<dyn RowTracker>)> = vec![
        ("graphene", Box::new(Graphene::for_threshold(4_000))),
        ("para", Box::new(Para::for_threshold(4_000))),
        ("mithril", Box::new(Mithril::for_threshold(4_000))),
        ("mint", Box::new(Mint::paper_default())),
        ("prac", Box::new(Prac::for_threshold(4_000, 7, 1 << 16))),
    ];
    for (name, tracker) in &mut trackers {
        group.bench_with_input(BenchmarkId::from_parameter(*name), name, |b, _| {
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                let row = (i % 4096) as u32;
                black_box(tracker.record(row, Eact::from_f64(1.5, 7), i * 128))
            });
        });
    }
    group.finish();
}

/// The seed's PRAC counter store, kept here as the "before" side of the comparison.
struct HashMapPracStore {
    counters: HashMap<u32, EactCounter>,
    alert_threshold: u64,
}

impl HashMapPracStore {
    fn record(&mut self, row: u32, eact: Eact) -> bool {
        let counter = self.counters.entry(row).or_default();
        counter.add(eact);
        if counter.reached(self.alert_threshold) {
            *counter = EactCounter::ZERO;
            true
        } else {
            false
        }
    }
}

/// Before/after for the PRAC table: the seed's `HashMap` store vs the open-addressed
/// flat table now inside [`Prac`], on the same hot-set access pattern.
fn bench_prac_table(c: &mut Criterion) {
    let mut group = c.benchmark_group("prac_table");
    let eact = Eact::from_f64(1.5, 7);

    let mut reference = HashMapPracStore {
        counters: HashMap::new(),
        alert_threshold: 2_000,
    };
    group.bench_function("hashmap_seed", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(reference.record((i % 4096) as u32, eact))
        });
    });

    let mut flat = Prac::for_threshold(4_000, 7, 1 << 16);
    group.bench_function("flat_table", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(flat.record((i % 4096) as u32, eact, i * 128))
        });
    });
    group.finish();
}

/// The seed's three-scan Graphene `record`, kept as the "before" side.
struct ThreeScanGraphene {
    internal_threshold: u64,
    table: Vec<(u32, EactCounter, bool)>,
    spillover: EactCounter,
}

impl ThreeScanGraphene {
    fn new(config: &GrapheneConfig) -> Self {
        Self {
            internal_threshold: config.internal_threshold,
            table: vec![(0, EactCounter::ZERO, false); config.entries],
            spillover: EactCounter::ZERO,
        }
    }

    fn record(&mut self, row: u32, eact: Eact) -> bool {
        let slot = if let Some(i) = self.table.iter().position(|e| e.2 && e.0 == row) {
            i
        } else if let Some(i) = self.table.iter().position(|e| !e.2) {
            self.table[i] = (row, self.spillover, true);
            i
        } else if let Some(i) = self
            .table
            .iter()
            .position(|e| e.1.raw() <= self.spillover.raw())
        {
            self.table[i] = (row, self.spillover, true);
            i
        } else {
            self.spillover.add(eact);
            return false;
        };
        self.table[slot].1.add(eact);
        if self.table[slot].1.reached(self.internal_threshold) {
            self.table[slot].1 = self.spillover;
            true
        } else {
            false
        }
    }
}

/// Before/after for the Graphene Misra-Gries update: three scans vs one pass, on a
/// stream that overflows the table (the worst case for both).
fn bench_graphene_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("graphene_scan");
    let config = GrapheneConfig::for_threshold(4_000);
    let eact = Eact::ONE;

    let mut reference = ThreeScanGraphene::new(&config);
    group.bench_function("three_scan_seed", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(reference.record((i % 4096) as u32, eact))
        });
    });

    let mut single = Graphene::new(config.clone());
    group.bench_function("single_pass", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(single.record((i % 4096) as u32, eact, i * 128))
        });
    });

    // Match-path pair: a hot set smaller than the table, where every record after
    // warm-up matches a tracked row. The seed scanned O(entries) to find it; the
    // row→slot index answers in O(1).
    let mut reference_hot = ThreeScanGraphene::new(&config);
    group.bench_function("match_three_scan_seed", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(reference_hot.record((i % 128) as u32, eact))
        });
    });
    let mut indexed_hot = Graphene::new(config.clone());
    group.bench_function("match_slot_index", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(indexed_hot.record((i % 128) as u32, eact, i * 128))
        });
    });
    group.finish();
}

/// Before/after pairs for the PR 5 eviction engines on the miss-heavy churn
/// stream (4K distinct rows, larger than any table, so after warm-up nearly
/// every record runs the eviction path): the seed's linear scan vs the O(1)
/// bucketed stream-summary, for both counter trackers.
fn bench_eviction_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("eviction_churn");
    let eact = Eact::ONE;

    let mut graphene_scan =
        Graphene::with_engine(GrapheneConfig::for_threshold(4_000), EvictionEngine::Scan);
    group.bench_function("graphene_churn_scan", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(graphene_scan.record((i % 4096) as u32, eact, i * 128))
        });
    });
    let mut graphene_summary = Graphene::with_engine(
        GrapheneConfig::for_threshold(4_000),
        EvictionEngine::Summary,
    );
    group.bench_function("graphene_churn_summary", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(graphene_summary.record((i % 4096) as u32, eact, i * 128))
        });
    });

    let mut mithril_scan =
        Mithril::with_engine(MithrilConfig::for_threshold(4_000), EvictionEngine::Scan);
    group.bench_function("mithril_churn_scan", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(mithril_scan.record((i % 4096) as u32, eact, i * 128))
        });
    });
    let mut mithril_summary =
        Mithril::with_engine(MithrilConfig::for_threshold(4_000), EvictionEngine::Summary);
    group.bench_function("mithril_churn_summary", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(mithril_summary.record((i % 4096) as u32, eact, i * 128))
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_trackers,
    bench_prac_table,
    bench_graphene_scan,
    bench_eviction_churn
);
criterion_main!(benches);
