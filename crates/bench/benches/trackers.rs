//! Criterion micro-benchmarks: per-activation cost of each Rowhammer tracker.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use impress_trackers::{Eact, Graphene, Mint, Mithril, Para, Prac, RowTracker};
use std::hint::black_box;

fn bench_trackers(c: &mut Criterion) {
    let mut group = c.benchmark_group("tracker_record");
    let mut trackers: Vec<(&str, Box<dyn RowTracker>)> = vec![
        ("graphene", Box::new(Graphene::for_threshold(4_000))),
        ("para", Box::new(Para::for_threshold(4_000))),
        ("mithril", Box::new(Mithril::for_threshold(4_000))),
        ("mint", Box::new(Mint::paper_default())),
        ("prac", Box::new(Prac::for_threshold(4_000, 7, 1 << 16))),
    ];
    for (name, tracker) in &mut trackers {
        group.bench_with_input(BenchmarkId::from_parameter(*name), name, |b, _| {
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                let row = (i % 4096) as u32;
                black_box(tracker.record(row, Eact::from_f64(1.5, 7), i * 128))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_trackers);
criterion_main!(benches);
