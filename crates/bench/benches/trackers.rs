//! Criterion micro-benchmarks: per-activation cost of each Rowhammer tracker, plus
//! before/after comparisons for the PR 2 hot-path rewrites (flat-table PRAC vs the
//! seed's `HashMap`, single-pass Graphene/Mithril vs the seed's multi-scan updates)
//! and the PR 5 eviction engines (`eviction_churn/*`: linear-scan vs stream-summary
//! victim selection on miss-heavy churn).

use std::collections::HashMap;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use impress_trackers::eact::EactCounter;
use impress_trackers::graphene::GrapheneConfig;
use impress_trackers::mithril::MithrilConfig;
use impress_trackers::{Eact, EvictionEngine, Graphene, Mint, Mithril, Para, Prac, RowTracker};
use std::hint::black_box;

fn bench_trackers(c: &mut Criterion) {
    let mut group = c.benchmark_group("tracker_record");
    let mut trackers: Vec<(&str, Box<dyn RowTracker>)> = vec![
        ("graphene", Box::new(Graphene::for_threshold(4_000))),
        ("para", Box::new(Para::for_threshold(4_000))),
        ("mithril", Box::new(Mithril::for_threshold(4_000))),
        ("mint", Box::new(Mint::paper_default())),
        ("prac", Box::new(Prac::for_threshold(4_000, 7, 1 << 16))),
    ];
    for (name, tracker) in &mut trackers {
        group.bench_with_input(BenchmarkId::from_parameter(*name), name, |b, _| {
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                let row = (i % 4096) as u32;
                black_box(tracker.record(row, Eact::from_f64(1.5, 7), i * 128))
            });
        });
    }
    group.finish();
}

/// The seed's PRAC counter store, kept here as the "before" side of the comparison.
struct HashMapPracStore {
    counters: HashMap<u32, EactCounter>,
    alert_threshold: u64,
}

impl HashMapPracStore {
    fn record(&mut self, row: u32, eact: Eact) -> bool {
        let counter = self.counters.entry(row).or_default();
        counter.add(eact);
        if counter.reached(self.alert_threshold) {
            *counter = EactCounter::ZERO;
            true
        } else {
            false
        }
    }
}

/// Before/after for the PRAC table: the seed's `HashMap` store vs the open-addressed
/// flat table now inside [`Prac`], on the same hot-set access pattern.
fn bench_prac_table(c: &mut Criterion) {
    let mut group = c.benchmark_group("prac_table");
    let eact = Eact::from_f64(1.5, 7);

    let mut reference = HashMapPracStore {
        counters: HashMap::new(),
        alert_threshold: 2_000,
    };
    group.bench_function("hashmap_seed", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(reference.record((i % 4096) as u32, eact))
        });
    });

    let mut flat = Prac::for_threshold(4_000, 7, 1 << 16);
    group.bench_function("flat_table", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(flat.record((i % 4096) as u32, eact, i * 128))
        });
    });
    group.finish();
}

/// The seed's three-scan Graphene `record`, kept as the "before" side.
struct ThreeScanGraphene {
    internal_threshold: u64,
    table: Vec<(u32, EactCounter, bool)>,
    spillover: EactCounter,
}

impl ThreeScanGraphene {
    fn new(config: &GrapheneConfig) -> Self {
        Self {
            internal_threshold: config.internal_threshold,
            table: vec![(0, EactCounter::ZERO, false); config.entries],
            spillover: EactCounter::ZERO,
        }
    }

    fn record(&mut self, row: u32, eact: Eact) -> bool {
        let slot = if let Some(i) = self.table.iter().position(|e| e.2 && e.0 == row) {
            i
        } else if let Some(i) = self.table.iter().position(|e| !e.2) {
            self.table[i] = (row, self.spillover, true);
            i
        } else if let Some(i) = self
            .table
            .iter()
            .position(|e| e.1.raw() <= self.spillover.raw())
        {
            self.table[i] = (row, self.spillover, true);
            i
        } else {
            self.spillover.add(eact);
            return false;
        };
        self.table[slot].1.add(eact);
        if self.table[slot].1.reached(self.internal_threshold) {
            self.table[slot].1 = self.spillover;
            true
        } else {
            false
        }
    }
}

/// Before/after for the Graphene Misra-Gries update: three scans vs one pass, on a
/// stream that overflows the table (the worst case for both).
fn bench_graphene_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("graphene_scan");
    let config = GrapheneConfig::for_threshold(4_000);
    let eact = Eact::ONE;

    let mut reference = ThreeScanGraphene::new(&config);
    group.bench_function("three_scan_seed", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(reference.record((i % 4096) as u32, eact))
        });
    });

    let mut single = Graphene::new(config.clone());
    group.bench_function("single_pass", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(single.record((i % 4096) as u32, eact, i * 128))
        });
    });

    // Match-path pair: a hot set smaller than the table, where every record after
    // warm-up matches a tracked row. The seed scanned O(entries) to find it; the
    // row→slot index answers in O(1).
    let mut reference_hot = ThreeScanGraphene::new(&config);
    group.bench_function("match_three_scan_seed", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(reference_hot.record((i % 128) as u32, eact))
        });
    });
    let mut indexed_hot = Graphene::new(config.clone());
    group.bench_function("match_slot_index", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(indexed_hot.record((i % 128) as u32, eact, i * 128))
        });
    });
    group.finish();
}

/// Before/after pairs for the PR 5 eviction engines on the miss-heavy churn
/// stream (4K distinct rows, larger than any table, so after warm-up nearly
/// every record runs the eviction path): the seed's linear scan vs the O(1)
/// bucketed stream-summary, for both counter trackers.
fn bench_eviction_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("eviction_churn");
    let eact = Eact::ONE;

    let mut graphene_scan =
        Graphene::with_engine(GrapheneConfig::for_threshold(4_000), EvictionEngine::Scan);
    group.bench_function("graphene_churn_scan", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(graphene_scan.record((i % 4096) as u32, eact, i * 128))
        });
    });
    let mut graphene_summary = Graphene::with_engine(
        GrapheneConfig::for_threshold(4_000),
        EvictionEngine::Summary,
    );
    group.bench_function("graphene_churn_summary", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(graphene_summary.record((i % 4096) as u32, eact, i * 128))
        });
    });

    let mut mithril_scan =
        Mithril::with_engine(MithrilConfig::for_threshold(4_000), EvictionEngine::Scan);
    group.bench_function("mithril_churn_scan", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(mithril_scan.record((i % 4096) as u32, eact, i * 128))
        });
    });
    let mut mithril_summary =
        Mithril::with_engine(MithrilConfig::for_threshold(4_000), EvictionEngine::Summary);
    group.bench_function("mithril_churn_summary", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(mithril_summary.record((i % 4096) as u32, eact, i * 128))
        });
    });
    group.finish();
}

/// Splitmix64 step; deterministic stand-in for a uniform-random row stream.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Before/after pairs for the PR 8 batched record kernels: one
/// `record_batch` call over a 1024-event span vs the same span fed through
/// `record` one event at a time, for the three table trackers, on the two
/// stream shapes that bracket the kernels' behaviour — a hot same-row-burst
/// stream (runs of 16 activations per row over a small hot set, the
/// RowPress-typical shape run-length aggregation exploits) and a
/// uniform-random stream over a row space larger than any table (no runs,
/// pure eviction churn, the kernels' worst case).
fn bench_record_batch(c: &mut Criterion) {
    const SPAN: usize = 1024;

    // Hot same-row-burst: runs of 16 consecutive activations per row, rows
    // cycling through a 128-row hot set (smaller than every table).
    let burst: Vec<u32> = (0..SPAN).map(|i| ((i / 16) % 128) as u32).collect();
    // Uniform-random over 64K rows: larger than any table, so nearly every
    // record takes the insert/evict path and runs have length 1.
    let mut state = 0x5eed_u64;
    let uniform: Vec<u32> = (0..SPAN)
        .map(|_| (splitmix64(&mut state) % (1 << 16)) as u32)
        .collect();

    let eacts = vec![Eact::from_f64(1.5, 7); SPAN];
    let streams: [(&str, &[u32]); 2] = [("burst", &burst), ("uniform", &uniform)];

    type MakeTracker = fn() -> Box<dyn RowTracker>;
    let mut group = c.benchmark_group("tracker_record");
    let make: [(&str, MakeTracker); 3] = [
        ("graphene", || Box::new(Graphene::for_threshold(4_000))),
        ("mithril", || Box::new(Mithril::for_threshold(4_000))),
        ("prac", || Box::new(Prac::for_threshold(4_000, 7, 1 << 16))),
    ];
    for (tracker_name, new_tracker) in make {
        for (stream_name, rows) in streams {
            let mut per_record = new_tracker();
            group.bench_with_input(
                BenchmarkId::new(&format!("per_record_{tracker_name}"), stream_name),
                rows,
                |b, rows| {
                    let mut now = 0u64;
                    b.iter(|| {
                        now += (SPAN as u64) * 128;
                        let mut mitigations = 0usize;
                        for (i, &row) in rows.iter().enumerate() {
                            if per_record.record(row, eacts[i], now).is_some() {
                                mitigations += 1;
                            }
                        }
                        black_box(mitigations)
                    });
                },
            );
            let mut batched = new_tracker();
            let mut out = Vec::new();
            group.bench_with_input(
                BenchmarkId::new(&format!("batched_{tracker_name}"), stream_name),
                rows,
                |b, rows| {
                    let mut now = 0u64;
                    b.iter(|| {
                        now += (SPAN as u64) * 128;
                        out.clear();
                        batched.record_batch(rows, &eacts, now, &mut out);
                        black_box(out.len())
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_trackers,
    bench_prac_table,
    bench_graphene_scan,
    bench_eviction_churn,
    bench_record_batch
);
criterion_main!(benches);
