//! §VI-E: DRAM energy overhead of ExPress and ImPress-P for Graphene and PARA,
//! relative to the same tracker without Row-Press mitigation.

use impress_bench::{figure_workloads, requests_per_core};
use impress_core::config::{DefenseKind, ProtectionConfig, TrackerChoice};
use impress_dram::DramTimings;
use impress_sim::{Configuration, ExperimentRunner};

fn main() {
    let runner = ExperimentRunner::new().with_requests_per_core(requests_per_core());
    let timings = DramTimings::ddr5();
    let workloads = figure_workloads();

    println!("Section VI-E: DRAM energy relative to the same tracker without RP mitigation");
    println!("tracker\tdefense\trelative_energy\tactivation_share");
    for tracker in [TrackerChoice::Graphene, TrackerChoice::Para] {
        let defenses = [
            ("No-RP", DefenseKind::NoRp),
            ("ExPress", DefenseKind::express_paper_baseline(&timings)),
            ("ImPress-P", DefenseKind::impress_p_default()),
        ];
        let configs: Vec<Configuration> = defenses
            .iter()
            .map(|(label, defense)| {
                Configuration::protected(
                    format!("{}+{label}", tracker.label()),
                    ProtectionConfig::paper_default(tracker, *defense),
                )
            })
            .collect();
        let sweep = runner.run_sweep_raw(&workloads, &configs);

        let mut baseline_energy = 0.0;
        for ((label, _), outputs) in defenses.iter().zip(&sweep) {
            let energy: f64 = outputs.iter().map(|o| o.energy.total_nj()).sum();
            let act_share: f64 = outputs
                .iter()
                .map(|o| o.energy.activation_share())
                .sum::<f64>()
                / workloads.len() as f64;
            if *label == "No-RP" {
                baseline_energy = energy;
            }
            println!(
                "{}\t{label}\t{:.3}\t{act_share:.3}",
                tracker.label(),
                energy / baseline_energy
            );
        }
        println!();
    }
}
