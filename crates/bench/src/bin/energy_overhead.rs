//! §VI-E: DRAM energy overhead of ExPress and ImPress-P for Graphene and PARA,
//! relative to the same tracker without Row-Press mitigation.

use impress_bench::{figure_workloads, requests_per_core};
use impress_core::config::{DefenseKind, ProtectionConfig, TrackerChoice};
use impress_dram::DramTimings;
use impress_sim::{Configuration, ExperimentRunner};

fn main() {
    let runner = ExperimentRunner::new().with_requests_per_core(requests_per_core());
    let timings = DramTimings::ddr5();

    println!("Section VI-E: DRAM energy relative to the same tracker without RP mitigation");
    println!("tracker\tdefense\trelative_energy\tactivation_share");
    for tracker in [TrackerChoice::Graphene, TrackerChoice::Para] {
        let mut baseline_energy = 0.0;
        let defenses = [
            ("No-RP", DefenseKind::NoRp),
            ("ExPress", DefenseKind::express_paper_baseline(&timings)),
            ("ImPress-P", DefenseKind::impress_p_default()),
        ];
        for (label, defense) in defenses {
            let config = Configuration::protected(
                format!("{}+{label}", tracker.label()),
                ProtectionConfig::paper_default(tracker, defense),
            );
            let mut energy = 0.0;
            let mut act_share = 0.0;
            let workloads = figure_workloads();
            for workload in &workloads {
                let out = runner.run_raw(workload, &config);
                energy += out.energy.total_nj();
                act_share += out.energy.activation_share();
            }
            act_share /= workloads.len() as f64;
            if label == "No-RP" {
                baseline_energy = energy;
            }
            println!(
                "{}\t{label}\t{:.3}\t{act_share:.3}",
                tracker.label(),
                energy / baseline_energy
            );
        }
        println!();
    }
}
