//! Figure 3: performance impact of limiting the row-open time (tMRO) on SPEC and
//! STREAM workloads (no Rowhammer tracker; pure page-policy effect).

use impress_bench::{print_class_gmeans, requests_per_core, run_sweep_over_workloads};
use impress_core::rowpress_data::TMRO_SWEEP_NS;
use impress_dram::timing::ns_to_cycles;
use impress_sim::{Configuration, ExperimentRunner};

fn main() {
    let runner = ExperimentRunner::new().with_requests_per_core(requests_per_core());
    let baseline = Configuration::unprotected();
    let configs: Vec<Configuration> = TMRO_SWEEP_NS
        .iter()
        .map(|&tmro_ns| {
            Configuration::with_tmro(format!("tMRO={tmro_ns}ns"), ns_to_cycles(tmro_ns))
        })
        .collect();

    println!("Figure 3: Normalized performance vs tMRO (no tracker)");
    println!("tMRO\tworkload\tnorm_performance");
    for (config, results) in configs
        .iter()
        .zip(run_sweep_over_workloads(&runner, &baseline, &configs))
    {
        for r in &results {
            println!(
                "{}\t{}\t{:.4}",
                config.label, r.workload, r.normalized_performance
            );
        }
        print_class_gmeans(&config.label, &results);
        println!();
    }
}
