//! Figure 3: performance impact of limiting the row-open time (tMRO) on SPEC and
//! STREAM workloads (no Rowhammer tracker; pure page-policy effect).

use impress_bench::{figure_workloads, print_class_gmeans, requests_per_core};
use impress_core::rowpress_data::TMRO_SWEEP_NS;
use impress_dram::timing::ns_to_cycles;
use impress_sim::{Configuration, ExperimentRunner};

fn main() {
    let mut runner = ExperimentRunner::new().with_requests_per_core(requests_per_core());
    let baseline = Configuration::unprotected();

    println!("Figure 3: Normalized performance vs tMRO (no tracker)");
    println!("tMRO\tworkload\tnorm_performance");
    for &tmro_ns in &TMRO_SWEEP_NS {
        let label = format!("tMRO={tmro_ns}ns");
        let config = Configuration::with_tmro(label.clone(), ns_to_cycles(tmro_ns));
        let mut results = Vec::new();
        for workload in figure_workloads() {
            let r = runner.run_normalized(workload, &baseline, &config);
            println!("{label}\t{workload}\t{:.4}", r.normalized_performance);
            results.push(r);
        }
        print_class_gmeans(&label, &results);
        println!();
    }
}
