//! Figure 4: reduction in the tolerated threshold (T*) as the maximum row-open time
//! (tMRO) is constrained, from the Row-Press characterization data.

use impress_core::rowpress_data::{relative_threshold_for_tmro, TSTAR_VS_TMRO};
use impress_core::threshold::express_threshold_from_clm;
use impress_core::Alpha;
use impress_dram::timing::ns_to_cycles;
use impress_dram::DramTimings;

fn main() {
    let timings = DramTimings::ddr5();
    println!("Figure 4: Relative threshold (T*) vs maximum row-open time (tMRO)");
    println!("tMRO_ns\tT*_data\tT*_CLM_alpha0.35\tT*_CLM_alpha1.0");
    for point in TSTAR_VS_TMRO {
        let ns = point.t_mro_ns;
        let clm_035 = express_threshold_from_clm(ns_to_cycles(ns), Alpha::ShortDuration, &timings);
        let clm_1 = express_threshold_from_clm(ns_to_cycles(ns), Alpha::Conservative, &timings);
        println!(
            "{ns}\t{:.3}\t{clm_035:.3}\t{clm_1:.3}",
            point.relative_threshold
        );
    }
    // The headline number quoted in §II-E.
    println!();
    println!(
        "T* at tMRO=186ns (paper: 0.62): {:.3}",
        relative_threshold_for_tmro(186)
    );
}
