//! Figure 5: performance of Graphene and PARA under ExPress as tMRO is varied
//! (SPEC and STREAM geometric means, normalized to the respective tracker with no
//! Row-Press mitigation).

use impress_bench::{print_class_gmeans, requests_per_core, run_sweep_over_workloads};
use impress_core::config::{DefenseKind, ProtectionConfig, TrackerChoice};
use impress_core::rowpress_data::TMRO_SWEEP_NS;
use impress_core::Alpha;
use impress_dram::timing::ns_to_cycles;
use impress_sim::{Configuration, ExperimentRunner};

fn main() {
    let runner = ExperimentRunner::new().with_requests_per_core(requests_per_core());

    println!("Figure 5: Graphene and PARA performance vs tMRO (ExPress)");
    println!("tracker\ttMRO\tclass\tnorm_performance");
    for tracker in [TrackerChoice::Graphene, TrackerChoice::Para] {
        // Baseline: the same tracker with no Row-Press mitigation (no tMRO).
        let baseline = Configuration::protected(
            format!("{}+No-RP", tracker.label()),
            ProtectionConfig::paper_default(tracker, DefenseKind::NoRp),
        );
        let configs: Vec<Configuration> = TMRO_SWEEP_NS
            .iter()
            .map(|&tmro_ns| {
                let defense = DefenseKind::Express {
                    t_mro: ns_to_cycles(tmro_ns),
                    alpha: Alpha::Conservative,
                };
                Configuration::protected(
                    format!("{}+ExPress(tMRO={tmro_ns}ns)", tracker.label()),
                    ProtectionConfig::paper_default(tracker, defense),
                )
            })
            .collect();
        let sweep = run_sweep_over_workloads(&runner, &baseline, &configs);
        for (&tmro_ns, results) in TMRO_SWEEP_NS.iter().zip(sweep) {
            print_class_gmeans(&format!("{}\ttMRO={tmro_ns}ns", tracker.label()), &results);
        }
        println!();
    }
}
