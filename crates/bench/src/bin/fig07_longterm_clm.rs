//! Figure 7: total charge loss of long-duration Row-Press attacks (1 and 9 tREFI in
//! DDR4) for devices of all three vendors, compared with Rowhammer and the CLM
//! envelope at alpha = 0.48.

use impress_core::rowpress_data::{long_duration_points, Vendor, LONG_DURATIONS_TRC};
use impress_core::{Alpha, ChargeLossModel};
use impress_dram::DramTimings;

fn main() {
    let timings = DramTimings::ddr4();
    let clm = ChargeLossModel::new(Alpha::LongDuration, &timings);
    let points = long_duration_points();

    println!("Figure 7: Total charge loss (TCL) of long-duration Row-Press");
    println!("vendor\tdevice\tduration_tRC\tTCL_device\tTCL_CLM_alpha0.48\tTCL_Rowhammer");
    for vendor in Vendor::ALL {
        for p in points.iter().filter(|p| p.vendor == vendor) {
            let clm_tcl = clm.charge_loss_for_attack_time(p.duration_trc as f64);
            println!(
                "{vendor:?}\t{}\t{}\t{:.1}\t{clm_tcl:.1}\t{}",
                p.device, p.duration_trc, p.total_charge_loss, p.duration_trc
            );
        }
    }

    println!();
    println!("Envelope check (no device above the CLM line):");
    for duration in LONG_DURATIONS_TRC {
        let clm_tcl = clm.charge_loss_for_attack_time(duration as f64);
        let worst = points
            .iter()
            .filter(|p| p.duration_trc == duration)
            .map(|p| p.total_charge_loss)
            .fold(0.0f64, f64::max);
        println!(
            "duration {duration} tRC: worst device {worst:.1} <= CLM {clm_tcl:.1} : {}",
            worst <= clm_tcl + 1e-9
        );
    }
}
