//! Figure 8: relative charge-loss model for short-duration Row-Press (1–8 tRC),
//! comparing the measured data, a curve fit, the CLM at alpha = 0.35, and Rowhammer.

use impress_core::rowpress_data::{short_duration_curve_fit, SHORT_DURATION_TCL};
use impress_core::{Alpha, ChargeLossModel};
use impress_dram::DramTimings;

fn main() {
    let timings = DramTimings::ddr5();
    let clm = ChargeLossModel::new(Alpha::ShortDuration, &timings);
    println!("Figure 8: Relative charge-loss model for Row-Press (short duration)");
    println!("attack_time_tRC\tRowhammer\tRP_data\tcurve_fit\tCLM_alpha0.35");
    for p in SHORT_DURATION_TCL {
        let t = p.attack_time_trc;
        println!(
            "{t:.0}\t{t:.2}\t{:.2}\t{:.2}\t{:.2}",
            p.total_charge_loss,
            short_duration_curve_fit(t),
            clm.charge_loss_for_attack_time(t)
        );
    }
}
