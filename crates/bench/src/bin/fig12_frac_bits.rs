//! Figure 12: impact of the number of fractional EACT counter bits on ImPress-P's
//! effective threshold.

use impress_core::threshold::impress_p_threshold_curve;

fn main() {
    println!("Figure 12: Effective threshold (T*/TRH) vs fractional counter bits");
    println!("frac_bits\teffective_threshold");
    for (bits, t_star) in impress_p_threshold_curve() {
        println!("{bits}\t{t_star:.4}");
    }
}
