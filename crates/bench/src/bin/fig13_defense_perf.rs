//! Figure 13: performance of Graphene, PARA and the in-DRAM tracker (MINT) with
//! ExPress, ImPress-N and ImPress-P at alpha = 1, normalized to the same tracker with
//! no Row-Press mitigation (No-RP).

use impress_bench::{
    defense_configurations, figure_workloads, print_class_gmeans, requests_per_core,
};
use impress_core::config::{DefenseKind, ProtectionConfig, TrackerChoice};
use impress_sim::{Configuration, ExperimentRunner};

fn main() {
    let mut runner = ExperimentRunner::new().with_requests_per_core(requests_per_core());

    println!("Figure 13: Performance of defenses (alpha=1), normalized to No-RP");
    println!("configuration\tworkload\tnorm_performance");
    for tracker in [
        TrackerChoice::Graphene,
        TrackerChoice::Para,
        TrackerChoice::Mint,
    ] {
        let baseline = Configuration::protected(
            format!("{}+No-RP", tracker.label()),
            ProtectionConfig::paper_default(tracker, DefenseKind::NoRp),
        );
        for config in defense_configurations(tracker, 4_000) {
            if config.label.ends_with("No-RP") {
                continue;
            }
            let mut results = Vec::new();
            for workload in figure_workloads() {
                let r = runner.run_normalized(workload, &baseline, &config);
                println!(
                    "{}\t{workload}\t{:.4}",
                    config.label, r.normalized_performance
                );
                results.push(r);
            }
            print_class_gmeans(&config.label, &results);
            println!();
        }
    }
}
