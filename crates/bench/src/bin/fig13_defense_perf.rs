//! Figure 13: performance of Graphene, PARA and the in-DRAM tracker (MINT) with
//! ExPress, ImPress-N and ImPress-P at alpha = 1, normalized to the same tracker with
//! no Row-Press mitigation (No-RP).

use impress_bench::{
    defense_configurations, print_class_gmeans, requests_per_core, run_sweep_over_workloads,
};
use impress_core::config::{DefenseKind, ProtectionConfig, TrackerChoice};
use impress_sim::{Configuration, ExperimentRunner};

fn main() {
    let runner = ExperimentRunner::new().with_requests_per_core(requests_per_core());

    println!("Figure 13: Performance of defenses (alpha=1), normalized to No-RP");
    println!("configuration\tworkload\tnorm_performance");
    for tracker in [
        TrackerChoice::Graphene,
        TrackerChoice::Para,
        TrackerChoice::Mint,
    ] {
        let baseline = Configuration::protected(
            format!("{}+No-RP", tracker.label()),
            ProtectionConfig::paper_default(tracker, DefenseKind::NoRp),
        );
        let configs: Vec<Configuration> = defense_configurations(tracker, 4_000)
            .into_iter()
            .filter(|c| !c.label.ends_with("No-RP"))
            .collect();
        for (config, results) in configs
            .iter()
            .zip(run_sweep_over_workloads(&runner, &baseline, &configs))
        {
            for r in &results {
                println!(
                    "{}\t{}\t{:.4}",
                    config.label, r.workload, r.normalized_performance
                );
            }
            print_class_gmeans(&config.label, &results);
            println!();
        }
    }
}
