//! Figure 14: relative activations (demand + mitigative) of Graphene and PARA under
//! No-RP, ExPress and ImPress-P, normalized to the unprotected baseline.

use impress_bench::{figure_workloads, requests_per_core};
use impress_core::config::{DefenseKind, ProtectionConfig, TrackerChoice};
use impress_dram::DramTimings;
use impress_sim::{Configuration, ExperimentRunner};

fn main() {
    let runner = ExperimentRunner::new().with_requests_per_core(requests_per_core());
    let timings = DramTimings::ddr5();
    let workloads = figure_workloads();

    println!("Figure 14: Relative activations (normalized to the unprotected baseline)");
    println!("tracker\tdefense\tdemand_ACT\tmitigative_ACT\ttotal_ACT");

    for tracker in [TrackerChoice::Graphene, TrackerChoice::Para] {
        let defenses = [
            ("No-RP", DefenseKind::NoRp),
            ("ExPress", DefenseKind::express_paper_baseline(&timings)),
            ("ImPress-P", DefenseKind::impress_p_default()),
        ];

        // One raw sweep: the unprotected baseline plus the three defended configs.
        let mut configs = vec![Configuration::unprotected()];
        configs.extend(defenses.iter().map(|(label, defense)| {
            Configuration::protected(
                format!("{}+{label}", tracker.label()),
                ProtectionConfig::paper_default(tracker, *defense),
            )
        }));
        let sweep = runner.run_sweep_raw(&workloads, &configs);

        let base_demand: u64 = sweep[0].iter().map(|o| o.memory.banks.activations).sum();
        let base_demand = (base_demand as f64).max(1.0);

        for ((label, _), outputs) in defenses.iter().zip(&sweep[1..]) {
            let demand: u64 = outputs.iter().map(|o| o.memory.banks.activations).sum();
            let mitigative: u64 = outputs
                .iter()
                .map(|o| o.memory.banks.mitigative_activations)
                .sum();
            let demand = demand as f64 / base_demand;
            let mitigative = mitigative as f64 / base_demand;
            println!(
                "{}\t{label}\t{demand:.3}\t{mitigative:.3}\t{:.3}",
                tracker.label(),
                demand + mitigative
            );
        }
        println!();
    }
}
