//! Figure 14: relative activations (demand + mitigative) of Graphene and PARA under
//! No-RP, ExPress and ImPress-P, normalized to the unprotected baseline.

use impress_bench::{figure_workloads, requests_per_core};
use impress_core::config::{DefenseKind, ProtectionConfig, TrackerChoice};
use impress_dram::DramTimings;
use impress_sim::{Configuration, ExperimentRunner};

fn main() {
    let runner = ExperimentRunner::new().with_requests_per_core(requests_per_core());
    let timings = DramTimings::ddr5();
    let unprotected = Configuration::unprotected();

    println!("Figure 14: Relative activations (normalized to the unprotected baseline)");
    println!("tracker\tdefense\tdemand_ACT\tmitigative_ACT\ttotal_ACT");

    for tracker in [TrackerChoice::Graphene, TrackerChoice::Para] {
        // Baseline demand-activation count of the unprotected system.
        let mut base_demand = 0.0f64;
        let mut runs: Vec<(String, f64, f64)> = Vec::new();

        let defenses = [
            ("No-RP", DefenseKind::NoRp),
            ("ExPress", DefenseKind::express_paper_baseline(&timings)),
            ("ImPress-P", DefenseKind::impress_p_default()),
        ];

        // Measure the unprotected baseline once (averaged over the workload set).
        let mut unprotected_acts = 0u64;
        for workload in figure_workloads() {
            let out = runner.run_raw(workload, &unprotected);
            unprotected_acts += out.memory.banks.activations;
        }
        base_demand = base_demand.max(unprotected_acts as f64);

        for (label, defense) in defenses {
            let config = Configuration::protected(
                format!("{}+{label}", tracker.label()),
                ProtectionConfig::paper_default(tracker, defense),
            );
            let mut demand = 0u64;
            let mut mitigative = 0u64;
            for workload in figure_workloads() {
                let out = runner.run_raw(workload, &config);
                demand += out.memory.banks.activations;
                mitigative += out.memory.banks.mitigative_activations;
            }
            runs.push((
                label.to_string(),
                demand as f64 / base_demand,
                mitigative as f64 / base_demand,
            ));
        }

        for (label, demand, mitigative) in runs {
            println!(
                "{}\t{label}\t{demand:.3}\t{mitigative:.3}\t{:.3}",
                tracker.label(),
                demand + mitigative
            );
        }
        println!();
    }
}
