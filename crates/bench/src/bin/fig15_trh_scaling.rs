//! Figure 15: performance of Graphene and PARA with No-RP, ExPress and ImPress-P as
//! the Rowhammer threshold scales from 4K down to 1K, normalized to the unprotected
//! baseline.

use impress_bench::{figure_workloads, requests_per_core};
use impress_core::config::{DefenseKind, ProtectionConfig, TrackerChoice};
use impress_dram::DramTimings;
use impress_sim::{geometric_mean, Configuration, ExperimentRunner};

fn main() {
    let mut runner = ExperimentRunner::new().with_requests_per_core(requests_per_core());
    let timings = DramTimings::ddr5();
    let baseline = Configuration::unprotected();

    println!("Figure 15: Performance vs Rowhammer threshold (normalized to unprotected)");
    println!("tracker\tdefense\tTRH\tgmean_norm_performance");
    for tracker in [TrackerChoice::Graphene, TrackerChoice::Para] {
        let defenses = [
            ("No-RP", DefenseKind::NoRp),
            ("ExPress", DefenseKind::express_paper_baseline(&timings)),
            ("ImPress-P", DefenseKind::impress_p_default()),
        ];
        for (label, defense) in defenses {
            for trh in [4_000u64, 2_000, 1_000] {
                let protection = ProtectionConfig {
                    rowhammer_threshold: trh,
                    ..ProtectionConfig::paper_default(tracker, defense)
                };
                let config = Configuration::protected(
                    format!("{}+{label}@TRH={trh}", tracker.label()),
                    protection,
                );
                let values: Vec<f64> = figure_workloads()
                    .iter()
                    .map(|w| {
                        runner
                            .run_normalized(w, &baseline, &config)
                            .normalized_performance
                    })
                    .collect();
                println!(
                    "{}\t{label}\t{trh}\t{:.4}",
                    tracker.label(),
                    geometric_mean(&values)
                );
            }
        }
        println!();
    }
}
