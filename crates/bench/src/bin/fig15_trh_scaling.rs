//! Figure 15: performance of Graphene and PARA with No-RP, ExPress and ImPress-P as
//! the Rowhammer threshold scales from 4K down to 1K, normalized to the unprotected
//! baseline.

use impress_bench::{figure_workloads, requests_per_core};
use impress_core::config::{DefenseKind, ProtectionConfig, TrackerChoice};
use impress_dram::DramTimings;
use impress_sim::{geometric_mean, Configuration, ExperimentRunner};

fn main() {
    let runner = ExperimentRunner::new().with_requests_per_core(requests_per_core());
    let timings = DramTimings::ddr5();
    let baseline = Configuration::unprotected();
    let workloads = figure_workloads();

    // Every (tracker, defense, TRH) cell is normalized to the same unprotected
    // baseline, so the whole figure is one parallel sweep.
    let mut rows: Vec<(TrackerChoice, &str, u64)> = Vec::new();
    let mut configs: Vec<Configuration> = Vec::new();
    for tracker in [TrackerChoice::Graphene, TrackerChoice::Para] {
        let defenses = [
            ("No-RP", DefenseKind::NoRp),
            ("ExPress", DefenseKind::express_paper_baseline(&timings)),
            ("ImPress-P", DefenseKind::impress_p_default()),
        ];
        for (label, defense) in defenses {
            for trh in [4_000u64, 2_000, 1_000] {
                let protection = ProtectionConfig {
                    rowhammer_threshold: trh,
                    ..ProtectionConfig::paper_default(tracker, defense)
                };
                rows.push((tracker, label, trh));
                configs.push(Configuration::protected(
                    format!("{}+{label}@TRH={trh}", tracker.label()),
                    protection,
                ));
            }
        }
    }
    let sweep = runner.run_sweep(&workloads, &baseline, &configs);

    println!("Figure 15: Performance vs Rowhammer threshold (normalized to unprotected)");
    println!("tracker\tdefense\tTRH\tgmean_norm_performance");
    let mut last_tracker = None;
    for ((tracker, label, trh), results) in rows.into_iter().zip(sweep) {
        if last_tracker.is_some() && last_tracker != Some(tracker) {
            println!();
        }
        last_tracker = Some(tracker);
        let values: Vec<f64> = results.iter().map(|r| r.normalized_performance).collect();
        println!(
            "{}\t{label}\t{trh}\t{:.4}",
            tracker.label(),
            geometric_mean(&values)
        );
    }
    println!();
}
