//! Figure 16 (Appendix A): performance of Graphene, PARA and MINT under ExPress and
//! ImPress-N at alpha = 0.35 and alpha = 1, normalized to the same tracker with no
//! Row-Press mitigation.

use impress_bench::{print_class_gmeans, requests_per_core, run_sweep_over_workloads};
use impress_core::config::{DefenseKind, ProtectionConfig, TrackerChoice};
use impress_core::Alpha;
use impress_dram::DramTimings;
use impress_sim::{Configuration, ExperimentRunner};

fn main() {
    let runner = ExperimentRunner::new().with_requests_per_core(requests_per_core());
    let timings = DramTimings::ddr5();

    println!("Figure 16: ExPress vs ImPress-N at alpha = 0.35 and 1.0 (normalized to No-RP)");
    println!("configuration\tclass\tnorm_performance");
    for tracker in [
        TrackerChoice::Graphene,
        TrackerChoice::Para,
        TrackerChoice::Mint,
    ] {
        let baseline = Configuration::protected(
            format!("{}+No-RP", tracker.label()),
            ProtectionConfig::paper_default(tracker, DefenseKind::NoRp),
        );
        let mut configs: Vec<Configuration> = Vec::new();
        for alpha in [Alpha::ShortDuration, Alpha::Conservative] {
            let defenses = [
                (
                    format!("ExPress(α={})", alpha.value()),
                    DefenseKind::Express {
                        t_mro: timings.t_ras + timings.t_rc,
                        alpha,
                    },
                ),
                (
                    format!("ImPress-N(α={})", alpha.value()),
                    DefenseKind::ImpressN { alpha },
                ),
            ];
            for (label, defense) in defenses {
                let protection = ProtectionConfig::paper_default(tracker, defense);
                if protection.validate().is_err() {
                    continue; // ExPress is incompatible with in-DRAM trackers.
                }
                configs.push(Configuration::protected(
                    format!("{}+{label}", tracker.label()),
                    protection,
                ));
            }
        }
        for (config, results) in configs
            .iter()
            .zip(run_sweep_over_workloads(&runner, &baseline, &configs))
        {
            print_class_gmeans(&config.label, &results);
        }
        println!();
    }
}
