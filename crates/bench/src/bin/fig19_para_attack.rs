//! Figure 19: slowdown of ImPress-P with PARA under the parameterized combined
//! Rowhammer/Row-Press attack pattern, for TRH of 1K/2K/4K, as the Row-Press parameter
//! K is swept. Reports both the analytic model (Equation 10, with the Appendix-B
//! probabilities) and the simulated value (with the §III-B probabilities).

use impress_attacks::{para_attack_slowdown, AttackRunner, CombinedPattern};
use impress_core::config::{DefenseKind, ProtectionConfig, TrackerChoice};
use impress_dram::DramTimings;

fn main() {
    let timings = DramTimings::ddr5();
    println!("Figure 19: Slowdown of ImPress-P with PARA under the combined attack");
    println!("TRH\tK\tanalytic_slowdown_pct\tsimulated_slowdown_pct");
    for trh in [1_000u64, 2_000, 4_000] {
        for k in [0u64, 10, 20, 40, 60, 80, 100] {
            let analytic = para_attack_slowdown(trh, k) * 100.0;
            let config = ProtectionConfig {
                rowhammer_threshold: trh,
                ..ProtectionConfig::paper_default(
                    TrackerChoice::Para,
                    DefenseKind::impress_p_default(),
                )
            };
            let mut runner = AttackRunner::new(&config, &timings);
            let pattern = CombinedPattern::new(1_000, k, &timings);
            let rounds = 60_000 / (k + 1).max(1) + 5_000;
            let simulated = runner.run(&pattern, rounds).slowdown() * 100.0;
            println!("{trh}\t{k}\t{analytic:.3}\t{simulated:.3}");
        }
        println!();
    }
}
