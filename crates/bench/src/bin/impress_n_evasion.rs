//! §V-B (Equation 5): the worst-case unmitigated Row-Press of ImPress-N.
//!
//! Replays Rowhammer, maximal Row-Press and the Figure-10 evasion pattern against
//! Graphene under each defense and reports the maximum unmitigated charge a victim
//! accumulates (in RH units) and whether a device at TRH = 4K would flip.

use impress_attacks::{AttackPattern, EvasionPattern, RowPressPattern, RowhammerPattern};
use impress_core::config::{DefenseKind, ProtectionConfig, TrackerChoice};
use impress_core::security::SecurityHarness;
use impress_core::Alpha;
use impress_dram::DramTimings;

fn main() {
    let timings = DramTimings::ddr5();
    let alpha = 1.0; // ground-truth damage model (device-independent worst case)
    let trh = 4_000u64;
    let rounds = 40_000u64;

    let defenses = [
        ("No-RP", DefenseKind::NoRp),
        (
            "ImPress-N(α=1)",
            DefenseKind::ImpressN {
                alpha: Alpha::Conservative,
            },
        ),
        ("ImPress-P", DefenseKind::impress_p_default()),
    ];
    let patterns: Vec<Box<dyn AttackPattern>> = vec![
        Box::new(RowhammerPattern::new(1_000)),
        Box::new(RowPressPattern::new(1_000, timings.t_refi)),
        Box::new(RowPressPattern::maximal(1_000, &timings)),
        Box::new(EvasionPattern::new(1_000, 5_000, &timings)),
    ];

    println!("Equation 5 / Figure 10: maximum unmitigated charge under attack (TRH = {trh})");
    println!("defense\tpattern\tmax_charge_RH_units\taccesses\tmitigations\tbit_flip");
    for (label, defense) in defenses {
        for pattern in &patterns {
            let config = ProtectionConfig {
                rowhammer_threshold: trh,
                ..ProtectionConfig::paper_default(TrackerChoice::Graphene, defense)
            };
            let mut harness = SecurityHarness::new(&config, alpha, &timings);
            let report = harness.run(pattern.accesses(rounds), u64::MAX);
            println!(
                "{label}\t{}\t{:.0}\t{}\t{}\t{}",
                pattern.name(),
                report.max_unmitigated_charge,
                report.accesses,
                report.mitigations,
                report.bit_flipped()
            );
        }
        println!();
    }
    println!(
        "Equation 5: ImPress-N effective threshold = TRH/(1+α): {:.0} (α=1), {:.0} (α=0.35)",
        trh as f64 / 2.0,
        trh as f64 / 1.35
    );
}
