//! `perf_report`: reproducible wall-clock benchmark of both parallelism axes and
//! the tracker eviction engines.
//!
//! Measures and gates:
//!
//! 1. **Sweep-level parallelism** — times the canonical figure sweep (the unprotected
//!    baseline plus every Graphene/PARA defense configuration over the figure
//!    workload set) serially under both eviction engines (`scan` = the PR 4 path,
//!    `summary` = the PR 5 stream-summary) and in parallel under the summary
//!    engine; verifies parallel == serial bit-for-bit and gates the **sweep wall
//!    time**: the summary-engine serial sweep must not exceed the scan-engine
//!    serial sweep by more than [`SWEEP_WALL_TOLERANCE`] (i.e. full-sweep wall
//!    time no worse than PR 4, measured on the same host in the same run).
//! 2. **Channel-level (intra-run) parallelism and the adaptive horizon** — as in
//!    PR 4: fixed vs adaptive horizons, inline vs sharded, all bit-identical, and
//!    the adaptive issues-per-epoch batching gate on the baseline organization.
//! 3. **Tracker record throughput and the churn gate** — per-tracker records/sec
//!    on the rotating-aggressor *miss-heavy churn* stream (every record evicts)
//!    and a hot-set stream (every record matches), with Graphene/Mithril measured
//!    under both engines plus the threshold-straddling adversarial stream. Hard
//!    gate: the summary engine's churn throughput must be at least
//!    [`CHURN_GATE_RATIO`]× the scan engine's for both trackers.
//! 4. **Observational equivalence and the security bound** — a scan/summary
//!    [`SecurityHarness`] pair replays (a) a single-aggressor stream, whose
//!    reports must match bit for bit (no eviction ⇒ exact lockstep), and (b) the
//!    rotating + straddling churn patterns, where the summary engine's maximum
//!    unmitigated disturbance must not exceed the scan engine's. Both engines are
//!    exercised explicitly, independent of the `IMPRESS_EVICTION` default.
//! 5. **Trace ingestion and replay** — the PR 6 frontend under the PR 8 batched
//!    record kernels. Times the end-to-end open-loop ingest pipeline (frame
//!    decode → checksum → mapping → epoch loop → window telemetry) on an
//!    in-memory recording of a streaming workload and gates the unprotected
//!    scenario at [`TRACE_INGEST_GATE_MRPS`] and the Graphene+ImPress-P
//!    protected scenario at [`PROTECTED_INGEST_GATE_MRPS`] million records/s
//!    (both best-of-[`INGEST_SAMPLES`]); then records a synthetic stream and
//!    gates closed-loop **replay bit-identity** against the in-process run at
//!    1, 2 and 4 shard threads.
//! 6. **Record-batch determinism** — the PR 8 acceptance gate: open-loop ingest
//!    with the bank-batched tracker kernels must produce a byte-identical
//!    verdict JSON (and identical window telemetry and memory statistics) to
//!    the per-record path at every [`REPLAY_THREAD_COUNTS`] shard thread
//!    count.
//!
//! Usage:
//!
//! ```text
//! perf_report [--quick] [--out PATH]
//! ```
//!
//! * `--quick`: CI-sized run (shorter simulations, fewer tracker records).
//! * `--out PATH`: where to write the JSON report (default `BENCH_PR8.json`).
//!
//! Exit code is non-zero if any determinism, equivalence, security, batching,
//! churn-throughput, sweep-wall, trace-ingest, replay-identity or record-batch
//! gate fails, so CI uses this binary as a correctness gate as well as a
//! benchmark.

use std::time::Instant;

use impress_attacks::{AttackPattern, RotatingAggressorPattern, ThresholdStraddlingPattern};
use impress_bench::{
    defense_configurations, figure_workloads, named_configuration, record_workload_trace,
};
use impress_core::config::{DefenseKind, ProtectionConfig, TrackerChoice};
use impress_core::security::SecurityHarness;
use impress_core::EvictionEngine;
use impress_dram::organization::DramOrganization;
use impress_dram::DramTimings;
use impress_memctrl::ControllerConfig;
use impress_sim::{
    Configuration, ExperimentRunner, HorizonMode, NormalizedResult, RunOutput, System,
    SystemConfig, TraceRunner,
};
use impress_trackers::graphene::GrapheneConfig;
use impress_trackers::mithril::MithrilConfig;
use impress_trackers::{Eact, Graphene, Mint, Mithril, Para, Prac, RowTracker};
use impress_workloads::codec::{TraceReader, TraceWriter};
use impress_workloads::source::SliceSource;
use impress_workloads::WorkloadMix;

/// Requests per core for the canonical sweep (quick mode shrinks the simulations so
/// the whole report fits in a CI smoke job).
const FULL_REQUESTS_PER_CORE: u64 = 20_000;
const QUICK_REQUESTS_PER_CORE: u64 = 2_000;

/// Activation records per tracker for the throughput measurement. The quick
/// value is sized so the summary-engine churn sample still runs tens of
/// milliseconds (a 400k sample at ~75 M records/s lasts ~5 ms, thin enough for
/// runner noise to threaten the 20x gate; 2M keeps quick mode fast while
/// giving the gated ratio real integration time).
const FULL_TRACKER_RECORDS: u64 = 4_000_000;
const QUICK_TRACKER_RECORDS: u64 = 2_000_000;

/// Records for the *scan-engine* churn measurement (the ~100× slower side of the
/// gate; fewer records keep the report fast without hurting the ratio's
/// stability — the scan side still runs for hundreds of milliseconds).
const FULL_SCAN_CHURN_RECORDS: u64 = 1_000_000;
const QUICK_SCAN_CHURN_RECORDS: u64 = 100_000;

/// The PR 5 churn gate: summary-engine eviction throughput must beat the
/// scan-engine baseline (the PR 4 path, measured in the same run on the same
/// host) by at least this factor, for Graphene and Mithril.
const CHURN_GATE_RATIO: f64 = 20.0;

/// The PR 5 sweep-wall gate: the summary-engine serial sweep must take at most
/// this multiple of the scan-engine serial sweep. Full-mode runs land at or
/// below parity (the committed report measured 0.92 — the simulated workloads
/// rarely fill a table, and the summary's in-place recount fast path keeps the
/// match overhead small); the tolerance absorbs the wall-clock noise of the
/// CI-sized `--quick` sweeps, whose sub-second runs swing ±15% on shared
/// runners.
const SWEEP_WALL_TOLERANCE: f64 = 1.3;

/// Accesses replayed per security-harness A/B pattern.
const FULL_SECURITY_ACCESSES: u64 = 40_000;
const QUICK_SECURITY_ACCESSES: u64 = 10_000;

/// Workloads for the intra-run shard measurement (one latency-bound, two
/// bandwidth-bound — the shapes with the least and most work per epoch).
const SHARDED_WORKLOADS: [&str; 3] = ["mcf", "copy", "add_triad"];

/// Stream workloads on which the adaptive horizon must batch at least
/// [`ADAPTIVE_BATCH_GATE`]× the fixed window's issues per epoch (the PR 4
/// acceptance gate; deterministic for a given request count).
const ADAPTIVE_GATED_WORKLOADS: [&str; 2] = ["copy", "add_triad"];
const ADAPTIVE_BATCH_GATE: f64 = 4.0;

/// Channels in the intra-run measurement system (wider than the 2-channel baseline
/// so the shard axis has headroom).
const SHARDED_CHANNELS: u8 = 4;

/// The PR 6 ingest gate: end-to-end open-loop trace ingestion (decode → route →
/// epoch loop → telemetry) of the streaming-locality recording must sustain at
/// least this many million records per second under the unprotected
/// configuration. The PR 8 snapshot measured ~15 on a single shared-runner CPU
/// (the word-parallel frame checksum removed the codec's byte-serial multiply
/// chain from the critical path).
const TRACE_INGEST_GATE_MRPS: f64 = 10.0;

/// The PR 8 protected-path ingest gate: the same open-loop pipeline under
/// Graphene+ImPress-P — every record funneling through the defense engine —
/// must sustain at least this many million records per second. PR 6 measured
/// ~8.7 here and reported it as ungated data; the bank-batched record kernels
/// (headroom-deferred staging, run-length aggregation, one slot-index probe
/// per run) plus the checksum rewrite close the gap to within ~25% of
/// unprotected on the snapshot host.
const PROTECTED_INGEST_GATE_MRPS: f64 = 11.0;

/// Samples per ingest scenario; the gates take the best. Single-sample
/// throughput swings ±20% on shared 1-core runners, which is far more than the
/// margin either ingest gate carries.
const INGEST_SAMPLES: usize = 3;

/// Records in the ingest-throughput trace (total, across all 8 cores). Quick
/// mode keeps the sample large enough that the timed region runs tens of
/// milliseconds — thin single-digit-ms samples would make the 10 M records/s
/// gate a coin flip on shared runners.
const FULL_TRACE_RECORDS: u64 = 2_000_000;
const QUICK_TRACE_RECORDS: u64 = 800_000;

/// Requests per core for the replay-identity trace (a full protected system
/// simulation runs per thread count, so this stays small).
const FULL_REPLAY_REQUESTS_PER_CORE: u64 = 2_000;
const QUICK_REPLAY_REQUESTS_PER_CORE: u64 = 500;

/// Shard thread counts at which replay must be bit-identical to the in-process
/// run (the PR 6 acceptance gate).
const REPLAY_THREAD_COUNTS: [usize; 3] = [1, 2, 4];

/// Pins every protected configuration in the sweep to one eviction engine.
fn pin_engine(configurations: &[Configuration], engine: EvictionEngine) -> Vec<Configuration> {
    configurations
        .iter()
        .map(|c| {
            let mut c = c.clone();
            if let Some(p) = c.protection.take() {
                c.protection = Some(p.with_eviction_engine(engine));
            }
            c
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR8.json".to_string());

    let requests_per_core = if quick {
        QUICK_REQUESTS_PER_CORE
    } else {
        FULL_REQUESTS_PER_CORE
    };
    let tracker_records = if quick {
        QUICK_TRACKER_RECORDS
    } else {
        FULL_TRACKER_RECORDS
    };
    let scan_churn_records = if quick {
        QUICK_SCAN_CHURN_RECORDS
    } else {
        FULL_SCAN_CHURN_RECORDS
    };
    let security_accesses = if quick {
        QUICK_SECURITY_ACCESSES
    } else {
        FULL_SECURITY_ACCESSES
    };
    let trace_records = if quick {
        QUICK_TRACE_RECORDS
    } else {
        FULL_TRACE_RECORDS
    };
    let replay_requests_per_core = if quick {
        QUICK_REPLAY_REQUESTS_PER_CORE
    } else {
        FULL_REPLAY_REQUESTS_PER_CORE
    };
    let threads = impress_exec::thread_count();

    // ---- Axis 1: sweep-level parallelism + the eviction-engine wall gate -----
    let runner = ExperimentRunner::new().with_requests_per_core(requests_per_core);
    let baseline = Configuration::unprotected();
    let workloads = figure_workloads();
    let mut configurations = defense_configurations(TrackerChoice::Graphene, 4_000);
    configurations.extend(defense_configurations(TrackerChoice::Para, 4_000));
    let scan_configurations = pin_engine(&configurations, EvictionEngine::Scan);
    let summary_configurations = pin_engine(&configurations, EvictionEngine::Summary);

    let cells = configurations.len() * workloads.len();
    eprintln!(
        "perf_report: {} workloads x {} configurations ({cells} cells + {} baselines), \
         requests/core = {requests_per_core}, parallel workers = {threads}",
        workloads.len(),
        configurations.len(),
        workloads.len(),
    );

    eprintln!("perf_report: serial sweep, scan eviction engine (the PR 4 path)...");
    let scan_serial_start = Instant::now();
    let scan_serial = runner.run_sweep_with_threads(1, &workloads, &baseline, &scan_configurations);
    let scan_serial_ms = scan_serial_start.elapsed().as_secs_f64() * 1e3;

    eprintln!("perf_report: serial sweep, summary eviction engine...");
    let serial_start = Instant::now();
    let serial = runner.run_sweep_with_threads(1, &workloads, &baseline, &summary_configurations);
    let serial_ms = serial_start.elapsed().as_secs_f64() * 1e3;

    eprintln!("perf_report: parallel sweep ({threads} threads, summary engine)...");
    let parallel_start = Instant::now();
    let parallel =
        runner.run_sweep_with_threads(threads, &workloads, &baseline, &summary_configurations);
    let parallel_ms = parallel_start.elapsed().as_secs_f64() * 1e3;

    let sweep_identical = sweeps_identical(&serial, &parallel);
    let sweep_speedup = serial_ms / parallel_ms.max(1e-9);
    // Informational: whether victim tie-breaks ever surfaced in the figure sweep
    // (they rarely do — workload footprints seldom fill a 448-entry table).
    let engines_swept_identical = sweeps_identical(&scan_serial, &serial);
    let sweep_wall_ratio = serial_ms / scan_serial_ms.max(1e-9);
    let sweep_wall_ok = sweep_wall_ratio <= SWEEP_WALL_TOLERANCE;
    eprintln!(
        "perf_report: sweep wall: scan {scan_serial_ms:.0} ms vs summary {serial_ms:.0} ms \
         (ratio {sweep_wall_ratio:.3}, gate <= {SWEEP_WALL_TOLERANCE}); \
         results identical across engines: {engines_swept_identical}"
    );

    // ---- Axis 2: channel-level (intra-run) parallelism -----------------------
    let sharded_system = |workload: &str| {
        let protection = ProtectionConfig::paper_default(
            TrackerChoice::Graphene,
            DefenseKind::impress_p_default(),
        );
        let controller = ControllerConfig {
            organization: DramOrganization {
                channels: SHARDED_CHANNELS,
                ..DramOrganization::baseline()
            },
            ..ControllerConfig::baseline()
        }
        .with_protection(protection);
        let config = SystemConfig {
            requests_per_core,
            controller,
            ..SystemConfig::baseline()
        };
        let mix = WorkloadMix::by_name(workload, 0x5AA5).expect("known workload");
        System::new(config, mix)
    };

    eprintln!(
        "perf_report: intra-run shard axis ({SHARDED_CHANNELS} channels, \
         {} workloads, fixed vs adaptive horizons, 1 vs {threads} threads)...",
        SHARDED_WORKLOADS.len()
    );
    let mut sharded_identical = true;
    let mut batch_gate_ok = true;
    let mut inline_ms_total = 0.0f64;
    let mut sharded_ms_total = 0.0f64;
    let mut fixed_inline_ms_total = 0.0f64;
    let mut workload_lines = Vec::new();
    for workload in SHARDED_WORKLOADS {
        // Fixed-window loop (the PR 3 reference): inline and sharded.
        let fixed_inline_start = Instant::now();
        let fixed_inline = sharded_system(workload).run_with_horizon(1, HorizonMode::Fixed);
        let fixed_inline_ms = fixed_inline_start.elapsed().as_secs_f64() * 1e3;
        let fixed_sharded_start = Instant::now();
        let fixed_sharded = sharded_system(workload).run_with_horizon(threads, HorizonMode::Fixed);
        let fixed_sharded_ms = fixed_sharded_start.elapsed().as_secs_f64() * 1e3;

        // Adaptive (dependency-bounded) loop: inline and sharded.
        let inline_start = Instant::now();
        let inline = sharded_system(workload).run_with_horizon(1, HorizonMode::Adaptive);
        let inline_ms = inline_start.elapsed().as_secs_f64() * 1e3;
        let sharded_start = Instant::now();
        let sharded = sharded_system(workload).run_with_horizon(threads, HorizonMode::Adaptive);
        let sharded_ms = sharded_start.elapsed().as_secs_f64() * 1e3;

        // Adaptive == fixed == (by PR 3's pinned property) the serial loop, at
        // both thread counts.
        let identical = runs_identical(&inline, &sharded)
            && runs_identical(&fixed_inline, &fixed_sharded)
            && runs_identical(&fixed_inline, &inline);
        sharded_identical &= identical;

        let fixed_stats = fixed_inline.epoch_stats;
        let adaptive_stats = inline.epoch_stats;
        let batch_ratio =
            adaptive_stats.mean_issues_per_epoch() / fixed_stats.mean_issues_per_epoch().max(1e-9);

        inline_ms_total += inline_ms;
        sharded_ms_total += sharded_ms;
        fixed_inline_ms_total += fixed_inline_ms;
        eprintln!(
            "perf_report:   {workload}: fixed {fixed_inline_ms:.0}/{fixed_sharded_ms:.0} ms, \
             adaptive {inline_ms:.0}/{sharded_ms:.0} ms (inline/sharded); \
             epochs {} -> {}, issues/epoch {:.1} -> {:.1} (x{batch_ratio:.1}), \
             window {:.0} -> {:.0} cycles; identical: {identical}",
            fixed_stats.epochs,
            adaptive_stats.epochs,
            fixed_stats.mean_issues_per_epoch(),
            adaptive_stats.mean_issues_per_epoch(),
            fixed_stats.mean_window_cycles(),
            adaptive_stats.mean_window_cycles(),
        );
        workload_lines.push(format!(
            "      {{ \"workload\": \"{workload}\",\n\
             \x20       \"fixed\": {{ \"inline_ms\": {fixed_inline_ms:.1}, \
             \"sharded_ms\": {fixed_sharded_ms:.1}, \"epochs\": {}, \
             \"mean_issues_per_epoch\": {:.3}, \"mean_window_cycles\": {:.3} }},\n\
             \x20       \"adaptive\": {{ \"inline_ms\": {inline_ms:.1}, \
             \"sharded_ms\": {sharded_ms:.1}, \"epochs\": {}, \
             \"mean_issues_per_epoch\": {:.3}, \"mean_window_cycles\": {:.3} }},\n\
             \x20       \"issues_per_epoch_ratio\": {batch_ratio:.3},\n\
             \x20       \"identical\": {identical} }}",
            fixed_stats.epochs,
            fixed_stats.mean_issues_per_epoch(),
            fixed_stats.mean_window_cycles(),
            adaptive_stats.epochs,
            adaptive_stats.mean_issues_per_epoch(),
            adaptive_stats.mean_window_cycles(),
        ));
    }
    let shard_speedup = inline_ms_total / sharded_ms_total.max(1e-9);
    let horizon_speedup = fixed_inline_ms_total / inline_ms_total.max(1e-9);

    // ---- Adaptive batching gate (baseline Table II organization) -------------
    let baseline_system = |workload: &str| {
        let protection = ProtectionConfig::paper_default(
            TrackerChoice::Graphene,
            DefenseKind::impress_p_default(),
        );
        let config = SystemConfig {
            requests_per_core,
            controller: ControllerConfig::baseline().with_protection(protection),
            ..SystemConfig::baseline()
        };
        let mix = WorkloadMix::by_name(workload, 0x5AA5).expect("known workload");
        System::new(config, mix)
    };
    let mut gate_lines = Vec::new();
    for workload in ADAPTIVE_GATED_WORKLOADS {
        let fixed = baseline_system(workload)
            .run_with_horizon(1, HorizonMode::Fixed)
            .epoch_stats;
        let adaptive = baseline_system(workload)
            .run_with_horizon(1, HorizonMode::Adaptive)
            .epoch_stats;
        let ratio = adaptive.mean_issues_per_epoch() / fixed.mean_issues_per_epoch().max(1e-9);
        if ratio < ADAPTIVE_BATCH_GATE {
            batch_gate_ok = false;
        }
        eprintln!(
            "perf_report:   gate {workload} (baseline 2ch): issues/epoch {:.1} -> {:.1} \
             (x{ratio:.1}, need >= {ADAPTIVE_BATCH_GATE}), window {:.0} -> {:.0} cycles",
            fixed.mean_issues_per_epoch(),
            adaptive.mean_issues_per_epoch(),
            fixed.mean_window_cycles(),
            adaptive.mean_window_cycles(),
        );
        gate_lines.push(format!(
            "      {{ \"workload\": \"{workload}\", \
             \"fixed_issues_per_epoch\": {:.3}, \
             \"adaptive_issues_per_epoch\": {:.3}, \
             \"ratio\": {ratio:.3} }}",
            fixed.mean_issues_per_epoch(),
            adaptive.mean_issues_per_epoch(),
        ));
    }

    // ---- Axis 3: tracker record throughput + the churn gate ------------------
    // Miss-heavy churn comes from the rotating-aggressor adversarial pattern
    // (4K distinct rows — larger than any table, so after warm-up every record
    // evicts); the threshold-straddling pattern adds the tie-heavy adversarial
    // shape. The hot stream (128 rows) isolates the O(1) match path.
    let rotating = RotatingAggressorPattern::new(0, 4_096, 1);
    let straddling = ThresholdStraddlingPattern::new(0, 4, 160, 48);
    let eact = Eact::from_f64(1.5, 7);
    let rotating_period: Vec<u32> = (0..4_096u64).map(|i| rotating.round(i).row).collect();
    let straddling_rows: Vec<u32> = (0..tracker_records.max(scan_churn_records))
        .map(|i| straddling.round(i).row)
        .collect();

    /// Monomorphized per-engine measurement (no `dyn` dispatch in the timed
    /// loops — the loop body is the tracker's `record`, nothing else).
    struct EngineNumbers {
        churn_mrps: f64,
        churn_mitigations: u64,
        straddling_mrps: f64,
        hot_mrps: f64,
    }
    fn measure_engine<T: RowTracker>(
        tracker: &mut T,
        rotating_period: &[u32],
        straddling_rows: &[u32],
        eact: Eact,
        churn_records: u64,
        hot_records: u64,
    ) -> EngineNumbers {
        // The row sequences are precomputed (the rotating pattern as one exact
        // period, cycled; the straddling pattern materialized) so the timed
        // loops contain the tracker's `record` and nothing else — in particular
        // no 64-bit modulo, which at summary-engine speeds would be a third of
        // the per-record budget.
        let start = Instant::now();
        let mut churn_mitigations = 0u64;
        let mut j = 0usize;
        for i in 0..churn_records {
            let row = rotating_period[j];
            j += 1;
            if j == rotating_period.len() {
                j = 0;
            }
            if tracker.record(row, eact, i * 128).is_some() {
                churn_mitigations += 1;
            }
        }
        let churn_mrps = churn_records as f64 / start.elapsed().as_secs_f64() / 1e6;
        let start = Instant::now();
        for (i, &row) in straddling_rows[..churn_records as usize].iter().enumerate() {
            let _ = tracker.record(row, eact, i as u64 * 128);
        }
        let straddling_mrps = churn_records as f64 / start.elapsed().as_secs_f64() / 1e6;
        // Reset before the hot stream (as a refresh window would): a
        // churn-saturated spillover would otherwise make every hot match
        // mitigate and thrash the eviction path, measuring the wrong thing.
        tracker.on_refresh_window(u64::MAX - 1);
        let start = Instant::now();
        for i in 0..hot_records {
            let row = (i % 128) as u32;
            let _ = tracker.record(row, eact, i * 128);
        }
        let hot_mrps = hot_records as f64 / start.elapsed().as_secs_f64() / 1e6;
        EngineNumbers {
            churn_mrps,
            churn_mitigations,
            straddling_mrps,
            hot_mrps,
        }
    }

    let mut tracker_lines = Vec::new();
    let mut churn_lines = Vec::new();
    let mut churn_gate_ok = true;
    for tracker_kind in ["graphene", "mithril"] {
        let measure = |engine: EvictionEngine, churn_records: u64| -> EngineNumbers {
            match tracker_kind {
                "graphene" => measure_engine(
                    &mut Graphene::with_engine(GrapheneConfig::for_threshold(4_000), engine),
                    &rotating_period,
                    &straddling_rows,
                    eact,
                    churn_records,
                    tracker_records,
                ),
                _ => measure_engine(
                    &mut Mithril::with_engine(MithrilConfig::for_threshold(4_000), engine),
                    &rotating_period,
                    &straddling_rows,
                    eact,
                    churn_records,
                    tracker_records,
                ),
            }
        };
        // Best of two runs per engine (symmetric, so the gate ratio is not
        // biased either way): single-sample throughput on shared runners swings
        // ~10%, which matters when the ratio sits near the gate.
        let best = |engine: EvictionEngine, records: u64| -> EngineNumbers {
            let a = measure(engine, records);
            let b = measure(engine, records);
            EngineNumbers {
                churn_mrps: a.churn_mrps.max(b.churn_mrps),
                churn_mitigations: a.churn_mitigations,
                straddling_mrps: a.straddling_mrps.max(b.straddling_mrps),
                hot_mrps: a.hot_mrps.max(b.hot_mrps),
            }
        };
        let scan_numbers = best(EvictionEngine::Scan, scan_churn_records);
        let (scan_churn, scan_mits) = (scan_numbers.churn_mrps, scan_numbers.churn_mitigations);
        let scan_straddle = scan_numbers.straddling_mrps;
        let scan_hot = scan_numbers.hot_mrps;
        let summary_numbers = best(EvictionEngine::Summary, tracker_records);
        let (summary_churn, summary_mits) = (
            summary_numbers.churn_mrps,
            summary_numbers.churn_mitigations,
        );
        let summary_straddle = summary_numbers.straddling_mrps;
        let summary_hot = summary_numbers.hot_mrps;
        let ratio = summary_churn / scan_churn.max(1e-9);
        if ratio < CHURN_GATE_RATIO {
            churn_gate_ok = false;
        }
        eprintln!(
            "perf_report: {tracker_kind}: churn scan {scan_churn:.1} -> summary \
             {summary_churn:.1} M records/s (x{ratio:.0}, gate >= {CHURN_GATE_RATIO}); \
             straddling {scan_straddle:.1} -> {summary_straddle:.1}; \
             hot {scan_hot:.1} -> {summary_hot:.1} \
             (mitigations: scan {scan_mits}, summary {summary_mits})"
        );
        churn_lines.push(format!(
            "      {{ \"tracker\": \"{tracker_kind}\", \
             \"scan_churn_mrps\": {scan_churn:.3}, \
             \"summary_churn_mrps\": {summary_churn:.3}, \
             \"ratio\": {ratio:.3}, \
             \"scan_straddling_mrps\": {scan_straddle:.3}, \
             \"summary_straddling_mrps\": {summary_straddle:.3}, \
             \"scan_hot_mrps\": {scan_hot:.3}, \
             \"summary_hot_mrps\": {summary_hot:.3} }}"
        ));
        tracker_lines.push(format!(
            "    {{ \"tracker\": \"{tracker_kind}\", \"records\": {tracker_records}, \
             \"million_records_per_sec\": {summary_churn:.3}, \
             \"million_records_per_sec_hot\": {summary_hot:.3} }}"
        ));
    }
    // The remaining trackers have no table-eviction path; measure them as before.
    let numbers = [
        (
            "para",
            measure_engine(
                &mut Para::for_threshold(4_000),
                &rotating_period,
                &straddling_rows,
                eact,
                tracker_records,
                tracker_records,
            ),
        ),
        (
            "mint",
            measure_engine(
                &mut Mint::paper_default(),
                &rotating_period,
                &straddling_rows,
                eact,
                tracker_records,
                tracker_records,
            ),
        ),
        (
            "prac",
            measure_engine(
                &mut Prac::for_threshold(4_000, 7, 1 << 16),
                &rotating_period,
                &straddling_rows,
                eact,
                tracker_records,
                tracker_records,
            ),
        ),
    ];
    for (name, n) in &numbers {
        eprintln!(
            "perf_report: {name}: churn {:.1} M records/s, hot {:.1} M records/s",
            n.churn_mrps, n.hot_mrps
        );
        tracker_lines.push(format!(
            "    {{ \"tracker\": \"{name}\", \"records\": {tracker_records}, \
             \"million_records_per_sec\": {:.3}, \
             \"million_records_per_sec_hot\": {:.3} }}",
            n.churn_mrps, n.hot_mrps
        ));
    }

    // ---- Observational equivalence + security bound (both engines) -----------
    let timings = DramTimings::ddr5();
    let ab_configs = [
        (
            "graphene+impress-p",
            ProtectionConfig::paper_default(
                TrackerChoice::Graphene,
                DefenseKind::impress_p_default(),
            ),
        ),
        (
            "mithril+impress-p",
            ProtectionConfig::paper_default(
                TrackerChoice::Mithril,
                DefenseKind::impress_p_default(),
            ),
        ),
    ];
    let mut equivalence_ok = true;
    let mut security_lines = Vec::new();
    for (label, config) in &ab_configs {
        // (a) Exact lockstep on an eviction-free stream: reports bit-identical.
        let single: Vec<_> = (0..security_accesses)
            .map(|_| impress_core::AggressorAccess::hammer(1_000))
            .collect();
        let (mut scan_h, mut summary_h) =
            SecurityHarness::eviction_engine_pair(config, 1.0, &timings);
        let a = scan_h.run(single.iter().copied(), u64::MAX);
        let b = summary_h.run(single.iter().copied(), u64::MAX);
        let lockstep =
            a == b && a.max_unmitigated_charge.to_bits() == b.max_unmitigated_charge.to_bits();
        equivalence_ok &= lockstep;
        eprintln!(
            "perf_report: security {label}/single-aggressor: scan max {:.3}, summary max {:.3} \
             (reports bit-identical: {lockstep})",
            a.max_unmitigated_charge, b.max_unmitigated_charge
        );
        security_lines.push(format!(
            "      {{ \"config\": \"{label}\", \"pattern\": \"single-aggressor\", \
             \"scan_max_charge\": {:.6}, \"summary_max_charge\": {:.6}, \
             \"reports_identical\": {lockstep}, \"bound_ok\": {lockstep} }}",
            a.max_unmitigated_charge, b.max_unmitigated_charge
        ));

        // (b) Security bound on the adversarial churn patterns. Reports are
        // *not* expected to be identical here (tied-victim choices legitimately
        // diverge); only the disturbance bound is gated, with the per-stream
        // identity reported as data.
        for (pattern_name, accesses) in [
            (
                "rotating",
                RotatingAggressorPattern::new(2_000, 1_024, 6).accesses(security_accesses),
            ),
            (
                "straddling",
                ThresholdStraddlingPattern::new(10_000, 4, 160, 48).accesses(security_accesses),
            ),
        ] {
            let (mut scan_h, mut summary_h) =
                SecurityHarness::eviction_engine_pair(config, 1.0, &timings);
            let s = scan_h.run(accesses.iter().copied(), u64::MAX);
            let m = summary_h.run(accesses.iter().copied(), u64::MAX);
            let bound_ok = m.max_unmitigated_charge <= s.max_unmitigated_charge + 1e-9;
            let identical = s == m;
            equivalence_ok &= bound_ok;
            eprintln!(
                "perf_report: security {label}/{pattern_name}: scan max {:.3}, summary max {:.3} \
                 (bound ok: {bound_ok}; reports identical: {identical})",
                s.max_unmitigated_charge, m.max_unmitigated_charge
            );
            security_lines.push(format!(
                "      {{ \"config\": \"{label}\", \"pattern\": \"{pattern_name}\", \
                 \"scan_max_charge\": {:.6}, \"summary_max_charge\": {:.6}, \
                 \"reports_identical\": {identical}, \"bound_ok\": {bound_ok} }}",
                s.max_unmitigated_charge, m.max_unmitigated_charge
            ));
        }
    }

    // ---- Axis 4 (PR 6): trace ingestion throughput + replay identity ---------
    // One in-memory recording of the streaming-locality workload, ingested
    // open-loop under both the gated (unprotected) and the protected scenario.
    // The bytes live in memory so the timed region measures the pipeline
    // (codec + checksum + mapping + shards + telemetry), not disk I/O.
    let trace_seed = 0x1A7E_2024u64;
    let ingest_workload = "copy";
    let (ingest_meta, ingest_records) =
        record_workload_trace(ingest_workload, trace_seed, trace_records / 8)
            .expect("known workload");
    let trace_bytes = {
        let mut w = TraceWriter::new(Vec::new(), &ingest_meta).expect("in-memory trace");
        for &r in &ingest_records {
            w.push(r).expect("in-memory trace");
        }
        w.finish().expect("in-memory trace")
    };
    let ingest_runner = TraceRunner::new();
    let mut ingest_gate_ok = true;
    let mut ingest_lines = Vec::new();
    for (scenario, gate_mrps) in [
        ("unprotected", TRACE_INGEST_GATE_MRPS),
        ("graphene-impress-p", PROTECTED_INGEST_GATE_MRPS),
    ] {
        let configuration = named_configuration(scenario).expect("named configuration");
        // Best of INGEST_SAMPLES, like the churn gate: single-sample throughput
        // swings ±20% on shared runners, which matters near the gate.
        let mut mrps = 0.0f64;
        let mut verdict = "";
        for _ in 0..INGEST_SAMPLES {
            let reader = TraceReader::new(SliceSource::new(&trace_bytes)).expect("trace header");
            let start = Instant::now();
            let report = ingest_runner
                .ingest(reader, &configuration)
                .expect("trace ingest");
            let secs = start.elapsed().as_secs_f64();
            assert_eq!(report.records, ingest_records.len() as u64);
            mrps = mrps.max(report.records as f64 / secs.max(1e-9) / 1e6);
            verdict = report.verdict.verdict;
        }
        let passed = mrps >= gate_mrps;
        ingest_gate_ok &= passed;
        eprintln!(
            "perf_report: trace ingest {ingest_workload}/{scenario}: {mrps:.1} M records/s \
             over {} records (verdict {verdict}; gate >= {gate_mrps})",
            ingest_records.len(),
        );
        ingest_lines.push(format!(
            "      {{ \"scenario\": \"{scenario}\", \"gate_mrps\": {gate_mrps}, \
             \"million_records_per_sec\": {mrps:.3}, \"passed\": {passed}, \
             \"verdict\": \"{verdict}\" }}"
        ));
    }

    // ---- Axis 5 (PR 8): record-batch determinism ------------------------------
    // The bank-batched tracker kernels must be observationally invisible: the
    // same trace ingested with batching forced off and on yields a
    // byte-identical verdict JSON and identical window telemetry and memory
    // statistics, at every gated shard thread count.
    let batch_configuration = named_configuration("graphene-impress-p").expect("named");
    let mut record_batch_ok = true;
    let mut record_batch_lines = Vec::new();
    for shard_threads in REPLAY_THREAD_COUNTS {
        let run = |batched: bool| {
            let reader = TraceReader::new(SliceSource::new(&trace_bytes)).expect("trace header");
            TraceRunner::new()
                .with_shard_threads(shard_threads)
                .with_record_batching(batched)
                .ingest(reader, &batch_configuration)
                .expect("trace ingest")
        };
        let per_record = run(false);
        let batched = run(true);
        let identical = batched.verdict.to_json() == per_record.verdict.to_json()
            && batched.windows == per_record.windows
            && batched.memory == per_record.memory;
        record_batch_ok &= identical;
        eprintln!(
            "perf_report: record-batch determinism @ {shard_threads} shard threads: \
             batched == per-record: {identical}"
        );
        record_batch_lines.push(format!(
            "      {{ \"shard_threads\": {shard_threads}, \"identical\": {identical} }}"
        ));
    }

    // Closed-loop replay: record the synthetic stream, then the replay must be
    // bit-identical to the in-process run at every gated shard thread count.
    let replay_workload = "mcf";
    let replay_configuration = named_configuration("graphene-impress-p").expect("named");
    let (replay_meta, replay_records) =
        record_workload_trace(replay_workload, trace_seed, replay_requests_per_core)
            .expect("known workload");
    let reference = {
        let mix = WorkloadMix::by_name(replay_workload, trace_seed).expect("known workload");
        let config = SystemConfig {
            requests_per_core: replay_requests_per_core,
            ..SystemConfig::baseline()
        }
        .with_controller(replay_configuration.controller_config());
        System::new(config, mix).run()
    };
    let mut replay_gate_ok = true;
    let mut replay_lines = Vec::new();
    for shard_threads in REPLAY_THREAD_COUNTS {
        let output = TraceRunner::new().with_shard_threads(shard_threads).replay(
            &replay_meta,
            &replay_records,
            &replay_configuration,
        );
        let identical = runs_identical(&reference, &output);
        replay_gate_ok &= identical;
        eprintln!(
            "perf_report: trace replay {replay_workload} @ {shard_threads} shard threads: \
             {} cycles (bit-identical to in-process run: {identical})",
            output.performance.elapsed_cycles
        );
        replay_lines.push(format!(
            "      {{ \"shard_threads\": {shard_threads}, \"identical\": {identical} }}"
        ));
    }

    let json = format!(
        "{{\n\
         \x20 \"schema_version\": 6,\n\
         \x20 \"pr\": 8,\n\
         \x20 \"binary\": \"perf_report\",\n\
         \x20 \"mode\": \"{mode}\",\n\
         \x20 \"host\": {{ \"available_cpus\": {cpus}, \"threads_used\": {threads} }},\n\
         \x20 \"sweep\": {{\n\
         \x20   \"workloads\": {n_workloads},\n\
         \x20   \"configurations\": {n_configs},\n\
         \x20   \"cells\": {cells},\n\
         \x20   \"requests_per_core\": {requests_per_core},\n\
         \x20   \"serial_scan_ms\": {scan_serial_ms:.1},\n\
         \x20   \"serial_ms\": {serial_ms:.1},\n\
         \x20   \"parallel_ms\": {parallel_ms:.1},\n\
         \x20   \"speedup\": {sweep_speedup:.3},\n\
         \x20   \"parallel_identical_to_serial\": {sweep_identical},\n\
         \x20   \"scan_vs_summary_results_identical\": {engines_swept_identical},\n\
         \x20   \"wall_gate\": {{ \"ratio\": {sweep_wall_ratio:.3}, \
         \"max_ratio\": {SWEEP_WALL_TOLERANCE}, \"passed\": {sweep_wall_ok} }}\n\
         \x20 }},\n\
         \x20 \"sharded_run\": {{\n\
         \x20   \"channels\": {channels},\n\
         \x20   \"requests_per_core\": {requests_per_core},\n\
         \x20   \"shard_threads\": {threads},\n\
         \x20   \"fixed_inline_ms\": {fixed_inline_ms_total:.1},\n\
         \x20   \"inline_ms\": {inline_ms_total:.1},\n\
         \x20   \"sharded_ms\": {sharded_ms_total:.1},\n\
         \x20   \"speedup\": {shard_speedup:.3},\n\
         \x20   \"adaptive_vs_fixed_inline_speedup\": {horizon_speedup:.3},\n\
         \x20   \"adaptive_batch_gate\": {{ \"organization\": \"baseline-2ch\", \
         \"min_ratio\": {ADAPTIVE_BATCH_GATE}, \"passed\": {batch_gate_ok}, \
         \"workloads\": [\n{gate_json}\n    ] }},\n\
         \x20   \"workloads\": [\n{workload_json}\n    ],\n\
         \x20   \"sharded_identical_to_serial\": {sharded_identical}\n\
         \x20 }},\n\
         \x20 \"eviction\": {{\n\
         \x20   \"default_engine\": \"{default_engine}\",\n\
         \x20   \"scan_churn_records\": {scan_churn_records},\n\
         \x20   \"churn_gate\": {{ \"min_ratio\": {CHURN_GATE_RATIO}, \
         \"passed\": {churn_gate_ok}, \"trackers\": [\n{churn_json}\n    ] }},\n\
         \x20   \"equivalence_gate\": {{ \"passed\": {equivalence_ok}, \
         \"security_accesses\": {security_accesses}, \"checks\": [\n{security_json}\n    ] }}\n\
         \x20 }},\n\
         \x20 \"trace\": {{\n\
         \x20   \"workload\": \"{ingest_workload}\",\n\
         \x20   \"records\": {n_trace_records},\n\
         \x20   \"ingest_gate\": {{ \"samples\": {INGEST_SAMPLES}, \
         \"passed\": {ingest_gate_ok}, \"scenarios\": [\n{ingest_json}\n    ] }},\n\
         \x20   \"record_batch_gate\": {{ \"scenario\": \"graphene-impress-p\", \
         \"passed\": {record_batch_ok}, \"runs\": [\n{record_batch_json}\n    ] }},\n\
         \x20   \"replay_gate\": {{ \"workload\": \"{replay_workload}\", \
         \"requests_per_core\": {replay_requests_per_core}, \
         \"passed\": {replay_gate_ok}, \"runs\": [\n{replay_json}\n    ] }}\n\
         \x20 }},\n\
         \x20 \"tracker_throughput\": [\n{tracker_json}\n  ]\n\
         }}\n",
        mode = if quick { "quick" } else { "full" },
        cpus = std::thread::available_parallelism().map_or(1, usize::from),
        n_workloads = workloads.len(),
        n_configs = configurations.len(),
        channels = SHARDED_CHANNELS,
        default_engine = EvictionEngine::from_env().label(),
        gate_json = gate_lines.join(",\n"),
        workload_json = workload_lines.join(",\n"),
        churn_json = churn_lines.join(",\n"),
        security_json = security_lines.join(",\n"),
        n_trace_records = ingest_records.len(),
        ingest_json = ingest_lines.join(",\n"),
        record_batch_json = record_batch_lines.join(",\n"),
        replay_json = replay_lines.join(",\n"),
        tracker_json = tracker_lines.join(",\n"),
    );
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));

    println!(
        "sweep: scan serial {scan_serial_ms:.0} ms, summary serial {serial_ms:.0} ms \
         (wall ratio {sweep_wall_ratio:.2}, gate {sweep_wall_ok}), parallel {parallel_ms:.0} ms \
         on {threads} threads (x{sweep_speedup:.2}, identical: {sweep_identical}); \
         sharded run: adaptive inline {inline_ms_total:.0} ms (x{horizon_speedup:.2} vs fixed), \
         sharded {sharded_ms_total:.0} ms (x{shard_speedup:.2}, identical: {sharded_identical}, \
         batch gate: {batch_gate_ok}); churn gate: {churn_gate_ok}; \
         equivalence gate: {equivalence_ok}; trace ingest gate: {ingest_gate_ok}; \
         record-batch gate: {record_batch_ok}; \
         replay identity gate: {replay_gate_ok} -> {out_path}"
    );
    let mut failed = false;
    if !sweep_identical {
        eprintln!("perf_report: ERROR: parallel sweep diverged from serial sweep");
        failed = true;
    }
    if !sharded_identical {
        eprintln!("perf_report: ERROR: adaptive/fixed/sharded runs diverged from the inline run");
        failed = true;
    }
    if !batch_gate_ok {
        eprintln!(
            "perf_report: ERROR: adaptive horizon batched fewer than \
             {ADAPTIVE_BATCH_GATE}x the fixed-window issues per epoch on a gated \
             stream workload"
        );
        failed = true;
    }
    if !churn_gate_ok {
        eprintln!(
            "perf_report: ERROR: summary-engine churn throughput below \
             {CHURN_GATE_RATIO}x the scan engine's on a counter tracker"
        );
        failed = true;
    }
    if !sweep_wall_ok {
        eprintln!(
            "perf_report: ERROR: summary-engine serial sweep exceeded \
             {SWEEP_WALL_TOLERANCE}x the scan-engine serial sweep wall time"
        );
        failed = true;
    }
    if !equivalence_ok {
        eprintln!(
            "perf_report: ERROR: an observational-equivalence or security-bound \
             check failed across the eviction engines"
        );
        failed = true;
    }
    if !ingest_gate_ok {
        eprintln!(
            "perf_report: ERROR: trace ingest throughput below its gate on some \
             scenario (unprotected >= {TRACE_INGEST_GATE_MRPS}, protected >= \
             {PROTECTED_INGEST_GATE_MRPS} M records/s)"
        );
        failed = true;
    }
    if !record_batch_ok {
        eprintln!(
            "perf_report: ERROR: batched ingest diverged from the per-record \
             path at some shard thread count"
        );
        failed = true;
    }
    if !replay_gate_ok {
        eprintln!(
            "perf_report: ERROR: trace replay diverged from the in-process run \
             at some shard thread count"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}

/// Bit-for-bit comparison of two run outputs.
fn runs_identical(a: &RunOutput, b: &RunOutput) -> bool {
    a.performance.elapsed_cycles == b.performance.elapsed_cycles
        && a.performance
            .per_core_ipc
            .iter()
            .zip(&b.performance.per_core_ipc)
            .all(|(x, y)| x.to_bits() == y.to_bits())
        && a.memory == b.memory
        && a.energy.total_nj().to_bits() == b.energy.total_nj().to_bits()
}

/// Bit-for-bit comparison of two sweep result sets.
fn sweeps_identical(a: &[Vec<NormalizedResult>], b: &[Vec<NormalizedResult>]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    a.iter().zip(b).all(|(ca, cb)| {
        ca.len() == cb.len()
            && ca.iter().zip(cb).all(|(ra, rb)| {
                ra.workload == rb.workload
                    && ra.configuration == rb.configuration
                    && ra.normalized_performance.to_bits() == rb.normalized_performance.to_bits()
                    && ra.output.performance.elapsed_cycles == rb.output.performance.elapsed_cycles
                    && ra.output.memory == rb.output.memory
            })
    })
}
