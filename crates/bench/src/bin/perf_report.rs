//! `perf_report`: reproducible wall-clock benchmark of the sweep engine.
//!
//! Times the canonical figure sweep (the unprotected baseline plus every
//! Graphene/PARA defense configuration over the figure workload set) twice — once on
//! 1 thread (the serial path) and once on `IMPRESS_THREADS` workers — verifies the
//! two result sets are bit-for-bit identical, measures per-tracker activation
//! throughput, and emits machine-readable JSON so the repository's performance
//! trajectory can be tracked PR over PR.
//!
//! Usage:
//!
//! ```text
//! perf_report [--quick] [--out PATH]
//! ```
//!
//! * `--quick`: CI-sized run (shorter simulations, fewer tracker records).
//! * `--out PATH`: where to write the JSON report (default `BENCH_PR2.json`).
//!
//! Exit code is non-zero if the parallel sweep does not reproduce the serial sweep
//! exactly, so CI can use this binary as a determinism gate as well as a benchmark.

use std::time::Instant;

use impress_bench::{defense_configurations, figure_workloads};
use impress_core::config::TrackerChoice;
use impress_sim::{Configuration, ExperimentRunner, NormalizedResult};
use impress_trackers::{Eact, Graphene, Mint, Mithril, Para, Prac, RowTracker};

/// Requests per core for the canonical sweep (quick mode shrinks the simulations so
/// the whole report fits in a CI smoke job).
const FULL_REQUESTS_PER_CORE: u64 = 20_000;
const QUICK_REQUESTS_PER_CORE: u64 = 2_000;

/// Activation records per tracker for the throughput measurement.
const FULL_TRACKER_RECORDS: u64 = 4_000_000;
const QUICK_TRACKER_RECORDS: u64 = 400_000;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR2.json".to_string());

    let requests_per_core = if quick {
        QUICK_REQUESTS_PER_CORE
    } else {
        FULL_REQUESTS_PER_CORE
    };
    let tracker_records = if quick {
        FULL_TRACKER_RECORDS.min(QUICK_TRACKER_RECORDS)
    } else {
        FULL_TRACKER_RECORDS
    };

    // The canonical sweep: every valid Graphene and PARA defense configuration at the
    // paper's TRH = 4K, normalized to the unprotected baseline, over the figure
    // workload set.
    let runner = ExperimentRunner::new().with_requests_per_core(requests_per_core);
    let baseline = Configuration::unprotected();
    let workloads = figure_workloads();
    let mut configurations = defense_configurations(TrackerChoice::Graphene, 4_000);
    configurations.extend(defense_configurations(TrackerChoice::Para, 4_000));

    let threads = impress_exec::thread_count();
    let cells = configurations.len() * workloads.len();
    eprintln!(
        "perf_report: {} workloads x {} configurations ({cells} cells + {} baselines), \
         requests/core = {requests_per_core}, parallel workers = {threads}",
        workloads.len(),
        configurations.len(),
        workloads.len(),
    );

    eprintln!("perf_report: serial sweep (1 thread)...");
    let serial_start = Instant::now();
    let serial = runner.run_sweep_with_threads(1, &workloads, &baseline, &configurations);
    let serial_ms = serial_start.elapsed().as_secs_f64() * 1e3;

    eprintln!("perf_report: parallel sweep ({threads} threads)...");
    let parallel_start = Instant::now();
    let parallel = runner.run_sweep_with_threads(threads, &workloads, &baseline, &configurations);
    let parallel_ms = parallel_start.elapsed().as_secs_f64() * 1e3;

    let identical = sweeps_identical(&serial, &parallel);
    let speedup = serial_ms / parallel_ms.max(1e-9);

    // Per-tracker activation throughput: a synthetic record stream over a hot set of
    // 4K rows (the same shape as the criterion micro-benchmarks).
    let mut trackers: Vec<(&str, Box<dyn RowTracker>)> = vec![
        ("graphene", Box::new(Graphene::for_threshold(4_000))),
        ("para", Box::new(Para::for_threshold(4_000))),
        ("mithril", Box::new(Mithril::for_threshold(4_000))),
        ("mint", Box::new(Mint::paper_default())),
        ("prac", Box::new(Prac::for_threshold(4_000, 7, 1 << 16))),
    ];
    let mut tracker_lines = Vec::new();
    for (name, tracker) in &mut trackers {
        let eact = Eact::from_f64(1.5, 7);
        let start = Instant::now();
        let mut mitigations = 0u64;
        for i in 0..tracker_records {
            let row = (i % 4096) as u32;
            if tracker.record(row, eact, i * 128).is_some() {
                mitigations += 1;
            }
        }
        let secs = start.elapsed().as_secs_f64();
        let mrps = tracker_records as f64 / secs / 1e6;
        eprintln!("perf_report: {name}: {mrps:.1} M records/s ({mitigations} mitigations)");
        tracker_lines.push(format!(
            "    {{ \"tracker\": \"{name}\", \"records\": {tracker_records}, \
             \"million_records_per_sec\": {mrps:.3} }}"
        ));
    }

    let json = format!(
        "{{\n\
         \x20 \"schema_version\": 1,\n\
         \x20 \"pr\": 2,\n\
         \x20 \"binary\": \"perf_report\",\n\
         \x20 \"mode\": \"{mode}\",\n\
         \x20 \"host\": {{ \"available_cpus\": {cpus}, \"threads_used\": {threads} }},\n\
         \x20 \"sweep\": {{\n\
         \x20   \"workloads\": {n_workloads},\n\
         \x20   \"configurations\": {n_configs},\n\
         \x20   \"cells\": {cells},\n\
         \x20   \"requests_per_core\": {requests_per_core},\n\
         \x20   \"serial_ms\": {serial_ms:.1},\n\
         \x20   \"parallel_ms\": {parallel_ms:.1},\n\
         \x20   \"speedup\": {speedup:.3},\n\
         \x20   \"parallel_identical_to_serial\": {identical}\n\
         \x20 }},\n\
         \x20 \"tracker_throughput\": [\n{tracker_json}\n  ]\n\
         }}\n",
        mode = if quick { "quick" } else { "full" },
        cpus = std::thread::available_parallelism().map_or(1, usize::from),
        n_workloads = workloads.len(),
        n_configs = configurations.len(),
        tracker_json = tracker_lines.join(",\n"),
    );
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));

    println!(
        "serial {serial_ms:.0} ms, parallel {parallel_ms:.0} ms on {threads} threads \
         (speedup {speedup:.2}x), identical: {identical} -> {out_path}"
    );
    if !identical {
        eprintln!("perf_report: ERROR: parallel sweep diverged from serial sweep");
        std::process::exit(1);
    }
}

/// Bit-for-bit comparison of two sweep result sets.
fn sweeps_identical(a: &[Vec<NormalizedResult>], b: &[Vec<NormalizedResult>]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    a.iter().zip(b).all(|(ca, cb)| {
        ca.len() == cb.len()
            && ca.iter().zip(cb).all(|(ra, rb)| {
                ra.workload == rb.workload
                    && ra.configuration == rb.configuration
                    && ra.normalized_performance.to_bits() == rb.normalized_performance.to_bits()
                    && ra.output.performance.elapsed_cycles == rb.output.performance.elapsed_cycles
                    && ra.output.memory == rb.output.memory
            })
    })
}
