//! `perf_report`: reproducible wall-clock benchmark of both parallelism axes.
//!
//! Measures and gates:
//!
//! 1. **Sweep-level parallelism** — times the canonical figure sweep (the unprotected
//!    baseline plus every Graphene/PARA defense configuration over the figure
//!    workload set) once on 1 thread and once on `IMPRESS_THREADS` workers, and
//!    verifies the result sets are bit-for-bit identical.
//! 2. **Channel-level (intra-run) parallelism and the adaptive horizon** — times
//!    individual epoch-phased `System` runs of a four-channel protected system
//!    under both horizon modes (fixed minimum-latency windows vs
//!    dependency-bounded adaptive windows), inline and on `IMPRESS_THREADS`
//!    workers; verifies all four outputs are bit-for-bit identical; records each
//!    mode's epoch statistics (`epochs`, `mean_issues_per_epoch`,
//!    `mean_window_cycles`); and gates the adaptive batching win (≥ 4× the
//!    fixed-window issues-per-epoch on the stream workloads).
//! 3. **Tracker record throughput** — per-tracker activation records/second on a
//!    synthetic hot-set stream (exercising the O(1) row→slot match path).
//!
//! Usage:
//!
//! ```text
//! perf_report [--quick] [--out PATH]
//! ```
//!
//! * `--quick`: CI-sized run (shorter simulations, fewer tracker records).
//! * `--out PATH`: where to write the JSON report (default `BENCH_PR4.json`).
//!
//! Exit code is non-zero if any determinism check or the adaptive-batching gate
//! fails, so CI uses this binary as a correctness gate as well as a benchmark.

use std::time::Instant;

use impress_bench::{defense_configurations, figure_workloads};
use impress_core::config::{DefenseKind, ProtectionConfig, TrackerChoice};
use impress_dram::organization::DramOrganization;
use impress_memctrl::ControllerConfig;
use impress_sim::{
    Configuration, ExperimentRunner, HorizonMode, NormalizedResult, RunOutput, System, SystemConfig,
};
use impress_trackers::{Eact, Graphene, Mint, Mithril, Para, Prac, RowTracker};
use impress_workloads::WorkloadMix;

/// Requests per core for the canonical sweep (quick mode shrinks the simulations so
/// the whole report fits in a CI smoke job).
const FULL_REQUESTS_PER_CORE: u64 = 20_000;
const QUICK_REQUESTS_PER_CORE: u64 = 2_000;

/// Activation records per tracker for the throughput measurement.
const FULL_TRACKER_RECORDS: u64 = 4_000_000;
const QUICK_TRACKER_RECORDS: u64 = 400_000;

/// Workloads for the intra-run shard measurement (one latency-bound, two
/// bandwidth-bound — the shapes with the least and most work per epoch).
const SHARDED_WORKLOADS: [&str; 3] = ["mcf", "copy", "add_triad"];

/// Stream workloads on which the adaptive horizon must batch at least
/// [`ADAPTIVE_BATCH_GATE`]× the fixed window's issues per epoch (the PR 4
/// acceptance gate; deterministic for a given request count).
///
/// The gate is measured on the paper's baseline organization (Table II,
/// 2 channels): a provably-exact issue window is fundamentally bounded by the
/// residual life of the channel bus backlog (≈ the mean access latency), so the
/// batching ratio scales with per-channel queue depth — ~5-7× on the 2-channel
/// baseline vs ~1.8× on the 4-channel shard-axis system, whose per-workload
/// epoch statistics are reported alongside.
const ADAPTIVE_GATED_WORKLOADS: [&str; 2] = ["copy", "add_triad"];
const ADAPTIVE_BATCH_GATE: f64 = 4.0;

/// Channels in the intra-run measurement system (wider than the 2-channel baseline
/// so the shard axis has headroom).
const SHARDED_CHANNELS: u8 = 4;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR4.json".to_string());

    let requests_per_core = if quick {
        QUICK_REQUESTS_PER_CORE
    } else {
        FULL_REQUESTS_PER_CORE
    };
    let tracker_records = if quick {
        FULL_TRACKER_RECORDS.min(QUICK_TRACKER_RECORDS)
    } else {
        FULL_TRACKER_RECORDS
    };
    let threads = impress_exec::thread_count();

    // ---- Axis 1: sweep-level parallelism -------------------------------------
    // The canonical sweep: every valid Graphene and PARA defense configuration at the
    // paper's TRH = 4K, normalized to the unprotected baseline, over the figure
    // workload set.
    let runner = ExperimentRunner::new().with_requests_per_core(requests_per_core);
    let baseline = Configuration::unprotected();
    let workloads = figure_workloads();
    let mut configurations = defense_configurations(TrackerChoice::Graphene, 4_000);
    configurations.extend(defense_configurations(TrackerChoice::Para, 4_000));

    let cells = configurations.len() * workloads.len();
    eprintln!(
        "perf_report: {} workloads x {} configurations ({cells} cells + {} baselines), \
         requests/core = {requests_per_core}, parallel workers = {threads}",
        workloads.len(),
        configurations.len(),
        workloads.len(),
    );

    eprintln!("perf_report: serial sweep (1 thread)...");
    let serial_start = Instant::now();
    let serial = runner.run_sweep_with_threads(1, &workloads, &baseline, &configurations);
    let serial_ms = serial_start.elapsed().as_secs_f64() * 1e3;

    eprintln!("perf_report: parallel sweep ({threads} threads)...");
    let parallel_start = Instant::now();
    let parallel = runner.run_sweep_with_threads(threads, &workloads, &baseline, &configurations);
    let parallel_ms = parallel_start.elapsed().as_secs_f64() * 1e3;

    let sweep_identical = sweeps_identical(&serial, &parallel);
    let sweep_speedup = serial_ms / parallel_ms.max(1e-9);

    // ---- Axis 2: channel-level (intra-run) parallelism -----------------------
    let sharded_system = |workload: &str| {
        let protection = ProtectionConfig::paper_default(
            TrackerChoice::Graphene,
            DefenseKind::impress_p_default(),
        );
        let controller = ControllerConfig {
            organization: DramOrganization {
                channels: SHARDED_CHANNELS,
                ..DramOrganization::baseline()
            },
            ..ControllerConfig::baseline()
        }
        .with_protection(protection);
        let config = SystemConfig {
            requests_per_core,
            controller,
            ..SystemConfig::baseline()
        };
        let mix = WorkloadMix::by_name(workload, 0x5AA5).expect("known workload");
        System::new(config, mix)
    };

    eprintln!(
        "perf_report: intra-run shard axis ({SHARDED_CHANNELS} channels, \
         {} workloads, fixed vs adaptive horizons, 1 vs {threads} threads)...",
        SHARDED_WORKLOADS.len()
    );
    let mut sharded_identical = true;
    let mut batch_gate_ok = true;
    let mut inline_ms_total = 0.0f64;
    let mut sharded_ms_total = 0.0f64;
    let mut fixed_inline_ms_total = 0.0f64;
    let mut workload_lines = Vec::new();
    for workload in SHARDED_WORKLOADS {
        // Fixed-window loop (the PR 3 reference): inline and sharded.
        let fixed_inline_start = Instant::now();
        let fixed_inline = sharded_system(workload).run_with_horizon(1, HorizonMode::Fixed);
        let fixed_inline_ms = fixed_inline_start.elapsed().as_secs_f64() * 1e3;
        let fixed_sharded_start = Instant::now();
        let fixed_sharded = sharded_system(workload).run_with_horizon(threads, HorizonMode::Fixed);
        let fixed_sharded_ms = fixed_sharded_start.elapsed().as_secs_f64() * 1e3;

        // Adaptive (dependency-bounded) loop: inline and sharded.
        let inline_start = Instant::now();
        let inline = sharded_system(workload).run_with_horizon(1, HorizonMode::Adaptive);
        let inline_ms = inline_start.elapsed().as_secs_f64() * 1e3;
        let sharded_start = Instant::now();
        let sharded = sharded_system(workload).run_with_horizon(threads, HorizonMode::Adaptive);
        let sharded_ms = sharded_start.elapsed().as_secs_f64() * 1e3;

        // Adaptive == fixed == (by PR 3's pinned property) the serial loop, at
        // both thread counts.
        let identical = runs_identical(&inline, &sharded)
            && runs_identical(&fixed_inline, &fixed_sharded)
            && runs_identical(&fixed_inline, &inline);
        sharded_identical &= identical;

        let fixed_stats = fixed_inline.epoch_stats;
        let adaptive_stats = inline.epoch_stats;
        let batch_ratio =
            adaptive_stats.mean_issues_per_epoch() / fixed_stats.mean_issues_per_epoch().max(1e-9);

        inline_ms_total += inline_ms;
        sharded_ms_total += sharded_ms;
        fixed_inline_ms_total += fixed_inline_ms;
        eprintln!(
            "perf_report:   {workload}: fixed {fixed_inline_ms:.0}/{fixed_sharded_ms:.0} ms, \
             adaptive {inline_ms:.0}/{sharded_ms:.0} ms (inline/sharded); \
             epochs {} -> {}, issues/epoch {:.1} -> {:.1} (x{batch_ratio:.1}), \
             window {:.0} -> {:.0} cycles; identical: {identical}",
            fixed_stats.epochs,
            adaptive_stats.epochs,
            fixed_stats.mean_issues_per_epoch(),
            adaptive_stats.mean_issues_per_epoch(),
            fixed_stats.mean_window_cycles(),
            adaptive_stats.mean_window_cycles(),
        );
        workload_lines.push(format!(
            "      {{ \"workload\": \"{workload}\",\n\
             \x20       \"fixed\": {{ \"inline_ms\": {fixed_inline_ms:.1}, \
             \"sharded_ms\": {fixed_sharded_ms:.1}, \"epochs\": {}, \
             \"mean_issues_per_epoch\": {:.3}, \"mean_window_cycles\": {:.3} }},\n\
             \x20       \"adaptive\": {{ \"inline_ms\": {inline_ms:.1}, \
             \"sharded_ms\": {sharded_ms:.1}, \"epochs\": {}, \
             \"mean_issues_per_epoch\": {:.3}, \"mean_window_cycles\": {:.3} }},\n\
             \x20       \"issues_per_epoch_ratio\": {batch_ratio:.3},\n\
             \x20       \"identical\": {identical} }}",
            fixed_stats.epochs,
            fixed_stats.mean_issues_per_epoch(),
            fixed_stats.mean_window_cycles(),
            adaptive_stats.epochs,
            adaptive_stats.mean_issues_per_epoch(),
            adaptive_stats.mean_window_cycles(),
        ));
    }
    let shard_speedup = inline_ms_total / sharded_ms_total.max(1e-9);
    let horizon_speedup = fixed_inline_ms_total / inline_ms_total.max(1e-9);

    // ---- Adaptive batching gate (baseline Table II organization) -------------
    // Deterministic for a given request count, so this is a hard gate like the
    // determinism checks: the dependency-bounded horizon must amortize at least
    // ADAPTIVE_BATCH_GATE x more issues per barrier than the fixed window on the
    // gated stream workloads.
    let baseline_system = |workload: &str| {
        let protection = ProtectionConfig::paper_default(
            TrackerChoice::Graphene,
            DefenseKind::impress_p_default(),
        );
        let config = SystemConfig {
            requests_per_core,
            controller: ControllerConfig::baseline().with_protection(protection),
            ..SystemConfig::baseline()
        };
        let mix = WorkloadMix::by_name(workload, 0x5AA5).expect("known workload");
        System::new(config, mix)
    };
    let mut gate_lines = Vec::new();
    for workload in ADAPTIVE_GATED_WORKLOADS {
        let fixed = baseline_system(workload)
            .run_with_horizon(1, HorizonMode::Fixed)
            .epoch_stats;
        let adaptive = baseline_system(workload)
            .run_with_horizon(1, HorizonMode::Adaptive)
            .epoch_stats;
        let ratio = adaptive.mean_issues_per_epoch() / fixed.mean_issues_per_epoch().max(1e-9);
        if ratio < ADAPTIVE_BATCH_GATE {
            batch_gate_ok = false;
        }
        eprintln!(
            "perf_report:   gate {workload} (baseline 2ch): issues/epoch {:.1} -> {:.1} \
             (x{ratio:.1}, need >= {ADAPTIVE_BATCH_GATE}), window {:.0} -> {:.0} cycles",
            fixed.mean_issues_per_epoch(),
            adaptive.mean_issues_per_epoch(),
            fixed.mean_window_cycles(),
            adaptive.mean_window_cycles(),
        );
        gate_lines.push(format!(
            "      {{ \"workload\": \"{workload}\", \
             \"fixed_issues_per_epoch\": {:.3}, \
             \"adaptive_issues_per_epoch\": {:.3}, \
             \"ratio\": {ratio:.3} }}",
            fixed.mean_issues_per_epoch(),
            adaptive.mean_issues_per_epoch(),
        ));
    }

    // ---- Axis 3: tracker record throughput -----------------------------------
    // A synthetic record stream over a hot set of 4K rows (the same shape as the
    // criterion micro-benchmarks); with the row→slot index the match path is O(1).
    let mut trackers: Vec<(&str, Box<dyn RowTracker>)> = vec![
        ("graphene", Box::new(Graphene::for_threshold(4_000))),
        ("para", Box::new(Para::for_threshold(4_000))),
        ("mithril", Box::new(Mithril::for_threshold(4_000))),
        ("mint", Box::new(Mint::paper_default())),
        ("prac", Box::new(Prac::for_threshold(4_000, 7, 1 << 16))),
    ];
    let mut tracker_lines = Vec::new();
    for (name, tracker) in &mut trackers {
        let eact = Eact::from_f64(1.5, 7);
        // Churn stream: 4K distinct rows, larger than any table — every Graphene/
        // Mithril record is a miss, so this measures the eviction path.
        let start = Instant::now();
        let mut churn_mitigations = 0u64;
        for i in 0..tracker_records {
            let row = (i % 4096) as u32;
            if tracker.record(row, eact, i * 128).is_some() {
                churn_mitigations += 1;
            }
        }
        let churn_mrps = tracker_records as f64 / start.elapsed().as_secs_f64() / 1e6;
        // Hot stream: 128 rows, smaller than every table — after warm-up each record
        // is a match, so this measures the O(1) row→slot index path. Reset the
        // tracker first (as a refresh window would): a churn-saturated spillover
        // counter would otherwise make every hot match mitigate, roll back to a
        // replaceable count and be evicted — thrashing the eviction path and
        // measuring the wrong thing.
        tracker.on_refresh_window(tracker_records * 128);
        let start = Instant::now();
        let mut hot_mitigations = 0u64;
        for i in 0..tracker_records {
            let row = (i % 128) as u32;
            if tracker.record(row, eact, i * 128).is_some() {
                hot_mitigations += 1;
            }
        }
        let hot_mrps = tracker_records as f64 / start.elapsed().as_secs_f64() / 1e6;
        eprintln!(
            "perf_report: {name}: churn {churn_mrps:.1} M records/s \
             ({churn_mitigations} mitigations), hot {hot_mrps:.1} M records/s \
             ({hot_mitigations} mitigations)"
        );
        tracker_lines.push(format!(
            "    {{ \"tracker\": \"{name}\", \"records\": {tracker_records}, \
             \"million_records_per_sec\": {churn_mrps:.3}, \
             \"million_records_per_sec_hot\": {hot_mrps:.3} }}"
        ));
    }

    let json = format!(
        "{{\n\
         \x20 \"schema_version\": 3,\n\
         \x20 \"pr\": 4,\n\
         \x20 \"binary\": \"perf_report\",\n\
         \x20 \"mode\": \"{mode}\",\n\
         \x20 \"host\": {{ \"available_cpus\": {cpus}, \"threads_used\": {threads} }},\n\
         \x20 \"sweep\": {{\n\
         \x20   \"workloads\": {n_workloads},\n\
         \x20   \"configurations\": {n_configs},\n\
         \x20   \"cells\": {cells},\n\
         \x20   \"requests_per_core\": {requests_per_core},\n\
         \x20   \"serial_ms\": {serial_ms:.1},\n\
         \x20   \"parallel_ms\": {parallel_ms:.1},\n\
         \x20   \"speedup\": {sweep_speedup:.3},\n\
         \x20   \"parallel_identical_to_serial\": {sweep_identical}\n\
         \x20 }},\n\
         \x20 \"sharded_run\": {{\n\
         \x20   \"channels\": {channels},\n\
         \x20   \"requests_per_core\": {requests_per_core},\n\
         \x20   \"shard_threads\": {threads},\n\
         \x20   \"fixed_inline_ms\": {fixed_inline_ms_total:.1},\n\
         \x20   \"inline_ms\": {inline_ms_total:.1},\n\
         \x20   \"sharded_ms\": {sharded_ms_total:.1},\n\
         \x20   \"speedup\": {shard_speedup:.3},\n\
         \x20   \"adaptive_vs_fixed_inline_speedup\": {horizon_speedup:.3},\n\
         \x20   \"adaptive_batch_gate\": {{ \"organization\": \"baseline-2ch\", \
         \"min_ratio\": {ADAPTIVE_BATCH_GATE}, \"passed\": {batch_gate_ok}, \
         \"workloads\": [\n{gate_json}\n    ] }},\n\
         \x20   \"workloads\": [\n{workload_json}\n    ],\n\
         \x20   \"sharded_identical_to_serial\": {sharded_identical}\n\
         \x20 }},\n\
         \x20 \"tracker_throughput\": [\n{tracker_json}\n  ]\n\
         }}\n",
        mode = if quick { "quick" } else { "full" },
        cpus = std::thread::available_parallelism().map_or(1, usize::from),
        n_workloads = workloads.len(),
        n_configs = configurations.len(),
        channels = SHARDED_CHANNELS,
        gate_json = gate_lines.join(",\n"),
        workload_json = workload_lines.join(",\n"),
        tracker_json = tracker_lines.join(",\n"),
    );
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));

    println!(
        "sweep: serial {serial_ms:.0} ms, parallel {parallel_ms:.0} ms on {threads} threads \
         (x{sweep_speedup:.2}, identical: {sweep_identical}); \
         sharded run: fixed inline {fixed_inline_ms_total:.0} ms, adaptive inline \
         {inline_ms_total:.0} ms (x{horizon_speedup:.2}), adaptive sharded \
         {sharded_ms_total:.0} ms (x{shard_speedup:.2}, identical: {sharded_identical}, \
         batch gate: {batch_gate_ok}) -> {out_path}"
    );
    if !sweep_identical {
        eprintln!("perf_report: ERROR: parallel sweep diverged from serial sweep");
        std::process::exit(1);
    }
    if !sharded_identical {
        eprintln!("perf_report: ERROR: adaptive/fixed/sharded runs diverged from the inline run");
        std::process::exit(1);
    }
    if !batch_gate_ok {
        eprintln!(
            "perf_report: ERROR: adaptive horizon batched fewer than \
             {ADAPTIVE_BATCH_GATE}x the fixed-window issues per epoch on a gated \
             stream workload"
        );
        std::process::exit(1);
    }
}

/// Bit-for-bit comparison of two run outputs.
fn runs_identical(a: &RunOutput, b: &RunOutput) -> bool {
    a.performance.elapsed_cycles == b.performance.elapsed_cycles
        && a.performance
            .per_core_ipc
            .iter()
            .zip(&b.performance.per_core_ipc)
            .all(|(x, y)| x.to_bits() == y.to_bits())
        && a.memory == b.memory
        && a.energy.total_nj().to_bits() == b.energy.total_nj().to_bits()
}

/// Bit-for-bit comparison of two sweep result sets.
fn sweeps_identical(a: &[Vec<NormalizedResult>], b: &[Vec<NormalizedResult>]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    a.iter().zip(b).all(|(ca, cb)| {
        ca.len() == cb.len()
            && ca.iter().zip(cb).all(|(ra, rb)| {
                ra.workload == rb.workload
                    && ra.configuration == rb.configuration
                    && ra.normalized_performance.to_bits() == rb.normalized_performance.to_bits()
                    && ra.output.performance.elapsed_cycles == rb.output.performance.elapsed_cycles
                    && ra.output.memory == rb.output.memory
            })
    })
}
