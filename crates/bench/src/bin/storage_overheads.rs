//! Storage overheads (§VI-C, Appendix A): tracking entries and SRAM per channel for
//! each tracker under No-RP, ExPress, ImPress-N and ImPress-P.

use impress_core::config::{DefenseKind, TrackerChoice};
use impress_core::storage::{relative_storage, storage_for};
use impress_core::Alpha;
use impress_dram::DramTimings;

fn main() {
    let timings = DramTimings::ddr5();
    let defenses = [
        ("No-RP", DefenseKind::NoRp),
        (
            "ExPress(α=1)",
            DefenseKind::express_paper_baseline(&timings),
        ),
        (
            "ImPress-N(α=0.35)",
            DefenseKind::ImpressN {
                alpha: Alpha::ShortDuration,
            },
        ),
        (
            "ImPress-N(α=1)",
            DefenseKind::ImpressN {
                alpha: Alpha::Conservative,
            },
        ),
        ("ImPress-P", DefenseKind::impress_p_default()),
    ];

    println!("Storage overheads at TRH = 4K (64 banks per channel)");
    println!("tracker\tdefense\teffective_T*\tentries_per_bank\tbits_per_entry\tKiB_per_channel\trelative_to_No-RP");
    for tracker in [
        TrackerChoice::Graphene,
        TrackerChoice::Para,
        TrackerChoice::Mithril,
        TrackerChoice::Mint,
        TrackerChoice::Prac,
    ] {
        for (label, defense) in defenses {
            if matches!(defense, DefenseKind::Express { .. }) && tracker.is_in_dram() {
                continue;
            }
            let s = storage_for(tracker, defense);
            let rel = relative_storage(tracker, defense);
            println!(
                "{}\t{label}\t{}\t{}\t{}\t{:.1}\t{rel:.2}x",
                tracker.label(),
                s.effective_threshold,
                s.estimate.entries_per_bank,
                s.estimate.bits_per_entry,
                s.kib_per_channel
            );
        }
        println!();
    }
}
