//! Table I: DRAM timing parameters used throughout the evaluation.

use impress_dram::timing::cycles_to_ns;
use impress_dram::DramTimings;

fn main() {
    let t = DramTimings::ddr5();
    println!("Table I: DRAM Timings (DDR5)");
    println!("parameter\tdescription\tvalue_ns\tvalue_cycles");
    let rows = [
        ("tACT", "Time for performing ACT", t.t_act),
        ("tPRE", "Time to precharge an open row", t.t_pre),
        ("tRAS", "Minimum time a row must be kept open", t.t_ras),
        ("tRC", "Time between successive ACTs to a bank", t.t_rc),
        ("tREFW", "Refresh period", t.t_refw),
        ("tREFI", "Time between successive REF commands", t.t_refi),
        ("tRFC", "Execution time for REF command", t.t_rfc),
        ("tRFM", "Execution time for RFM command", t.t_rfm),
        (
            "tONMax",
            "Max time a row can be kept open per DDR5",
            t.t_on_max,
        ),
    ];
    for (name, description, cycles) in rows {
        println!(
            "{name}\t{description}\t{}\t{}",
            cycles_to_ns(cycles),
            cycles
        );
    }
}
