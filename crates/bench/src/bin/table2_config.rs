//! Table II: baseline system configuration.

use impress_sim::{LlcConfig, SystemConfig};

fn main() {
    let sys = SystemConfig::baseline();
    let llc = LlcConfig::baseline();
    let org = &sys.controller.organization;
    println!("Table II: Baseline System Configuration");
    println!("component\tvalue");
    println!("Out-of-Order Cores\t{} cores", sys.cores);
    println!("ROB size\t{}", sys.rob_size);
    println!(
        "Last Level Cache (Shared)\t{} MB, {}-way, {} B lines, SRRIP",
        llc.capacity_bytes >> 20,
        llc.ways,
        llc.line_bytes
    );
    println!("Memory size\t{} GB -- DDR5", org.capacity_bytes() >> 30);
    println!("Channels\t{}", org.channels);
    println!(
        "Banks x Ranks x Bank-Groups\t{}x{}x{}",
        org.banks_per_group, org.ranks, org.bank_groups
    );
    println!("Memory-Mapping\tMinimalist Open Page (8 lines)");
    println!("RFM threshold (RFMTH)\t80");
    println!("Rowhammer threshold (TRH)\t4K");
}
