//! Table III: qualitative comparison of ExPress, ImPress-N and ImPress-P.

use impress_core::DefenseProperties;
use impress_dram::DramTimings;

fn main() {
    let timings = DramTimings::ddr5();
    let columns = DefenseProperties::table3(&timings);
    println!("Table III: Comparison of ExPress, ImPress-N, and ImPress-P");
    let names: Vec<&str> = columns.iter().map(|c| c.name).collect();
    println!("property\t{}", names.join("\t"));

    let yes_no = |b: bool| if b { "Yes" } else { "No" };
    let row = |label: &str, values: Vec<String>| println!("{label}\t{}", values.join("\t"));

    row(
        "Puts Limit on tON",
        columns
            .iter()
            .map(|c| yes_no(c.limits_t_on).to_string())
            .collect(),
    );
    row(
        "Affects Threshold (T*)",
        columns
            .iter()
            .map(|c| {
                if (c.threshold_factor - 1.0).abs() < 1e-9 {
                    "No (1x)".to_string()
                } else {
                    format!("Yes ({:.1}x)", 1.0 / c.threshold_factor)
                }
            })
            .collect(),
    );
    row(
        "Performance Overheads",
        columns.iter().map(|c| c.performance.to_string()).collect(),
    );
    row(
        "More Tracking Entries",
        columns
            .iter()
            .map(|c| yes_no(c.more_entries).to_string())
            .collect(),
    );
    row(
        "Wider Tracking Entries",
        columns
            .iter()
            .map(|c| yes_no(c.wider_entries).to_string())
            .collect(),
    );
    row(
        "In-DRAM Trackers",
        columns
            .iter()
            .map(|c| {
                if c.in_dram_compatible {
                    "Compatible".to_string()
                } else {
                    "Incompatible".to_string()
                }
            })
            .collect(),
    );
    row(
        "Device Dependency",
        columns
            .iter()
            .map(|c| yes_no(c.device_dependent).to_string())
            .collect(),
    );
}
