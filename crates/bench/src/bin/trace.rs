//! `trace`: the impress-trace command-line frontend — record, replay and
//! benchmark physical-address trace streams.
//!
//! Subcommands:
//!
//! ```text
//! trace record --workload W [--seed N] [--requests-per-core N] --out FILE
//!              [--config NAME] [--verdict FILE]
//!     Records a synthetic workload as a framed binary trace. With --verdict,
//!     also runs the same workload in-process (closed loop) under --config and
//!     writes that run's verdict report — the reference a replay must match.
//!
//! trace replay --in FILE [--config NAME] [--shard-threads N] [--verdict FILE]
//!     Closed-loop replay: rebuilds the recording run's core models from the
//!     trace header and reruns the stream through the full system model.
//!     Bit-identical to the in-process run at any shard thread count.
//!
//! trace throughput (--in FILE | --workload W) [--config NAME]
//!                  [--records N] [--shard-threads N] [--window N]
//!     Open-loop ingestion benchmark: decode → route → epoch loop → telemetry,
//!     reporting million records/s end to end.
//!
//! trace ingest --in FILE [--config NAME] [--resync] [--follow]
//!              [--shard-threads N] [--window N] [--idle-timeout MS]
//!              [--backoff-initial MS] [--backoff-max MS] [--verdict FILE]
//!              [--expect FILE]
//!     Open-loop ingestion with a verdict report. --resync survives stream
//!     corruption (degraded verdict + fault ledger) instead of aborting.
//!     --follow streams a growing file/FIFO under the configurable
//!     backoff/idle policy. --expect byte-compares the verdict against a
//!     reference file and exits with EXIT_VERDICT_MISMATCH on any difference.
//!
//! trace corrupt --in FILE --out FILE [--seed N]
//!     Applies the seeded deterministic fault plan (bit flips, truncation,
//!     frame duplication/reorder) to a recorded trace — the reproducible
//!     adversary for resync/daemon testing.
//!
//! trace daemon (--in FILE | --listen tcp://ADDR|unix://PATH) [--config NAME]
//!              [--resync] [--follow] [--resume] [--checkpoint FILE]
//!              [--checkpoint-every N] [--window N] [--max-lag N]
//!              [--shard-threads N] [--idle-timeout MS] [--backoff-initial MS]
//!              [--backoff-max MS] [--max-clients N] [--stage-budget BYTES]
//!              [--stall-limit MS] [--quarantine-after N] [--verdict FILE]
//!              [--verdict-dir DIR] [--expect FILE]
//!     Supervised ingestion: periodic durable checkpoints, bounded-lag
//!     telemetry shedding, contained shard panics (quarantine). --follow rides
//!     out a slow/stalling source with capped exponential backoff; --resume
//!     restarts after a crash by deterministic prefix re-execution validated
//!     against the last checkpoint. --listen runs the multi-tenant supervisor:
//!     every admitted producer gets its own isolated ingest pipeline (own
//!     simulator state, fault ledger, checkpoint, verdict) under shared
//!     admission (--max-clients) and staging-memory (--stage-budget) budgets;
//!     slow-loris sessions are stall-evicted after --stall-limit, and a tenant
//!     accumulating --quarantine-after protocol violations or stall evictions
//!     is banned for the daemon's lifetime — without disturbing other tenants.
//!     Sessions resume from the daemon's acked offset across reconnects, and
//!     SIGTERM drains every live session gracefully. The first tenant's
//!     verdict goes to --verdict (or stdout); --verdict-dir writes every
//!     tenant's verdict as DIR/tenant-<id>.json. Listen-mode defaults follow
//!     the library's `DaemonOptions::listening()` (bounded lag of 64 windows,
//!     30 s idle). All verdicts use the extended (v2) schema.
//!
//! trace send --in FILE --to tcp://ADDR|unix://PATH [--no-retry] [--follow]
//!            [--chunk-bytes N] [--ack-window N] [--max-sessions N]
//!            [--heartbeat MS] [--idle-limit MS] [--idle-timeout MS]
//!            [--backoff-initial MS] [--backoff-max MS] [--fault-seed N]
//!            [--hostile-seed N]
//!     Streams a recorded trace (or FIFO with --follow) to a listening daemon,
//!     reconnecting with capped backoff and resuming from the daemon's acked
//!     offset unless --no-retry. --heartbeat sets the keepalive cadence and
//!     --idle-limit (synonym --idle-timeout) the per-session reply budget.
//!     --fault-seed injects a seeded connection-fault plan (disconnects,
//!     stalls, short writes, duplicate tails) for hostile-network testing.
//!     --hostile-seed instead runs a deliberately protocol-violating producer
//!     that expects to be quarantined (exits 0 only if the daemon bans it).
//! ```
//!
//! `--config` takes a named configuration (`unprotected`, `graphene-impress-p`,
//! `para-impress-p`, `mithril-impress-p`; default `unprotected`). Verdict
//! reports are canonical JSON derived only from deterministic simulation state,
//! so `diff` works across runs, hosts and thread counts. `--in -` reads the
//! trace from stdin.
//!
//! # Exit codes
//!
//! Failure classes get distinct exit codes so CI and operators can branch on
//! them: [`EXIT_OK`] (0), [`EXIT_USAGE`] (2), [`EXIT_IO`] (3, the medium
//! failed), [`EXIT_CORRUPT`] (4, the stream content is damaged — strict-mode
//! decode or mapping errors, or a refused resume), [`EXIT_VERDICT_MISMATCH`]
//! (5, `--expect` diff failed), [`EXIT_PANIC`] (6, internal panic),
//! [`EXIT_TRANSPORT`] (7, `trace send` could not deliver the stream — the
//! connection failed after retries, or the daemon quarantined this producer)
//! and [`EXIT_RESUME_UNSUPPORTED`] (8, the daemon asked a forward-only input
//! — stdin or a FIFO — to rewind to an offset it already consumed; delivery
//! stopped rather than silently skipping or duplicating bytes).

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use impress_bench::{named_configuration, record_workload_trace, CONFIGURATION_NAMES};
use impress_sim::daemon::{supervise, write_checkpoint_durable, Checkpoint, DaemonOptions};
use impress_sim::{
    serve_tenants, Configuration, MultiReport, System, SystemConfig, TraceRunner, VerdictReport,
};
use impress_workloads::codec::{DecodeMode, TraceMeta, TraceReader, TraceRecord, TraceWriter};
use impress_workloads::faults::{
    apply_plan, run_hostile_producer, ConnFaultPlan, ConnFaultState, FaultPlan, FaultTransport,
    FrameMap,
};
use impress_workloads::source::{FollowPolicy, FollowSource, ReadSource, SliceSource};
use impress_workloads::transport::{
    send_stream, send_to, Endpoint, FileInput, Listener, ReaderInput, SendInput, SendOptions,
    SendOutcome, TenantLimits, TenantServer, WireLink,
};
use impress_workloads::WorkloadMix;

/// Default seed, matching `ExperimentRunner`'s.
const DEFAULT_SEED: u64 = 0x1A7E_2024;

/// Success.
pub const EXIT_OK: i32 = 0;
/// Bad command line.
pub const EXIT_USAGE: i32 = 2;
/// The I/O medium failed (open/read/write errors other than corruption).
pub const EXIT_IO: i32 = 3;
/// The stream content is damaged: strict-mode decode errors, implausible
/// structures, mapping failures, refused resumes.
pub const EXIT_CORRUPT: i32 = 4;
/// `--expect` comparison failed: the produced verdict differs from the
/// reference.
pub const EXIT_VERDICT_MISMATCH: i32 = 5;
/// An internal panic was caught at the top level.
pub const EXIT_PANIC: i32 = 6;
/// `trace send` could not deliver the stream: the connection failed after
/// retries (or immediately with `--no-retry`), or the daemon quarantined
/// this producer.
pub const EXIT_TRANSPORT: i32 = 7;
/// `trace send` was asked to resume from an offset its forward-only input
/// (stdin or a FIFO) already consumed. Rewinding is impossible, so the send
/// stops with this typed failure instead of silently skipping or duplicating
/// bytes. Restart the producer from a seekable file, or rerun the pipeline
/// that feeds the FIFO.
pub const EXIT_RESUME_UNSUPPORTED: i32 = 8;

fn usage() -> ! {
    eprintln!(
        "usage: trace record --workload W [--seed N] [--requests-per-core N] --out FILE \
         [--config NAME] [--verdict FILE]\n\
         \x20      trace replay --in FILE [--config NAME] [--shard-threads N] [--verdict FILE]\n\
         \x20      trace throughput (--in FILE | --workload W) [--config NAME[,NAME...]|all] \
         [--records N] [--shard-threads N] [--window N]\n\
         \x20      trace ingest --in FILE [--config NAME] [--resync] [--follow] \
         [--shard-threads N] [--window N] [--idle-timeout MS] [--backoff-initial MS] \
         [--backoff-max MS] [--verdict FILE] [--expect FILE]\n\
         \x20      trace corrupt --in FILE --out FILE [--seed N]\n\
         \x20      trace daemon (--in FILE | --listen tcp://ADDR|unix://PATH) [--config NAME] \
         [--resync] [--follow] [--resume] [--checkpoint FILE] [--checkpoint-every N] \
         [--window N] [--max-lag N] [--shard-threads N] [--idle-timeout MS] \
         [--backoff-initial MS] [--backoff-max MS] [--max-clients N] [--stage-budget BYTES] \
         [--stall-limit MS] [--quarantine-after N] [--verdict FILE] [--verdict-dir DIR] \
         [--expect FILE]\n\
         \x20      trace send --in FILE --to tcp://ADDR|unix://PATH [--no-retry] [--follow] \
         [--chunk-bytes N] [--ack-window N] [--max-sessions N] [--heartbeat MS] \
         [--idle-limit MS] [--backoff-initial MS] [--backoff-max MS] [--fault-seed N] \
         [--hostile-seed N]"
    );
    std::process::exit(EXIT_USAGE);
}

/// Minimal flag parser: `--key value` pairs after the subcommand.
struct Args(Vec<String>);

impl Args {
    /// True when a bare boolean flag is present.
    fn has(&self, key: &str) -> bool {
        self.0.iter().any(|a| a == key)
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.0
            .iter()
            .position(|a| a == key)
            .and_then(|i| self.0.get(i + 1))
            .map(String::as_str)
    }

    fn get_u64(&self, key: &str, default: u64) -> u64 {
        self.get(key).map_or(default, |v| {
            v.parse()
                .unwrap_or_else(|_| panic!("{key} expects an integer, got {v:?}"))
        })
    }

    fn configuration(&self) -> Configuration {
        let name = self.get("--config").unwrap_or("unprotected");
        named_configuration(name)
            .unwrap_or_else(|| panic!("unknown configuration {name:?} (see --help)"))
    }

    /// Follow/reconnect policy from `--idle-limit` (synonym `--idle-timeout`),
    /// `--backoff-initial` and `--backoff-max` (all in milliseconds),
    /// defaulting to [`FollowPolicy::default`]'s 5 s / 5 ms / 200 ms.
    fn follow_policy(&self) -> FollowPolicy {
        self.follow_policy_over(FollowPolicy::default())
    }

    /// Like [`Args::follow_policy`], but with explicit defaults — the listen
    /// path passes [`FollowPolicy::listening`] so CLI and library defaults
    /// agree by construction.
    fn follow_policy_over(&self, base: FollowPolicy) -> FollowPolicy {
        FollowPolicy {
            initial_backoff: Duration::from_millis(
                self.get_u64("--backoff-initial", base.initial_backoff.as_millis() as u64),
            ),
            max_backoff: Duration::from_millis(
                self.get_u64("--backoff-max", base.max_backoff.as_millis() as u64),
            ),
            idle_limit: Duration::from_millis(self.get_u64(
                "--idle-limit",
                self.get_u64("--idle-timeout", base.idle_limit.as_millis() as u64),
            )),
        }
    }
}

fn write_verdict(path: Option<&str>, verdict: &VerdictReport) -> io::Result<()> {
    write_verdict_json(path, &verdict.to_json())
}

fn write_verdict_json(path: Option<&str>, json: &str) -> io::Result<()> {
    match path {
        Some(p) => std::fs::write(p, json),
        None => io::stdout().write_all(json.as_bytes()),
    }
}

/// Byte-compares the produced verdict against `--expect`'s reference file,
/// exiting with [`EXIT_VERDICT_MISMATCH`] on any difference.
fn check_expected(args: &Args, json: &str) -> io::Result<()> {
    let Some(path) = args.get("--expect") else {
        return Ok(());
    };
    let reference = std::fs::read_to_string(path)?;
    if reference != json {
        eprintln!("trace: verdict differs from reference {path}");
        std::process::exit(EXIT_VERDICT_MISMATCH);
    }
    eprintln!("trace: verdict matches reference {path}");
    Ok(())
}

/// The in-process closed-loop run a recording corresponds to.
fn reference_run(
    workload: &str,
    seed: u64,
    requests_per_core: u64,
    configuration: &Configuration,
) -> impress_sim::RunOutput {
    let mix = WorkloadMix::by_name(workload, seed)
        .unwrap_or_else(|| panic!("unknown workload {workload}"));
    let config = SystemConfig {
        requests_per_core,
        ..SystemConfig::baseline()
    }
    .with_controller(configuration.controller_config());
    System::new(config, mix).run()
}

fn cmd_record(args: &Args) -> io::Result<()> {
    let workload = args.get("--workload").unwrap_or_else(|| usage());
    let seed = args.get_u64("--seed", DEFAULT_SEED);
    let per_core = args.get_u64("--requests-per-core", impress_bench::requests_per_core());
    let out = args.get("--out").unwrap_or_else(|| usage());
    let configuration = args.configuration();

    let (meta, records) = record_workload_trace(workload, seed, per_core)
        .unwrap_or_else(|| panic!("unknown workload {workload}"));
    let mut writer = TraceWriter::new(BufWriter::new(File::create(out)?), &meta)?;
    for &r in &records {
        writer.push(r)?;
    }
    writer.finish()?.flush()?;
    eprintln!(
        "trace: recorded {} records ({} cores x {per_core}) of {workload} -> {out}",
        records.len(),
        meta.cores
    );

    if args.get("--verdict").is_some() {
        let output = reference_run(workload, seed, per_core, &configuration);
        let verdict = VerdictReport::from_run(&output, &configuration);
        write_verdict(args.get("--verdict"), &verdict)?;
    }
    Ok(())
}

fn read_records(path: &str) -> io::Result<(TraceMeta, Vec<TraceRecord>)> {
    let inner: Box<dyn Read> = if path == "-" {
        Box::new(io::stdin().lock())
    } else {
        Box::new(BufReader::new(File::open(path)?))
    };
    let mut reader = TraceReader::new(ReadSource::new(inner))?;
    let meta = reader.meta().clone();
    let records = reader.read_all()?;
    Ok((meta, records))
}

fn cmd_replay(args: &Args) -> io::Result<()> {
    let input = args.get("--in").unwrap_or_else(|| usage());
    let configuration = args.configuration();
    let shard_threads = args.get_u64("--shard-threads", 1) as usize;

    let (meta, records) = read_records(input)?;
    let runner = TraceRunner::new().with_shard_threads(shard_threads);
    let output = runner.replay(&meta, &records, &configuration);
    let verdict = VerdictReport::from_run(&output, &configuration);
    eprintln!(
        "trace: replayed {} records of {} under {} ({} shard threads): \
         {} cycles, verdict {}",
        records.len(),
        meta.name,
        configuration.label,
        shard_threads,
        output.performance.elapsed_cycles,
        verdict.verdict
    );
    write_verdict(args.get("--verdict"), &verdict)
}

fn cmd_throughput(args: &Args) -> io::Result<()> {
    // `--config` takes a single name, a comma-separated list, or `all`; the
    // same in-memory trace bytes are timed once per configuration.
    let configurations: Vec<Configuration> = match args.get("--config").unwrap_or("unprotected") {
        "all" => CONFIGURATION_NAMES
            .iter()
            .map(|name| named_configuration(name).expect("built-in configuration"))
            .collect(),
        list => list
            .split(',')
            .map(str::trim)
            .filter(|name| !name.is_empty())
            .map(|name| {
                named_configuration(name)
                    .unwrap_or_else(|| panic!("unknown configuration {name:?} (see --help)"))
            })
            .collect(),
    };
    if configurations.is_empty() {
        usage();
    }
    let shard_threads = args.get_u64("--shard-threads", 1) as usize;
    let window = args.get_u64("--window", 1 << 20);

    // Materialize the trace bytes in memory so the timed region measures the
    // ingestion pipeline (codec + mapping + shards + telemetry), not disk I/O.
    let bytes: Vec<u8> = match (args.get("--in"), args.get("--workload")) {
        (Some(path), _) => {
            let mut buf = Vec::new();
            if path == "-" {
                io::stdin().lock().read_to_end(&mut buf)?;
            } else {
                File::open(path)?.read_to_end(&mut buf)?;
            }
            buf
        }
        (None, Some(workload)) => {
            let per_core = args.get_u64("--records", 2_000_000) / 8;
            let (meta, records) =
                record_workload_trace(workload, args.get_u64("--seed", DEFAULT_SEED), per_core)
                    .unwrap_or_else(|| panic!("unknown workload {workload}"));
            let mut w = TraceWriter::new(Vec::new(), &meta)?;
            for &r in &records {
                w.push(r)?;
            }
            w.finish()?
        }
        (None, None) => usage(),
    };

    for configuration in &configurations {
        let runner = TraceRunner::new()
            .with_shard_threads(shard_threads)
            .with_window_records(window);
        let start = Instant::now();
        let report = runner.ingest(TraceReader::new(SliceSource::new(&bytes))?, configuration)?;
        let secs = start.elapsed().as_secs_f64();
        let mrps = report.records as f64 / secs / 1e6;
        println!(
            "ingest: {} records in {:.3} s = {mrps:.1} M records/s under {} \
             ({} shard threads, {} windows, verdict {})",
            report.records,
            secs,
            configuration.label,
            shard_threads,
            report.windows.len(),
            report.verdict.verdict
        );
    }
    Ok(())
}

fn read_bytes(path: &str) -> io::Result<Vec<u8>> {
    let mut buf = Vec::new();
    if path == "-" {
        io::stdin().lock().read_to_end(&mut buf)?;
    } else {
        File::open(path)?.read_to_end(&mut buf)?;
    }
    Ok(buf)
}

fn cmd_ingest(args: &Args) -> io::Result<()> {
    let input = args.get("--in").unwrap_or_else(|| usage());
    let configuration = args.configuration();
    let shard_threads = args.get_u64("--shard-threads", 1) as usize;
    let window = args.get_u64("--window", 1 << 20);
    let mode = if args.has("--resync") {
        DecodeMode::Resync
    } else {
        DecodeMode::Strict
    };

    let runner = TraceRunner::new()
        .with_shard_threads(shard_threads)
        .with_window_records(window);
    let report = if args.has("--follow") {
        // Stream a growing file or FIFO, riding out stalls under the
        // CLI-configured backoff/idle policy instead of buffering up front.
        let inner: Box<dyn Read> = if input == "-" {
            Box::new(io::stdin().lock())
        } else {
            Box::new(BufReader::new(File::open(input)?))
        };
        let follow = FollowSource::new(ReadSource::new(inner), args.follow_policy());
        runner.ingest(TraceReader::with_mode(follow, mode)?, &configuration)?
    } else {
        let bytes = read_bytes(input)?;
        runner.ingest(
            TraceReader::with_mode(SliceSource::new(&bytes), mode)?,
            &configuration,
        )?
    };
    eprintln!(
        "trace: ingested {} records of {} under {}: outcome {}, {} fault entries, \
         records_lost <= {}",
        report.records,
        report.verdict.workload,
        configuration.label,
        report.verdict.outcome(),
        report.verdict.faults.entries.len(),
        report.verdict.faults.records_lost()
    );
    let json = report.verdict.to_json();
    write_verdict_json(args.get("--verdict"), &json)?;
    check_expected(args, &json)
}

fn cmd_corrupt(args: &Args) -> io::Result<()> {
    let input = args.get("--in").unwrap_or_else(|| usage());
    let out = args.get("--out").unwrap_or_else(|| usage());
    let seed = args.get_u64("--seed", 1);

    let bytes = read_bytes(input)?;
    let map = FrameMap::scan(&bytes)?;
    let plan = FaultPlan::seeded(seed, &map);
    let corrupted = apply_plan(&bytes, &plan)?;
    std::fs::write(out, &corrupted)?;
    let impact = plan.expected(&map);
    eprintln!(
        "trace: corrupted {input} -> {out} with seed {seed}: {} fault ops over {} frames{}",
        plan.ops.len(),
        map.frames.len(),
        impact.map_or(String::new(), |i| format!(
            " (expect {} intact, >= {} lost{})",
            i.intact_records,
            i.damaged_records,
            if i.mid_frame_cut {
                ", mid-frame cut"
            } else {
                ""
            }
        ))
    );
    Ok(())
}

/// Set by the SIGTERM handler; a listening daemon polls it to drain
/// gracefully (finish the in-flight batch, final checkpoint, verdict,
/// protocol goodbye to the connected producer).
static DRAIN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_sigterm(_signum: i32) {
    DRAIN.store(true, Ordering::SeqCst);
}

/// Binds SIGTERM to the drain flag. Raw `signal(2)` keeps the binary free of
/// new dependencies; the handler only stores to an atomic, and every blocking
/// operation on the drain path uses short poll timeouts, so `SA_RESTART`
/// semantics are irrelevant.
fn install_sigterm_drain() {
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_sigterm);
    }
}

/// Reports a multi-tenant serving run: a summary line per tenant, the first
/// tenant's verdict to `--verdict`/stdout (with `--expect` checking), and
/// every tenant's verdict to `--verdict-dir/tenant-<id>.json`.
///
/// Per-tenant pipeline failures are isolated failures the daemon already
/// survived, so they are reported on stderr but do not fail the process.
fn report_tenants(
    args: &Args,
    configuration: &Configuration,
    multi: &MultiReport,
) -> io::Result<()> {
    let verdict_dir = args.get("--verdict-dir");
    if let Some(dir) = verdict_dir {
        std::fs::create_dir_all(dir)?;
    }
    let mut failed = 0usize;
    for tenant in &multi.tenants {
        match &tenant.result {
            Ok(report) => {
                eprintln!(
                    "trace: tenant {}: ingested {} records of {} under {}: outcome {}, \
                     {} fault entries, records_lost <= {}",
                    tenant.tenant,
                    report.records,
                    report.verdict.workload,
                    configuration.label,
                    report.verdict.outcome(),
                    report.verdict.faults.entries.len(),
                    report.verdict.faults.records_lost()
                );
                let json = report.verdict.to_json_extended();
                if let Some(dir) = verdict_dir {
                    std::fs::write(
                        Path::new(dir).join(format!("tenant-{}.json", tenant.tenant)),
                        &json,
                    )?;
                }
                if tenant.tenant == 1 {
                    write_verdict_json(args.get("--verdict"), &json)?;
                    check_expected(args, &json)?;
                }
            }
            Err(e) => {
                failed += 1;
                eprintln!(
                    "trace: tenant {}: pipeline failed (isolated, daemon kept serving): {e}",
                    tenant.tenant
                );
            }
        }
    }
    eprintln!(
        "trace: daemon served {} tenant(s), {failed} failed",
        multi.tenants.len()
    );
    Ok(())
}

fn cmd_daemon(args: &Args) -> io::Result<()> {
    let listen = args.get("--listen");
    let input = match (args.get("--in"), listen) {
        (Some(path), None) => Some(path),
        (None, Some(_)) => None,
        _ => usage(),
    };
    let configuration = args.configuration();
    let checkpoint_path = args.get("--checkpoint").map(str::to_string);

    let resume_from = if args.has("--resume") {
        let path = checkpoint_path.as_deref().unwrap_or_else(|| usage());
        Some(Checkpoint::parse(&std::fs::read_to_string(path)?)?)
    } else {
        None
    };
    // Listen mode inherits the library's listening defaults: a socket
    // producer can outpace the simulator indefinitely, so lag is bounded
    // (shedding telemetry via the watchdog — never records), and the idle
    // limit is a patient 30 s instead of the file follower's 5 s.
    let base = if listen.is_some() {
        DaemonOptions::listening()
    } else {
        DaemonOptions::default()
    };
    let options = DaemonOptions {
        window_records: args.get_u64("--window", 1 << 16),
        checkpoint_every: args.get_u64("--checkpoint-every", 1 << 18),
        max_lag_windows: args.get_u64("--max-lag", base.max_lag_windows as u64) as usize,
        shard_threads: args.get_u64("--shard-threads", 1) as usize,
        resync: args.has("--resync"),
        resume_from,
        record_batch: None,
    };

    if let Some(listen) = listen {
        let endpoint = Endpoint::parse(listen)?;
        let listener = Listener::bind(&endpoint)?;
        eprintln!("trace: daemon listening on {}", listener.local_endpoint()?);
        install_sigterm_drain();
        let policy = args.follow_policy_over(FollowPolicy::listening());
        let d = TenantLimits::default();
        let limits = TenantLimits {
            max_clients: args.get_u64("--max-clients", d.max_clients as u64) as usize,
            stage_budget: args.get_u64("--stage-budget", d.stage_budget),
            stall_limit: Duration::from_millis(
                args.get_u64("--stall-limit", d.stall_limit.as_millis() as u64),
            ),
            quarantine_after: args.get_u64("--quarantine-after", u64::from(d.quarantine_after))
                as u32,
            ..d
        };
        let mut server = TenantServer::new(listener, policy, limits).with_drain_flag(&DRAIN);
        let multi = serve_tenants(
            &mut server,
            &configuration,
            &options,
            checkpoint_path.as_deref().map(Path::new),
        )?;
        return report_tenants(args, &configuration, &multi);
    }

    let mut on_checkpoint = |cp: &Checkpoint| match checkpoint_path.as_deref() {
        Some(path) => write_checkpoint_durable(Path::new(path), cp),
        None => Ok(()),
    };
    let report = {
        let input = input.expect("checked above");
        let reader: Box<dyn Read> = if input == "-" {
            Box::new(io::stdin().lock())
        } else {
            Box::new(BufReader::new(File::open(input)?))
        };
        if args.has("--follow") {
            let follow = FollowSource::new(ReadSource::new(reader), args.follow_policy());
            supervise(follow, &configuration, &options, &mut on_checkpoint)?
        } else {
            supervise(
                ReadSource::new(reader),
                &configuration,
                &options,
                &mut on_checkpoint,
            )?
        }
    };
    eprintln!(
        "trace: daemon ingested {} records of {} under {}: outcome {}, {} windows retained, \
         {} fault entries, records_lost <= {}{}",
        report.records,
        report.verdict.workload,
        configuration.label,
        report.verdict.outcome(),
        report.windows.len(),
        report.verdict.faults.entries.len(),
        report.verdict.faults.records_lost(),
        if args.has("--resume") {
            " (resumed)"
        } else {
            ""
        }
    );
    // The daemon always reports in the extended schema, so resumed and
    // uninterrupted runs are diffable modulo resume-marker lines.
    let json = report.verdict.to_json_extended();
    write_verdict_json(args.get("--verdict"), &json)?;
    check_expected(args, &json)
}

/// Dials the daemon for each session, with seeded connection faults layered
/// on when `--fault-seed` is given.
fn run_send<I: SendInput>(
    input: &mut I,
    endpoint: &Endpoint,
    options: &SendOptions,
    fault_seed: Option<u64>,
    payload_len: u64,
) -> io::Result<SendOutcome> {
    match fault_seed {
        None => send_to(endpoint, input, options),
        Some(seed) => {
            let plan = ConnFaultPlan::seeded(seed, payload_len);
            eprintln!(
                "trace: injecting {} seeded connection fault(s) (seed {seed})",
                plan.ops.len()
            );
            let state = ConnFaultState::shared(&plan);
            let ep = endpoint.clone();
            send_stream(
                input,
                move || {
                    WireLink::connect(&ep).map(|link| FaultTransport::new(link, Arc::clone(&state)))
                },
                options,
            )
        }
    }
}

/// Runs the deliberately protocol-violating producer behind
/// `trace send --hostile-seed`: streams a clean prefix of the input, then
/// commits seeded offset-gap violations until the daemon quarantines it.
/// Succeeds only if the quarantine actually lands — this mode exists to prove
/// a daemon under test bans hostile tenants without dying.
fn run_hostile(args: &Args, input: &str, endpoint: &Endpoint, seed: u64) -> io::Result<()> {
    let bytes = read_bytes(input)?;
    let prefix_len = bytes.len().min(8192);
    let max_sessions = args.get_u64("--max-sessions", 32);
    let outcome = run_hostile_producer(endpoint, seed, &bytes[..prefix_len], max_sessions)?;
    eprintln!(
        "trace: hostile producer (seed {seed}): tenant {}, {} session(s), {} byte(s) \
         delivered, quarantined: {}",
        outcome.tenant, outcome.sessions, outcome.delivered, outcome.quarantined
    );
    if outcome.quarantined {
        return Ok(());
    }
    eprintln!("trace: hostile producer was NOT quarantined");
    std::process::exit(EXIT_TRANSPORT);
}

fn cmd_send(args: &Args) -> io::Result<()> {
    let input = args.get("--in").unwrap_or_else(|| usage());
    let to = args.get("--to").unwrap_or_else(|| usage());
    let endpoint = Endpoint::parse(to)?;
    if let Some(seed) = args.get("--hostile-seed") {
        let seed = seed
            .parse()
            .unwrap_or_else(|_| panic!("--hostile-seed expects an integer, got {seed:?}"));
        return run_hostile(args, input, &endpoint, seed);
    }
    let defaults = SendOptions::default();
    let options = SendOptions {
        policy: args.follow_policy(),
        retry: !args.has("--no-retry"),
        data_bytes: args.get_u64("--chunk-bytes", defaults.data_bytes as u64) as usize,
        ack_window: args.get_u64("--ack-window", defaults.ack_window),
        follow: args.has("--follow"),
        max_sessions: args.get_u64("--max-sessions", defaults.max_sessions),
        heartbeat: args
            .get("--heartbeat")
            .map(|_| Duration::from_millis(args.get_u64("--heartbeat", 0))),
        tenant: defaults.tenant,
    };
    let fault_seed = args.get("--fault-seed").map(|v| {
        v.parse()
            .unwrap_or_else(|_| panic!("--fault-seed expects an integer, got {v:?}"))
    });

    // Input open errors are I/O failures (exit 3); everything after this
    // point that fails is a transport failure (exit 7).
    let result = if input == "-" {
        let mut src = ReaderInput::new(io::stdin().lock());
        run_send(&mut src, &endpoint, &options, fault_seed, 1 << 20)
    } else if std::fs::metadata(input)?.is_file() {
        let payload_len = std::fs::metadata(input)?.len();
        let mut src = FileInput::open(Path::new(input))?;
        run_send(&mut src, &endpoint, &options, fault_seed, payload_len)
    } else {
        // FIFOs and other non-seekable inputs stream forward-only; resume
        // still works as long as the daemon never asks to rewind.
        let mut src = ReaderInput::new(BufReader::new(File::open(input)?));
        run_send(&mut src, &endpoint, &options, fault_seed, 1 << 20)
    };
    match result {
        Ok(outcome) => {
            eprintln!(
                "trace: sent {} byte(s) acked over {} session(s), {} byte(s) retransmitted{}{}",
                outcome.acked,
                outcome.sessions,
                outcome.retransmitted,
                if outcome.goodbye {
                    ", daemon drained (goodbye)"
                } else {
                    ""
                },
                if outcome.complete {
                    ""
                } else {
                    " — stream NOT fully delivered"
                },
            );
            Ok(())
        }
        Err(e) if e.kind() == io::ErrorKind::Unsupported => {
            // The daemon's resume offset is behind what this forward-only
            // input (stdin/FIFO) already consumed; rewinding is impossible
            // and skipping would silently corrupt the stream.
            eprintln!("trace: cannot resume: {e}");
            std::process::exit(EXIT_RESUME_UNSUPPORTED);
        }
        Err(e) => {
            eprintln!("trace: transport error: {e}");
            std::process::exit(EXIT_TRANSPORT);
        }
    }
}

/// Maps an error to its exit code by failure class.
fn exit_code_for(e: &io::Error) -> i32 {
    match e.kind() {
        io::ErrorKind::InvalidData | io::ErrorKind::UnexpectedEof => EXIT_CORRUPT,
        _ => EXIT_IO,
    }
}

fn main() {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        usage();
    }
    let command = argv.remove(0);
    let args = Args(argv);
    let outcome = std::panic::catch_unwind(move || match command.as_str() {
        "record" => cmd_record(&args),
        "replay" => cmd_replay(&args),
        "throughput" => cmd_throughput(&args),
        "ingest" => cmd_ingest(&args),
        "corrupt" => cmd_corrupt(&args),
        "daemon" => cmd_daemon(&args),
        "send" => cmd_send(&args),
        _ => usage(),
    });
    match outcome {
        Ok(Ok(())) => {}
        Ok(Err(e)) => {
            eprintln!("trace: error: {e}");
            std::process::exit(exit_code_for(&e));
        }
        Err(_) => {
            // The panic payload was already printed by the default hook.
            eprintln!("trace: internal panic");
            std::process::exit(EXIT_PANIC);
        }
    }
}
