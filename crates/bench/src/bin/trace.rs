//! `trace`: the impress-trace command-line frontend — record, replay and
//! benchmark physical-address trace streams.
//!
//! Subcommands:
//!
//! ```text
//! trace record --workload W [--seed N] [--requests-per-core N] --out FILE
//!              [--config NAME] [--verdict FILE]
//!     Records a synthetic workload as a framed binary trace. With --verdict,
//!     also runs the same workload in-process (closed loop) under --config and
//!     writes that run's verdict report — the reference a replay must match.
//!
//! trace replay --in FILE [--config NAME] [--shard-threads N] [--verdict FILE]
//!     Closed-loop replay: rebuilds the recording run's core models from the
//!     trace header and reruns the stream through the full system model.
//!     Bit-identical to the in-process run at any shard thread count.
//!
//! trace throughput (--in FILE | --workload W) [--config NAME]
//!                  [--records N] [--shard-threads N] [--window N]
//!     Open-loop ingestion benchmark: decode → route → epoch loop → telemetry,
//!     reporting million records/s end to end.
//! ```
//!
//! `--config` takes a named configuration (`unprotected`, `graphene-impress-p`,
//! `para-impress-p`, `mithril-impress-p`; default `unprotected`). Verdict
//! reports are canonical JSON derived only from deterministic simulation state,
//! so `diff` works across runs, hosts and thread counts. `--in -` reads the
//! trace from stdin.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::time::Instant;

use impress_bench::{named_configuration, record_workload_trace};
use impress_sim::{Configuration, System, SystemConfig, TraceRunner, VerdictReport};
use impress_workloads::codec::{TraceMeta, TraceReader, TraceRecord, TraceWriter};
use impress_workloads::source::{ReadSource, SliceSource};
use impress_workloads::WorkloadMix;

/// Default seed, matching `ExperimentRunner`'s.
const DEFAULT_SEED: u64 = 0x1A7E_2024;

fn usage() -> ! {
    eprintln!(
        "usage: trace record --workload W [--seed N] [--requests-per-core N] --out FILE \
         [--config NAME] [--verdict FILE]\n\
         \x20      trace replay --in FILE [--config NAME] [--shard-threads N] [--verdict FILE]\n\
         \x20      trace throughput (--in FILE | --workload W) [--config NAME] [--records N] \
         [--shard-threads N] [--window N]"
    );
    std::process::exit(2);
}

/// Minimal flag parser: `--key value` pairs after the subcommand.
struct Args(Vec<String>);

impl Args {
    fn get(&self, key: &str) -> Option<&str> {
        self.0
            .iter()
            .position(|a| a == key)
            .and_then(|i| self.0.get(i + 1))
            .map(String::as_str)
    }

    fn get_u64(&self, key: &str, default: u64) -> u64 {
        self.get(key).map_or(default, |v| {
            v.parse()
                .unwrap_or_else(|_| panic!("{key} expects an integer, got {v:?}"))
        })
    }

    fn configuration(&self) -> Configuration {
        let name = self.get("--config").unwrap_or("unprotected");
        named_configuration(name)
            .unwrap_or_else(|| panic!("unknown configuration {name:?} (see --help)"))
    }
}

fn write_verdict(path: Option<&str>, verdict: &VerdictReport) -> io::Result<()> {
    let json = verdict.to_json();
    match path {
        Some(p) => std::fs::write(p, &json),
        None => io::stdout().write_all(json.as_bytes()),
    }
}

/// The in-process closed-loop run a recording corresponds to.
fn reference_run(
    workload: &str,
    seed: u64,
    requests_per_core: u64,
    configuration: &Configuration,
) -> impress_sim::RunOutput {
    let mix = WorkloadMix::by_name(workload, seed)
        .unwrap_or_else(|| panic!("unknown workload {workload}"));
    let config = SystemConfig {
        requests_per_core,
        ..SystemConfig::baseline()
    }
    .with_controller(configuration.controller_config());
    System::new(config, mix).run()
}

fn cmd_record(args: &Args) -> io::Result<()> {
    let workload = args.get("--workload").unwrap_or_else(|| usage());
    let seed = args.get_u64("--seed", DEFAULT_SEED);
    let per_core = args.get_u64("--requests-per-core", impress_bench::requests_per_core());
    let out = args.get("--out").unwrap_or_else(|| usage());
    let configuration = args.configuration();

    let (meta, records) = record_workload_trace(workload, seed, per_core)
        .unwrap_or_else(|| panic!("unknown workload {workload}"));
    let mut writer = TraceWriter::new(BufWriter::new(File::create(out)?), &meta)?;
    for &r in &records {
        writer.push(r)?;
    }
    writer.finish()?.flush()?;
    eprintln!(
        "trace: recorded {} records ({} cores x {per_core}) of {workload} -> {out}",
        records.len(),
        meta.cores
    );

    if args.get("--verdict").is_some() {
        let output = reference_run(workload, seed, per_core, &configuration);
        let verdict = VerdictReport::from_run(&output, &configuration);
        write_verdict(args.get("--verdict"), &verdict)?;
    }
    Ok(())
}

fn read_records(path: &str) -> io::Result<(TraceMeta, Vec<TraceRecord>)> {
    let inner: Box<dyn Read> = if path == "-" {
        Box::new(io::stdin().lock())
    } else {
        Box::new(BufReader::new(File::open(path)?))
    };
    let mut reader = TraceReader::new(ReadSource::new(inner))?;
    let meta = reader.meta().clone();
    let records = reader.read_all()?;
    Ok((meta, records))
}

fn cmd_replay(args: &Args) -> io::Result<()> {
    let input = args.get("--in").unwrap_or_else(|| usage());
    let configuration = args.configuration();
    let shard_threads = args.get_u64("--shard-threads", 1) as usize;

    let (meta, records) = read_records(input)?;
    let runner = TraceRunner::new().with_shard_threads(shard_threads);
    let output = runner.replay(&meta, &records, &configuration);
    let verdict = VerdictReport::from_run(&output, &configuration);
    eprintln!(
        "trace: replayed {} records of {} under {} ({} shard threads): \
         {} cycles, verdict {}",
        records.len(),
        meta.name,
        configuration.label,
        shard_threads,
        output.performance.elapsed_cycles,
        verdict.verdict
    );
    write_verdict(args.get("--verdict"), &verdict)
}

fn cmd_throughput(args: &Args) -> io::Result<()> {
    let configuration = args.configuration();
    let shard_threads = args.get_u64("--shard-threads", 1) as usize;
    let window = args.get_u64("--window", 1 << 20);

    // Materialize the trace bytes in memory so the timed region measures the
    // ingestion pipeline (codec + mapping + shards + telemetry), not disk I/O.
    let bytes: Vec<u8> = match (args.get("--in"), args.get("--workload")) {
        (Some(path), _) => {
            let mut buf = Vec::new();
            if path == "-" {
                io::stdin().lock().read_to_end(&mut buf)?;
            } else {
                File::open(path)?.read_to_end(&mut buf)?;
            }
            buf
        }
        (None, Some(workload)) => {
            let per_core = args.get_u64("--records", 2_000_000) / 8;
            let (meta, records) =
                record_workload_trace(workload, args.get_u64("--seed", DEFAULT_SEED), per_core)
                    .unwrap_or_else(|| panic!("unknown workload {workload}"));
            let mut w = TraceWriter::new(Vec::new(), &meta)?;
            for &r in &records {
                w.push(r)?;
            }
            w.finish()?
        }
        (None, None) => usage(),
    };

    let runner = TraceRunner::new()
        .with_shard_threads(shard_threads)
        .with_window_records(window);
    let start = Instant::now();
    let report = runner.ingest(TraceReader::new(SliceSource::new(&bytes))?, &configuration)?;
    let secs = start.elapsed().as_secs_f64();
    let mrps = report.records as f64 / secs / 1e6;
    println!(
        "ingest: {} records in {:.3} s = {mrps:.1} M records/s under {} \
         ({} shard threads, {} windows, verdict {})",
        report.records,
        secs,
        configuration.label,
        shard_threads,
        report.windows.len(),
        report.verdict.verdict
    );
    Ok(())
}

fn main() {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        usage();
    }
    let command = argv.remove(0);
    let args = Args(argv);
    let result = match command.as_str() {
        "record" => cmd_record(&args),
        "replay" => cmd_replay(&args),
        "throughput" => cmd_throughput(&args),
        _ => usage(),
    };
    if let Err(e) = result {
        eprintln!("trace: error: {e}");
        std::process::exit(1);
    }
}
