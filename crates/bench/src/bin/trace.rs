//! `trace`: the impress-trace command-line frontend — record, replay and
//! benchmark physical-address trace streams.
//!
//! Subcommands:
//!
//! ```text
//! trace record --workload W [--seed N] [--requests-per-core N] --out FILE
//!              [--config NAME] [--verdict FILE]
//!     Records a synthetic workload as a framed binary trace. With --verdict,
//!     also runs the same workload in-process (closed loop) under --config and
//!     writes that run's verdict report — the reference a replay must match.
//!
//! trace replay --in FILE [--config NAME] [--shard-threads N] [--verdict FILE]
//!     Closed-loop replay: rebuilds the recording run's core models from the
//!     trace header and reruns the stream through the full system model.
//!     Bit-identical to the in-process run at any shard thread count.
//!
//! trace throughput (--in FILE | --workload W) [--config NAME]
//!                  [--records N] [--shard-threads N] [--window N]
//!     Open-loop ingestion benchmark: decode → route → epoch loop → telemetry,
//!     reporting million records/s end to end.
//!
//! trace ingest --in FILE [--config NAME] [--resync] [--follow]
//!              [--shard-threads N] [--window N] [--idle-timeout MS]
//!              [--backoff-initial MS] [--backoff-max MS] [--verdict FILE]
//!              [--expect FILE]
//!     Open-loop ingestion with a verdict report. --resync survives stream
//!     corruption (degraded verdict + fault ledger) instead of aborting.
//!     --follow streams a growing file/FIFO under the configurable
//!     backoff/idle policy. --expect byte-compares the verdict against a
//!     reference file and exits with EXIT_VERDICT_MISMATCH on any difference.
//!
//! trace corrupt --in FILE --out FILE [--seed N]
//!     Applies the seeded deterministic fault plan (bit flips, truncation,
//!     frame duplication/reorder) to a recorded trace — the reproducible
//!     adversary for resync/daemon testing.
//!
//! trace daemon (--in FILE | --listen tcp://ADDR|unix://PATH) [--config NAME]
//!              [--resync] [--follow] [--resume] [--checkpoint FILE]
//!              [--checkpoint-every N] [--window N] [--max-lag N]
//!              [--shard-threads N] [--idle-timeout MS] [--backoff-initial MS]
//!              [--backoff-max MS] [--verdict FILE] [--expect FILE]
//!     Supervised ingestion: periodic durable checkpoints, bounded-lag
//!     telemetry shedding, contained shard panics (quarantine). --follow rides
//!     out a slow/stalling source with capped exponential backoff; --resume
//!     restarts after a crash by deterministic prefix re-execution validated
//!     against the last checkpoint. --listen accepts producers over TCP or a
//!     Unix-domain socket instead of reading a file: sessions resume from the
//!     daemon's acked offset across reconnects, and SIGTERM drains gracefully
//!     (finish the in-flight batch, final checkpoint, verdict, protocol
//!     goodbye). The verdict always uses the extended (v2) schema.
//!
//! trace send --in FILE --to tcp://ADDR|unix://PATH [--no-retry] [--follow]
//!            [--chunk-bytes N] [--ack-window N] [--max-sessions N]
//!            [--idle-timeout MS] [--backoff-initial MS] [--backoff-max MS]
//!            [--fault-seed N]
//!     Streams a recorded trace (or FIFO with --follow) to a listening daemon,
//!     reconnecting with capped backoff and resuming from the daemon's acked
//!     offset unless --no-retry. --fault-seed injects a seeded connection-fault
//!     plan (disconnects, stalls, short writes, duplicate tails) for hostile-
//!     network testing.
//! ```
//!
//! `--config` takes a named configuration (`unprotected`, `graphene-impress-p`,
//! `para-impress-p`, `mithril-impress-p`; default `unprotected`). Verdict
//! reports are canonical JSON derived only from deterministic simulation state,
//! so `diff` works across runs, hosts and thread counts. `--in -` reads the
//! trace from stdin.
//!
//! # Exit codes
//!
//! Failure classes get distinct exit codes so CI and operators can branch on
//! them: [`EXIT_OK`] (0), [`EXIT_USAGE`] (2), [`EXIT_IO`] (3, the medium
//! failed), [`EXIT_CORRUPT`] (4, the stream content is damaged — strict-mode
//! decode or mapping errors, or a refused resume), [`EXIT_VERDICT_MISMATCH`]
//! (5, `--expect` diff failed), [`EXIT_PANIC`] (6, internal panic) and
//! [`EXIT_TRANSPORT`] (7, `trace send` could not deliver the stream — the
//! connection failed after retries).

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use impress_bench::{named_configuration, record_workload_trace, CONFIGURATION_NAMES};
use impress_sim::daemon::{supervise, write_checkpoint_durable, Checkpoint, DaemonOptions};
use impress_sim::{Configuration, System, SystemConfig, TraceRunner, VerdictReport};
use impress_workloads::codec::{DecodeMode, TraceMeta, TraceReader, TraceRecord, TraceWriter};
use impress_workloads::faults::{
    apply_plan, ConnFaultPlan, ConnFaultState, FaultPlan, FaultTransport, FrameMap,
};
use impress_workloads::source::{FollowPolicy, FollowSource, ReadSource, SliceSource};
use impress_workloads::transport::{
    send_stream, send_to, Endpoint, FileInput, Listener, ReaderInput, SendInput, SendOptions,
    SendOutcome, SocketSource, WireLink,
};
use impress_workloads::WorkloadMix;

/// Default seed, matching `ExperimentRunner`'s.
const DEFAULT_SEED: u64 = 0x1A7E_2024;

/// Success.
pub const EXIT_OK: i32 = 0;
/// Bad command line.
pub const EXIT_USAGE: i32 = 2;
/// The I/O medium failed (open/read/write errors other than corruption).
pub const EXIT_IO: i32 = 3;
/// The stream content is damaged: strict-mode decode errors, implausible
/// structures, mapping failures, refused resumes.
pub const EXIT_CORRUPT: i32 = 4;
/// `--expect` comparison failed: the produced verdict differs from the
/// reference.
pub const EXIT_VERDICT_MISMATCH: i32 = 5;
/// An internal panic was caught at the top level.
pub const EXIT_PANIC: i32 = 6;
/// `trace send` could not deliver the stream: the connection failed after
/// retries (or immediately with `--no-retry`).
pub const EXIT_TRANSPORT: i32 = 7;

fn usage() -> ! {
    eprintln!(
        "usage: trace record --workload W [--seed N] [--requests-per-core N] --out FILE \
         [--config NAME] [--verdict FILE]\n\
         \x20      trace replay --in FILE [--config NAME] [--shard-threads N] [--verdict FILE]\n\
         \x20      trace throughput (--in FILE | --workload W) [--config NAME[,NAME...]|all] \
         [--records N] [--shard-threads N] [--window N]\n\
         \x20      trace ingest --in FILE [--config NAME] [--resync] [--follow] \
         [--shard-threads N] [--window N] [--idle-timeout MS] [--backoff-initial MS] \
         [--backoff-max MS] [--verdict FILE] [--expect FILE]\n\
         \x20      trace corrupt --in FILE --out FILE [--seed N]\n\
         \x20      trace daemon (--in FILE | --listen tcp://ADDR|unix://PATH) [--config NAME] \
         [--resync] [--follow] [--resume] [--checkpoint FILE] [--checkpoint-every N] \
         [--window N] [--max-lag N] [--shard-threads N] [--idle-timeout MS] \
         [--backoff-initial MS] [--backoff-max MS] [--verdict FILE] [--expect FILE]\n\
         \x20      trace send --in FILE --to tcp://ADDR|unix://PATH [--no-retry] [--follow] \
         [--chunk-bytes N] [--ack-window N] [--max-sessions N] [--idle-timeout MS] \
         [--backoff-initial MS] [--backoff-max MS] [--fault-seed N]"
    );
    std::process::exit(EXIT_USAGE);
}

/// Minimal flag parser: `--key value` pairs after the subcommand.
struct Args(Vec<String>);

impl Args {
    /// True when a bare boolean flag is present.
    fn has(&self, key: &str) -> bool {
        self.0.iter().any(|a| a == key)
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.0
            .iter()
            .position(|a| a == key)
            .and_then(|i| self.0.get(i + 1))
            .map(String::as_str)
    }

    fn get_u64(&self, key: &str, default: u64) -> u64 {
        self.get(key).map_or(default, |v| {
            v.parse()
                .unwrap_or_else(|_| panic!("{key} expects an integer, got {v:?}"))
        })
    }

    fn configuration(&self) -> Configuration {
        let name = self.get("--config").unwrap_or("unprotected");
        named_configuration(name)
            .unwrap_or_else(|| panic!("unknown configuration {name:?} (see --help)"))
    }

    /// Follow/reconnect policy from `--idle-timeout`, `--backoff-initial` and
    /// `--backoff-max` (all in milliseconds), defaulting to
    /// [`FollowPolicy::default`]'s 5 s / 5 ms / 200 ms.
    fn follow_policy(&self) -> FollowPolicy {
        let d = FollowPolicy::default();
        FollowPolicy {
            initial_backoff: Duration::from_millis(
                self.get_u64("--backoff-initial", d.initial_backoff.as_millis() as u64),
            ),
            max_backoff: Duration::from_millis(
                self.get_u64("--backoff-max", d.max_backoff.as_millis() as u64),
            ),
            idle_limit: Duration::from_millis(
                self.get_u64("--idle-timeout", d.idle_limit.as_millis() as u64),
            ),
        }
    }
}

fn write_verdict(path: Option<&str>, verdict: &VerdictReport) -> io::Result<()> {
    write_verdict_json(path, &verdict.to_json())
}

fn write_verdict_json(path: Option<&str>, json: &str) -> io::Result<()> {
    match path {
        Some(p) => std::fs::write(p, json),
        None => io::stdout().write_all(json.as_bytes()),
    }
}

/// Byte-compares the produced verdict against `--expect`'s reference file,
/// exiting with [`EXIT_VERDICT_MISMATCH`] on any difference.
fn check_expected(args: &Args, json: &str) -> io::Result<()> {
    let Some(path) = args.get("--expect") else {
        return Ok(());
    };
    let reference = std::fs::read_to_string(path)?;
    if reference != json {
        eprintln!("trace: verdict differs from reference {path}");
        std::process::exit(EXIT_VERDICT_MISMATCH);
    }
    eprintln!("trace: verdict matches reference {path}");
    Ok(())
}

/// The in-process closed-loop run a recording corresponds to.
fn reference_run(
    workload: &str,
    seed: u64,
    requests_per_core: u64,
    configuration: &Configuration,
) -> impress_sim::RunOutput {
    let mix = WorkloadMix::by_name(workload, seed)
        .unwrap_or_else(|| panic!("unknown workload {workload}"));
    let config = SystemConfig {
        requests_per_core,
        ..SystemConfig::baseline()
    }
    .with_controller(configuration.controller_config());
    System::new(config, mix).run()
}

fn cmd_record(args: &Args) -> io::Result<()> {
    let workload = args.get("--workload").unwrap_or_else(|| usage());
    let seed = args.get_u64("--seed", DEFAULT_SEED);
    let per_core = args.get_u64("--requests-per-core", impress_bench::requests_per_core());
    let out = args.get("--out").unwrap_or_else(|| usage());
    let configuration = args.configuration();

    let (meta, records) = record_workload_trace(workload, seed, per_core)
        .unwrap_or_else(|| panic!("unknown workload {workload}"));
    let mut writer = TraceWriter::new(BufWriter::new(File::create(out)?), &meta)?;
    for &r in &records {
        writer.push(r)?;
    }
    writer.finish()?.flush()?;
    eprintln!(
        "trace: recorded {} records ({} cores x {per_core}) of {workload} -> {out}",
        records.len(),
        meta.cores
    );

    if args.get("--verdict").is_some() {
        let output = reference_run(workload, seed, per_core, &configuration);
        let verdict = VerdictReport::from_run(&output, &configuration);
        write_verdict(args.get("--verdict"), &verdict)?;
    }
    Ok(())
}

fn read_records(path: &str) -> io::Result<(TraceMeta, Vec<TraceRecord>)> {
    let inner: Box<dyn Read> = if path == "-" {
        Box::new(io::stdin().lock())
    } else {
        Box::new(BufReader::new(File::open(path)?))
    };
    let mut reader = TraceReader::new(ReadSource::new(inner))?;
    let meta = reader.meta().clone();
    let records = reader.read_all()?;
    Ok((meta, records))
}

fn cmd_replay(args: &Args) -> io::Result<()> {
    let input = args.get("--in").unwrap_or_else(|| usage());
    let configuration = args.configuration();
    let shard_threads = args.get_u64("--shard-threads", 1) as usize;

    let (meta, records) = read_records(input)?;
    let runner = TraceRunner::new().with_shard_threads(shard_threads);
    let output = runner.replay(&meta, &records, &configuration);
    let verdict = VerdictReport::from_run(&output, &configuration);
    eprintln!(
        "trace: replayed {} records of {} under {} ({} shard threads): \
         {} cycles, verdict {}",
        records.len(),
        meta.name,
        configuration.label,
        shard_threads,
        output.performance.elapsed_cycles,
        verdict.verdict
    );
    write_verdict(args.get("--verdict"), &verdict)
}

fn cmd_throughput(args: &Args) -> io::Result<()> {
    // `--config` takes a single name, a comma-separated list, or `all`; the
    // same in-memory trace bytes are timed once per configuration.
    let configurations: Vec<Configuration> = match args.get("--config").unwrap_or("unprotected") {
        "all" => CONFIGURATION_NAMES
            .iter()
            .map(|name| named_configuration(name).expect("built-in configuration"))
            .collect(),
        list => list
            .split(',')
            .map(str::trim)
            .filter(|name| !name.is_empty())
            .map(|name| {
                named_configuration(name)
                    .unwrap_or_else(|| panic!("unknown configuration {name:?} (see --help)"))
            })
            .collect(),
    };
    if configurations.is_empty() {
        usage();
    }
    let shard_threads = args.get_u64("--shard-threads", 1) as usize;
    let window = args.get_u64("--window", 1 << 20);

    // Materialize the trace bytes in memory so the timed region measures the
    // ingestion pipeline (codec + mapping + shards + telemetry), not disk I/O.
    let bytes: Vec<u8> = match (args.get("--in"), args.get("--workload")) {
        (Some(path), _) => {
            let mut buf = Vec::new();
            if path == "-" {
                io::stdin().lock().read_to_end(&mut buf)?;
            } else {
                File::open(path)?.read_to_end(&mut buf)?;
            }
            buf
        }
        (None, Some(workload)) => {
            let per_core = args.get_u64("--records", 2_000_000) / 8;
            let (meta, records) =
                record_workload_trace(workload, args.get_u64("--seed", DEFAULT_SEED), per_core)
                    .unwrap_or_else(|| panic!("unknown workload {workload}"));
            let mut w = TraceWriter::new(Vec::new(), &meta)?;
            for &r in &records {
                w.push(r)?;
            }
            w.finish()?
        }
        (None, None) => usage(),
    };

    for configuration in &configurations {
        let runner = TraceRunner::new()
            .with_shard_threads(shard_threads)
            .with_window_records(window);
        let start = Instant::now();
        let report = runner.ingest(TraceReader::new(SliceSource::new(&bytes))?, configuration)?;
        let secs = start.elapsed().as_secs_f64();
        let mrps = report.records as f64 / secs / 1e6;
        println!(
            "ingest: {} records in {:.3} s = {mrps:.1} M records/s under {} \
             ({} shard threads, {} windows, verdict {})",
            report.records,
            secs,
            configuration.label,
            shard_threads,
            report.windows.len(),
            report.verdict.verdict
        );
    }
    Ok(())
}

fn read_bytes(path: &str) -> io::Result<Vec<u8>> {
    let mut buf = Vec::new();
    if path == "-" {
        io::stdin().lock().read_to_end(&mut buf)?;
    } else {
        File::open(path)?.read_to_end(&mut buf)?;
    }
    Ok(buf)
}

fn cmd_ingest(args: &Args) -> io::Result<()> {
    let input = args.get("--in").unwrap_or_else(|| usage());
    let configuration = args.configuration();
    let shard_threads = args.get_u64("--shard-threads", 1) as usize;
    let window = args.get_u64("--window", 1 << 20);
    let mode = if args.has("--resync") {
        DecodeMode::Resync
    } else {
        DecodeMode::Strict
    };

    let runner = TraceRunner::new()
        .with_shard_threads(shard_threads)
        .with_window_records(window);
    let report = if args.has("--follow") {
        // Stream a growing file or FIFO, riding out stalls under the
        // CLI-configured backoff/idle policy instead of buffering up front.
        let inner: Box<dyn Read> = if input == "-" {
            Box::new(io::stdin().lock())
        } else {
            Box::new(BufReader::new(File::open(input)?))
        };
        let follow = FollowSource::new(ReadSource::new(inner), args.follow_policy());
        runner.ingest(TraceReader::with_mode(follow, mode)?, &configuration)?
    } else {
        let bytes = read_bytes(input)?;
        runner.ingest(
            TraceReader::with_mode(SliceSource::new(&bytes), mode)?,
            &configuration,
        )?
    };
    eprintln!(
        "trace: ingested {} records of {} under {}: outcome {}, {} fault entries, \
         records_lost <= {}",
        report.records,
        report.verdict.workload,
        configuration.label,
        report.verdict.outcome(),
        report.verdict.faults.entries.len(),
        report.verdict.faults.records_lost()
    );
    let json = report.verdict.to_json();
    write_verdict_json(args.get("--verdict"), &json)?;
    check_expected(args, &json)
}

fn cmd_corrupt(args: &Args) -> io::Result<()> {
    let input = args.get("--in").unwrap_or_else(|| usage());
    let out = args.get("--out").unwrap_or_else(|| usage());
    let seed = args.get_u64("--seed", 1);

    let bytes = read_bytes(input)?;
    let map = FrameMap::scan(&bytes)?;
    let plan = FaultPlan::seeded(seed, &map);
    let corrupted = apply_plan(&bytes, &plan)?;
    std::fs::write(out, &corrupted)?;
    let impact = plan.expected(&map);
    eprintln!(
        "trace: corrupted {input} -> {out} with seed {seed}: {} fault ops over {} frames{}",
        plan.ops.len(),
        map.frames.len(),
        impact.map_or(String::new(), |i| format!(
            " (expect {} intact, >= {} lost{})",
            i.intact_records,
            i.damaged_records,
            if i.mid_frame_cut {
                ", mid-frame cut"
            } else {
                ""
            }
        ))
    );
    Ok(())
}

/// Set by the SIGTERM handler; a listening daemon polls it to drain
/// gracefully (finish the in-flight batch, final checkpoint, verdict,
/// protocol goodbye to the connected producer).
static DRAIN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_sigterm(_signum: i32) {
    DRAIN.store(true, Ordering::SeqCst);
}

/// Binds SIGTERM to the drain flag. Raw `signal(2)` keeps the binary free of
/// new dependencies; the handler only stores to an atomic, and every blocking
/// operation on the drain path uses short poll timeouts, so `SA_RESTART`
/// semantics are irrelevant.
fn install_sigterm_drain() {
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_sigterm);
    }
}

fn cmd_daemon(args: &Args) -> io::Result<()> {
    let listen = args.get("--listen");
    let input = match (args.get("--in"), listen) {
        (Some(path), None) => Some(path),
        (None, Some(_)) => None,
        _ => usage(),
    };
    let configuration = args.configuration();
    let checkpoint_path = args.get("--checkpoint").map(str::to_string);

    let resume_from = if args.has("--resume") {
        let path = checkpoint_path.as_deref().unwrap_or_else(|| usage());
        Some(Checkpoint::parse(&std::fs::read_to_string(path)?)?)
    } else {
        None
    };
    let options = DaemonOptions {
        window_records: args.get_u64("--window", 1 << 16),
        checkpoint_every: args.get_u64("--checkpoint-every", 1 << 18),
        // A socket producer can outpace the simulator indefinitely, so a
        // listening daemon bounds telemetry lag by default (shedding telemetry
        // via the watchdog — never records).
        max_lag_windows: args.get_u64("--max-lag", if listen.is_some() { 64 } else { 0 }) as usize,
        shard_threads: args.get_u64("--shard-threads", 1) as usize,
        resync: args.has("--resync"),
        resume_from,
        record_batch: None,
    };

    let mut on_checkpoint = |cp: &Checkpoint| match checkpoint_path.as_deref() {
        Some(path) => write_checkpoint_durable(Path::new(path), cp),
        None => Ok(()),
    };
    let report = if let Some(listen) = listen {
        let endpoint = Endpoint::parse(listen)?;
        let listener = Listener::bind(&endpoint)?;
        eprintln!("trace: daemon listening on {}", listener.local_endpoint()?);
        install_sigterm_drain();
        let mut policy = args.follow_policy();
        if args.get("--idle-timeout").is_none() {
            // A file follower's 5 s idle default is far too impatient for a
            // network listener waiting on producers to dial in or return.
            policy.idle_limit = Duration::from_secs(30);
        }
        let source = SocketSource::new(listener, policy).with_drain_flag(&DRAIN);
        supervise(source, &configuration, &options, &mut on_checkpoint)?
    } else {
        let input = input.expect("checked above");
        let reader: Box<dyn Read> = if input == "-" {
            Box::new(io::stdin().lock())
        } else {
            Box::new(BufReader::new(File::open(input)?))
        };
        if args.has("--follow") {
            let follow = FollowSource::new(ReadSource::new(reader), args.follow_policy());
            supervise(follow, &configuration, &options, &mut on_checkpoint)?
        } else {
            supervise(
                ReadSource::new(reader),
                &configuration,
                &options,
                &mut on_checkpoint,
            )?
        }
    };
    eprintln!(
        "trace: daemon ingested {} records of {} under {}: outcome {}, {} windows retained, \
         {} fault entries, records_lost <= {}{}",
        report.records,
        report.verdict.workload,
        configuration.label,
        report.verdict.outcome(),
        report.windows.len(),
        report.verdict.faults.entries.len(),
        report.verdict.faults.records_lost(),
        if args.has("--resume") {
            " (resumed)"
        } else {
            ""
        }
    );
    // The daemon always reports in the extended schema, so resumed and
    // uninterrupted runs are diffable modulo resume-marker lines.
    let json = report.verdict.to_json_extended();
    write_verdict_json(args.get("--verdict"), &json)?;
    check_expected(args, &json)
}

/// Dials the daemon for each session, with seeded connection faults layered
/// on when `--fault-seed` is given.
fn run_send<I: SendInput>(
    input: &mut I,
    endpoint: &Endpoint,
    options: &SendOptions,
    fault_seed: Option<u64>,
    payload_len: u64,
) -> io::Result<SendOutcome> {
    match fault_seed {
        None => send_to(endpoint, input, options),
        Some(seed) => {
            let plan = ConnFaultPlan::seeded(seed, payload_len);
            eprintln!(
                "trace: injecting {} seeded connection fault(s) (seed {seed})",
                plan.ops.len()
            );
            let state = ConnFaultState::shared(&plan);
            let ep = endpoint.clone();
            send_stream(
                input,
                move || {
                    WireLink::connect(&ep).map(|link| FaultTransport::new(link, Arc::clone(&state)))
                },
                options,
            )
        }
    }
}

fn cmd_send(args: &Args) -> io::Result<()> {
    let input = args.get("--in").unwrap_or_else(|| usage());
    let to = args.get("--to").unwrap_or_else(|| usage());
    let endpoint = Endpoint::parse(to)?;
    let defaults = SendOptions::default();
    let options = SendOptions {
        policy: args.follow_policy(),
        retry: !args.has("--no-retry"),
        data_bytes: args.get_u64("--chunk-bytes", defaults.data_bytes as u64) as usize,
        ack_window: args.get_u64("--ack-window", defaults.ack_window),
        follow: args.has("--follow"),
        max_sessions: args.get_u64("--max-sessions", defaults.max_sessions),
    };
    let fault_seed = args.get("--fault-seed").map(|v| {
        v.parse()
            .unwrap_or_else(|_| panic!("--fault-seed expects an integer, got {v:?}"))
    });

    // Input open errors are I/O failures (exit 3); everything after this
    // point that fails is a transport failure (exit 7).
    let result = if input == "-" {
        let mut src = ReaderInput::new(io::stdin().lock());
        run_send(&mut src, &endpoint, &options, fault_seed, 1 << 20)
    } else if std::fs::metadata(input)?.is_file() {
        let payload_len = std::fs::metadata(input)?.len();
        let mut src = FileInput::open(Path::new(input))?;
        run_send(&mut src, &endpoint, &options, fault_seed, payload_len)
    } else {
        // FIFOs and other non-seekable inputs stream forward-only; resume
        // still works as long as the daemon never asks to rewind.
        let mut src = ReaderInput::new(BufReader::new(File::open(input)?));
        run_send(&mut src, &endpoint, &options, fault_seed, 1 << 20)
    };
    match result {
        Ok(outcome) => {
            eprintln!(
                "trace: sent {} byte(s) acked over {} session(s), {} byte(s) retransmitted{}{}",
                outcome.acked,
                outcome.sessions,
                outcome.retransmitted,
                if outcome.goodbye {
                    ", daemon drained (goodbye)"
                } else {
                    ""
                },
                if outcome.complete {
                    ""
                } else {
                    " — stream NOT fully delivered"
                },
            );
            Ok(())
        }
        Err(e) => {
            eprintln!("trace: transport error: {e}");
            std::process::exit(EXIT_TRANSPORT);
        }
    }
}

/// Maps an error to its exit code by failure class.
fn exit_code_for(e: &io::Error) -> i32 {
    match e.kind() {
        io::ErrorKind::InvalidData | io::ErrorKind::UnexpectedEof => EXIT_CORRUPT,
        _ => EXIT_IO,
    }
}

fn main() {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        usage();
    }
    let command = argv.remove(0);
    let args = Args(argv);
    let outcome = std::panic::catch_unwind(move || match command.as_str() {
        "record" => cmd_record(&args),
        "replay" => cmd_replay(&args),
        "throughput" => cmd_throughput(&args),
        "ingest" => cmd_ingest(&args),
        "corrupt" => cmd_corrupt(&args),
        "daemon" => cmd_daemon(&args),
        "send" => cmd_send(&args),
        _ => usage(),
    });
    match outcome {
        Ok(Ok(())) => {}
        Ok(Err(e)) => {
            eprintln!("trace: error: {e}");
            std::process::exit(exit_code_for(&e));
        }
        Err(_) => {
            // The panic payload was already printed by the default hook.
            eprintln!("trace: internal panic");
            std::process::exit(EXIT_PANIC);
        }
    }
}
