//! Shared helpers for the experiment harness.
//!
//! Every table and figure of the paper has a dedicated binary in `src/bin/` (see
//! DESIGN.md §4 for the experiment index). The binaries print tab-separated tables to
//! stdout so their output can be diffed against the values recorded in EXPERIMENTS.md.
//! This library holds the formatting and sweep helpers they share.

#![warn(missing_docs)]

use impress_core::config::{DefenseKind, ProtectionConfig, TrackerChoice};
use impress_sim::{Configuration, ExperimentRunner, NormalizedResult};
use impress_workloads::{LocalityClass, WorkloadMix};

/// Number of memory requests per core used by the figure binaries.
///
/// Controlled by the `IMPRESS_SCALE` environment variable (see
/// `impress_sim::config::default_requests_per_core`); the default keeps the whole
/// figure suite under a few minutes.
pub fn requests_per_core() -> u64 {
    impress_sim::config::default_requests_per_core()
}

/// Workloads used by quick sweeps: a SPEC subset plus a STREAM subset that together
/// capture both locality classes. Set `IMPRESS_ALL_WORKLOADS=1` to run all twenty.
pub fn figure_workloads() -> Vec<&'static str> {
    if std::env::var("IMPRESS_ALL_WORKLOADS").is_ok() {
        WorkloadMix::paper_workload_names()
    } else {
        vec![
            "fotonik3d",
            "mcf",
            "gcc",
            "omnetpp",
            "xalancbmk",
            "add",
            "copy",
            "triad",
            "copy_scale",
            "add_triad",
        ]
    }
}

/// Prints a header row for a tab-separated table.
pub fn print_header(columns: &[&str]) {
    println!("{}", columns.join("\t"));
}

/// Prints one row of a tab-separated table.
pub fn print_row(label: &str, values: &[f64]) {
    let formatted: Vec<String> = values.iter().map(|v| format!("{v:.4}")).collect();
    println!("{label}\t{}", formatted.join("\t"));
}

/// Prints the SPEC and STREAM geometric means of a result set, one line per class.
pub fn print_class_gmeans(label: &str, results: &[NormalizedResult]) {
    let spec = ExperimentRunner::gmean_by_class(results, Some(LocalityClass::Spec));
    let stream = ExperimentRunner::gmean_by_class(results, Some(LocalityClass::Stream));
    print_row(&format!("{label}\tSPEC(GMean)"), &[spec]);
    print_row(&format!("{label}\tSTREAM(GMean)"), &[stream]);
}

/// Builds the paper's protected configurations for one tracker: ExPress (where
/// applicable), ImPress-N and ImPress-P, all at the given Rowhammer threshold.
pub fn defense_configurations(tracker: TrackerChoice, trh: u64) -> Vec<Configuration> {
    let timings = impress_dram::DramTimings::ddr5();
    let mut out = Vec::new();
    let mut push = |label: &str, defense: DefenseKind| {
        let protection = ProtectionConfig {
            rowhammer_threshold: trh,
            ..ProtectionConfig::paper_default(tracker, defense)
        };
        if protection.validate().is_ok() {
            out.push(Configuration::protected(
                format!("{}+{label}", tracker.label()),
                protection,
            ));
        }
    };
    push("No-RP", DefenseKind::NoRp);
    push("ExPress", DefenseKind::express_paper_baseline(&timings));
    push(
        "ImPress-N",
        DefenseKind::ImpressN {
            alpha: impress_core::Alpha::Conservative,
        },
    );
    push("ImPress-P", DefenseKind::impress_p_default());
    out
}

/// Runs every configuration over the figure workloads on the parallel sweep engine.
///
/// Baselines are computed once and shared; the result is
/// `out[configuration][workload]` in the input orders, bit-identical to a serial run.
pub fn run_sweep_over_workloads(
    runner: &ExperimentRunner,
    baseline: &Configuration,
    configurations: &[Configuration],
) -> Vec<Vec<NormalizedResult>> {
    runner.run_sweep(&figure_workloads(), baseline, configurations)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_workloads_cover_both_classes() {
        let workloads = figure_workloads();
        assert!(workloads
            .iter()
            .any(|w| WorkloadMix::by_name(w, 0).unwrap().class() == LocalityClass::Spec));
        assert!(workloads
            .iter()
            .any(|w| WorkloadMix::by_name(w, 0).unwrap().class() == LocalityClass::Stream));
    }

    #[test]
    fn defense_configurations_skip_invalid_combinations() {
        // ExPress cannot protect in-DRAM trackers, so MINT gets only three configs.
        assert_eq!(
            defense_configurations(TrackerChoice::Graphene, 4_000).len(),
            4
        );
        assert_eq!(defense_configurations(TrackerChoice::Mint, 4_000).len(), 3);
    }
}
