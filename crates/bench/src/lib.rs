//! Shared helpers for the experiment harness.
//!
//! Every table and figure of the paper has a dedicated binary in `src/bin/` (see
//! DESIGN.md §4 for the experiment index). The binaries print tab-separated tables to
//! stdout so their output can be diffed against the values recorded in EXPERIMENTS.md.
//! This library holds the formatting and sweep helpers they share.

#![warn(missing_docs)]

use impress_core::config::{DefenseKind, ProtectionConfig, TrackerChoice};
use impress_sim::{Configuration, ExperimentRunner, NormalizedResult};
use impress_workloads::codec::{TraceMeta, TraceRecord};
use impress_workloads::source::AccessSource;
use impress_workloads::{LocalityClass, WorkloadMix};

/// Number of memory requests per core used by the figure binaries.
///
/// Controlled by the `IMPRESS_SCALE` environment variable (see
/// `impress_sim::config::default_requests_per_core`); the default keeps the whole
/// figure suite under a few minutes.
pub fn requests_per_core() -> u64 {
    impress_sim::config::default_requests_per_core()
}

/// Workloads used by quick sweeps: a SPEC subset plus a STREAM subset that together
/// capture both locality classes. Set `IMPRESS_ALL_WORKLOADS=1` to run all twenty.
pub fn figure_workloads() -> Vec<&'static str> {
    if std::env::var("IMPRESS_ALL_WORKLOADS").is_ok() {
        WorkloadMix::paper_workload_names()
    } else {
        vec![
            "fotonik3d",
            "mcf",
            "gcc",
            "omnetpp",
            "xalancbmk",
            "add",
            "copy",
            "triad",
            "copy_scale",
            "add_triad",
        ]
    }
}

/// Prints a header row for a tab-separated table.
pub fn print_header(columns: &[&str]) {
    println!("{}", columns.join("\t"));
}

/// Prints one row of a tab-separated table.
pub fn print_row(label: &str, values: &[f64]) {
    let formatted: Vec<String> = values.iter().map(|v| format!("{v:.4}")).collect();
    println!("{label}\t{}", formatted.join("\t"));
}

/// Prints the SPEC and STREAM geometric means of a result set, one line per class.
pub fn print_class_gmeans(label: &str, results: &[NormalizedResult]) {
    let spec = ExperimentRunner::gmean_by_class(results, Some(LocalityClass::Spec));
    let stream = ExperimentRunner::gmean_by_class(results, Some(LocalityClass::Stream));
    print_row(&format!("{label}\tSPEC(GMean)"), &[spec]);
    print_row(&format!("{label}\tSTREAM(GMean)"), &[stream]);
}

/// Builds the paper's protected configurations for one tracker: ExPress (where
/// applicable), ImPress-N and ImPress-P, all at the given Rowhammer threshold.
pub fn defense_configurations(tracker: TrackerChoice, trh: u64) -> Vec<Configuration> {
    let timings = impress_dram::DramTimings::ddr5();
    let mut out = Vec::new();
    let mut push = |label: &str, defense: DefenseKind| {
        let protection = ProtectionConfig {
            rowhammer_threshold: trh,
            ..ProtectionConfig::paper_default(tracker, defense)
        };
        if protection.validate().is_ok() {
            out.push(Configuration::protected(
                format!("{}+{label}", tracker.label()),
                protection,
            ));
        }
    };
    push("No-RP", DefenseKind::NoRp);
    push("ExPress", DefenseKind::express_paper_baseline(&timings));
    push(
        "ImPress-N",
        DefenseKind::ImpressN {
            alpha: impress_core::Alpha::Conservative,
        },
    );
    push("ImPress-P", DefenseKind::impress_p_default());
    out
}

/// Every name [`named_configuration`] resolves, in its match order. `trace
/// throughput --config all` expands to this list.
pub const CONFIGURATION_NAMES: &[&str] = &[
    "unprotected",
    "graphene-impress-p",
    "para-impress-p",
    "mithril-impress-p",
];

/// Builds one of the named configurations the `trace` binary and smoke jobs use.
///
/// Names: `unprotected`, `graphene-impress-p`, `para-impress-p`,
/// `mithril-impress-p` (see [`CONFIGURATION_NAMES`]). Returns `None` for
/// anything else.
pub fn named_configuration(name: &str) -> Option<Configuration> {
    let protected = |tracker: TrackerChoice, label: &str| {
        Some(Configuration::protected(
            label,
            ProtectionConfig::paper_default(tracker, DefenseKind::impress_p_default()),
        ))
    };
    match name {
        "unprotected" => Some(Configuration::unprotected()),
        "graphene-impress-p" => protected(TrackerChoice::Graphene, "Graphene+ImPress-P"),
        "para-impress-p" => protected(TrackerChoice::Para, "PARA+ImPress-P"),
        "mithril-impress-p" => protected(TrackerChoice::Mithril, "Mithril+ImPress-P"),
        _ => None,
    }
}

/// Records `per_core` accesses per core of `workload` (seeded) as a trace.
///
/// Accesses are drawn round-robin per core from a fresh [`WorkloadMix`] — each
/// core's sequence is exactly what an in-process run with the same seed would
/// issue, so a closed-loop replay of the result reproduces that run bit for bit
/// (per-core generator streams do not depend on how the run interleaves them).
pub fn record_workload_trace(
    workload: &str,
    seed: u64,
    per_core: u64,
) -> Option<(TraceMeta, Vec<TraceRecord>)> {
    let mut mix = WorkloadMix::by_name(workload, seed)?;
    let cores = AccessSource::cores(&mix);
    let meta = TraceMeta {
        name: workload.to_string(),
        cores: cores as u8,
        has_gaps: false,
        instructions_per_miss: (0..cores)
            .map(|c| AccessSource::instructions_per_miss(&mix, c))
            .collect(),
    };
    let mut records = Vec::with_capacity(per_core as usize * cores);
    for _ in 0..per_core {
        for core in 0..cores {
            records.push(TraceRecord::from_access(
                AccessSource::next_access(&mut mix, core),
                0,
            ));
        }
    }
    Some((meta, records))
}

/// Runs every configuration over the figure workloads on the parallel sweep engine.
///
/// Baselines are computed once and shared; the result is
/// `out[configuration][workload]` in the input orders, bit-identical to a serial run.
pub fn run_sweep_over_workloads(
    runner: &ExperimentRunner,
    baseline: &Configuration,
    configurations: &[Configuration],
) -> Vec<Vec<NormalizedResult>> {
    runner.run_sweep(&figure_workloads(), baseline, configurations)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_workloads_cover_both_classes() {
        let workloads = figure_workloads();
        assert!(workloads
            .iter()
            .any(|w| WorkloadMix::by_name(w, 0).unwrap().class() == LocalityClass::Spec));
        assert!(workloads
            .iter()
            .any(|w| WorkloadMix::by_name(w, 0).unwrap().class() == LocalityClass::Stream));
    }

    #[test]
    fn named_configurations_resolve() {
        assert_eq!(
            named_configuration("unprotected").unwrap().label,
            "Unprotected"
        );
        assert!(named_configuration("graphene-impress-p")
            .unwrap()
            .protection
            .is_some());
        assert!(named_configuration("linpack").is_none());
    }

    #[test]
    fn recorded_trace_covers_every_core() {
        let (meta, records) = record_workload_trace("copy", 1, 50).unwrap();
        assert_eq!(meta.cores, 8);
        assert_eq!(records.len(), 400);
        for core in 0..8u8 {
            assert_eq!(records.iter().filter(|r| r.core == core).count(), 50);
        }
        assert!(record_workload_trace("linpack", 1, 10).is_none());
    }

    #[test]
    fn defense_configurations_skip_invalid_combinations() {
        // ExPress cannot protect in-DRAM trackers, so MINT gets only three configs.
        assert_eq!(
            defense_configurations(TrackerChoice::Graphene, 4_000).len(),
            4
        );
        assert_eq!(defense_configurations(TrackerChoice::Mint, 4_000).len(), 3);
    }
}
