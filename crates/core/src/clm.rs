//! The Unified Charge-Loss Model and its Conservative Linear Model (CLM) form (§IV).
//!
//! Both Rowhammer and Row-Press damage a victim cell by causing charge loss, at
//! different rates. The paper normalizes everything to "RH units": one activation with
//! the minimum open time (`tON = tRAS`) causes exactly 1 unit of damage, and a bit flip
//! occurs once a victim accumulates `TRH` units. For a row kept open for `tON`, the
//! Conservative Linear Model gives
//!
//! ```text
//! TCL(tON) = 1 + α · (tON − tRAS) / tRC          (Equation 3)
//! ```
//!
//! where `α` is the relative charge leakage per `tRC` of Row-Press compared to
//! Rowhammer. The paper uses α = 0.35 (fit to short-duration data), α = 0.48 (covers
//! all devices in the long-duration data of Figure 7) and α = 1 (device-independent
//! conservative bound).

use impress_dram::timing::{Cycle, DramTimings};

/// The charge lost by a victim cell, in "RH units" (1 unit = one minimum-length
/// activation of the adjacent aggressor row).
pub type ChargeLoss = f64;

/// Preset values of the CLM leakage-rate parameter α.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Alpha {
    /// α = 0.35: fit to the short-duration (≤ 8 tRC) Row-Press characterization
    /// (Figure 8).
    ShortDuration,
    /// α = 0.48: covers every device of all three vendors in the long-duration
    /// characterization (Figure 7).
    LongDuration,
    /// α = 1: device-independent conservative choice — Row-Press is never assumed to
    /// leak faster than Rowhammer (Observation 4 of §IV-E).
    Conservative,
    /// An explicit α value (for sensitivity studies).
    Custom(f64),
}

impl Alpha {
    /// The numeric value of this α preset.
    pub fn value(self) -> f64 {
        match self {
            Alpha::ShortDuration => 0.35,
            Alpha::LongDuration => 0.48,
            Alpha::Conservative => 1.0,
            Alpha::Custom(a) => a,
        }
    }
}

impl From<f64> for Alpha {
    fn from(a: f64) -> Self {
        Alpha::Custom(a)
    }
}

/// The Conservative Linear Model of Equation 3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChargeLossModel {
    alpha: f64,
    t_ras: Cycle,
    t_rc: Cycle,
    /// Cached `α / tRC` — the leakage slope per cycle of extra open time. The
    /// scalar and batch kernels both evaluate `1 + extra * loss_per_cycle`, so
    /// they agree bitwise by construction (and the scalar path saves a division).
    loss_per_cycle: f64,
}

impl ChargeLossModel {
    /// Creates a CLM with leakage rate `alpha` and the given DRAM timings.
    ///
    /// # Panics
    ///
    /// Panics if α is negative or not finite.
    pub fn new(alpha: impl Into<Alpha>, timings: &DramTimings) -> Self {
        let alpha = alpha.into().value();
        assert!(
            alpha.is_finite() && alpha >= 0.0,
            "alpha must be non-negative"
        );
        Self {
            alpha,
            t_ras: timings.t_ras,
            t_rc: timings.t_rc,
            loss_per_cycle: alpha / timings.t_rc as f64,
        }
    }

    /// The paper's default model for security sizing: α = 1 with DDR5 timings.
    pub fn conservative() -> Self {
        Self::new(Alpha::Conservative, &DramTimings::ddr5())
    }

    /// The α value of this model.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Total charge loss of a single access that keeps the row open for `t_on` cycles
    /// (Equation 3). Open times below `tRAS` are treated as `tRAS` (an activation can
    /// never do less than one unit of damage).
    pub fn charge_loss(&self, t_on: Cycle) -> ChargeLoss {
        let extra = t_on.saturating_sub(self.t_ras);
        1.0 + extra as f64 * self.loss_per_cycle
    }

    /// Writes `TCL(open_times[i])` into `out[i]` for every element — the batch form
    /// of [`ChargeLossModel::charge_loss`], bitwise-identical to it per element.
    ///
    /// The kernel is chunked and branch-free (`saturating_sub` lowers to a
    /// compare-select, the fused inner loop has no data-dependent control flow),
    /// so LLVM auto-vectorizes it; the security harness and the attack runner use
    /// it to evaluate victim damage for whole access batches at once.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn charge_loss_batch(&self, open_times: &[Cycle], out: &mut [f64]) {
        self.batch_kernel::<false>(open_times, out);
    }

    /// Accumulating variant of [`ChargeLossModel::charge_loss_batch`]:
    /// `out[i] += TCL(open_times[i])` — the shape of a victim-charge update, where
    /// each slot carries charge accumulated by earlier accesses. Same chunked,
    /// branch-free kernel; each element's contribution is bitwise-identical to
    /// `charge_loss`.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn charge_loss_accumulate(&self, open_times: &[Cycle], out: &mut [f64]) {
        self.batch_kernel::<true>(open_times, out);
    }

    /// The one copy of the chunked loop behind both batch entry points;
    /// `ACCUMULATE` selects store vs add-assign at compile time so each
    /// instantiation stays branch-free and auto-vectorizable.
    #[inline]
    fn batch_kernel<const ACCUMULATE: bool>(&self, open_times: &[Cycle], out: &mut [f64]) {
        assert_eq!(
            open_times.len(),
            out.len(),
            "charge-loss batch kernel: input and output lengths differ"
        );
        const LANES: usize = 8;
        let t_ras = self.t_ras;
        let slope = self.loss_per_cycle;
        let tcl = |t: Cycle| 1.0 + t.saturating_sub(t_ras) as f64 * slope;
        let mut out_chunks = out.chunks_exact_mut(LANES);
        let mut in_chunks = open_times.chunks_exact(LANES);
        for (o, t) in (&mut out_chunks).zip(&mut in_chunks) {
            // Fixed-size views give the optimizer exact trip counts per chunk.
            let o: &mut [f64; LANES] = o.try_into().expect("chunk is LANES wide");
            let t: &[Cycle; LANES] = t.try_into().expect("chunk is LANES wide");
            for k in 0..LANES {
                if ACCUMULATE {
                    o[k] += tcl(t[k]);
                } else {
                    o[k] = tcl(t[k]);
                }
            }
        }
        for (o, t) in out_chunks
            .into_remainder()
            .iter_mut()
            .zip(in_chunks.remainder())
        {
            if ACCUMULATE {
                *o += tcl(*t);
            } else {
                *o = tcl(*t);
            }
        }
    }

    /// Total charge loss of a Rowhammer pattern of `activations` minimum-length
    /// accesses (Equation 1: `TCL = K`).
    pub fn rowhammer_charge_loss(&self, activations: u64) -> ChargeLoss {
        activations as f64
    }

    /// Total charge loss per *round* of a Row-Press pattern expressed as the total
    /// attack time of the round (`tON + tPRE`) in units of `tRC`, as used in Figure 8.
    pub fn charge_loss_for_attack_time(&self, attack_time_trc: f64) -> ChargeLoss {
        // attack_time = (tON + tPRE)/tRC; the first tRC of the round behaves like RH.
        if attack_time_trc <= 1.0 {
            attack_time_trc.max(0.0)
        } else {
            1.0 + self.alpha * (attack_time_trc - 1.0)
        }
    }

    /// Combined charge loss of an arbitrary access pattern to the aggressor row,
    /// expressed as a sequence of per-access open times (the Unified Charge-Loss
    /// Model: the damage of interleaved RH and RP accesses simply adds up).
    pub fn pattern_charge_loss<I>(&self, open_times: I) -> ChargeLoss
    where
        I: IntoIterator<Item = Cycle>,
    {
        open_times.into_iter().map(|t| self.charge_loss(t)).sum()
    }

    /// The number of pattern rounds needed to reach critical charge `threshold` when
    /// each round keeps the row open for `t_on` (i.e. the reduced activation count T*
    /// of a pure Row-Press attack).
    pub fn rounds_to_flip(&self, t_on: Cycle, threshold: u64) -> u64 {
        (threshold as f64 / self.charge_loss(t_on)).ceil() as u64
    }

    /// The relative threshold `T*/TRH` when every activation may keep its row open for
    /// up to `t_on` cycles: `1 / TCL(t_on)`. This is the threshold-reduction factor that
    /// ExPress (with `tMRO = t_on`) and ImPress-N (with `t_on = tRAS + tRC`) must absorb.
    pub fn relative_threshold(&self, t_on: Cycle) -> f64 {
        1.0 / self.charge_loss(t_on)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn model(alpha: f64) -> ChargeLossModel {
        ChargeLossModel::new(alpha, &DramTimings::ddr5())
    }

    #[test]
    fn alpha_presets() {
        assert_eq!(Alpha::ShortDuration.value(), 0.35);
        assert_eq!(Alpha::LongDuration.value(), 0.48);
        assert_eq!(Alpha::Conservative.value(), 1.0);
        assert_eq!(Alpha::Custom(0.7).value(), 0.7);
    }

    #[test]
    fn minimum_open_time_is_one_unit() {
        let m = model(0.35);
        let t = DramTimings::ddr5();
        assert_eq!(m.charge_loss(t.t_ras), 1.0);
        // Shorter-than-tRAS accesses cannot do less than one unit of damage.
        assert_eq!(m.charge_loss(0), 1.0);
    }

    #[test]
    fn rowpress_degenerates_to_rowhammer_at_tras() {
        // §IV-C: "RP attack degenerates into a RH attack if tON is equal to tRAS".
        let t = DramTimings::ddr5();
        for alpha in [0.35, 0.48, 1.0] {
            assert_eq!(model(alpha).charge_loss(t.t_ras), 1.0);
        }
    }

    #[test]
    fn equation_4_example() {
        // TCL = 1 + 0.35 * (tON - tRAS)/tRC; one extra tRC of open time adds 0.35 units.
        let t = DramTimings::ddr5();
        let m = model(0.35);
        let tcl = m.charge_loss(t.t_ras + t.t_rc);
        assert!((tcl - 1.35).abs() < 1e-12);
    }

    #[test]
    fn alpha_one_matches_rowhammer_rate() {
        // With alpha = 1, keeping a row open for K*tRC does the same damage as K ACTs.
        let t = DramTimings::ddr5();
        let m = model(1.0);
        let tcl = m.charge_loss(t.t_ras + 5 * t.t_rc);
        assert!((tcl - 6.0).abs() < 1e-12);
    }

    #[test]
    fn rowpress_is_slower_than_rowhammer_per_unit_time() {
        // §IV-E observation 1: even with alpha = 0.48, RP does less than half the
        // damage per unit time compared to back-to-back RH.
        let t = DramTimings::ddr5();
        let m = model(0.48);
        let duration = 1000 * t.t_rc;
        let rp_damage = m.charge_loss(duration);
        let rh_damage = m.rowhammer_charge_loss(1000);
        assert!(rp_damage < 0.5 * rh_damage + 1.0);
    }

    #[test]
    fn rounds_to_flip_match_18x_reduction_scale() {
        // Luo et al.: keeping the row open for 1 tREFI (DDR4, 162 tRC) reduces the
        // required activations by ~18x on average; our alpha=0.48 envelope bounds this
        // from above (more conservative => fewer rounds predicted).
        let t = DramTimings::ddr4();
        let m = ChargeLossModel::new(Alpha::LongDuration, &t);
        let rounds = m.rounds_to_flip(t.t_refi, 4_000) as f64;
        let reduction = 4_000.0 / rounds;
        assert!(
            reduction > 18.0 && reduction < 160.0,
            "reduction = {reduction}"
        );
    }

    #[test]
    fn relative_threshold_for_impress_n_window() {
        // Equation 5: T* = TRH / (1 + alpha) when tON = tRAS + tRC.
        let t = DramTimings::ddr5();
        for alpha in [0.35, 1.0] {
            let m = model(alpha);
            let rel = m.relative_threshold(t.t_ras + t.t_rc);
            assert!((rel - 1.0 / (1.0 + alpha)).abs() < 1e-12);
        }
    }

    #[test]
    fn pattern_charge_adds_up() {
        let t = DramTimings::ddr5();
        let m = model(0.5);
        let pattern = [t.t_ras, t.t_ras + t.t_rc, t.t_ras + 2 * t.t_rc];
        let total = m.pattern_charge_loss(pattern);
        assert!((total - (1.0 + 1.5 + 2.0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn negative_alpha_is_rejected() {
        let _ = model(-0.1);
    }

    #[test]
    fn batch_matches_scalar_bitwise() {
        // Every chunk width (full LANES chunks plus every remainder length) and a
        // value mix spanning below-tRAS, exactly-tRAS and far-beyond open times.
        let m = model(0.48);
        for len in 0usize..40 {
            let open: Vec<u64> = (0..len as u64).map(|i| (i * 7919) % 300_000).collect();
            let mut out = vec![f64::NAN; len];
            m.charge_loss_batch(&open, &mut out);
            for (i, &t) in open.iter().enumerate() {
                assert_eq!(
                    out[i].to_bits(),
                    m.charge_loss(t).to_bits(),
                    "len={len} i={i} t={t}"
                );
            }
        }
    }

    #[test]
    fn accumulate_adds_the_scalar_contribution_bitwise() {
        let m = model(1.0);
        let open: Vec<u64> = (0..23u64).map(|i| 96 + i * 1_000).collect();
        let base: Vec<f64> = (0..23).map(|i| i as f64 * 0.625).collect();
        let mut acc = base.clone();
        m.charge_loss_accumulate(&open, &mut acc);
        for i in 0..open.len() {
            assert_eq!(
                acc[i].to_bits(),
                (base[i] + m.charge_loss(open[i])).to_bits(),
                "i={i}"
            );
        }
    }

    #[test]
    fn batch_agrees_with_pattern_charge_loss() {
        let m = model(0.35);
        let open: Vec<u64> = (0..1_000u64).map(|i| 96 + (i * 131) % 50_000).collect();
        let mut out = vec![0.0; open.len()];
        m.charge_loss_batch(&open, &mut out);
        // Sequential sum of the batch outputs is the sequential scalar sum.
        let batch_total: f64 = out.iter().sum();
        let scalar_total = m.pattern_charge_loss(open.iter().copied());
        assert_eq!(batch_total.to_bits(), scalar_total.to_bits());
    }

    #[test]
    #[should_panic(expected = "lengths differ")]
    fn batch_length_mismatch_is_rejected() {
        let m = model(0.5);
        let mut out = [0.0; 3];
        m.charge_loss_batch(&[1, 2], &mut out);
    }

    proptest! {
        /// Charge loss is monotonic in the open time.
        #[test]
        fn monotonic_in_open_time(a in 0u64..1_000_000, d in 0u64..1_000_000, alpha in 0.0f64..2.0) {
            let m = model(alpha);
            prop_assert!(m.charge_loss(a + d) >= m.charge_loss(a) - 1e-12);
        }

        /// A larger alpha never predicts less damage (conservatism is monotone in alpha).
        #[test]
        fn monotonic_in_alpha(t_on in 0u64..1_000_000, a1 in 0.0f64..1.0, a2 in 0.0f64..1.0) {
            prop_assume!(a1 <= a2);
            prop_assert!(model(a2).charge_loss(t_on) >= model(a1).charge_loss(t_on) - 1e-12);
        }

        /// Splitting an attack into more rounds never decreases total damage: N rounds of
        /// open time T cause at least as much damage as one round of open time N*T
        /// (because each round re-pays the full activation unit).
        #[test]
        fn splitting_rounds_never_reduces_damage(t_on in 96u64..10_000, n in 1u64..20, alpha in 0.0f64..1.0) {
            let m = model(alpha);
            let split: ChargeLoss = (0..n).map(|_| m.charge_loss(t_on)).sum();
            let merged = m.charge_loss(n * t_on);
            prop_assert!(split >= merged - 1e-9);
        }
    }
}
