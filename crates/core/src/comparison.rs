//! The qualitative comparison of ExPress, ImPress-N and ImPress-P (Table III).

use std::fmt;

use impress_dram::DramTimings;

use crate::clm::Alpha;
use crate::config::DefenseKind;

/// Qualitative level used in Table III's performance-overhead row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverheadLevel {
    /// Negligible or low overhead.
    Low,
    /// Noticeable overhead.
    Medium,
    /// Significant overhead.
    High,
}

impl fmt::Display for OverheadLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OverheadLevel::Low => "Low",
            OverheadLevel::Medium => "Medium",
            OverheadLevel::High => "High",
        };
        f.write_str(s)
    }
}

/// One column of Table III: the properties of a Row-Press mitigation scheme.
#[derive(Debug, Clone, PartialEq)]
pub struct DefenseProperties {
    /// Scheme name.
    pub name: &'static str,
    /// Does the scheme put a limit on the row-open time?
    pub limits_t_on: bool,
    /// Factor by which the tracker's target threshold shrinks (1.0 = unchanged).
    pub threshold_factor: f64,
    /// Qualitative performance overhead.
    pub performance: OverheadLevel,
    /// Does the scheme need more tracking entries (up to 2x)?
    pub more_entries: bool,
    /// Does the scheme need wider tracking entries (extra fractional bits)?
    pub wider_entries: bool,
    /// Is the scheme compatible with in-DRAM trackers?
    pub in_dram_compatible: bool,
    /// Does the scheme's security depend on the per-device α?
    pub device_dependent: bool,
}

impl DefenseProperties {
    /// Properties of a defense configuration, reproducing Table III.
    pub fn of(defense: &DefenseKind, timings: &DramTimings) -> Self {
        let scale = defense.build(timings).tracker_threshold_scale();
        match defense {
            DefenseKind::NoRp => Self {
                name: "No-RP",
                limits_t_on: false,
                threshold_factor: 1.0,
                performance: OverheadLevel::Low,
                more_entries: false,
                wider_entries: false,
                in_dram_compatible: true,
                device_dependent: false,
            },
            DefenseKind::Express { .. } => Self {
                name: "ExPress",
                limits_t_on: true,
                threshold_factor: scale,
                performance: OverheadLevel::High,
                more_entries: true,
                wider_entries: false,
                in_dram_compatible: false,
                device_dependent: true,
            },
            DefenseKind::ImpressN { .. } => Self {
                name: "ImPress-N",
                limits_t_on: false,
                threshold_factor: scale,
                performance: OverheadLevel::Medium,
                more_entries: true,
                wider_entries: false,
                in_dram_compatible: true,
                device_dependent: true,
            },
            DefenseKind::ImpressP { .. } => Self {
                name: "ImPress-P",
                limits_t_on: false,
                threshold_factor: 1.0,
                performance: OverheadLevel::Low,
                more_entries: false,
                wider_entries: true,
                in_dram_compatible: true,
                device_dependent: false,
            },
        }
    }

    /// The three columns of Table III (ExPress, ImPress-N, ImPress-P), built with the
    /// paper's default parameters (α = 1, 7 fractional bits).
    pub fn table3(timings: &DramTimings) -> [DefenseProperties; 3] {
        [
            Self::of(&DefenseKind::express_paper_baseline(timings), timings),
            Self::of(
                &DefenseKind::ImpressN {
                    alpha: Alpha::Conservative,
                },
                timings,
            ),
            Self::of(&DefenseKind::impress_p_default(), timings),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_matches_paper() {
        let t = DramTimings::ddr5();
        let [express, impress_n, impress_p] = DefenseProperties::table3(&t);

        // Row "Puts Limit on tON": Yes / No / No.
        assert!(express.limits_t_on);
        assert!(!impress_n.limits_t_on);
        assert!(!impress_p.limits_t_on);

        // Row "Affects Threshold": up to 2x / up to 2x / 1x.
        assert!((express.threshold_factor - 0.5).abs() < 1e-12);
        assert!((impress_n.threshold_factor - 0.5).abs() < 1e-12);
        assert_eq!(impress_p.threshold_factor, 1.0);

        // Row "In-DRAM Trackers": Incompatible / Compatible / Compatible.
        assert!(!express.in_dram_compatible);
        assert!(impress_n.in_dram_compatible);
        assert!(impress_p.in_dram_compatible);

        // Row "Device Dependency": Yes / Yes / No.
        assert!(express.device_dependent);
        assert!(impress_n.device_dependent);
        assert!(!impress_p.device_dependent);

        // Rows "More Tracking Entries" / "Wider Tracking Entries".
        assert!(express.more_entries && !express.wider_entries);
        assert!(impress_n.more_entries && !impress_n.wider_entries);
        assert!(!impress_p.more_entries && impress_p.wider_entries);

        // Row "Performance Overheads": High / Medium / Low.
        assert_eq!(express.performance, OverheadLevel::High);
        assert_eq!(impress_n.performance, OverheadLevel::Medium);
        assert_eq!(impress_p.performance, OverheadLevel::Low);
    }

    #[test]
    fn overhead_level_display() {
        assert_eq!(OverheadLevel::Low.to_string(), "Low");
        assert_eq!(OverheadLevel::High.to_string(), "High");
    }
}
