//! Configuration types tying a Row-Press defense to a Rowhammer tracker.

use std::fmt;

use impress_dram::timing::{Cycle, DramTimings};
use impress_trackers::eact::CANONICAL_FRAC_BITS;
use impress_trackers::graphene::GrapheneConfig;
use impress_trackers::mithril::MithrilConfig;
use impress_trackers::{analysis, EvictionEngine, Graphene, Mint, Mithril, Para, Prac, RowTracker};

use crate::clm::Alpha;
use crate::defense::{NoRowPressDefense, RowPressDefense};
use crate::express::{Express, ThresholdSource};
use crate::impress_n::ImpressN;
use crate::impress_p::ImpressP;

/// Which Row-Press mitigation is deployed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DefenseKind {
    /// No Row-Press mitigation (Rowhammer tracking only).
    NoRp,
    /// ExPress: limit the row-open time to `t_mro` and re-target the tracker using the
    /// CLM with `alpha`.
    Express {
        /// Maximum row-open time enforced by the memory controller, in cycles.
        t_mro: Cycle,
        /// α used to derive the reduced tracker threshold.
        alpha: Alpha,
    },
    /// ImPress-N with the given α assumption.
    ImpressN {
        /// α used to derive the reduced tracker threshold (Equation 5).
        alpha: Alpha,
    },
    /// ImPress-P with the given number of fractional EACT bits.
    ImpressP {
        /// Fractional EACT bits kept by the counters (7 in the paper's default).
        frac_bits: u32,
    },
}

impl DefenseKind {
    /// The paper's default ExPress comparison point: `tMRO = tRAS + tRC` at α = 1.
    pub fn express_paper_baseline(timings: &DramTimings) -> Self {
        DefenseKind::Express {
            t_mro: timings.t_ras + timings.t_rc,
            alpha: Alpha::Conservative,
        }
    }

    /// The paper's default ImPress-P configuration (7 fractional bits).
    pub fn impress_p_default() -> Self {
        DefenseKind::ImpressP {
            frac_bits: CANONICAL_FRAC_BITS,
        }
    }

    /// Builds the per-bank defense object.
    pub fn build(&self, timings: &DramTimings) -> Box<dyn RowPressDefense> {
        match *self {
            DefenseKind::NoRp => Box::new(NoRowPressDefense::new()),
            DefenseKind::Express { t_mro, alpha } => {
                Box::new(Express::new(t_mro, ThresholdSource::Clm(alpha), timings))
            }
            DefenseKind::ImpressN { alpha } => Box::new(ImpressN::new(alpha, timings)),
            DefenseKind::ImpressP { frac_bits } => Box::new(ImpressP::new(frac_bits, timings)),
        }
    }

    /// Fractional EACT bits the tracker counters must support under this defense.
    pub fn tracker_frac_bits(&self) -> u32 {
        match *self {
            DefenseKind::ImpressP { frac_bits } => frac_bits,
            _ => 0,
        }
    }

    /// Short name used in experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            DefenseKind::NoRp => "No-RP",
            DefenseKind::Express { .. } => "ExPress",
            DefenseKind::ImpressN { .. } => "ImPress-N",
            DefenseKind::ImpressP { .. } => "ImPress-P",
        }
    }

    /// Returns `true` if the defense can be deployed with in-DRAM trackers.
    pub fn compatible_with_in_dram(&self) -> bool {
        !matches!(self, DefenseKind::Express { .. })
    }
}

impl fmt::Display for DefenseKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DefenseKind::Express { t_mro, alpha } => write!(
                f,
                "ExPress(tMRO={}ns, α={})",
                impress_dram::timing::cycles_to_ns(*t_mro),
                alpha.value()
            ),
            DefenseKind::ImpressN { alpha } => write!(f, "ImPress-N(α={})", alpha.value()),
            DefenseKind::ImpressP { frac_bits } => write!(f, "ImPress-P({frac_bits} frac bits)"),
            DefenseKind::NoRp => write!(f, "No-RP"),
        }
    }
}

/// Which Rowhammer tracker is deployed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrackerChoice {
    /// Graphene (memory-controller, counter based).
    Graphene,
    /// PARA (memory-controller, probabilistic).
    Para,
    /// Mithril (in-DRAM, counter based).
    Mithril,
    /// MINT (in-DRAM, probabilistic, single entry).
    Mint,
    /// PRAC (in-DRAM, per-row counters; §VI-F extension).
    Prac,
}

impl TrackerChoice {
    /// All tracker choices evaluated in the paper (PRAC is the §VI-F extension).
    pub const PAPER_SET: [TrackerChoice; 4] = [
        TrackerChoice::Graphene,
        TrackerChoice::Para,
        TrackerChoice::Mithril,
        TrackerChoice::Mint,
    ];

    /// Returns `true` for trackers whose mitigation happens inside the DRAM under RFM.
    pub fn is_in_dram(self) -> bool {
        matches!(
            self,
            TrackerChoice::Mithril | TrackerChoice::Mint | TrackerChoice::Prac
        )
    }

    /// Short name used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            TrackerChoice::Graphene => "Graphene",
            TrackerChoice::Para => "PARA",
            TrackerChoice::Mithril => "Mithril",
            TrackerChoice::Mint => "MINT",
            TrackerChoice::Prac => "PRAC",
        }
    }
}

impl fmt::Display for TrackerChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A complete protection configuration: threshold, tracker, defense and RFM cadence.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtectionConfig {
    /// The Rowhammer threshold of the devices being protected.
    pub rowhammer_threshold: u64,
    /// The tracker deployed per bank.
    pub tracker: TrackerChoice,
    /// The Row-Press defense deployed per bank.
    pub defense: DefenseKind,
    /// The RFM threshold used by the memory controller (activations per RFM).
    pub rfm_threshold: u32,
    /// Seed for probabilistic trackers (PARA, MINT).
    pub seed: u64,
    /// Rows per bank (used to clip victim refreshes at the array edge).
    pub rows_per_bank: u32,
    /// Eviction engine for the counter-table trackers (Graphene, Mithril):
    /// `None` defers to the `IMPRESS_EVICTION` environment default
    /// ([`EvictionEngine::from_env`]), `Some` pins an engine explicitly (the A/B
    /// harnesses and equivalence gates use this).
    pub eviction: Option<EvictionEngine>,
}

impl ProtectionConfig {
    /// The paper's baseline configuration for a given tracker and defense:
    /// TRH = 4K, RFMTH = 80.
    pub fn paper_default(tracker: TrackerChoice, defense: DefenseKind) -> Self {
        Self {
            rowhammer_threshold: 4_000,
            tracker,
            defense,
            rfm_threshold: 80,
            seed: 0xD2A4_0001,
            rows_per_bank: 1 << 16,
            eviction: None,
        }
    }

    /// This configuration with the counter-tracker eviction engine pinned.
    pub fn with_eviction_engine(mut self, engine: EvictionEngine) -> Self {
        self.eviction = Some(engine);
        self
    }

    /// The eviction engine counter trackers will be built with: the pinned one,
    /// or the `IMPRESS_EVICTION` environment default.
    pub fn eviction_engine(&self) -> EvictionEngine {
        self.eviction.unwrap_or_else(EvictionEngine::from_env)
    }

    /// The threshold the tracker must actually be configured for after applying the
    /// defense's threshold scaling (T*).
    pub fn effective_tracker_threshold(&self, timings: &DramTimings) -> u64 {
        let scale = self.defense.build(timings).tracker_threshold_scale();
        ((self.rowhammer_threshold as f64) * scale).floor().max(1.0) as u64
    }

    /// The RFM threshold the controller must use: in-DRAM probabilistic trackers (MINT)
    /// compensate for a reduced T* by issuing RFM more often (Appendix A).
    pub fn effective_rfm_threshold(&self, timings: &DramTimings) -> u32 {
        if self.tracker == TrackerChoice::Mint {
            let scale = self.defense.build(timings).tracker_threshold_scale();
            ((f64::from(self.rfm_threshold)) * scale).floor().max(1.0) as u32
        } else {
            self.rfm_threshold
        }
    }

    /// Builds the per-bank tracker, already re-targeted to the defense's effective
    /// threshold and EACT precision.
    pub fn build_tracker(&self, timings: &DramTimings) -> Box<dyn RowTracker> {
        let threshold = self.effective_tracker_threshold(timings);
        let frac_bits = self.defense.tracker_frac_bits();
        match self.tracker {
            TrackerChoice::Graphene => {
                let mut cfg = GrapheneConfig::for_threshold(threshold);
                cfg.frac_bits = frac_bits;
                Box::new(Graphene::with_engine(cfg, self.eviction_engine()))
            }
            TrackerChoice::Para => {
                let p = analysis::para_probability(threshold);
                Box::new(Para::with_probability(threshold, p, self.seed))
            }
            TrackerChoice::Mithril => {
                let cfg = MithrilConfig::with_rfm_threshold(threshold, self.rfm_threshold)
                    .with_frac_bits(frac_bits);
                Box::new(Mithril::with_engine(cfg, self.eviction_engine()))
            }
            TrackerChoice::Mint => Box::new(Mint::new(
                self.effective_rfm_threshold(timings),
                frac_bits,
                self.seed,
            )),
            TrackerChoice::Prac => Box::new(Prac::for_threshold(
                threshold,
                frac_bits,
                self.rows_per_bank,
            )),
        }
    }

    /// Builds the per-bank defense object.
    pub fn build_defense(&self, timings: &DramTimings) -> Box<dyn RowPressDefense> {
        self.defense.build(timings)
    }

    /// Returns an error message if the configuration is invalid (e.g. ExPress combined
    /// with an in-DRAM tracker, which the paper identifies as impossible).
    pub fn validate(&self) -> Result<(), String> {
        if matches!(self.defense, DefenseKind::Express { .. }) && self.tracker.is_in_dram() {
            return Err(format!(
                "{} cannot protect in-DRAM tracker {}: tMRO is not visible inside the DRAM device",
                self.defense.label(),
                self.tracker
            ));
        }
        if self.rowhammer_threshold < 2 {
            return Err("Rowhammer threshold must be at least 2".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn express_with_in_dram_tracker_is_rejected() {
        let t = DramTimings::ddr5();
        let cfg = ProtectionConfig::paper_default(
            TrackerChoice::Mithril,
            DefenseKind::express_paper_baseline(&t),
        );
        assert!(cfg.validate().is_err());
        let ok = ProtectionConfig::paper_default(
            TrackerChoice::Mithril,
            DefenseKind::ImpressN {
                alpha: Alpha::Conservative,
            },
        );
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn effective_threshold_halves_under_impress_n_alpha1() {
        let t = DramTimings::ddr5();
        let cfg = ProtectionConfig::paper_default(
            TrackerChoice::Graphene,
            DefenseKind::ImpressN {
                alpha: Alpha::Conservative,
            },
        );
        assert_eq!(cfg.effective_tracker_threshold(&t), 2_000);
        let norp = ProtectionConfig::paper_default(TrackerChoice::Graphene, DefenseKind::NoRp);
        assert_eq!(norp.effective_tracker_threshold(&t), 4_000);
        let p = ProtectionConfig::paper_default(
            TrackerChoice::Graphene,
            DefenseKind::impress_p_default(),
        );
        assert_eq!(p.effective_tracker_threshold(&t), 4_000);
    }

    #[test]
    fn mint_compensates_with_lower_rfm_threshold() {
        let t = DramTimings::ddr5();
        let cfg = ProtectionConfig::paper_default(
            TrackerChoice::Mint,
            DefenseKind::ImpressN {
                alpha: Alpha::Conservative,
            },
        );
        // Appendix A: RFM-40 keeps MINT's tolerated threshold at 1.6K under alpha = 1.
        assert_eq!(cfg.effective_rfm_threshold(&t), 40);
        let a035 = ProtectionConfig::paper_default(
            TrackerChoice::Mint,
            DefenseKind::ImpressN {
                alpha: Alpha::ShortDuration,
            },
        );
        assert_eq!(a035.effective_rfm_threshold(&t), 59);
    }

    #[test]
    fn built_trackers_have_expected_kinds() {
        let t = DramTimings::ddr5();
        for (choice, kind) in [
            (
                TrackerChoice::Graphene,
                impress_trackers::TrackerKind::Graphene,
            ),
            (TrackerChoice::Para, impress_trackers::TrackerKind::Para),
            (
                TrackerChoice::Mithril,
                impress_trackers::TrackerKind::Mithril,
            ),
            (TrackerChoice::Mint, impress_trackers::TrackerKind::Mint),
            (TrackerChoice::Prac, impress_trackers::TrackerKind::Prac),
        ] {
            let cfg = ProtectionConfig::paper_default(choice, DefenseKind::impress_p_default());
            assert_eq!(cfg.build_tracker(&t).kind(), kind);
        }
    }

    #[test]
    fn defense_labels_and_compatibility() {
        let t = DramTimings::ddr5();
        assert_eq!(DefenseKind::NoRp.label(), "No-RP");
        assert!(DefenseKind::impress_p_default().compatible_with_in_dram());
        assert!(!DefenseKind::express_paper_baseline(&t).compatible_with_in_dram());
        assert_eq!(
            DefenseKind::impress_p_default().to_string(),
            "ImPress-P(7 frac bits)"
        );
    }

    #[test]
    fn eviction_engine_knob_pins_counter_trackers() {
        use impress_trackers::EvictionEngine;
        let base = ProtectionConfig::paper_default(
            TrackerChoice::Graphene,
            DefenseKind::impress_p_default(),
        );
        // Unpinned defers to the environment default (Summary in tests).
        assert_eq!(base.eviction, None);
        assert_eq!(base.eviction_engine(), EvictionEngine::from_env());
        let pinned = base.clone().with_eviction_engine(EvictionEngine::Scan);
        assert_eq!(pinned.eviction_engine(), EvictionEngine::Scan);
        // Pinning shows up in the built trackers.
        let t = DramTimings::ddr5();
        for choice in [TrackerChoice::Graphene, TrackerChoice::Mithril] {
            for engine in [EvictionEngine::Scan, EvictionEngine::Summary] {
                let cfg = ProtectionConfig::paper_default(choice, DefenseKind::impress_p_default())
                    .with_eviction_engine(engine);
                // Smoke: construction succeeds and the tracker works.
                let mut tracker = cfg.build_tracker(&t);
                assert!(tracker.record(1, impress_trackers::Eact::ONE, 0).is_none());
            }
        }
    }

    #[test]
    fn tracker_frac_bits_only_for_impress_p() {
        assert_eq!(DefenseKind::impress_p_default().tracker_frac_bits(), 7);
        assert_eq!(DefenseKind::NoRp.tracker_frac_bits(), 0);
    }
}
