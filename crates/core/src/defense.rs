//! The [`RowPressDefense`] trait: how Row-Press activity is converted into tracker input.
//!
//! A defense sits between the memory controller (or the DRAM command decoder, for
//! in-DRAM trackers) and the Rowhammer tracker. It observes row activations and row
//! closures and produces the stream of [`TrackedActivation`]s that the tracker consumes:
//!
//! * **No-RP** (baseline): every ACT becomes one unit activation; row-open time ignored.
//! * **ExPress** (§II-E): like No-RP, but the controller must additionally cap the row
//!   open time at `tMRO` and the tracker must be re-targeted to the reduced threshold T*.
//! * **ImPress-N** (§V): every ACT becomes one unit activation, and every full `tRC`
//!   window a row stays open adds one more unit activation (ORA semantics).
//! * **ImPress-P** (§VI): nothing is emitted at ACT; at row close one activation with
//!   the measured `EACT = (tON + tPRE)/tRC` is emitted.

use std::fmt;

use impress_dram::address::RowId;
use impress_dram::bank::ClosedRow;
use impress_dram::timing::Cycle;
use impress_trackers::Eact;

/// One tracker-visible activation event produced by a defense.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrackedActivation {
    /// The aggressor row the event is attributed to.
    pub row: RowId,
    /// The equivalent activation count of the event.
    pub eact: Eact,
}

impl TrackedActivation {
    /// A single conventional activation of `row`.
    pub fn unit(row: RowId) -> Self {
        Self {
            row,
            eact: Eact::ONE,
        }
    }
}

/// A Row-Press defense: converts ACT/close events into tracker input.
///
/// Implementations are per-bank (they may carry per-bank state such as ImPress-N's
/// window/ORA registers).
///
/// Both event hooks append to a caller-provided buffer instead of returning a fresh
/// `Vec`: these methods sit in the innermost activation loop of the simulator, and the
/// caller ([`BankMitigationEngine`](crate::engine::BankMitigationEngine)) reuses one
/// scratch buffer for the whole run.
///
/// `Send` is a supertrait because defenses live inside `ChannelShard`s, which the
/// epoch-phased system loop moves across worker threads between refresh epochs.
pub trait RowPressDefense: fmt::Debug + Send {
    /// Called when the bank activates `row` at cycle `now`; appends the activations the
    /// tracker should record immediately to `out`.
    fn on_activate(&mut self, row: RowId, now: Cycle, out: &mut Vec<TrackedActivation>);

    /// Called when a row is closed (by precharge, refresh, or RFM); appends the
    /// activations the tracker should record for the row's open time to `out`.
    fn on_close(&mut self, closed: &ClosedRow, out: &mut Vec<TrackedActivation>);

    /// The maximum row-open time the memory controller must enforce, if any.
    ///
    /// Only ExPress constrains this; returning `Some` makes the defense incompatible
    /// with in-DRAM trackers (the tMRO value is not visible inside the DRAM device).
    fn max_row_open(&self) -> Option<Cycle> {
        None
    }

    /// The factor by which the underlying tracker's target threshold must be scaled
    /// (T*/TRH) so that the system still tolerates the nominal Rowhammer threshold.
    ///
    /// 1.0 means the tracker keeps its original configuration (No-RP, ImPress-P).
    fn tracker_threshold_scale(&self) -> f64 {
        1.0
    }

    /// Human-readable name used in experiment output.
    fn name(&self) -> &'static str;
}

/// The unprotected baseline: Rowhammer tracking only, no Row-Press awareness.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoRowPressDefense;

impl NoRowPressDefense {
    /// Creates the baseline defense.
    pub fn new() -> Self {
        Self
    }
}

impl RowPressDefense for NoRowPressDefense {
    fn on_activate(&mut self, row: RowId, _now: Cycle, out: &mut Vec<TrackedActivation>) {
        out.push(TrackedActivation::unit(row));
    }

    fn on_close(&mut self, _closed: &ClosedRow, _out: &mut Vec<TrackedActivation>) {}

    fn name(&self) -> &'static str {
        "No-RP"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_rp_emits_one_unit_per_activation() {
        let mut d = NoRowPressDefense::new();
        let mut events = Vec::new();
        d.on_activate(42, 0, &mut events);
        assert_eq!(events, vec![TrackedActivation::unit(42)]);
        let closed = ClosedRow {
            row: 42,
            open_cycles: 10_000,
            opened_at: 0,
            closed_at: 10_000,
        };
        events.clear();
        d.on_close(&closed, &mut events);
        assert!(events.is_empty());
        assert_eq!(d.max_row_open(), None);
        assert_eq!(d.tracker_threshold_scale(), 1.0);
    }
}
