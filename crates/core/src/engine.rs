//! The per-bank mitigation engine: defense + tracker glued together.
//!
//! [`BankMitigationEngine`] is the object the memory controller (or an attack runner)
//! talks to. It owns one [`RowPressDefense`] and one [`RowTracker`] per bank, routes
//! activation and row-closure events through the defense into the tracker, handles RFM
//! and refresh-window callbacks, and counts how many mitigations were requested.

use impress_dram::address::RowId;
use impress_dram::bank::ClosedRow;
use impress_dram::timing::{Cycle, DramTimings};
use impress_trackers::{MitigationRequest, RowTracker};

use crate::config::ProtectionConfig;
use crate::defense::{RowPressDefense, TrackedActivation};

/// Counters describing the engine's activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Activations recorded into the tracker (unit events plus EACT events).
    pub tracked_events: u64,
    /// Mitigations requested by the tracker outside of RFM (memory-controller trackers).
    pub direct_mitigations: u64,
    /// Mitigations performed under RFM (in-DRAM trackers).
    pub rfm_mitigations: u64,
}

impl EngineStats {
    /// Total mitigations of either kind.
    pub fn total_mitigations(&self) -> u64 {
        self.direct_mitigations + self.rfm_mitigations
    }
}

/// The combined Row-Press defense and Rowhammer tracker for one bank.
pub struct BankMitigationEngine {
    defense: Box<dyn RowPressDefense>,
    tracker: Box<dyn RowTracker>,
    t_refw: Cycle,
    next_refresh_window: Cycle,
    stats: EngineStats,
    /// Reusable scratch for the defense's tracked-activation events, so the
    /// per-activation path performs no allocation in steady state.
    event_buf: Vec<TrackedActivation>,
}

impl std::fmt::Debug for BankMitigationEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BankMitigationEngine")
            .field("defense", &self.defense.name())
            .field("tracker", &self.tracker.kind())
            .field("stats", &self.stats)
            .finish()
    }
}

impl BankMitigationEngine {
    /// Builds the engine for one bank from a protection configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (e.g. ExPress with an in-DRAM tracker);
    /// call [`ProtectionConfig::validate`] first to handle the error gracefully.
    pub fn new(config: &ProtectionConfig, timings: &DramTimings) -> Self {
        if let Err(msg) = config.validate() {
            panic!("invalid protection configuration: {msg}");
        }
        Self {
            defense: config.build_defense(timings),
            tracker: config.build_tracker(timings),
            t_refw: timings.t_refw,
            next_refresh_window: timings.t_refw,
            stats: EngineStats::default(),
            event_buf: Vec::with_capacity(16),
        }
    }

    /// Builds an engine from already-constructed parts (used by tests and by
    /// experiments that need non-standard tracker sizing).
    pub fn from_parts(
        defense: Box<dyn RowPressDefense>,
        tracker: Box<dyn RowTracker>,
        timings: &DramTimings,
    ) -> Self {
        Self {
            defense,
            tracker,
            t_refw: timings.t_refw,
            next_refresh_window: timings.t_refw,
            stats: EngineStats::default(),
            event_buf: Vec::with_capacity(16),
        }
    }

    /// The maximum row-open time the memory controller must enforce (ExPress only).
    pub fn max_row_open(&self) -> Option<Cycle> {
        self.defense.max_row_open()
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Name of the deployed defense.
    pub fn defense_name(&self) -> &'static str {
        self.defense.name()
    }

    /// Access to the underlying tracker (for storage queries and test assertions).
    pub fn tracker(&self) -> &dyn RowTracker {
        self.tracker.as_ref()
    }

    fn advance_refresh_window(&mut self, now: Cycle) {
        while now >= self.next_refresh_window {
            self.tracker.on_refresh_window(self.next_refresh_window);
            self.next_refresh_window += self.t_refw;
        }
    }

    /// Processes an activation of `row` at `now`, appending any mitigations the tracker
    /// requests immediately to `out`.
    ///
    /// `out` is not cleared: the caller owns the buffer and reuses it across events,
    /// so the steady-state activation path performs no allocation.
    pub fn on_activate_into(&mut self, row: RowId, now: Cycle, out: &mut Vec<MitigationRequest>) {
        self.advance_refresh_window(now);
        self.event_buf.clear();
        self.defense.on_activate(row, now, &mut self.event_buf);
        for i in 0..self.event_buf.len() {
            let event = self.event_buf[i];
            self.stats.tracked_events += 1;
            if let Some(m) = self.tracker.record(event.row, event.eact, now) {
                self.stats.direct_mitigations += 1;
                out.push(m);
            }
        }
    }

    /// Processes a row closure, appending any mitigations the tracker requests to
    /// `out` (same buffer contract as [`BankMitigationEngine::on_activate_into`]).
    pub fn on_close_into(&mut self, closed: &ClosedRow, out: &mut Vec<MitigationRequest>) {
        self.advance_refresh_window(closed.closed_at);
        self.event_buf.clear();
        self.defense.on_close(closed, &mut self.event_buf);
        for i in 0..self.event_buf.len() {
            let event = self.event_buf[i];
            self.stats.tracked_events += 1;
            if let Some(m) = self.tracker.record(event.row, event.eact, closed.closed_at) {
                self.stats.direct_mitigations += 1;
                out.push(m);
            }
        }
    }

    /// Processes an activation of `row` at `now`, returning any mitigations the tracker
    /// requests immediately.
    ///
    /// Allocates a `Vec` per call; hot loops should use
    /// [`BankMitigationEngine::on_activate_into`] with a reusable buffer.
    pub fn on_activate(&mut self, row: RowId, now: Cycle) -> Vec<MitigationRequest> {
        let mut mitigations = Vec::new();
        self.on_activate_into(row, now, &mut mitigations);
        mitigations
    }

    /// Processes a row closure, returning any mitigations the tracker requests.
    ///
    /// Allocates a `Vec` per call; hot loops should use
    /// [`BankMitigationEngine::on_close_into`] with a reusable buffer.
    pub fn on_close(&mut self, closed: &ClosedRow) -> Vec<MitigationRequest> {
        let mut mitigations = Vec::new();
        self.on_close_into(closed, &mut mitigations);
        mitigations
    }

    /// Processes an RFM command at `now`, returning the in-DRAM tracker's mitigation
    /// (if it has one pending).
    pub fn on_rfm(&mut self, now: Cycle) -> Option<MitigationRequest> {
        self.advance_refresh_window(now);
        let m = self.tracker.on_rfm(now);
        if m.is_some() {
            self.stats.rfm_mitigations += 1;
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clm::Alpha;
    use crate::config::{DefenseKind, TrackerChoice};

    fn timings() -> DramTimings {
        DramTimings::ddr5()
    }

    fn closed(row: RowId, opened_at: Cycle, closed_at: Cycle) -> ClosedRow {
        ClosedRow {
            row,
            open_cycles: closed_at - opened_at,
            opened_at,
            closed_at,
        }
    }

    #[test]
    fn graphene_impress_p_mitigates_long_open_rows() {
        let t = timings();
        let cfg = ProtectionConfig::paper_default(
            TrackerChoice::Graphene,
            DefenseKind::impress_p_default(),
        );
        let mut engine = BankMitigationEngine::new(&cfg, &t);
        // Keep row 5 open for 100 tRC per access: each close records EACT ≈ 100, so
        // Graphene's internal threshold (1333) is crossed after ~14 accesses.
        let mut mitigated = false;
        let mut now = 0;
        for _ in 0..20 {
            engine.on_activate(5, now);
            let c = closed(5, now, now + 100 * t.t_rc);
            if !engine.on_close(&c).is_empty() {
                mitigated = true;
                break;
            }
            now += 101 * t.t_rc;
        }
        assert!(mitigated);
    }

    #[test]
    fn no_rp_engine_ignores_open_time() {
        let t = timings();
        let cfg = ProtectionConfig::paper_default(TrackerChoice::Graphene, DefenseKind::NoRp);
        let mut engine = BankMitigationEngine::new(&cfg, &t);
        let mut now = 0;
        let mut mitigations = 0;
        for _ in 0..100 {
            mitigations += engine.on_activate(5, now).len();
            let c = closed(5, now, now + 100 * t.t_rc);
            mitigations += engine.on_close(&c).len();
            now += 101 * t.t_rc;
        }
        // 100 activations of one row are far below Graphene's internal threshold.
        assert_eq!(mitigations, 0);
    }

    #[test]
    fn in_dram_engine_mitigates_under_rfm_only() {
        let t = timings();
        let cfg = ProtectionConfig::paper_default(
            TrackerChoice::Mithril,
            DefenseKind::ImpressN {
                alpha: Alpha::Conservative,
            },
        );
        let mut engine = BankMitigationEngine::new(&cfg, &t);
        let mut now = 0;
        for _ in 0..200 {
            assert!(engine.on_activate(9, now).is_empty());
            let c = closed(9, now, now + t.t_ras);
            assert!(engine.on_close(&c).is_empty());
            now += t.t_rc;
        }
        let m = engine.on_rfm(now).expect("Mithril mitigates at RFM");
        assert_eq!(m.aggressor, 9);
        assert_eq!(engine.stats().rfm_mitigations, 1);
    }

    #[test]
    #[should_panic(expected = "invalid protection configuration")]
    fn invalid_config_panics() {
        let t = timings();
        let cfg = ProtectionConfig::paper_default(
            TrackerChoice::Mint,
            DefenseKind::express_paper_baseline(&t),
        );
        let _ = BankMitigationEngine::new(&cfg, &t);
    }

    #[test]
    fn refresh_window_resets_counter_trackers() {
        let t = timings();
        let cfg = ProtectionConfig::paper_default(TrackerChoice::Graphene, DefenseKind::NoRp);
        let mut engine = BankMitigationEngine::new(&cfg, &t);
        // 1000 activations, then jump past tREFW: the tracker state resets, so another
        // 1000 activations still do not mitigate (the internal threshold is 1333).
        for i in 0..1000u64 {
            engine.on_activate(3, i * t.t_rc);
        }
        let later = t.t_refw + 1000;
        let mut mitigations = 0;
        for i in 0..1000u64 {
            mitigations += engine.on_activate(3, later + i * t.t_rc).len();
        }
        assert_eq!(mitigations, 0);
    }
}
