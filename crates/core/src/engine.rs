//! The per-bank mitigation engine: defense + tracker glued together.
//!
//! [`BankMitigationEngine`] is the object the memory controller (or an attack runner)
//! talks to. It owns one [`RowPressDefense`] and one [`RowTracker`] per bank, routes
//! activation and row-closure events through the defense into the tracker, handles RFM
//! and refresh-window callbacks, and counts how many mitigations were requested.

use impress_dram::address::RowId;
use impress_dram::bank::ClosedRow;
use impress_dram::timing::{Cycle, DramTimings};
use impress_trackers::{Eact, MitigationRequest, RowTracker};

use crate::config::ProtectionConfig;
use crate::defense::{RowPressDefense, TrackedActivation};

/// Environment variable selecting the tracker record path: unset (or any value
/// other than `off`/`0`/`false`) uses the bank-batched kernels, `off` forces the
/// per-record path (for A/B comparison, mirroring `IMPRESS_EVICTION`).
pub const RECORD_BATCH_ENV: &str = "IMPRESS_RECORD_BATCH";

/// Reads [`RECORD_BATCH_ENV`]: `true` (batched) unless the variable is set to
/// `off`, `0` or `false` (case-insensitive).
pub fn record_batching_from_env() -> bool {
    match std::env::var(RECORD_BATCH_ENV) {
        Ok(v) => {
            let v = v.trim();
            !(v.eq_ignore_ascii_case("off") || v == "0" || v.eq_ignore_ascii_case("false"))
        }
        Err(_) => true,
    }
}

/// Capacity of the per-bank staging buffer: bounds memory (8 KB per bank) and
/// keeps flushes in cache-friendly chunks.
const STAGE_CAPACITY: usize = 1024;

/// Counters describing the engine's activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Activations recorded into the tracker (unit events plus EACT events).
    pub tracked_events: u64,
    /// Mitigations requested by the tracker outside of RFM (memory-controller trackers).
    pub direct_mitigations: u64,
    /// Mitigations performed under RFM (in-DRAM trackers).
    pub rfm_mitigations: u64,
}

impl EngineStats {
    /// Total mitigations of either kind.
    pub fn total_mitigations(&self) -> u64 {
        self.direct_mitigations + self.rfm_mitigations
    }
}

/// The combined Row-Press defense and Rowhammer tracker for one bank.
pub struct BankMitigationEngine {
    defense: Box<dyn RowPressDefense>,
    tracker: Box<dyn RowTracker>,
    t_refw: Cycle,
    next_refresh_window: Cycle,
    stats: EngineStats,
    /// Reusable scratch for the defense's tracked-activation events, so the
    /// per-activation path performs no allocation in steady state.
    event_buf: Vec<TrackedActivation>,
    /// Whether tracked events are staged and flushed through the tracker's
    /// batched record kernel (observationally identical to per-record; see
    /// [`BankMitigationEngine::set_record_batching`]).
    batching: bool,
    /// Cached [`RowTracker::mitigates_on_rfm`]: RFM/REF commands only flush
    /// staged events (and dispatch to the tracker) when the tracker acts under
    /// RFM. REF fires every `tREFI`, so skipping it for memory-controller
    /// trackers is what lets staged spans grow beyond a handful of events.
    rfm_active: bool,
    /// Remaining tracker headroom (raw Q7 weight) provably absorbable without
    /// any possibility of a mitigation. Staging an event decrements this by an
    /// upper bound on its quantized weight; when it runs out the staged span is
    /// flushed and the triggering event takes the exact per-record path.
    headroom_left: u64,
    /// Staged events, packed row+weight. One append stream per bank keeps the
    /// per-event staging cost to a single cache line of data movement; the
    /// parallel `rows`/`eacts` slices [`RowTracker::record_batch`] takes are
    /// split off into the scratch arrays below at flush time (sequential,
    /// amortized over the whole span).
    staged: Vec<(RowId, Eact)>,
    /// Timestamp of the most recently staged event. A staged span is provably
    /// mitigation-free, so its shared flush timestamp is unobservable and the
    /// last one staged is as good as any; no per-event timestamps are kept.
    last_staged_now: Cycle,
    /// Flush-time scratch for the split parallel arrays.
    scratch_rows: Vec<RowId>,
    scratch_eacts: Vec<Eact>,
    /// Scratch for batch-kernel output. Staged spans are provably
    /// mitigation-free, so this stays empty; it exists to satisfy the
    /// `record_batch` signature (and to catch invariant violations in debug).
    staged_out: Vec<MitigationRequest>,
}

impl std::fmt::Debug for BankMitigationEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BankMitigationEngine")
            .field("defense", &self.defense.name())
            .field("tracker", &self.tracker.kind())
            .field("stats", &self.stats)
            .finish()
    }
}

impl BankMitigationEngine {
    /// Builds the engine for one bank from a protection configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (e.g. ExPress with an in-DRAM tracker);
    /// call [`ProtectionConfig::validate`] first to handle the error gracefully.
    pub fn new(config: &ProtectionConfig, timings: &DramTimings) -> Self {
        if let Err(msg) = config.validate() {
            panic!("invalid protection configuration: {msg}");
        }
        Self::from_parts(
            config.build_defense(timings),
            config.build_tracker(timings),
            timings,
        )
    }

    /// Builds an engine from already-constructed parts (used by tests and by
    /// experiments that need non-standard tracker sizing).
    pub fn from_parts(
        defense: Box<dyn RowPressDefense>,
        tracker: Box<dyn RowTracker>,
        timings: &DramTimings,
    ) -> Self {
        let rfm_active = tracker.mitigates_on_rfm();
        Self {
            defense,
            tracker,
            rfm_active,
            t_refw: timings.t_refw,
            next_refresh_window: timings.t_refw,
            stats: EngineStats::default(),
            event_buf: Vec::with_capacity(16),
            batching: false,
            headroom_left: 0,
            staged: Vec::new(),
            last_staged_now: 0,
            scratch_rows: Vec::new(),
            scratch_eacts: Vec::new(),
            staged_out: Vec::new(),
        }
    }

    /// The maximum row-open time the memory controller must enforce (ExPress only).
    pub fn max_row_open(&self) -> Option<Cycle> {
        self.defense.max_row_open()
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Name of the deployed defense.
    pub fn defense_name(&self) -> &'static str {
        self.defense.name()
    }

    /// Access to the underlying tracker (for storage queries and test assertions).
    pub fn tracker(&self) -> &dyn RowTracker {
        self.tracker.as_ref()
    }

    /// Enables or disables the bank-batched record path.
    ///
    /// When enabled, tracked events whose weight provably cannot trigger a
    /// mitigation (per the tracker's [`RowTracker::headroom`] contract) are
    /// staged in SoA buffers and flushed through [`RowTracker::record_batch`]
    /// at refresh-window crossings, RFM commands, headroom exhaustion or
    /// capacity. Events that could mitigate take the exact per-record path, so
    /// mitigation emission order, tracker state and all statistics are
    /// identical to per-record operation.
    ///
    /// Disabling flushes any staged events first.
    pub fn set_record_batching(&mut self, on: bool) {
        if !on {
            self.flush_staged();
        } else if !self.batching {
            self.headroom_left = self.tracker.headroom();
            if self.staged.capacity() == 0 {
                self.staged.reserve(STAGE_CAPACITY);
            }
        }
        self.batching = on;
    }

    /// Whether the batched record path is enabled.
    pub fn record_batching(&self) -> bool {
        self.batching
    }

    /// Flushes any staged tracked events through the tracker's batch kernel.
    ///
    /// Called automatically at every point where deferred state could become
    /// observable (refresh windows, RFM, per-record fallbacks); callers only
    /// need it at end-of-run, before inspecting the tracker or merging stats.
    pub fn flush_staged(&mut self) {
        if self.staged.is_empty() {
            return;
        }
        // All staged events were admitted under the headroom budget, so the
        // batch provably emits no mitigations and the shared `now` is
        // unobservable; split the packed span into the parallel arrays the
        // batch kernel takes.
        self.scratch_rows.clear();
        self.scratch_eacts.clear();
        self.scratch_rows
            .extend(self.staged.iter().map(|&(row, _)| row));
        self.scratch_eacts
            .extend(self.staged.iter().map(|&(_, eact)| eact));
        self.tracker.record_batch(
            &self.scratch_rows,
            &self.scratch_eacts,
            self.last_staged_now,
            &mut self.staged_out,
        );
        debug_assert!(
            self.staged_out.is_empty(),
            "staged span emitted a mitigation despite headroom admission"
        );
        // Defensive (unreachable by the headroom invariant): never lose a
        // mitigation count in release builds.
        self.stats.direct_mitigations += self.staged_out.len() as u64;
        self.staged_out.clear();
        self.staged.clear();
        self.headroom_left = self.tracker.headroom();
    }

    fn advance_refresh_window(&mut self, now: Cycle) {
        if now >= self.next_refresh_window {
            // Staged events predate the window boundary: flush them before the
            // window callback so the tracker sees them in the same window as
            // the per-record path would.
            self.flush_staged();
            while now >= self.next_refresh_window {
                self.tracker.on_refresh_window(self.next_refresh_window);
                self.next_refresh_window += self.t_refw;
            }
            if self.batching {
                self.headroom_left = self.tracker.headroom();
            }
        }
    }

    /// Routes one tracked event either into the staging buffers (when it
    /// provably cannot mitigate) or through the exact per-record path.
    #[inline]
    fn record_event(
        &mut self,
        row: RowId,
        eact: Eact,
        now: Cycle,
        out: &mut Vec<MitigationRequest>,
    ) {
        self.stats.tracked_events += 1;
        if self.batching {
            // Upper bound on the weight any tracker's quantization can add:
            // quantized <= max(raw, ONE) for every tracker.
            let w = u64::from(eact.raw().max(Eact::ONE.raw()));
            if w <= self.headroom_left {
                if self.staged.len() == STAGE_CAPACITY {
                    self.flush_staged();
                }
                self.headroom_left -= w;
                self.staged.push((row, eact));
                self.last_staged_now = now;
                return;
            }
            // Headroom exhausted: flush the (mitigation-free) staged span,
            // then let this event take the exact per-record path below.
            self.flush_staged();
        }
        if let Some(m) = self.tracker.record(row, eact, now) {
            self.stats.direct_mitigations += 1;
            out.push(m);
        }
        if self.batching {
            self.headroom_left = self.tracker.headroom();
        }
    }

    /// Processes an activation of `row` at `now`, appending any mitigations the tracker
    /// requests immediately to `out`.
    ///
    /// `out` is not cleared: the caller owns the buffer and reuses it across events,
    /// so the steady-state activation path performs no allocation.
    pub fn on_activate_into(&mut self, row: RowId, now: Cycle, out: &mut Vec<MitigationRequest>) {
        self.advance_refresh_window(now);
        self.event_buf.clear();
        self.defense.on_activate(row, now, &mut self.event_buf);
        for i in 0..self.event_buf.len() {
            let event = self.event_buf[i];
            self.record_event(event.row, event.eact, now, out);
        }
    }

    /// Processes a row closure, appending any mitigations the tracker requests to
    /// `out` (same buffer contract as [`BankMitigationEngine::on_activate_into`]).
    pub fn on_close_into(&mut self, closed: &ClosedRow, out: &mut Vec<MitigationRequest>) {
        self.advance_refresh_window(closed.closed_at);
        self.event_buf.clear();
        self.defense.on_close(closed, &mut self.event_buf);
        for i in 0..self.event_buf.len() {
            let event = self.event_buf[i];
            self.record_event(event.row, event.eact, closed.closed_at, out);
        }
    }

    /// Processes an activation of `row` at `now`, returning any mitigations the tracker
    /// requests immediately.
    ///
    /// Allocates a `Vec` per call; hot loops should use
    /// [`BankMitigationEngine::on_activate_into`] with a reusable buffer.
    pub fn on_activate(&mut self, row: RowId, now: Cycle) -> Vec<MitigationRequest> {
        let mut mitigations = Vec::new();
        self.on_activate_into(row, now, &mut mitigations);
        mitigations
    }

    /// Processes a row closure, returning any mitigations the tracker requests.
    ///
    /// Allocates a `Vec` per call; hot loops should use
    /// [`BankMitigationEngine::on_close_into`] with a reusable buffer.
    pub fn on_close(&mut self, closed: &ClosedRow) -> Vec<MitigationRequest> {
        let mut mitigations = Vec::new();
        self.on_close_into(closed, &mut mitigations);
        mitigations
    }

    /// Processes an RFM command at `now`, returning the in-DRAM tracker's mitigation
    /// (if it has one pending).
    pub fn on_rfm(&mut self, now: Cycle) -> Option<MitigationRequest> {
        self.advance_refresh_window(now);
        // Memory-controller trackers ignore RFM: their `on_rfm` is the default
        // no-op, so there is nothing to flush for and nothing to dispatch.
        if !self.rfm_active {
            return None;
        }
        // RFM-only trackers (Mithril, MINT) mitigate from state accumulated by
        // `record`; staged events must land before the RFM observes it.
        self.flush_staged();
        let m = self.tracker.on_rfm(now);
        if m.is_some() {
            self.stats.rfm_mitigations += 1;
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clm::Alpha;
    use crate::config::{DefenseKind, TrackerChoice};

    fn timings() -> DramTimings {
        DramTimings::ddr5()
    }

    fn closed(row: RowId, opened_at: Cycle, closed_at: Cycle) -> ClosedRow {
        ClosedRow {
            row,
            open_cycles: closed_at - opened_at,
            opened_at,
            closed_at,
        }
    }

    #[test]
    fn graphene_impress_p_mitigates_long_open_rows() {
        let t = timings();
        let cfg = ProtectionConfig::paper_default(
            TrackerChoice::Graphene,
            DefenseKind::impress_p_default(),
        );
        let mut engine = BankMitigationEngine::new(&cfg, &t);
        // Keep row 5 open for 100 tRC per access: each close records EACT ≈ 100, so
        // Graphene's internal threshold (1333) is crossed after ~14 accesses.
        let mut mitigated = false;
        let mut now = 0;
        for _ in 0..20 {
            engine.on_activate(5, now);
            let c = closed(5, now, now + 100 * t.t_rc);
            if !engine.on_close(&c).is_empty() {
                mitigated = true;
                break;
            }
            now += 101 * t.t_rc;
        }
        assert!(mitigated);
    }

    #[test]
    fn no_rp_engine_ignores_open_time() {
        let t = timings();
        let cfg = ProtectionConfig::paper_default(TrackerChoice::Graphene, DefenseKind::NoRp);
        let mut engine = BankMitigationEngine::new(&cfg, &t);
        let mut now = 0;
        let mut mitigations = 0;
        for _ in 0..100 {
            mitigations += engine.on_activate(5, now).len();
            let c = closed(5, now, now + 100 * t.t_rc);
            mitigations += engine.on_close(&c).len();
            now += 101 * t.t_rc;
        }
        // 100 activations of one row are far below Graphene's internal threshold.
        assert_eq!(mitigations, 0);
    }

    #[test]
    fn in_dram_engine_mitigates_under_rfm_only() {
        let t = timings();
        let cfg = ProtectionConfig::paper_default(
            TrackerChoice::Mithril,
            DefenseKind::ImpressN {
                alpha: Alpha::Conservative,
            },
        );
        let mut engine = BankMitigationEngine::new(&cfg, &t);
        let mut now = 0;
        for _ in 0..200 {
            assert!(engine.on_activate(9, now).is_empty());
            let c = closed(9, now, now + t.t_ras);
            assert!(engine.on_close(&c).is_empty());
            now += t.t_rc;
        }
        let m = engine.on_rfm(now).expect("Mithril mitigates at RFM");
        assert_eq!(m.aggressor, 9);
        assert_eq!(engine.stats().rfm_mitigations, 1);
    }

    #[test]
    #[should_panic(expected = "invalid protection configuration")]
    fn invalid_config_panics() {
        let t = timings();
        let cfg = ProtectionConfig::paper_default(
            TrackerChoice::Mint,
            DefenseKind::express_paper_baseline(&t),
        );
        let _ = BankMitigationEngine::new(&cfg, &t);
    }

    #[test]
    fn refresh_window_resets_counter_trackers() {
        let t = timings();
        let cfg = ProtectionConfig::paper_default(TrackerChoice::Graphene, DefenseKind::NoRp);
        let mut engine = BankMitigationEngine::new(&cfg, &t);
        // 1000 activations, then jump past tREFW: the tracker state resets, so another
        // 1000 activations still do not mitigate (the internal threshold is 1333).
        for i in 0..1000u64 {
            engine.on_activate(3, i * t.t_rc);
        }
        let later = t.t_refw + 1000;
        let mut mitigations = 0;
        for i in 0..1000u64 {
            mitigations += engine.on_activate(3, later + i * t.t_rc).len();
        }
        assert_eq!(mitigations, 0);
    }
}
