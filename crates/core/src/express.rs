//! ExPress: Explicit Row-Press mitigation (the prior-work baseline, §II-E).
//!
//! ExPress (Luo et al.) makes the memory controller close any row that has been open
//! for `tMRO` cycles and re-targets the Rowhammer tracker to the reduced threshold T*
//! that corresponds to that maximum open time. It therefore
//!
//! * hurts row-buffer locality (rows are closed early),
//! * needs a larger/faster tracker (T* < TRH), and
//! * cannot protect in-DRAM trackers, because the DRAM device never learns `tMRO`.

use impress_dram::address::RowId;
use impress_dram::bank::ClosedRow;
use impress_dram::timing::{Cycle, DramTimings};

use crate::clm::{Alpha, ChargeLossModel};
use crate::defense::{RowPressDefense, TrackedActivation};
use crate::rowpress_data::relative_threshold_for_tmro;

/// How ExPress derives the reduced threshold T* from `tMRO`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ThresholdSource {
    /// Use the device characterization data of Figure 4 (Table 8 of Luo et al.).
    CharacterizationData,
    /// Use the Conservative Linear Model with the given α (how the paper configures
    /// its ExPress baselines: α = 0.35 or α = 1).
    Clm(Alpha),
}

/// The ExPress defense for one bank.
#[derive(Debug, Clone)]
pub struct Express {
    t_mro: Cycle,
    threshold_scale: f64,
}

impl Express {
    /// Creates an ExPress defense limiting the row-open time to `t_mro` cycles and
    /// deriving the threshold reduction from `source`.
    pub fn new(t_mro: Cycle, source: ThresholdSource, timings: &DramTimings) -> Self {
        let t_mro = t_mro.max(timings.t_ras);
        let threshold_scale = match source {
            ThresholdSource::CharacterizationData => {
                relative_threshold_for_tmro(impress_dram::timing::cycles_to_ns(t_mro))
            }
            ThresholdSource::Clm(alpha) => {
                ChargeLossModel::new(alpha, timings).relative_threshold(t_mro)
            }
        };
        Self {
            t_mro,
            threshold_scale,
        }
    }

    /// The paper's ExPress configuration for comparing against ImPress-N:
    /// `tMRO = tRAS + tRC` with the CLM-derived threshold (Appendix A).
    pub fn paper_baseline(alpha: Alpha, timings: &DramTimings) -> Self {
        Self::new(
            timings.t_ras + timings.t_rc,
            ThresholdSource::Clm(alpha),
            timings,
        )
    }

    /// The enforced maximum row-open time in cycles.
    pub fn t_mro(&self) -> Cycle {
        self.t_mro
    }
}

impl RowPressDefense for Express {
    fn on_activate(&mut self, row: RowId, _now: Cycle, out: &mut Vec<TrackedActivation>) {
        out.push(TrackedActivation::unit(row));
    }

    fn on_close(&mut self, _closed: &ClosedRow, _out: &mut Vec<TrackedActivation>) {}

    fn max_row_open(&self) -> Option<Cycle> {
        Some(self.t_mro)
    }

    fn tracker_threshold_scale(&self) -> f64 {
        self.threshold_scale
    }

    fn name(&self) -> &'static str {
        "ExPress"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_baseline_halves_threshold_at_alpha_one() {
        let t = DramTimings::ddr5();
        let e = Express::paper_baseline(Alpha::Conservative, &t);
        assert!((e.tracker_threshold_scale() - 0.5).abs() < 1e-12);
        assert_eq!(e.max_row_open(), Some(t.t_ras + t.t_rc));
    }

    #[test]
    fn paper_baseline_at_alpha_035_gives_1_35x_reduction() {
        let t = DramTimings::ddr5();
        let e = Express::paper_baseline(Alpha::ShortDuration, &t);
        assert!((e.tracker_threshold_scale() - 1.0 / 1.35).abs() < 1e-9);
    }

    #[test]
    fn characterization_data_threshold_at_186ns() {
        let t = DramTimings::ddr5();
        let e = Express::new(
            impress_dram::timing::ns_to_cycles(186),
            ThresholdSource::CharacterizationData,
            &t,
        );
        assert!((e.tracker_threshold_scale() - 0.62).abs() < 1e-9);
    }

    #[test]
    fn tmro_is_clamped_to_tras() {
        let t = DramTimings::ddr5();
        let e = Express::new(10, ThresholdSource::Clm(Alpha::Conservative), &t);
        assert_eq!(e.t_mro(), t.t_ras);
        assert!((e.tracker_threshold_scale() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn emits_unit_activations_like_baseline() {
        let t = DramTimings::ddr5();
        let mut e = Express::paper_baseline(Alpha::Conservative, &t);
        let mut events = Vec::new();
        e.on_activate(3, 0, &mut events);
        assert_eq!(events, vec![TrackedActivation::unit(3)]);
        let closed = ClosedRow {
            row: 3,
            open_cycles: 100,
            opened_at: 0,
            closed_at: 100,
        };
        events.clear();
        e.on_close(&closed, &mut events);
        assert!(events.is_empty());
    }
}
