//! ImPress-N: the naive, integer-valued implicit Row-Press mitigation (§V).
//!
//! ImPress-N divides time into windows of `tRC`. A row that is open for an entire
//! window is treated as having caused one additional activation in that window and is
//! fed to the Rowhammer tracker like any other ACT. The hardware needs only a window
//! timer and an Open-Row-Address (ORA) register per bank (4 bytes).
//!
//! Because sub-`tRC` Row-Press escapes this accounting, an attacker can keep each
//! round's extra open time just under one window (the decoy pattern of Figure 10) and
//! the tolerated threshold drops to `TRH / (1 + α)` (Equation 5). The tracker therefore
//! has to be re-targeted to that reduced threshold, exactly like ExPress — but unlike
//! ExPress, ImPress-N never restricts the row-open time, so it also works for in-DRAM
//! trackers.

use impress_dram::address::RowId;
use impress_dram::bank::ClosedRow;
use impress_dram::timing::{Cycle, DramTimings};

use crate::clm::Alpha;
use crate::defense::{RowPressDefense, TrackedActivation};

/// The ImPress-N defense for one bank.
#[derive(Debug, Clone)]
pub struct ImpressN {
    /// Window length (`tRC`).
    t_rc: Cycle,
    /// Row-open latency: a row only appears "open" in the ORA snapshot once its ACT has
    /// completed (`tACT` after the command), which is what the Figure 10 evasion abuses.
    t_act: Cycle,
    /// α assumed when re-targeting the tracker (Equation 5).
    alpha: f64,
    /// Extra window-activations emitted so far (for statistics).
    window_activations: u64,
}

impl ImpressN {
    /// Creates an ImPress-N defense with the given α assumption and DRAM timings.
    pub fn new(alpha: impl Into<Alpha>, timings: &DramTimings) -> Self {
        let alpha = alpha.into().value();
        assert!(
            alpha.is_finite() && alpha >= 0.0,
            "alpha must be non-negative"
        );
        Self {
            t_rc: timings.t_rc,
            t_act: timings.t_act,
            alpha,
            window_activations: 0,
        }
    }

    /// The device-independent configuration (α = 1), which halves the tracker's target
    /// threshold.
    pub fn conservative(timings: &DramTimings) -> Self {
        Self::new(Alpha::Conservative, timings)
    }

    /// Number of synthetic window activations emitted so far.
    pub fn window_activations(&self) -> u64 {
        self.window_activations
    }

    /// Equation 5: the effective threshold relative to TRH when the attacker uses the
    /// sub-window evasion pattern.
    pub fn effective_threshold_scale(alpha: impl Into<Alpha>) -> f64 {
        1.0 / (1.0 + alpha.into().value())
    }

    /// Number of full `tRC` windows the ORA register observes the row as continuously
    /// open, i.e. how many synthetic ACTs ImPress-N generates for this row closure.
    fn full_windows(&self, closed: &ClosedRow) -> u64 {
        // The row is visible as "open" from the end of its activation until the close.
        let open_from = closed.opened_at + self.t_act;
        if closed.closed_at <= open_from {
            return 0;
        }
        // Window boundaries are multiples of tRC. The ORA samples the open row at each
        // boundary; the row counts once per *pair* of consecutive boundaries it spans.
        let boundaries = closed.closed_at / self.t_rc - open_from / self.t_rc;
        boundaries.saturating_sub(1)
    }
}

impl RowPressDefense for ImpressN {
    fn on_activate(&mut self, row: RowId, _now: Cycle, out: &mut Vec<TrackedActivation>) {
        out.push(TrackedActivation::unit(row));
    }

    fn on_close(&mut self, closed: &ClosedRow, out: &mut Vec<TrackedActivation>) {
        let n = self.full_windows(closed);
        self.window_activations += n;
        out.extend((0..n).map(|_| TrackedActivation::unit(closed.row)));
    }

    fn tracker_threshold_scale(&self) -> f64 {
        Self::effective_threshold_scale(self.alpha)
    }

    fn name(&self) -> &'static str {
        "ImPress-N"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn timings() -> DramTimings {
        DramTimings::ddr5()
    }

    fn closed(opened_at: Cycle, closed_at: Cycle) -> ClosedRow {
        ClosedRow {
            row: 7,
            open_cycles: closed_at - opened_at,
            opened_at,
            closed_at,
        }
    }

    fn close_events(d: &mut ImpressN, c: &ClosedRow) -> Vec<TrackedActivation> {
        let mut out = Vec::new();
        d.on_close(c, &mut out);
        out
    }

    #[test]
    fn rowhammer_access_emits_no_window_activation() {
        let t = timings();
        let mut d = ImpressN::conservative(&t);
        // A minimum-length access never spans a full window.
        let events = close_events(&mut d, &closed(0, t.t_ras));
        assert!(events.is_empty());
    }

    #[test]
    fn row_open_for_full_window_counts_once() {
        let t = timings();
        let mut d = ImpressN::conservative(&t);
        // Open at the start of window 0, closed in window 2: fully covers window 1.
        let events = close_events(&mut d, &closed(0, 2 * t.t_rc + 10));
        assert_eq!(events.len(), 1);
        assert_eq!(events[0], TrackedActivation::unit(7));
    }

    #[test]
    fn long_open_row_counts_once_per_window() {
        let t = timings();
        let mut d = ImpressN::conservative(&t);
        // Open for ~10 windows starting mid-window.
        let start = t.t_rc / 2;
        let events = close_events(&mut d, &closed(start, start + 10 * t.t_rc));
        assert_eq!(events.len(), 9);
        assert_eq!(d.window_activations(), 9);
    }

    #[test]
    fn figure10_evasion_pattern_is_not_detected() {
        // The attacker issues the ACT just before a window boundary so the row is not
        // yet open when the ORA samples, keeps it open for tRC + tRAS, and closes it via
        // a decoy before the second boundary it would otherwise span.
        let t = timings();
        let mut d = ImpressN::conservative(&t);
        let boundary = 100 * t.t_rc;
        let opened_at = boundary - t.t_act / 2; // ACT completes just after the boundary
        let closed_at = opened_at + t.t_rc + t.t_ras;
        let events = close_events(&mut d, &closed(opened_at, closed_at));
        assert!(
            events.is_empty(),
            "evasion pattern should produce no window activations"
        );
    }

    #[test]
    fn equation5_threshold_scale() {
        assert!((ImpressN::effective_threshold_scale(1.0) - 0.5).abs() < 1e-12);
        assert!((ImpressN::effective_threshold_scale(0.35) - 1.0 / 1.35).abs() < 1e-12);
        let t = timings();
        assert!((ImpressN::new(0.35, &t).tracker_threshold_scale() - 0.7407).abs() < 1e-3);
    }

    #[test]
    fn no_tmro_restriction() {
        let t = timings();
        let d = ImpressN::conservative(&t);
        assert_eq!(d.max_row_open(), None);
    }

    proptest! {
        /// The number of synthetic ACTs never exceeds the open time divided by tRC, and
        /// undercounts it by at most 2 windows (the unmitigated sub-tRC residue).
        #[test]
        fn window_count_is_within_one_of_open_time(opened in 0u64..10_000_000, open_for in 96u64..2_000_000) {
            let t = timings();
            let mut d = ImpressN::conservative(&t);
            let events = close_events(&mut d, &closed(opened, opened + open_for));
            let n = events.len() as u64;
            let exact = open_for / t.t_rc;
            prop_assert!(n <= exact);
            prop_assert!(n + 2 >= exact);
        }
    }
}
