//! ImPress-P: the precise implicit Row-Press mitigation (§VI), the paper's main design.
//!
//! ImPress-P measures how long every row stays open (a single 10-bit timer per bank)
//! and converts the measurement into an Equivalent Activation Count,
//! `EACT = (tON + tPRE) / tRC`, which is fed to the Rowhammer tracker *instead of* the
//! plain activation. Counter-based trackers add EACT to their counters; probabilistic
//! trackers scale their selection probability by EACT. Because the accounting is exact
//! (up to the number of fractional bits kept), the tolerated Rowhammer threshold is not
//! reduced and no limit is placed on the row-open time.

use impress_dram::address::RowId;
use impress_dram::bank::ClosedRow;
use impress_dram::timing::{Cycle, DramTimings};
use impress_trackers::eact::{Eact, CANONICAL_FRAC_BITS};

use crate::defense::{RowPressDefense, TrackedActivation};

/// The ImPress-P defense for one bank.
#[derive(Debug, Clone)]
pub struct ImpressP {
    t_pre: Cycle,
    t_rc: Cycle,
    frac_bits: u32,
    total_eact_raw: u64,
    closes: u64,
}

impl ImpressP {
    /// Creates an ImPress-P defense keeping `frac_bits` fractional EACT bits
    /// (the paper's default is 7, giving exact accounting).
    ///
    /// # Panics
    ///
    /// Panics if `frac_bits > 7`.
    pub fn new(frac_bits: u32, timings: &DramTimings) -> Self {
        assert!(
            frac_bits <= CANONICAL_FRAC_BITS,
            "at most {CANONICAL_FRAC_BITS} fractional bits are supported"
        );
        Self {
            t_pre: timings.t_pre,
            t_rc: timings.t_rc,
            frac_bits,
            total_eact_raw: 0,
            closes: 0,
        }
    }

    /// The paper's default configuration (7 fractional bits).
    pub fn paper_default(timings: &DramTimings) -> Self {
        Self::new(CANONICAL_FRAC_BITS, timings)
    }

    /// Number of fractional EACT bits kept.
    pub fn frac_bits(&self) -> u32 {
        self.frac_bits
    }

    /// The average EACT per row closure observed so far (1.0 for pure Rowhammer traffic).
    pub fn average_eact(&self) -> f64 {
        if self.closes == 0 {
            0.0
        } else {
            self.total_eact_raw as f64 / f64::from(1u32 << CANONICAL_FRAC_BITS) / self.closes as f64
        }
    }

    /// Figure 12: the effective threshold (relative to TRH) as a function of the number
    /// of fractional counter bits.
    ///
    /// With 7 bits the accounting is exact (`tRC` is 128 cycles) and there is no
    /// reduction. With `b < 7` bits the quantization error per access is at most
    /// `2^-b` of an activation, so the effective threshold is `1 − 2^-b`; with zero
    /// bits ImPress-P degenerates to ImPress-N and the α = 1 bound of Equation 5
    /// (0.5) applies.
    pub fn effective_threshold_scale(frac_bits: u32) -> f64 {
        if frac_bits >= CANONICAL_FRAC_BITS {
            return 1.0;
        }
        let precision = 1.0 - 1.0 / f64::from(1u32 << frac_bits);
        precision.max(0.5)
    }
}

impl RowPressDefense for ImpressP {
    fn on_activate(&mut self, _row: RowId, _now: Cycle, _out: &mut Vec<TrackedActivation>) {
        // Nothing is recorded at ACT time: the EACT (which is always >= 1 and therefore
        // subsumes the activation itself) is recorded when the row closes and its open
        // time is known.
    }

    fn on_close(&mut self, closed: &ClosedRow, out: &mut Vec<TrackedActivation>) {
        let eact = Eact::from_open_time(closed.open_cycles, self.t_pre, self.t_rc, self.frac_bits);
        self.total_eact_raw += u64::from(eact.raw());
        self.closes += 1;
        out.push(TrackedActivation {
            row: closed.row,
            eact,
        });
    }

    fn name(&self) -> &'static str {
        "ImPress-P"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timings() -> DramTimings {
        DramTimings::ddr5()
    }

    fn closed(open_cycles: Cycle) -> ClosedRow {
        ClosedRow {
            row: 9,
            open_cycles,
            opened_at: 0,
            closed_at: open_cycles,
        }
    }

    fn close_events(d: &mut ImpressP, c: &ClosedRow) -> Vec<TrackedActivation> {
        let mut out = Vec::new();
        d.on_close(c, &mut out);
        out
    }

    #[test]
    fn minimum_access_has_eact_one() {
        let t = timings();
        let mut d = ImpressP::paper_default(&t);
        let mut events = Vec::new();
        d.on_activate(9, 0, &mut events);
        assert!(events.is_empty());
        let events = close_events(&mut d, &closed(t.t_ras));
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].eact, Eact::ONE);
    }

    #[test]
    fn long_open_row_yields_proportional_eact() {
        let t = timings();
        let mut d = ImpressP::paper_default(&t);
        // Open for tRAS + 9*tRC: total time (tON + tPRE) = 10*tRC => EACT = 10.
        let events = close_events(&mut d, &closed(t.t_ras + 9 * t.t_rc));
        assert!((events[0].eact.as_f64() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn fractional_open_time_is_captured() {
        let t = timings();
        let mut d = ImpressP::paper_default(&t);
        let events = close_events(&mut d, &closed(t.t_ras + t.t_rc / 2));
        assert!((events[0].eact.as_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn zero_frac_bits_truncates_like_impress_n() {
        let t = timings();
        let mut d = ImpressP::new(0, &t);
        let events = close_events(&mut d, &closed(t.t_ras + t.t_rc / 2));
        assert_eq!(events[0].eact.as_f64(), 1.0);
    }

    #[test]
    fn figure12_effective_threshold_curve() {
        // 7 bits: exact (1.0); 6 bits: 0.984; 5: 0.969; 4: 0.9375; 0: degenerates to 0.5.
        assert_eq!(ImpressP::effective_threshold_scale(7), 1.0);
        assert!((ImpressP::effective_threshold_scale(6) - 0.984375).abs() < 1e-6);
        assert!((ImpressP::effective_threshold_scale(5) - 0.96875).abs() < 1e-6);
        assert!((ImpressP::effective_threshold_scale(4) - 0.9375).abs() < 1e-6);
        assert_eq!(ImpressP::effective_threshold_scale(1), 0.5);
        assert_eq!(ImpressP::effective_threshold_scale(0), 0.5);
    }

    #[test]
    fn tracker_threshold_is_not_reduced() {
        let t = timings();
        let d = ImpressP::paper_default(&t);
        assert_eq!(d.tracker_threshold_scale(), 1.0);
        assert_eq!(d.max_row_open(), None);
    }

    #[test]
    fn average_eact_tracks_traffic() {
        let t = timings();
        let mut d = ImpressP::paper_default(&t);
        close_events(&mut d, &closed(t.t_ras));
        close_events(&mut d, &closed(t.t_ras + 2 * t.t_rc));
        assert!((d.average_eact() - 2.0).abs() < 1e-9);
    }
}
