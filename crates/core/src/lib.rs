//! # ImPress: Implicit Row-Press Mitigation
//!
//! This crate implements the primary contribution of *"ImPress: Securing DRAM Against
//! Data-Disturbance Errors via Implicit Row-Press Mitigation"* (MICRO 2024):
//!
//! * the **Unified Charge-Loss Model** and its Conservative Linear Model form
//!   ([`clm`], §IV), which expresses the combined damage of Rowhammer and Row-Press
//!   as a single number;
//! * the embedded Row-Press characterization data the model is fit to
//!   ([`rowpress_data`], Figures 4/7/8);
//! * the three Row-Press mitigations analysed by the paper: the prior-work **ExPress**
//!   baseline ([`express`]), the naive **ImPress-N** ([`impress_n`], §V) and the precise
//!   **ImPress-P** ([`impress_p`], §VI), all behind the [`defense::RowPressDefense`]
//!   trait;
//! * the per-bank [`engine::BankMitigationEngine`] that glues a defense to any
//!   Rowhammer tracker from [`impress_trackers`];
//! * the [`security`] harness that replays attack patterns and measures the maximum
//!   unmitigated charge (the paper's security argument);
//! * the effective-threshold, storage and qualitative comparisons
//!   ([`threshold`], [`storage`], [`comparison`] — Figures 4/12, §VI-C, Table III).
//!
//! # Quick start
//!
//! ```
//! use impress_core::config::{DefenseKind, ProtectionConfig, TrackerChoice};
//! use impress_core::security::{AggressorAccess, SecurityHarness};
//! use impress_dram::DramTimings;
//!
//! let timings = DramTimings::ddr5();
//! // Protect a bank with Graphene + ImPress-P at the paper's default TRH of 4K.
//! let config = ProtectionConfig::paper_default(
//!     TrackerChoice::Graphene,
//!     DefenseKind::impress_p_default(),
//! );
//! // Mount a Row-Press attack that keeps the aggressor open for a full tREFI per access.
//! let mut harness = SecurityHarness::new(&config, 1.0, &timings);
//! let attack = (0..5_000).map(|_| AggressorAccess::press(1000, timings.t_refi));
//! let report = harness.run(attack, u64::MAX);
//! assert!(!report.bit_flipped());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod clm;
pub mod comparison;
pub mod config;
pub mod defense;
pub mod engine;
pub mod express;
pub mod impress_n;
pub mod impress_p;
pub mod rowpress_data;
pub mod security;
pub mod storage;
pub mod threshold;

pub use clm::{Alpha, ChargeLoss, ChargeLossModel};
pub use comparison::DefenseProperties;
pub use config::{DefenseKind, ProtectionConfig, TrackerChoice};
pub use defense::{NoRowPressDefense, RowPressDefense, TrackedActivation};
pub use engine::{record_batching_from_env, BankMitigationEngine, EngineStats, RECORD_BATCH_ENV};
pub use express::Express;
pub use impress_n::ImpressN;
pub use impress_p::ImpressP;
pub use impress_trackers::EvictionEngine;
pub use security::{AggressorAccess, SecurityHarness, SecurityReport};
