//! Embedded Row-Press characterization data (digitized from Luo et al., ISCA 2023).
//!
//! The paper relies on three pieces of device-characterization data:
//!
//! 1. **T\* vs. tMRO** (Figure 4, reproduced from Table 8 of Luo et al.): how much the
//!    tolerated Rowhammer threshold shrinks if every activation may keep its row open
//!    for up to `tMRO`.
//! 2. **Short-duration total charge loss** (Figure 8): damage per attack round when the
//!    total round time is 1–8 tRC. The CLM with α = 0.35 upper-bounds these points.
//! 3. **Long-duration total charge loss** (Figure 7, from Appendix B of Luo et al.):
//!    per-vendor device data at 1 tREFI (162 tRC) and 9 tREFI (1462 tRC) in DDR4. The
//!    CLM with α = 0.48 upper-bounds every device.
//!
//! We do not have the physical DDR4 devices, so the tables below are approximations
//! digitized from the published figures; DESIGN.md records this substitution. The
//! properties that matter to ImPress — monotonicity, the 0.62 relative threshold at
//! tMRO = 186 ns, and the α envelopes — are preserved and asserted by tests.

use impress_dram::timing::{ns_to_cycles, Cycle};

/// One point of the relative-threshold curve of Figure 4.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TstarPoint {
    /// Maximum row-open time enforced by the controller, in nanoseconds.
    pub t_mro_ns: u64,
    /// Tolerated threshold relative to the pure-Rowhammer threshold (T*/TRH).
    pub relative_threshold: f64,
}

/// Relative threshold (T*/TRH) as a function of the maximum row-open time (Figure 4,
/// digitized from Table 8 of Luo et al.). The paper quotes 0.62 at tMRO = 186 ns.
pub const TSTAR_VS_TMRO: &[TstarPoint] = &[
    TstarPoint {
        t_mro_ns: 36,
        relative_threshold: 1.00,
    },
    TstarPoint {
        t_mro_ns: 66,
        relative_threshold: 0.90,
    },
    TstarPoint {
        t_mro_ns: 96,
        relative_threshold: 0.80,
    },
    TstarPoint {
        t_mro_ns: 126,
        relative_threshold: 0.72,
    },
    TstarPoint {
        t_mro_ns: 156,
        relative_threshold: 0.66,
    },
    TstarPoint {
        t_mro_ns: 186,
        relative_threshold: 0.62,
    },
    TstarPoint {
        t_mro_ns: 246,
        relative_threshold: 0.56,
    },
    TstarPoint {
        t_mro_ns: 336,
        relative_threshold: 0.50,
    },
    TstarPoint {
        t_mro_ns: 456,
        relative_threshold: 0.45,
    },
    TstarPoint {
        t_mro_ns: 516,
        relative_threshold: 0.43,
    },
    TstarPoint {
        t_mro_ns: 636,
        relative_threshold: 0.41,
    },
];

/// Interpolates the Figure 4 curve at an arbitrary `t_mro_ns`, clamping outside the
/// measured range.
pub fn relative_threshold_for_tmro(t_mro_ns: u64) -> f64 {
    let pts = TSTAR_VS_TMRO;
    if t_mro_ns <= pts[0].t_mro_ns {
        return pts[0].relative_threshold;
    }
    for w in pts.windows(2) {
        let (a, b) = (w[0], w[1]);
        if t_mro_ns <= b.t_mro_ns {
            let frac = (t_mro_ns - a.t_mro_ns) as f64 / (b.t_mro_ns - a.t_mro_ns) as f64;
            return a.relative_threshold + frac * (b.relative_threshold - a.relative_threshold);
        }
    }
    pts[pts.len() - 1].relative_threshold
}

/// One point of the short-duration charge-loss characterization of Figure 8.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShortDurationPoint {
    /// Total attack time of one round, in units of tRC.
    pub attack_time_trc: f64,
    /// Total charge loss of one round, in RH units.
    pub total_charge_loss: f64,
}

/// Short-duration Row-Press damage per round (Figure 8, "RP Data"). The CLM line with
/// α = 0.35 lies on or above every point.
pub const SHORT_DURATION_TCL: &[ShortDurationPoint] = &[
    ShortDurationPoint {
        attack_time_trc: 1.0,
        total_charge_loss: 1.00,
    },
    ShortDurationPoint {
        attack_time_trc: 2.0,
        total_charge_loss: 1.32,
    },
    ShortDurationPoint {
        attack_time_trc: 3.0,
        total_charge_loss: 1.60,
    },
    ShortDurationPoint {
        attack_time_trc: 4.0,
        total_charge_loss: 1.85,
    },
    ShortDurationPoint {
        attack_time_trc: 5.0,
        total_charge_loss: 2.08,
    },
    ShortDurationPoint {
        attack_time_trc: 6.0,
        total_charge_loss: 2.29,
    },
    ShortDurationPoint {
        attack_time_trc: 7.0,
        total_charge_loss: 2.49,
    },
    ShortDurationPoint {
        attack_time_trc: 8.0,
        total_charge_loss: 2.67,
    },
];

/// A sub-linear curve fit to the short-duration data (the dotted "Curve-Fit" line of
/// Figure 8): `TCL(t) ≈ 1 + 0.32 · (t − 1)^0.85` for `t` in tRC units.
pub fn short_duration_curve_fit(attack_time_trc: f64) -> f64 {
    if attack_time_trc <= 1.0 {
        attack_time_trc
    } else {
        1.0 + 0.32 * (attack_time_trc - 1.0).powf(0.85)
    }
}

/// DRAM vendors covered by the long-duration characterization of Figure 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Vendor {
    /// Samsung (8 devices characterized).
    Samsung,
    /// SK Hynix (6 devices characterized).
    Hynix,
    /// Micron (7 devices characterized).
    Micron,
}

impl Vendor {
    /// All vendors in the characterization.
    pub const ALL: [Vendor; 3] = [Vendor::Samsung, Vendor::Hynix, Vendor::Micron];

    /// Number of devices characterized per vendor.
    pub fn device_count(self) -> usize {
        match self {
            Vendor::Samsung => 8,
            Vendor::Hynix => 6,
            Vendor::Micron => 7,
        }
    }
}

/// One long-duration measurement: a device's total charge loss after keeping the row
/// open for `duration_trc` units of tRC (Figure 7).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LongDurationPoint {
    /// Device vendor.
    pub vendor: Vendor,
    /// Device index within the vendor's sample.
    pub device: usize,
    /// Row-open duration of the round, in tRC units (162 = 1 tREFI, 1462 = 9 tREFI in DDR4).
    pub duration_trc: u64,
    /// Measured total charge loss in RH units.
    pub total_charge_loss: f64,
}

/// Relative per-device leakage factors (fraction of the α = 0.48 envelope) used to
/// synthesize the per-device points. The worst device sits at 1.0 so that α = 0.48 is
/// the tight envelope the paper describes, while the population average corresponds to
/// the ~18x (1 tREFI) / ~156x (9 tREFI) average reductions reported by Luo et al.
const DEVICE_FACTORS: &[(Vendor, &[f64])] = &[
    (
        Vendor::Samsung,
        &[1.00, 0.45, 0.30, 0.22, 0.17, 0.13, 0.10, 0.08],
    ),
    (Vendor::Hynix, &[0.62, 0.38, 0.25, 0.16, 0.11, 0.08]),
    (Vendor::Micron, &[0.80, 0.40, 0.28, 0.18, 0.12, 0.09, 0.07]),
];

/// The two long-attack durations characterized in Figure 7, in tRC units
/// (1 tREFI and 9 tREFI for DDR4).
pub const LONG_DURATIONS_TRC: [u64; 2] = [162, 1462];

/// Generates the long-duration per-device data set of Figure 7.
pub fn long_duration_points() -> Vec<LongDurationPoint> {
    let mut out = Vec::new();
    for &(vendor, factors) in DEVICE_FACTORS {
        for (device, &factor) in factors.iter().enumerate() {
            for &duration in &LONG_DURATIONS_TRC {
                // Damage relative to the alpha=0.48 envelope: 1 + factor*0.48*(d-1).
                let tcl = 1.0 + factor * 0.48 * (duration as f64 - 1.0);
                out.push(LongDurationPoint {
                    vendor,
                    device,
                    duration_trc: duration,
                    total_charge_loss: tcl,
                });
            }
        }
    }
    out
}

/// The tMRO values swept in Figures 3 and 5, in nanoseconds.
pub const TMRO_SWEEP_NS: [u64; 6] = [36, 66, 96, 186, 336, 636];

/// Converts a tMRO value in nanoseconds to DRAM cycles.
pub fn tmro_cycles(t_mro_ns: u64) -> Cycle {
    ns_to_cycles(t_mro_ns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clm::{Alpha, ChargeLossModel};
    use impress_dram::DramTimings;

    #[test]
    fn figure4_is_monotone_decreasing() {
        for w in TSTAR_VS_TMRO.windows(2) {
            assert!(w[1].relative_threshold < w[0].relative_threshold);
            assert!(w[1].t_mro_ns > w[0].t_mro_ns);
        }
    }

    #[test]
    fn figure4_quotes_62_percent_at_186ns() {
        // §II-E: "if tON is limited to 186ns, the effective threshold reduces to 62%".
        assert!((relative_threshold_for_tmro(186) - 0.62).abs() < 1e-9);
    }

    #[test]
    fn interpolation_clamps_and_interpolates() {
        assert_eq!(relative_threshold_for_tmro(0), 1.0);
        assert_eq!(relative_threshold_for_tmro(10_000), 0.41);
        let mid = relative_threshold_for_tmro(81);
        assert!(mid < 0.90 && mid > 0.80);
    }

    #[test]
    fn clm_035_bounds_short_duration_data() {
        // §IV-C: "CLM produces a line such that no observed data-point is above the line".
        let t = DramTimings::ddr5();
        let m = ChargeLossModel::new(Alpha::ShortDuration, &t);
        for p in SHORT_DURATION_TCL {
            let clm = m.charge_loss_for_attack_time(p.attack_time_trc);
            assert!(
                clm >= p.total_charge_loss - 1e-9,
                "CLM {clm} under-estimates data {} at t={}",
                p.total_charge_loss,
                p.attack_time_trc
            );
        }
    }

    #[test]
    fn clm_048_bounds_long_duration_devices() {
        // §IV-D: alpha = 0.48 "covers all the characterized devices".
        let t = DramTimings::ddr4();
        let m = ChargeLossModel::new(Alpha::LongDuration, &t);
        for p in long_duration_points() {
            let clm = m.charge_loss_for_attack_time(p.duration_trc as f64);
            assert!(clm >= p.total_charge_loss - 1e-9);
        }
    }

    #[test]
    fn clm_035_does_not_bound_long_duration_devices() {
        // The short-duration alpha is NOT sufficient at long durations — this is why
        // the paper picks 0.48 for long-scale and 1.0 for device independence.
        let t = DramTimings::ddr4();
        let m = ChargeLossModel::new(Alpha::ShortDuration, &t);
        let violated = long_duration_points()
            .iter()
            .any(|p| m.charge_loss_for_attack_time(p.duration_trc as f64) < p.total_charge_loss);
        assert!(violated);
    }

    #[test]
    fn device_counts_match_figure7() {
        let pts = long_duration_points();
        for vendor in Vendor::ALL {
            let devices = pts
                .iter()
                .filter(|p| p.vendor == vendor && p.duration_trc == 162)
                .count();
            assert_eq!(devices, vendor.device_count());
        }
    }

    #[test]
    fn curve_fit_is_below_clm_for_long_times() {
        let t = DramTimings::ddr5();
        let m = ChargeLossModel::new(Alpha::ShortDuration, &t);
        for i in 2..=8 {
            let fit = short_duration_curve_fit(i as f64);
            assert!(fit <= m.charge_loss_for_attack_time(i as f64) + 1e-9);
        }
    }

    #[test]
    fn rowpress_is_18x_to_156x_stronger_than_rowhammer() {
        // §II-D: RP reduces the activations needed by 18x (1 tREFI) to 156x (9 tREFI)
        // on average. Check that the synthesized device population's averages fall in
        // that ballpark (within a factor of ~2, since these are digitized envelopes).
        let pts = long_duration_points();
        for (duration, low, high) in [(162u64, 9.0, 40.0), (1462u64, 80.0, 400.0)] {
            let damages: Vec<f64> = pts
                .iter()
                .filter(|p| p.duration_trc == duration)
                .map(|p| p.total_charge_loss)
                .collect();
            let avg = damages.iter().sum::<f64>() / damages.len() as f64;
            assert!(
                avg > low && avg < high,
                "avg damage {avg} for {duration} tRC"
            );
        }
    }
}
