//! Security evaluation: how much charge can an attacker leak before mitigation?
//!
//! The harness replays an attack pattern (a sequence of aggressor accesses, each with a
//! chosen row-open time) against one bank protected by a [`BankMitigationEngine`],
//! using the Unified Charge-Loss Model as ground truth for the damage each access does
//! to the aggressor's neighbouring victim rows. Victim charge is reset whenever the
//! defense refreshes the victim (mitigation) or the periodic refresh of the victim row
//! comes around (once per `tREFW`).
//!
//! The headline quantity is the **maximum unmitigated charge** any victim accumulates:
//! if it reaches the device's Rowhammer threshold, the attack flips a bit. This lets
//! the reproduction demonstrate, with the same machinery:
//!
//! * No-RP trackers are broken by Row-Press (charge ≫ what the activation count suggests).
//! * ImPress-N bounds the damage but loses a factor (1 + α) on the tolerated threshold
//!   (Equation 5, via the Figure 10 evasion pattern).
//! * ImPress-P keeps the tolerated threshold at TRH.

use std::collections::HashMap;

use impress_dram::address::RowId;
use impress_dram::bank::ClosedRow;
use impress_dram::rfm::RfmCounter;
use impress_dram::timing::{Cycle, DramTimings};

use crate::clm::ChargeLossModel;
use crate::config::ProtectionConfig;
use crate::engine::BankMitigationEngine;

/// One aggressor access in an attack pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AggressorAccess {
    /// The row the attacker activates.
    pub row: RowId,
    /// How long the attacker keeps it open, in cycles (clamped to at least `tRAS`).
    pub t_on: Cycle,
}

impl AggressorAccess {
    /// A minimum-length (pure Rowhammer) access to `row`.
    pub fn hammer(row: RowId) -> Self {
        Self { row, t_on: 0 }
    }

    /// A Row-Press access holding `row` open for `t_on` cycles.
    pub fn press(row: RowId, t_on: Cycle) -> Self {
        Self { row, t_on }
    }
}

/// Result of replaying an attack against a protected bank.
#[derive(Debug, Clone, PartialEq)]
pub struct SecurityReport {
    /// Maximum charge (in RH units) any single victim row accumulated without being
    /// refreshed.
    pub max_unmitigated_charge: f64,
    /// The victim row that accumulated the maximum charge.
    pub worst_victim: Option<RowId>,
    /// Total aggressor accesses replayed.
    pub accesses: u64,
    /// Mitigations performed by the defense during the attack.
    pub mitigations: u64,
    /// Total attack duration in cycles.
    pub duration: Cycle,
    /// Whether the attack would flip a bit on a device with the given threshold.
    pub configured_threshold: u64,
}

impl SecurityReport {
    /// Whether the attack reached the configured Rowhammer threshold on some victim.
    pub fn bit_flipped(&self) -> bool {
        self.max_unmitigated_charge >= self.configured_threshold as f64
    }

    /// The largest device threshold this attack would defeat (`floor(max charge)`).
    pub fn defeated_threshold(&self) -> u64 {
        self.max_unmitigated_charge.floor() as u64
    }
}

/// The security harness for a single protected bank.
#[derive(Debug)]
pub struct SecurityHarness {
    engine: BankMitigationEngine,
    clm: ChargeLossModel,
    timings: DramTimings,
    rfm: RfmCounter,
    blast_radius: u32,
    rows_per_bank: u32,
    threshold: u64,
    victim_charge: HashMap<RowId, f64>,
    max_charge: f64,
    worst_victim: Option<RowId>,
    mitigations: u64,
    accesses: u64,
    now: Cycle,
    next_refresh: Cycle,
    rfm_enabled: bool,
}

impl SecurityHarness {
    /// Creates a harness for the given protection configuration, using the CLM with
    /// `alpha` as the ground-truth damage model (the paper's security arguments use
    /// α = 1 as the worst case; measured devices are closer to 0.35–0.48).
    pub fn new(config: &ProtectionConfig, alpha: f64, timings: &DramTimings) -> Self {
        let engine = BankMitigationEngine::new(config, timings);
        let rfm_enabled = config.tracker.is_in_dram();
        Self {
            engine,
            clm: ChargeLossModel::new(alpha, timings),
            timings: timings.clone(),
            rfm: RfmCounter::new(config.effective_rfm_threshold(timings)),
            blast_radius: 2,
            rows_per_bank: config.rows_per_bank,
            threshold: config.rowhammer_threshold,
            victim_charge: HashMap::new(),
            max_charge: 0.0,
            worst_victim: None,
            mitigations: 0,
            accesses: 0,
            now: 0,
            next_refresh: timings.t_refi,
            rfm_enabled,
        }
    }

    /// Builds two harnesses identical except for the counter-tracker eviction
    /// engine: `(scan, summary)`. The A/B security gate replays the same attack
    /// pattern through both and requires the summary engine's maximum
    /// unmitigated disturbance to stay at or below the seed (scan) engine's —
    /// the empirical half of the observational-equivalence contract (the
    /// analytical half, the Misra-Gries no-undercount bound, is property-tested
    /// in `impress-trackers`).
    pub fn eviction_engine_pair(
        config: &ProtectionConfig,
        alpha: f64,
        timings: &DramTimings,
    ) -> (SecurityHarness, SecurityHarness) {
        use impress_trackers::EvictionEngine;
        let scan = config.clone().with_eviction_engine(EvictionEngine::Scan);
        let summary = config.clone().with_eviction_engine(EvictionEngine::Summary);
        (
            SecurityHarness::new(&scan, alpha, timings),
            SecurityHarness::new(&summary, alpha, timings),
        )
    }

    /// Current simulated time.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Charge currently accumulated by `row` (0 if never damaged or already refreshed).
    pub fn victim_charge(&self, row: RowId) -> f64 {
        self.victim_charge.get(&row).copied().unwrap_or(0.0)
    }

    fn refresh_victims(&mut self, aggressor: RowId) {
        for d in 1..=self.blast_radius {
            if let Some(below) = aggressor.checked_sub(d) {
                self.victim_charge.remove(&below);
            }
            let above = aggressor + d;
            if above < self.rows_per_bank {
                self.victim_charge.remove(&above);
            }
        }
    }

    fn damage_victims(&mut self, aggressor: RowId, charge: f64) {
        // Immediately adjacent rows take the full damage; this matches the paper's
        // threshold definition (TRH counts activations of the adjacent aggressor).
        for neighbour in [aggressor.checked_sub(1), Some(aggressor + 1)] {
            let Some(v) = neighbour else { continue };
            if v >= self.rows_per_bank {
                continue;
            }
            let c = self.victim_charge.entry(v).or_insert(0.0);
            *c += charge;
            if *c > self.max_charge {
                self.max_charge = *c;
                self.worst_victim = Some(v);
            }
        }
    }

    /// The open time the harness actually replays for a requested `t_on`: bounded
    /// below by tRAS, above by the refresh-postponement limit of the DDR
    /// specification, and (under ExPress) by the enforced tMRO. Pure and
    /// state-independent, so whole patterns can be clamped ahead of replay.
    fn clamped_t_on(&self, t_on: Cycle) -> Cycle {
        let t_on = t_on.clamp(
            self.timings.t_ras,
            (1 + self.timings.max_postponed_ref as u64) * self.timings.t_refi,
        );
        match self.engine.max_row_open() {
            Some(t_mro) => t_on.min(t_mro),
            None => t_on,
        }
    }

    /// Replays a single aggressor access, advancing time and applying any mitigations.
    pub fn apply(&mut self, access: AggressorAccess) {
        let t_on = self.clamped_t_on(access.t_on);
        self.apply_clamped(access.row, t_on, self.clm.charge_loss(t_on));
    }

    /// Replays one access whose open time is already clamped and whose CLM damage
    /// is already evaluated (the batched [`SecurityHarness::run`] path computes
    /// both for whole chunks at once via
    /// [`ChargeLossModel::charge_loss_batch`]).
    fn apply_clamped(&mut self, row: RowId, t_on: Cycle, charge: f64) {
        self.accesses += 1;

        // Periodic refresh: executes (and costs tRFC) whenever its deadline passes.
        // Refresh rotates through the victim rows only once per tREFW, so victims are
        // NOT reset here; but in-DRAM trackers get their mitigation opportunity, since
        // their mitigations are "performed under REF" (Appendix B).
        while self.now >= self.next_refresh {
            self.now += self.timings.t_rfc;
            self.next_refresh += self.timings.t_refi;
            if self.rfm_enabled {
                if let Some(m) = self.engine.on_rfm(self.now) {
                    self.mitigations += 1;
                    self.refresh_victims(m.aggressor);
                }
            }
        }

        let opened_at = self.now;
        for m in self.engine.on_activate(row, opened_at) {
            self.mitigations += 1;
            self.refresh_victims(m.aggressor);
            // A mitigation costs the attacker 4 victim activations worth of time.
            self.now += 4 * self.timings.t_rc;
        }

        let closed_at = opened_at + t_on;
        let closed = ClosedRow {
            row,
            open_cycles: t_on,
            opened_at,
            closed_at,
        };
        // Ground-truth damage of this access (pre-evaluated, possibly in batch).
        self.damage_victims(row, charge);
        self.now = closed_at + self.timings.t_pre;

        for m in self.engine.on_close(&closed) {
            self.mitigations += 1;
            self.refresh_victims(m.aggressor);
            self.now += 4 * self.timings.t_rc;
        }

        // RFM cadence for in-DRAM trackers.
        if self.rfm_enabled && self.rfm.on_activation() {
            self.rfm.on_rfm_issued(self.now);
            self.now += self.timings.t_rfm;
            if let Some(m) = self.engine.on_rfm(self.now) {
                self.mitigations += 1;
                self.refresh_victims(m.aggressor);
            }
        }
    }

    /// Replays a whole pattern (repeated until `duration` cycles have elapsed or the
    /// pattern iterator ends) and reports the outcome.
    ///
    /// The pattern is consumed in chunks: each chunk's open times are clamped and
    /// fed through the vectorized [`ChargeLossModel::charge_loss_batch`] kernel
    /// before the event-by-event replay, which only has to interleave the
    /// precomputed damages with the mitigation machinery. Clamping is
    /// state-independent and the batch kernel is bitwise-identical to the scalar
    /// one, so the outcome is exactly that of calling
    /// [`SecurityHarness::apply`] per access.
    pub fn run<I>(&mut self, pattern: I, duration: Cycle) -> SecurityReport
    where
        I: IntoIterator<Item = AggressorAccess>,
    {
        /// Accesses evaluated per batch kernel call.
        const CHUNK: usize = 128;
        let mut rows = [0 as RowId; CHUNK];
        let mut open = [0 as Cycle; CHUNK];
        let mut charge = [0.0f64; CHUNK];
        let mut pattern = pattern.into_iter();
        'outer: loop {
            let mut filled = 0;
            while filled < CHUNK {
                let Some(access) = pattern.next() else {
                    break;
                };
                rows[filled] = access.row;
                open[filled] = self.clamped_t_on(access.t_on);
                filled += 1;
            }
            if filled == 0 {
                break;
            }
            self.clm
                .charge_loss_batch(&open[..filled], &mut charge[..filled]);
            for i in 0..filled {
                if self.now >= duration {
                    break 'outer;
                }
                self.apply_clamped(rows[i], open[i], charge[i]);
            }
            if filled < CHUNK {
                break;
            }
        }
        self.report()
    }

    /// The report for everything replayed so far.
    pub fn report(&self) -> SecurityReport {
        SecurityReport {
            max_unmitigated_charge: self.max_charge,
            worst_victim: self.worst_victim,
            accesses: self.accesses,
            mitigations: self.mitigations,
            duration: self.now,
            configured_threshold: self.threshold,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clm::Alpha;
    use crate::config::{DefenseKind, TrackerChoice};

    fn timings() -> DramTimings {
        DramTimings::ddr5()
    }

    fn harness(tracker: TrackerChoice, defense: DefenseKind, alpha: f64) -> SecurityHarness {
        let cfg = ProtectionConfig::paper_default(tracker, defense);
        SecurityHarness::new(&cfg, alpha, &timings())
    }

    #[test]
    fn rowhammer_against_graphene_no_rp_is_contained() {
        let mut h = harness(TrackerChoice::Graphene, DefenseKind::NoRp, 1.0);
        let pattern = (0..20_000).map(|_| AggressorAccess::hammer(500));
        let report = h.run(pattern, u64::MAX);
        assert!(
            !report.bit_flipped(),
            "max charge = {}",
            report.max_unmitigated_charge
        );
        assert!(report.mitigations > 0);
    }

    #[test]
    fn rowpress_breaks_graphene_without_rp_mitigation() {
        // §II-D: Row-Press causes bit flips with far fewer than TRH activations when the
        // tracker ignores the open time.
        let t = timings();
        let mut h = harness(TrackerChoice::Graphene, DefenseKind::NoRp, 0.48);
        let t_on = t.t_refi; // one tREFI of open time per access
        let pattern = (0..150).map(move |_| AggressorAccess::press(500, t_on));
        let report = h.run(pattern, u64::MAX);
        assert!(
            report.bit_flipped(),
            "Row-Press should defeat the No-RP tracker (charge = {})",
            report.max_unmitigated_charge
        );
        // ... and it needs far fewer accesses than the threshold.
        assert!(report.accesses < 4_000 / 10);
    }

    #[test]
    fn impress_p_contains_the_same_rowpress_attack() {
        let t = timings();
        let mut h = harness(
            TrackerChoice::Graphene,
            DefenseKind::impress_p_default(),
            0.48,
        );
        let t_on = t.t_refi;
        let pattern = (0..20_000).map(move |_| AggressorAccess::press(500, t_on));
        let report = h.run(pattern, u64::MAX);
        assert!(
            !report.bit_flipped(),
            "ImPress-P must contain Row-Press (charge = {})",
            report.max_unmitigated_charge
        );
    }

    #[test]
    fn impress_n_contains_rowpress_with_retargeted_tracker() {
        let t = timings();
        let mut h = harness(
            TrackerChoice::Graphene,
            DefenseKind::ImpressN {
                alpha: Alpha::Conservative,
            },
            1.0,
        );
        let t_on = t.t_refi;
        let pattern = (0..20_000).map(move |_| AggressorAccess::press(500, t_on));
        let report = h.run(pattern, u64::MAX);
        assert!(
            !report.bit_flipped(),
            "ImPress-N with alpha=1 must contain long Row-Press (charge = {})",
            report.max_unmitigated_charge
        );
    }

    #[test]
    fn mint_impress_p_contains_rowpress() {
        let t = timings();
        let cfg = ProtectionConfig {
            rowhammer_threshold: 1_600,
            ..ProtectionConfig::paper_default(TrackerChoice::Mint, DefenseKind::impress_p_default())
        };
        let mut h = SecurityHarness::new(&cfg, 1.0, &t);
        let t_on = 4 * t.t_refi;
        let pattern = (0..50_000).map(move |_| AggressorAccess::press(321, t_on));
        let report = h.run(pattern, u64::MAX);
        assert!(
            !report.bit_flipped(),
            "MINT + ImPress-P must contain Row-Press (charge = {})",
            report.max_unmitigated_charge
        );
    }

    #[test]
    fn batched_run_is_bitwise_identical_to_per_access_apply() {
        // The chunked/vectorized run path must reproduce the scalar event loop
        // exactly, including across chunk boundaries and under ExPress clamping.
        let t = timings();
        for (tracker, defense, count) in [
            (
                TrackerChoice::Graphene,
                DefenseKind::impress_p_default(),
                300,
            ),
            (TrackerChoice::Para, DefenseKind::NoRp, 500),
            (
                TrackerChoice::Graphene,
                DefenseKind::express_paper_baseline(&t),
                129,
            ),
        ] {
            let pattern: Vec<AggressorAccess> = (0..count)
                .map(|i| {
                    if i % 3 == 0 {
                        AggressorAccess::hammer(400 + (i % 5))
                    } else {
                        AggressorAccess::press(400 + (i % 5), t.t_ras + (i as u64 * 977) % 40_000)
                    }
                })
                .collect();
            let mut batched = harness(tracker, defense, 0.48);
            let batched_report = batched.run(pattern.iter().copied(), u64::MAX);
            let mut scalar = harness(tracker, defense, 0.48);
            for &a in &pattern {
                scalar.apply(a);
            }
            let scalar_report = scalar.report();
            assert_eq!(
                batched_report.max_unmitigated_charge.to_bits(),
                scalar_report.max_unmitigated_charge.to_bits(),
                "{tracker:?}"
            );
            assert_eq!(batched_report, scalar_report, "{tracker:?}");
        }
    }

    #[test]
    fn eviction_engine_pair_is_scan_vs_summary() {
        let cfg = ProtectionConfig::paper_default(
            TrackerChoice::Graphene,
            DefenseKind::impress_p_default(),
        );
        let (mut scan, mut summary) = SecurityHarness::eviction_engine_pair(&cfg, 1.0, &timings());
        // On an eviction-free single-aggressor stream the engines are in exact
        // lockstep, so the reports agree bit for bit.
        let pattern: Vec<AggressorAccess> =
            (0..5_000).map(|_| AggressorAccess::hammer(500)).collect();
        let a = scan.run(pattern.iter().copied(), u64::MAX);
        let b = summary.run(pattern.iter().copied(), u64::MAX);
        assert_eq!(a, b);
        assert!(a.mitigations > 0);
    }

    #[test]
    fn report_exposes_accounting() {
        let mut h = harness(TrackerChoice::Para, DefenseKind::NoRp, 1.0);
        let report = h.run((0..100).map(|_| AggressorAccess::hammer(10)), u64::MAX);
        assert_eq!(report.accesses, 100);
        assert!(report.duration > 0);
        assert_eq!(report.configured_threshold, 4_000);
        assert!(report.defeated_threshold() <= 100);
    }
}
