//! Storage-overhead comparison across trackers and defenses (§VI-C, Appendix A).
//!
//! The paper's storage argument: ExPress and ImPress-N must re-target the tracker to
//! T* = TRH/(1+α), which multiplies the number of entries by (1+α) (2x at α = 1);
//! ImPress-P keeps the entry count and only widens each entry by 7 fractional bits
//! (≈ 1.25x total storage).

use impress_dram::DramTimings;
use impress_trackers::StorageEstimate;

use crate::config::{DefenseKind, ProtectionConfig, TrackerChoice};

/// The storage cost of one (tracker, defense) configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct StorageComparison {
    /// The tracker being sized.
    pub tracker: TrackerChoice,
    /// The defense determining the sizing.
    pub defense: DefenseKind,
    /// Threshold the tracker is configured for after the defense's scaling.
    pub effective_threshold: u64,
    /// Per-bank storage estimate.
    pub estimate: StorageEstimate,
    /// Storage per channel in KiB (with the baseline 64 banks/channel).
    pub kib_per_channel: f64,
}

/// Banks per channel in the paper's baseline system (Table II).
pub const BANKS_PER_CHANNEL: usize = 64;

/// Computes the storage comparison for a (tracker, defense) pair at the paper's
/// default TRH of 4K.
pub fn storage_for(tracker: TrackerChoice, defense: DefenseKind) -> StorageComparison {
    storage_for_threshold(tracker, defense, 4_000)
}

/// Computes the storage comparison for a (tracker, defense) pair at a given TRH.
pub fn storage_for_threshold(
    tracker: TrackerChoice,
    defense: DefenseKind,
    trh: u64,
) -> StorageComparison {
    let timings = DramTimings::ddr5();
    let config = ProtectionConfig {
        rowhammer_threshold: trh,
        ..ProtectionConfig::paper_default(tracker, defense)
    };
    let effective_threshold = config.effective_tracker_threshold(&timings);
    let estimate = config.build_tracker(&timings).storage();
    StorageComparison {
        tracker,
        defense,
        effective_threshold,
        kib_per_channel: estimate.kib_per_channel(BANKS_PER_CHANNEL),
        estimate,
    }
}

/// Relative storage of a defense vs. the No-RP baseline for the same tracker.
pub fn relative_storage(tracker: TrackerChoice, defense: DefenseKind) -> f64 {
    let base = storage_for(tracker, DefenseKind::NoRp);
    let with_defense = storage_for(tracker, defense);
    with_defense.estimate.relative_to(&base.estimate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clm::Alpha;

    #[test]
    fn graphene_storage_ratios_match_section_6c() {
        // §VI-C: ImPress-P storage is 1.25x of No-RP, whereas ImPress-N/ExPress are 2x.
        let impress_p = relative_storage(TrackerChoice::Graphene, DefenseKind::impress_p_default());
        assert!(
            (1.1..=1.3).contains(&impress_p),
            "ImPress-P ratio = {impress_p}"
        );

        let impress_n = relative_storage(
            TrackerChoice::Graphene,
            DefenseKind::ImpressN {
                alpha: Alpha::Conservative,
            },
        );
        assert!(
            (1.9..=2.1).contains(&impress_n),
            "ImPress-N ratio = {impress_n}"
        );

        let timings = DramTimings::ddr5();
        let express = relative_storage(
            TrackerChoice::Graphene,
            DefenseKind::express_paper_baseline(&timings),
        );
        assert!((1.9..=2.1).contains(&express), "ExPress ratio = {express}");
    }

    #[test]
    fn graphene_absolute_storage_near_115kb() {
        let base = storage_for(TrackerChoice::Graphene, DefenseKind::NoRp);
        assert!(
            (100.0..=130.0).contains(&base.kib_per_channel),
            "Graphene No-RP storage = {} KiB/channel",
            base.kib_per_channel
        );
        // Appendix A: 230 KB per channel at alpha=1 for ExPress / ImPress-N.
        let doubled = storage_for(
            TrackerChoice::Graphene,
            DefenseKind::ImpressN {
                alpha: Alpha::Conservative,
            },
        );
        assert!(
            (200.0..=260.0).contains(&doubled.kib_per_channel),
            "doubled storage = {} KiB/channel",
            doubled.kib_per_channel
        );
    }

    #[test]
    fn mithril_entries_quadruple_under_impress_n() {
        let base = storage_for(TrackerChoice::Mithril, DefenseKind::NoRp);
        assert!((375..=395).contains(&base.estimate.entries_per_bank));
        let impress_n = storage_for(
            TrackerChoice::Mithril,
            DefenseKind::ImpressN {
                alpha: Alpha::Conservative,
            },
        );
        // §VI-C: 383 -> ~1545 entries (we accept the calibrated ~1400-1600 range).
        assert!(
            (1300..=1700).contains(&impress_n.estimate.entries_per_bank),
            "entries = {}",
            impress_n.estimate.entries_per_bank
        );
        let impress_p = storage_for(TrackerChoice::Mithril, DefenseKind::impress_p_default());
        assert_eq!(
            impress_p.estimate.entries_per_bank,
            base.estimate.entries_per_bank
        );
    }

    #[test]
    fn mint_storage_4_to_5_bytes() {
        let base = storage_for(TrackerChoice::Mint, DefenseKind::NoRp);
        let impress_p = storage_for(TrackerChoice::Mint, DefenseKind::impress_p_default());
        assert_eq!(base.estimate.bytes_per_bank(), 4);
        assert_eq!(impress_p.estimate.bytes_per_bank(), 5);
    }

    #[test]
    fn para_has_negligible_storage() {
        let base = storage_for(TrackerChoice::Para, DefenseKind::NoRp);
        assert!(base.estimate.bytes_per_bank() <= 8);
    }
}
