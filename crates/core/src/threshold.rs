//! Effective-threshold analysis for the three Row-Press mitigations.
//!
//! These closed-form results drive Figures 4 and 12 and the threshold rows of
//! Table III:
//!
//! * ExPress: T*/TRH follows the characterization data (or the CLM) at the chosen tMRO.
//! * ImPress-N: T*/TRH = 1 / (1 + α) — Equation 5, via the Figure 10 evasion pattern.
//! * ImPress-P: T*/TRH = 1 with 7 fractional bits, degrading with fewer bits (Figure 12).

use impress_dram::timing::{Cycle, DramTimings};

use crate::clm::{Alpha, ChargeLossModel};
use crate::config::DefenseKind;
use crate::impress_n::ImpressN;
use crate::impress_p::ImpressP;
use crate::rowpress_data::relative_threshold_for_tmro;

/// The effective (tolerated) threshold relative to TRH for a defense configuration,
/// assuming the tracker has been re-targeted as the paper prescribes.
pub fn tolerated_threshold_scale(defense: &DefenseKind) -> f64 {
    match *defense {
        // Without Row-Press mitigation, a maximal Row-Press pattern defeats the system;
        // the tolerated threshold collapses to the damage of unmitigated open time and
        // is reported as 0 ("broken") here.
        DefenseKind::NoRp => 0.0,
        // ExPress and ImPress-N keep the system secure at the nominal TRH *provided*
        // the tracker was re-targeted; the cost shows up as the tracker threshold scale,
        // not as a security loss.
        DefenseKind::Express { .. } | DefenseKind::ImpressN { .. } => 1.0,
        DefenseKind::ImpressP { frac_bits } => ImpressP::effective_threshold_scale(frac_bits),
    }
}

/// The threshold the *tracker* must be designed for, relative to TRH (T*/TRH).
///
/// This is what determines storage and mitigation-rate overheads: 1.0 means the tracker
/// keeps its original sizing.
pub fn tracker_threshold_scale(defense: &DefenseKind, timings: &DramTimings) -> f64 {
    defense.build(timings).tracker_threshold_scale()
}

/// ExPress's reduced threshold, from the characterization data of Figure 4, for a
/// given tMRO in nanoseconds.
pub fn express_threshold_from_data(t_mro_ns: u64) -> f64 {
    relative_threshold_for_tmro(t_mro_ns)
}

/// ExPress's reduced threshold, from the CLM with parameter `alpha`, for a tMRO in cycles.
pub fn express_threshold_from_clm(t_mro: Cycle, alpha: Alpha, timings: &DramTimings) -> f64 {
    ChargeLossModel::new(alpha, timings).relative_threshold(t_mro)
}

/// Equation 5: ImPress-N's effective threshold relative to TRH.
pub fn impress_n_threshold(alpha: Alpha) -> f64 {
    ImpressN::effective_threshold_scale(alpha)
}

/// Figure 12: ImPress-P's effective threshold relative to TRH as a function of the
/// number of fractional counter bits, for bits 0..=7.
pub fn impress_p_threshold_curve() -> Vec<(u32, f64)> {
    (0..=7)
        .map(|b| (b, ImpressP::effective_threshold_scale(b)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure12_series() {
        let curve = impress_p_threshold_curve();
        assert_eq!(curve.len(), 8);
        assert_eq!(curve[0], (0, 0.5));
        assert_eq!(curve[7], (7, 1.0));
        // Strictly non-decreasing in the number of bits.
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn equation5_values() {
        assert!((impress_n_threshold(Alpha::Conservative) - 0.5).abs() < 1e-12);
        assert!((impress_n_threshold(Alpha::ShortDuration) - 0.7407).abs() < 1e-3);
    }

    #[test]
    fn tracker_vs_tolerated_scales() {
        let t = DramTimings::ddr5();
        let impress_p = DefenseKind::impress_p_default();
        assert_eq!(tracker_threshold_scale(&impress_p, &t), 1.0);
        assert_eq!(tolerated_threshold_scale(&impress_p), 1.0);

        let impress_n = DefenseKind::ImpressN {
            alpha: Alpha::Conservative,
        };
        assert_eq!(tracker_threshold_scale(&impress_n, &t), 0.5);
        assert_eq!(tolerated_threshold_scale(&impress_n), 1.0);

        assert_eq!(tolerated_threshold_scale(&DefenseKind::NoRp), 0.0);
    }

    #[test]
    fn express_data_and_clm_agree_in_shape() {
        let t = DramTimings::ddr5();
        // Both decrease with tMRO; the CLM (conservative) is never above the data curve
        // for large tMRO.
        let mut prev_data = f64::MAX;
        for ns in [36u64, 96, 186, 336, 636] {
            let data = express_threshold_from_data(ns);
            assert!(data <= prev_data);
            prev_data = data;
            let clm = express_threshold_from_clm(
                impress_dram::timing::ns_to_cycles(ns),
                Alpha::ShortDuration,
                &t,
            );
            assert!(clm > 0.0 && clm <= 1.0);
        }
    }
}
