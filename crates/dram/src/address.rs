//! Physical and DRAM-level address types.

use std::fmt;

/// Index of a DRAM row within a bank.
///
/// Rows are the unit at which Rowhammer and Row-Press damage is tracked: an aggressor
/// row disturbs its physically adjacent victim rows (`row ± 1`, `row ± 2` within the
/// blast radius).
pub type RowId = u32;

/// A byte address in the physical address space exposed to the cores.
///
/// The newtype keeps physical addresses from being confused with DRAM column/row
/// indices when building mappings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysicalAddress(pub u64);

impl PhysicalAddress {
    /// Creates a physical address from a raw byte address.
    pub const fn new(addr: u64) -> Self {
        Self(addr)
    }

    /// Returns the raw byte address.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the address of the cache line containing this byte (64-byte lines).
    pub const fn line_address(self) -> u64 {
        self.0 >> 6
    }
}

impl From<u64> for PhysicalAddress {
    fn from(addr: u64) -> Self {
        Self(addr)
    }
}

impl fmt::Display for PhysicalAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for PhysicalAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

/// A fully decoded DRAM location: which channel, rank, bank group, bank, row and
/// column a physical address maps to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct DramAddress {
    /// Memory channel index.
    pub channel: u8,
    /// Rank index within the channel.
    pub rank: u8,
    /// Bank group index within the rank.
    pub bank_group: u8,
    /// Bank index within the bank group.
    pub bank: u8,
    /// Row index within the bank.
    pub row: RowId,
    /// Column (cache-line granularity) within the row.
    pub column: u32,
}

impl DramAddress {
    /// Returns a flat bank index that is unique across the whole channel
    /// (`rank`, `bank_group`, `bank` folded together).
    ///
    /// The memory controller uses this to index its per-bank state.
    pub fn flat_bank(&self, banks_per_group: u8, bank_groups: u8) -> usize {
        let per_rank = banks_per_group as usize * bank_groups as usize;
        self.rank as usize * per_rank
            + self.bank_group as usize * banks_per_group as usize
            + self.bank as usize
    }
}

impl fmt::Display for DramAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ch{} rk{} bg{} ba{} row{} col{}",
            self.channel, self.rank, self.bank_group, self.bank, self.row, self.column
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_address_strips_offset() {
        let a = PhysicalAddress::new(0x1234);
        assert_eq!(a.line_address(), 0x1234 >> 6);
    }

    #[test]
    fn flat_bank_is_unique() {
        let mut seen = std::collections::HashSet::new();
        for rank in 0..2u8 {
            for bg in 0..8u8 {
                for bank in 0..4u8 {
                    let addr = DramAddress {
                        rank,
                        bank_group: bg,
                        bank,
                        ..DramAddress::default()
                    };
                    assert!(seen.insert(addr.flat_bank(4, 8)));
                }
            }
        }
        assert_eq!(seen.len(), 2 * 8 * 4);
    }

    #[test]
    fn display_contains_components() {
        let addr = DramAddress {
            channel: 1,
            rank: 0,
            bank_group: 3,
            bank: 2,
            row: 77,
            column: 5,
        };
        let s = addr.to_string();
        assert!(s.contains("ch1") && s.contains("row77"));
    }
}
