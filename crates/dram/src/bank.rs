//! Per-bank state machine: open row, open time, and timing legality.

use crate::address::RowId;
use crate::error::DramError;
use crate::stats::BankStats;
use crate::timing::{Cycle, DramTimings};

/// The state of a DRAM bank's row buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BankState {
    /// No row is open; the bank is precharged.
    Idle,
    /// A row is open in the row buffer.
    Active {
        /// The open row.
        row: RowId,
        /// Cycle at which the ACT for this row was issued.
        opened_at: Cycle,
    },
}

/// Information about a row that has just been closed by a precharge.
///
/// This is the quantity ImPress-P needs: the row identity and how long it was open
/// (`tON`), from which the Equivalent Activation Count is derived.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClosedRow {
    /// The row that was closed.
    pub row: RowId,
    /// Number of cycles the row was open (from ACT issue to PRE issue).
    pub open_cycles: Cycle,
    /// Cycle at which the row was opened.
    pub opened_at: Cycle,
    /// Cycle at which the precharge was issued.
    pub closed_at: Cycle,
}

/// A single DRAM bank: tracks the open row, enforces the timing constraints that matter
/// for Rowhammer/Row-Press studies (`tRC`, `tRAS`), and accumulates statistics.
#[derive(Debug, Clone)]
pub struct Bank {
    /// Flat index of this bank within its channel (for diagnostics only).
    index: usize,
    state: BankState,
    /// Cycle of the most recent ACT to this bank (for the `tRC` constraint).
    last_act_at: Option<Cycle>,
    /// Cycle until which the bank is busy with a precharge or refresh.
    busy_until: Cycle,
    stats: BankStats,
}

impl Bank {
    /// Creates an idle bank with the given flat index.
    pub fn new(index: usize) -> Self {
        Self {
            index,
            state: BankState::Idle,
            last_act_at: None,
            busy_until: 0,
            stats: BankStats::default(),
        }
    }

    /// Flat index of this bank within its channel.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Current row-buffer state.
    pub fn state(&self) -> BankState {
        self.state
    }

    /// The currently open row, if any.
    pub fn open_row(&self) -> Option<RowId> {
        match self.state {
            BankState::Active { row, .. } => Some(row),
            BankState::Idle => None,
        }
    }

    /// Cycle at which the currently open row (if any) was opened.
    pub fn opened_at(&self) -> Option<Cycle> {
        match self.state {
            BankState::Active { opened_at, .. } => Some(opened_at),
            BankState::Idle => None,
        }
    }

    /// How long the current row has been open as of `now` (0 if the bank is idle).
    pub fn open_time(&self, now: Cycle) -> Cycle {
        self.opened_at().map_or(0, |t| now.saturating_sub(t))
    }

    /// Accumulated statistics for this bank.
    pub fn stats(&self) -> &BankStats {
        &self.stats
    }

    /// Mutable access to the statistics (used by the controller to record queueing
    /// metrics that the bank itself cannot observe).
    pub fn stats_mut(&mut self) -> &mut BankStats {
        &mut self.stats
    }

    /// Earliest cycle at which a new ACT to this bank is legal.
    pub fn next_act_allowed(&self, timings: &DramTimings) -> Cycle {
        let trc_bound = self
            .last_act_at
            .map_or(0, |t| t.saturating_add(timings.t_rc));
        trc_bound.max(self.busy_until)
    }

    /// Earliest cycle at which the open row may be precharged (`tRAS` after its ACT).
    /// Returns `None` if the bank is idle.
    pub fn earliest_precharge(&self, timings: &DramTimings) -> Option<Cycle> {
        self.opened_at().map(|t| t + timings.t_ras)
    }

    /// Issues an ACT opening `row` at cycle `now`.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::BankAlreadyActive`] if a row is already open and
    /// [`DramError::TimingViolation`] if `tRC` since the previous ACT (or a pending
    /// precharge/refresh) has not elapsed.
    pub fn activate(
        &mut self,
        row: RowId,
        now: Cycle,
        timings: &DramTimings,
    ) -> Result<(), DramError> {
        if let BankState::Active { row: open, .. } = self.state {
            return Err(DramError::BankAlreadyActive {
                open_row: open,
                requested_row: row,
            });
        }
        let earliest = self.next_act_allowed(timings);
        if now < earliest {
            return Err(DramError::TimingViolation {
                constraint: "tRC",
                earliest_legal: earliest,
                issued_at: now,
            });
        }
        self.state = BankState::Active {
            row,
            opened_at: now,
        };
        self.last_act_at = Some(now);
        self.stats.activations += 1;
        Ok(())
    }

    /// Issues a precharge closing the open row at cycle `now`, returning the closed
    /// row and its open time.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::BankNotActive`] if no row is open, and
    /// [`DramError::TimingViolation`] if `tRAS` has not elapsed since the ACT.
    pub fn precharge(&mut self, now: Cycle, timings: &DramTimings) -> Result<ClosedRow, DramError> {
        match self.state {
            BankState::Idle => Err(DramError::BankNotActive),
            BankState::Active { row, opened_at } => {
                let earliest = opened_at + timings.t_ras;
                if now < earliest {
                    return Err(DramError::TimingViolation {
                        constraint: "tRAS",
                        earliest_legal: earliest,
                        issued_at: now,
                    });
                }
                let open_cycles = now - opened_at;
                self.state = BankState::Idle;
                self.busy_until = now + timings.t_pre;
                self.stats.precharges += 1;
                self.stats.total_open_cycles += open_cycles;
                self.stats.max_open_cycles = self.stats.max_open_cycles.max(open_cycles);
                Ok(ClosedRow {
                    row,
                    open_cycles,
                    opened_at,
                    closed_at: now,
                })
            }
        }
    }

    /// Records a column access (read or write) to `row` at cycle `now` and classifies
    /// it as a row-buffer hit or miss for statistics.
    ///
    /// The access is a *hit* if `row` is currently open. The caller (memory
    /// controller) is responsible for opening the row first on a miss; calling this
    /// with a mismatched row returns an error so modelling bugs surface early.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::BankNotActive`] if the bank is idle, or
    /// [`DramError::RowMismatch`] if a different row is open.
    pub fn access(&mut self, row: RowId, is_write: bool, _now: Cycle) -> Result<(), DramError> {
        match self.state {
            BankState::Idle => Err(DramError::BankNotActive),
            BankState::Active { row: open, .. } if open != row => Err(DramError::RowMismatch {
                open_row: open,
                requested_row: row,
            }),
            BankState::Active { .. } => {
                if is_write {
                    self.stats.writes += 1;
                } else {
                    self.stats.reads += 1;
                }
                Ok(())
            }
        }
    }

    /// Applies a refresh (REF) to this bank: any open row is force-closed and the bank
    /// stays busy for `tRFC`.
    ///
    /// Returns the closed row (if one was open) so the Row-Press defense can account
    /// for its open time; refreshes close rows regardless of `tRAS`.
    pub fn refresh(&mut self, now: Cycle, timings: &DramTimings) -> Option<ClosedRow> {
        let closed = match self.state {
            BankState::Active { row, opened_at } => {
                let open_cycles = now.saturating_sub(opened_at);
                self.stats.total_open_cycles += open_cycles;
                self.stats.max_open_cycles = self.stats.max_open_cycles.max(open_cycles);
                Some(ClosedRow {
                    row,
                    open_cycles,
                    opened_at,
                    closed_at: now,
                })
            }
            BankState::Idle => None,
        };
        self.state = BankState::Idle;
        self.busy_until = now + timings.t_rfc;
        self.stats.refreshes += 1;
        closed
    }

    /// Blocks the bank for the duration of an RFM command starting at `now`.
    ///
    /// Any open row is force-closed (RFM requires all banks precharged), and the
    /// closed-row information is returned for Row-Press accounting.
    pub fn refresh_management(&mut self, now: Cycle, timings: &DramTimings) -> Option<ClosedRow> {
        let closed = match self.state {
            BankState::Active { row, opened_at } => {
                let open_cycles = now.saturating_sub(opened_at);
                self.stats.total_open_cycles += open_cycles;
                Some(ClosedRow {
                    row,
                    open_cycles,
                    opened_at,
                    closed_at: now,
                })
            }
            BankState::Idle => None,
        };
        self.state = BankState::Idle;
        self.busy_until = now + timings.t_rfm;
        self.stats.rfm_commands += 1;
        closed
    }

    /// Performs a mitigative refresh of a victim row: modelled as an ACT + PRE pair
    /// taking one full `tRC`, counted separately from demand activations.
    ///
    /// The refresh occupies the bank (extends `busy_until` and the `tRC` window) but
    /// does not disturb the row-buffer state: the controller schedules victim refreshes
    /// in the gaps around demand traffic.
    pub fn victim_refresh(&mut self, now: Cycle, timings: &DramTimings) {
        self.busy_until = now.max(self.busy_until) + timings.t_rc;
        self.last_act_at = Some(now.max(self.last_act_at.unwrap_or(0)));
        self.stats.mitigative_activations += 1;
    }

    /// Cycle until which the bank is busy and cannot accept new commands.
    pub fn busy_until(&self) -> Cycle {
        self.busy_until
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> DramTimings {
        DramTimings::ddr5()
    }

    #[test]
    fn activate_then_precharge_tracks_open_time() {
        let timings = t();
        let mut bank = Bank::new(0);
        bank.activate(7, 100, &timings).unwrap();
        assert_eq!(bank.open_row(), Some(7));
        let closed = bank.precharge(100 + 500, &timings).unwrap();
        assert_eq!(closed.row, 7);
        assert_eq!(closed.open_cycles, 500);
        assert_eq!(bank.open_row(), None);
    }

    #[test]
    fn double_activate_is_rejected() {
        let timings = t();
        let mut bank = Bank::new(0);
        bank.activate(1, 0, &timings).unwrap();
        let err = bank.activate(2, 10, &timings).unwrap_err();
        assert!(matches!(err, DramError::BankAlreadyActive { .. }));
    }

    #[test]
    fn trc_between_activations_is_enforced() {
        let timings = t();
        let mut bank = Bank::new(0);
        bank.activate(1, 0, &timings).unwrap();
        bank.precharge(timings.t_ras, &timings).unwrap();
        // A second ACT before tRC has elapsed since the first ACT is illegal.
        let err = bank.activate(2, timings.t_rc - 1, &timings).unwrap_err();
        assert!(matches!(
            err,
            DramError::TimingViolation {
                constraint: "tRC",
                ..
            }
        ));
        bank.activate(2, timings.t_rc, &timings).unwrap();
    }

    #[test]
    fn premature_precharge_violates_tras() {
        let timings = t();
        let mut bank = Bank::new(0);
        bank.activate(1, 0, &timings).unwrap();
        let err = bank.precharge(timings.t_ras - 1, &timings).unwrap_err();
        assert!(matches!(
            err,
            DramError::TimingViolation {
                constraint: "tRAS",
                ..
            }
        ));
    }

    #[test]
    fn access_requires_matching_open_row() {
        let timings = t();
        let mut bank = Bank::new(0);
        assert!(matches!(
            bank.access(3, false, 0),
            Err(DramError::BankNotActive)
        ));
        bank.activate(3, 0, &timings).unwrap();
        bank.access(3, false, 10).unwrap();
        assert!(matches!(
            bank.access(4, false, 20),
            Err(DramError::RowMismatch { .. })
        ));
        assert_eq!(bank.stats().reads, 1);
    }

    #[test]
    fn refresh_closes_open_row() {
        let timings = t();
        let mut bank = Bank::new(0);
        bank.activate(9, 0, &timings).unwrap();
        let closed = bank.refresh(1000, &timings).unwrap();
        assert_eq!(closed.row, 9);
        assert_eq!(closed.open_cycles, 1000);
        assert_eq!(bank.open_row(), None);
        assert_eq!(bank.busy_until(), 1000 + timings.t_rfc);
    }

    #[test]
    fn victim_refresh_counts_separately() {
        let timings = t();
        let mut bank = Bank::new(0);
        bank.victim_refresh(0, &timings);
        bank.victim_refresh(timings.t_rc, &timings);
        assert_eq!(bank.stats().mitigative_activations, 2);
        assert_eq!(bank.stats().activations, 0);
    }

    #[test]
    fn open_time_saturates_when_idle() {
        let bank = Bank::new(0);
        assert_eq!(bank.open_time(1234), 0);
    }
}
