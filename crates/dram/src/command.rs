//! DRAM command types issued by the memory controller to the device.

use std::fmt;

use crate::address::RowId;
use crate::timing::Cycle;

/// The kind of a DRAM command, without its operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DramCommandKind {
    /// Activate (open) a row.
    Activate,
    /// Precharge (close) the open row.
    Precharge,
    /// Column read from the open row.
    Read,
    /// Column write to the open row.
    Write,
    /// Periodic refresh (REF).
    Refresh,
    /// Refresh Management command (RFM) giving the in-DRAM tracker time to mitigate.
    RefreshManagement,
    /// A mitigative refresh of a victim row (issued by the RH defense).
    VictimRefresh,
}

impl fmt::Display for DramCommandKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DramCommandKind::Activate => "ACT",
            DramCommandKind::Precharge => "PRE",
            DramCommandKind::Read => "RD",
            DramCommandKind::Write => "WR",
            DramCommandKind::Refresh => "REF",
            DramCommandKind::RefreshManagement => "RFM",
            DramCommandKind::VictimRefresh => "VREF",
        };
        f.write_str(s)
    }
}

/// A DRAM command addressed to a specific bank, as scheduled by the memory controller
/// or replayed by the attack runner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DramCommand {
    /// Kind of command.
    pub kind: DramCommandKind,
    /// Flat bank index within the channel the command targets.
    pub bank: usize,
    /// Row operand (meaningful for `Activate` and `VictimRefresh`; `0` otherwise).
    pub row: RowId,
    /// Cycle at which the command is issued on the command bus.
    pub issued_at: Cycle,
}

impl DramCommand {
    /// Creates an activate command.
    pub fn activate(bank: usize, row: RowId, issued_at: Cycle) -> Self {
        Self {
            kind: DramCommandKind::Activate,
            bank,
            row,
            issued_at,
        }
    }

    /// Creates a precharge command.
    pub fn precharge(bank: usize, issued_at: Cycle) -> Self {
        Self {
            kind: DramCommandKind::Precharge,
            bank,
            row: 0,
            issued_at,
        }
    }

    /// Creates a refresh-management command.
    pub fn rfm(bank: usize, issued_at: Cycle) -> Self {
        Self {
            kind: DramCommandKind::RefreshManagement,
            bank,
            row: 0,
            issued_at,
        }
    }

    /// Returns `true` if this command opens a row (counts as an activation for
    /// Rowhammer tracking purposes).
    pub fn is_activation(&self) -> bool {
        matches!(
            self.kind,
            DramCommandKind::Activate | DramCommandKind::VictimRefresh
        )
    }
}

impl fmt::Display for DramCommand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} bank{} row{} @{}",
            self.kind, self.bank, self.row, self.issued_at
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activation_detection() {
        assert!(DramCommand::activate(0, 1, 0).is_activation());
        assert!(!DramCommand::precharge(0, 0).is_activation());
        assert!(!DramCommand::rfm(0, 0).is_activation());
    }

    #[test]
    fn display_kinds() {
        assert_eq!(DramCommandKind::Activate.to_string(), "ACT");
        assert_eq!(DramCommandKind::RefreshManagement.to_string(), "RFM");
    }
}
