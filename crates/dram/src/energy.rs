//! A simple DRAM energy model used for the §VI-E energy-overhead analysis.
//!
//! The paper reports that activations account for ~11% of baseline DRAM energy and that
//! ExPress increases DRAM energy by 6–7% while ImPress-P stays within 1–2%. The model
//! here uses representative DDR5 per-operation energies (activation/precharge pair,
//! read, write, refresh) plus background power so that the activation share of a typical
//! workload's energy lands near the paper's 11%.

use crate::stats::BankStats;
use crate::timing::{Cycle, DramTimings};

/// Per-operation DRAM energies in picojoules and background power in milliwatts.
///
/// Values are representative of a DDR5 x16 device scaled to a DIMM; they only need to
/// be *relatively* correct for the normalized energy comparisons of §VI-E.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyModel {
    /// Energy of one ACT + PRE pair (row open + close), in pJ.
    pub act_pre_pj: f64,
    /// Energy of one column read burst, in pJ.
    pub read_pj: f64,
    /// Energy of one column write burst, in pJ.
    pub write_pj: f64,
    /// Energy of one all-bank REF command, in pJ.
    pub refresh_pj: f64,
    /// Energy of one RFM command, in pJ.
    pub rfm_pj: f64,
    /// Background (standby + peripheral) power in milliwatts per bank.
    pub background_mw_per_bank: f64,
}

impl EnergyModel {
    /// Representative DDR5 energy parameters.
    pub fn ddr5() -> Self {
        Self {
            act_pre_pj: 230.0,
            read_pj: 170.0,
            write_pj: 185.0,
            refresh_pj: 2600.0,
            rfm_pj: 1400.0,
            background_mw_per_bank: 0.2,
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::ddr5()
    }
}

/// DRAM energy broken down by source, in nanojoules.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Energy of demand activations (ACT+PRE pairs).
    pub demand_act_nj: f64,
    /// Energy of mitigative activations (victim refreshes).
    pub mitigative_act_nj: f64,
    /// Read burst energy.
    pub read_nj: f64,
    /// Write burst energy.
    pub write_nj: f64,
    /// Periodic refresh energy.
    pub refresh_nj: f64,
    /// RFM command energy.
    pub rfm_nj: f64,
    /// Background energy.
    pub background_nj: f64,
}

impl EnergyBreakdown {
    /// Total energy in nanojoules.
    pub fn total_nj(&self) -> f64 {
        self.demand_act_nj
            + self.mitigative_act_nj
            + self.read_nj
            + self.write_nj
            + self.refresh_nj
            + self.rfm_nj
            + self.background_nj
    }

    /// Fraction of total energy spent on activations (demand + mitigative).
    pub fn activation_share(&self) -> f64 {
        let total = self.total_nj();
        if total == 0.0 {
            0.0
        } else {
            (self.demand_act_nj + self.mitigative_act_nj) / total
        }
    }
}

impl EnergyModel {
    /// Computes the energy consumed by a bank (or an aggregate of banks) given its
    /// statistics and the number of elapsed cycles.
    ///
    /// `elapsed` is the wall-clock duration of the simulation in DRAM cycles and
    /// `bank_count` the number of banks the statistics cover (for background power).
    pub fn energy(
        &self,
        stats: &BankStats,
        elapsed: Cycle,
        bank_count: usize,
        timings: &DramTimings,
    ) -> EnergyBreakdown {
        let _ = timings;
        let pj_to_nj = 1e-3;
        let seconds = elapsed as f64 * 0.375e-9;
        EnergyBreakdown {
            demand_act_nj: stats.activations as f64 * self.act_pre_pj * pj_to_nj,
            mitigative_act_nj: stats.mitigative_activations as f64 * self.act_pre_pj * pj_to_nj,
            read_nj: stats.reads as f64 * self.read_pj * pj_to_nj,
            write_nj: stats.writes as f64 * self.write_pj * pj_to_nj,
            refresh_nj: stats.refreshes as f64 * self.refresh_pj * pj_to_nj,
            rfm_nj: stats.rfm_commands as f64 * self.rfm_pj * pj_to_nj,
            background_nj: self.background_mw_per_bank * bank_count as f64 * seconds * 1e6,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_is_sum_of_parts() {
        let b = EnergyBreakdown {
            demand_act_nj: 1.0,
            mitigative_act_nj: 2.0,
            read_nj: 3.0,
            write_nj: 4.0,
            refresh_nj: 5.0,
            rfm_nj: 6.0,
            background_nj: 7.0,
        };
        assert!((b.total_nj() - 28.0).abs() < 1e-12);
    }

    #[test]
    fn activation_share_reasonable_for_typical_mix() {
        // A workload-like mix: one activation per ~4 accesses, refresh every tREFI,
        // run for 10 ms. The activation share should land in the broad vicinity of the
        // paper's reported 11% (we accept 5%..25%).
        let t = DramTimings::ddr5();
        let elapsed: Cycle = 26_666_667; // 10 ms
        let accesses = 400_000u64;
        let stats = BankStats {
            activations: accesses / 4,
            reads: accesses * 2 / 3,
            writes: accesses / 3,
            refreshes: elapsed / t.t_refi,
            ..BankStats::default()
        };
        let e = EnergyModel::ddr5().energy(&stats, elapsed, 64, &t);
        let share = e.activation_share();
        assert!(share > 0.05 && share < 0.25, "activation share = {share}");
    }

    #[test]
    fn more_mitigations_increase_energy() {
        let t = DramTimings::ddr5();
        let base = BankStats {
            activations: 1000,
            reads: 4000,
            ..BankStats::default()
        };
        let with_mitig = BankStats {
            mitigative_activations: 500,
            ..base
        };
        let m = EnergyModel::ddr5();
        assert!(
            m.energy(&with_mitig, 1_000_000, 1, &t).total_nj()
                > m.energy(&base, 1_000_000, 1, &t).total_nj()
        );
    }

    #[test]
    fn zero_stats_zero_activation_share() {
        let t = DramTimings::ddr5();
        let e = EnergyModel::ddr5().energy(&BankStats::default(), 0, 0, &t);
        assert_eq!(e.activation_share(), 0.0);
    }
}
