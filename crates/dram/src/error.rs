//! Error types for the DRAM device model.

use std::error::Error;
use std::fmt;

use crate::address::RowId;
use crate::timing::Cycle;

/// Errors reported by the DRAM device model when a command violates the device state
/// or a timing constraint.
///
/// The memory controller is expected to never trigger these in normal operation; they
/// exist so that tests and attack runners get a precise diagnostic instead of silent
/// mis-modelling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DramError {
    /// An ACT was issued to a bank that already has an open row.
    BankAlreadyActive {
        /// Row that is currently open.
        open_row: RowId,
        /// Row that the offending ACT targeted.
        requested_row: RowId,
    },
    /// A command that requires an open row (read, write, precharge) was issued to an
    /// idle bank.
    BankNotActive,
    /// A command was issued before the bank finished its previous operation.
    TimingViolation {
        /// Human-readable name of the violated constraint (e.g. `"tRC"`).
        constraint: &'static str,
        /// Earliest cycle at which the command would have been legal.
        earliest_legal: Cycle,
        /// Cycle at which the command was actually issued.
        issued_at: Cycle,
    },
    /// A column access targeted a different row than the one currently open.
    RowMismatch {
        /// Row that is currently open.
        open_row: RowId,
        /// Row that the access required.
        requested_row: RowId,
    },
    /// A mapping specification is inconsistent with the organization it targets
    /// (non-power-of-two dimension, overlapping or missing bit positions, wrong
    /// field widths).
    InvalidMapping {
        /// What is wrong with the specification.
        reason: &'static str,
        /// The field or dimension the problem was detected on.
        component: &'static str,
    },
    /// An address decoded outside the configured organization (row, bank, or channel
    /// index out of range).
    AddressOutOfRange {
        /// Description of the offending component.
        component: &'static str,
        /// Value that was decoded.
        value: u64,
        /// Exclusive upper bound allowed by the organization.
        limit: u64,
    },
}

impl fmt::Display for DramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DramError::BankAlreadyActive {
                open_row,
                requested_row,
            } => write!(
                f,
                "activate issued while row {open_row} is open (requested row {requested_row})"
            ),
            DramError::BankNotActive => write!(f, "command requires an open row but bank is idle"),
            DramError::TimingViolation {
                constraint,
                earliest_legal,
                issued_at,
            } => write!(
                f,
                "{constraint} violated: issued at cycle {issued_at}, legal at {earliest_legal}"
            ),
            DramError::RowMismatch {
                open_row,
                requested_row,
            } => write!(
                f,
                "column access to row {requested_row} while row {open_row} is open"
            ),
            DramError::InvalidMapping { reason, component } => {
                write!(f, "invalid mapping: {reason} ({component})")
            }
            DramError::AddressOutOfRange {
                component,
                value,
                limit,
            } => write!(f, "{component} index {value} out of range (limit {limit})"),
        }
    }
}

impl Error for DramError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DramError::TimingViolation {
            constraint: "tRC",
            earliest_legal: 128,
            issued_at: 100,
        };
        let s = e.to_string();
        assert!(s.contains("tRC"));
        assert!(s.contains("128"));
        assert!(s.contains("100"));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DramError>();
    }
}
