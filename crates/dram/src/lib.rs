//! DDR5 DRAM device model for the ImPress reproduction.
//!
//! This crate is the lowest-level substrate of the ImPress reproduction: it models the
//! parts of a DDR5 DRAM device that matter for Rowhammer (RH) and Row-Press (RP)
//! mitigation studies:
//!
//! * JEDEC timing parameters (Table I of the paper) — [`timing::DramTimings`]
//! * per-bank state machines tracking the open row and its open time — [`bank::Bank`]
//! * the device organization (channels × ranks × bank groups × banks) — [`organization`]
//! * physical-to-DRAM address mapping, including the Minimalist Open Page (MOP) scheme
//!   used by the paper — [`mapping`]
//! * refresh scheduling with DDR5 refresh postponement — [`refresh`]
//! * Refresh Management (RFM) bookkeeping used by in-DRAM trackers — [`rfm`]
//! * a simple DRAM energy model used for the §VI-E energy analysis — [`energy`]
//! * activation / row-hit / mitigation statistics — [`stats`]
//!
//! All time is measured in DRAM clock cycles ([`Cycle`]) at 2.666 GHz (0.375 ns per
//! cycle), so that `tRC` (48 ns) is exactly 128 cycles. This matches the paper's
//! observation (§VI-A) that dividing by `tRC` can be implemented as a right shift by 7.
//!
//! # Example
//!
//! ```
//! use impress_dram::{Bank, DramTimings};
//!
//! let t = DramTimings::ddr5();
//! let mut bank = Bank::new(0);
//! bank.activate(42, 0, &t).unwrap();
//! assert_eq!(bank.open_row(), Some(42));
//! // The row must stay open for at least tRAS before it can be precharged.
//! let closed = bank.precharge(t.t_ras, &t).unwrap();
//! assert_eq!(closed.row, 42);
//! assert_eq!(closed.open_cycles, t.t_ras);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod address;
pub mod bank;
pub mod command;
pub mod energy;
pub mod error;
pub mod mapping;
pub mod organization;
pub mod refresh;
pub mod rfm;
pub mod stats;
pub mod timing;

pub use address::{DramAddress, PhysicalAddress, RowId};
pub use bank::{Bank, BankState, ClosedRow};
pub use command::{DramCommand, DramCommandKind};
pub use energy::{EnergyBreakdown, EnergyModel};
pub use error::DramError;
pub use mapping::{AddressMapping, BitField, BitInterleaving};
pub use organization::DramOrganization;
pub use refresh::RefreshScheduler;
pub use rfm::RfmCounter;
pub use stats::{BankStats, ChannelStats};
pub use timing::{Cycle, DramTimings};
