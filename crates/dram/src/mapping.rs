//! Physical-address to DRAM-address mapping schemes.
//!
//! The paper uses a *Minimalist Open-Page* (MOP) mapping with 8 consecutive cache lines
//! per row before interleaving across banks and channels (Table II). MOP keeps a small
//! amount of spatial locality in the row buffer (good for streaming) while spreading
//! accesses across banks for parallelism.

use crate::address::{DramAddress, PhysicalAddress, RowId};
use crate::error::DramError;
use crate::organization::DramOrganization;

/// Address-mapping schemes supported by the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AddressMapping {
    /// Minimalist Open Page: `lines_per_chunk` consecutive cache lines map to the same
    /// row, then the next chunk moves to the next channel/bank. The paper uses 8.
    Mop {
        /// Consecutive cache lines kept in the same row before interleaving.
        lines_per_chunk: u32,
    },
    /// Entire rows are consecutive in the physical address space (maximizes row-buffer
    /// locality; baseline for open-page studies).
    RowInterleaved,
    /// Consecutive cache lines alternate across channels and banks (minimizes
    /// row-buffer locality; close to a closed-page system).
    CachelineInterleaved,
}

impl Default for AddressMapping {
    fn default() -> Self {
        AddressMapping::Mop { lines_per_chunk: 8 }
    }
}

impl AddressMapping {
    /// The paper's default mapping (MOP with 8 lines per chunk).
    pub fn paper_default() -> Self {
        Self::default()
    }

    /// Decodes a physical address into a DRAM location under organization `org`.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::AddressOutOfRange`] if the address lies beyond the
    /// capacity described by `org`.
    pub fn decode(
        &self,
        addr: PhysicalAddress,
        org: &DramOrganization,
    ) -> Result<DramAddress, DramError> {
        if addr.as_u64() >= org.capacity_bytes() {
            return Err(DramError::AddressOutOfRange {
                component: "physical address",
                value: addr.as_u64(),
                limit: org.capacity_bytes(),
            });
        }
        let line = addr.as_u64() / org.line_bytes as u64;
        let channels = org.channels as u64;
        let banks = org.banks_per_channel() as u64;
        let cols = org.columns_per_row as u64;
        let rows = org.rows_per_bank as u64;

        let (channel, bank, row, column) = match *self {
            AddressMapping::Mop { lines_per_chunk } => {
                let chunk_lines = lines_per_chunk as u64;
                let low_col = line % chunk_lines;
                let rest = line / chunk_lines;
                let channel = rest % channels;
                let rest = rest / channels;
                let bank = rest % banks;
                let rest = rest / banks;
                let chunks_per_row = cols / chunk_lines;
                let high_col = rest % chunks_per_row;
                let row = rest / chunks_per_row;
                (channel, bank, row, high_col * chunk_lines + low_col)
            }
            AddressMapping::RowInterleaved => {
                let column = line % cols;
                let rest = line / cols;
                let channel = rest % channels;
                let rest = rest / channels;
                let bank = rest % banks;
                let row = rest / banks;
                (channel, bank, row, column)
            }
            AddressMapping::CachelineInterleaved => {
                let channel = line % channels;
                let rest = line / channels;
                let bank = rest % banks;
                let rest = rest / banks;
                let column = rest % cols;
                let row = rest / cols;
                (channel, bank, row, column)
            }
        };

        if row >= rows {
            return Err(DramError::AddressOutOfRange {
                component: "row",
                value: row,
                limit: rows,
            });
        }

        // Unfold the flat bank index back into rank / bank group / bank.
        let banks_per_group = org.banks_per_group as u64;
        let groups = org.bank_groups as u64;
        let per_rank = banks_per_group * groups;
        let rank = bank / per_rank;
        let within_rank = bank % per_rank;
        let bank_group = within_rank / banks_per_group;
        let bank_in_group = within_rank % banks_per_group;

        Ok(DramAddress {
            channel: channel as u8,
            rank: rank as u8,
            bank_group: bank_group as u8,
            bank: bank_in_group as u8,
            row: row as RowId,
            column: column as u32,
        })
    }

    /// Returns the number of consecutive bytes that map to the same row before the
    /// mapping switches to another bank (the "chunk" size seen by streaming code).
    pub fn contiguous_row_bytes(&self, org: &DramOrganization) -> u64 {
        match *self {
            AddressMapping::Mop { lines_per_chunk } => {
                lines_per_chunk as u64 * org.line_bytes as u64
            }
            AddressMapping::RowInterleaved => org.row_bytes(),
            AddressMapping::CachelineInterleaved => org.line_bytes as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn org() -> DramOrganization {
        DramOrganization::small()
    }

    #[test]
    fn mop_keeps_eight_lines_in_one_row() {
        let org = org();
        let map = AddressMapping::paper_default();
        let base = map.decode(PhysicalAddress::new(0), &org).unwrap();
        for i in 0..8u64 {
            let a = map.decode(PhysicalAddress::new(i * 64), &org).unwrap();
            assert_eq!(a.row, base.row);
            assert_eq!(a.channel, base.channel);
            assert_eq!((a.bank_group, a.bank), (base.bank_group, base.bank));
        }
        // The 9th line moves to a different channel or bank.
        let ninth = map.decode(PhysicalAddress::new(8 * 64), &org).unwrap();
        assert!(
            ninth.channel != base.channel
                || (ninth.bank_group, ninth.bank) != (base.bank_group, base.bank)
        );
    }

    #[test]
    fn out_of_range_is_rejected() {
        let org = org();
        let map = AddressMapping::paper_default();
        let too_big = PhysicalAddress::new(org.capacity_bytes());
        assert!(matches!(
            map.decode(too_big, &org),
            Err(DramError::AddressOutOfRange { .. })
        ));
    }

    #[test]
    fn contiguous_row_bytes_matches_scheme() {
        let org = org();
        assert_eq!(
            AddressMapping::paper_default().contiguous_row_bytes(&org),
            512
        );
        assert_eq!(
            AddressMapping::RowInterleaved.contiguous_row_bytes(&org),
            org.row_bytes()
        );
        assert_eq!(
            AddressMapping::CachelineInterleaved.contiguous_row_bytes(&org),
            64
        );
    }

    proptest! {
        /// Decoding is injective at cache-line granularity: two distinct line
        /// addresses never map to the same (channel, bank, row, column).
        #[test]
        fn decode_is_injective(a in 0u64..1_000_000, b in 0u64..1_000_000) {
            prop_assume!(a != b);
            let org = DramOrganization::small();
            for map in [AddressMapping::paper_default(), AddressMapping::RowInterleaved, AddressMapping::CachelineInterleaved] {
                let pa = PhysicalAddress::new(a * 64);
                let pb = PhysicalAddress::new(b * 64);
                if pa.as_u64() < org.capacity_bytes() && pb.as_u64() < org.capacity_bytes() {
                    let da = map.decode(pa, &org).unwrap();
                    let db = map.decode(pb, &org).unwrap();
                    prop_assert_ne!(da, db);
                }
            }
        }

        /// All decoded components stay within the organization's bounds.
        #[test]
        fn decode_stays_in_bounds(line in 0u64..4_000_000) {
            let org = DramOrganization::small();
            let map = AddressMapping::paper_default();
            let addr = PhysicalAddress::new(line * 64);
            prop_assume!(addr.as_u64() < org.capacity_bytes());
            let d = map.decode(addr, &org).unwrap();
            prop_assert!(d.channel < org.channels);
            prop_assert!(d.rank < org.ranks);
            prop_assert!(d.bank_group < org.bank_groups);
            prop_assert!(d.bank < org.banks_per_group);
            prop_assert!(d.row < org.rows_per_bank);
            prop_assert!(d.column < org.columns_per_row);
        }
    }
}
