//! Physical-address to DRAM-address mapping schemes.
//!
//! The paper uses a *Minimalist Open-Page* (MOP) mapping with 8 consecutive cache lines
//! per row before interleaving across banks and channels (Table II). MOP keeps a small
//! amount of spatial locality in the row buffer (good for streaming) while spreading
//! accesses across banks for parallelism.
//!
//! Beyond the paper's fixed schemes, [`AddressMapping::BitInterleaved`] expresses an
//! *arbitrary* per-field bit interleaving (which physical-address bits form the
//! channel, rank, bank-group, bank, row and column indices), the shape every real
//! device mapping takes — e.g. antmicro's rowhammer-tester `DRAMAddressConverter` or
//! the DRAMA-reversed controller functions. Every variant also supports
//! [`AddressMapping::encode`], the exact inverse of [`AddressMapping::decode`] at
//! cache-line granularity, so traces of decoded locations can be re-encoded and
//! device mappings can be cross-checked both ways.

use crate::address::{DramAddress, PhysicalAddress, RowId};
use crate::error::DramError;
use crate::organization::DramOrganization;

/// Maximum number of physical-address bits a single [`BitField`] can gather.
pub const MAX_FIELD_BITS: usize = 24;

/// An ordered set of bit positions within a cache-line index.
///
/// `positions()[i]` is the line-index bit that forms bit `i` (LSB-first) of the
/// extracted field value. Positions need not be contiguous — that is the point:
/// real controllers scatter bank and channel bits between column and row bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BitField {
    len: u8,
    pos: [u8; MAX_FIELD_BITS],
}

impl BitField {
    /// A field of zero bits (always extracts 0; inserting ignores the value).
    pub const fn empty() -> Self {
        Self {
            len: 0,
            pos: [0; MAX_FIELD_BITS],
        }
    }

    /// Builds a field from explicit bit positions (LSB of the field first).
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_FIELD_BITS`] positions are given, if any position
    /// is ≥ 64, or if a position repeats.
    pub fn new(positions: &[u8]) -> Self {
        assert!(
            positions.len() <= MAX_FIELD_BITS,
            "bit field limited to {MAX_FIELD_BITS} bits, got {}",
            positions.len()
        );
        let mut pos = [0u8; MAX_FIELD_BITS];
        let mut seen = 0u64;
        for (i, &p) in positions.iter().enumerate() {
            assert!(p < 64, "bit position {p} out of range");
            assert!(seen & (1 << p) == 0, "bit position {p} repeated");
            seen |= 1 << p;
            pos[i] = p;
        }
        Self {
            len: positions.len() as u8,
            pos,
        }
    }

    /// A contiguous run of `len` bits starting at `offset` (the common case).
    pub fn contiguous(offset: u8, len: u8) -> Self {
        assert!((len as usize) <= MAX_FIELD_BITS, "bit field too wide");
        let mut pos = [0u8; MAX_FIELD_BITS];
        for i in 0..len {
            pos[i as usize] = offset + i;
        }
        Self { len, pos }
    }

    /// Number of bits in the field.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the field has no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The bit positions, LSB of the field first.
    pub fn positions(&self) -> &[u8] {
        &self.pos[..self.len as usize]
    }

    /// Exclusive upper bound of values this field can represent (`2^len`).
    pub fn cardinality(&self) -> u64 {
        1u64 << self.len
    }

    /// Gathers this field's bits out of `line`, batching contiguous runs so the
    /// common mostly-contiguous layouts cost a handful of shifts.
    #[inline]
    pub fn extract(&self, line: u64) -> u64 {
        let mut out = 0u64;
        let mut i = 0usize;
        let n = self.len as usize;
        while i < n {
            let start = self.pos[i];
            let mut run = 1usize;
            while i + run < n && self.pos[i + run] == start + run as u8 {
                run += 1;
            }
            let mask = if run == 64 {
                u64::MAX
            } else {
                (1u64 << run) - 1
            };
            out |= ((line >> start) & mask) << i;
            i += run;
        }
        out
    }

    /// Scatters the low `len` bits of `value` into their line-index positions
    /// (the exact inverse of [`BitField::extract`]).
    #[inline]
    pub fn insert(&self, value: u64) -> u64 {
        let mut out = 0u64;
        let mut i = 0usize;
        let n = self.len as usize;
        while i < n {
            let start = self.pos[i];
            let mut run = 1usize;
            while i + run < n && self.pos[i + run] == start + run as u8 {
                run += 1;
            }
            let mask = if run == 64 {
                u64::MAX
            } else {
                (1u64 << run) - 1
            };
            out |= ((value >> i) & mask) << start;
            i += run;
        }
        out
    }
}

/// A complete per-field bit interleaving: which cache-line-index bits form each
/// DRAM coordinate.
///
/// Positions refer to bits of the *line index* (physical byte address divided by
/// the organization's cache-line size); the byte offset within a line never
/// participates in DRAM routing. [`BitInterleaving::validate`] checks that the
/// fields exactly tile the organization's address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BitInterleaving {
    /// Bits forming the channel index.
    pub channel: BitField,
    /// Bits forming the rank index within the channel.
    pub rank: BitField,
    /// Bits forming the bank-group index within the rank.
    pub bank_group: BitField,
    /// Bits forming the bank index within the bank group.
    pub bank: BitField,
    /// Bits forming the row index within the bank.
    pub row: BitField,
    /// Bits forming the column (cache-line) index within the row.
    pub column: BitField,
}

/// Log2 of a dimension that must be a power of two for bit-sliced mappings.
fn log2_exact(value: u64, component: &'static str) -> Result<u8, DramError> {
    if value.is_power_of_two() {
        Ok(value.trailing_zeros() as u8)
    } else {
        Err(DramError::InvalidMapping {
            reason: "dimension is not a power of two",
            component,
        })
    }
}

impl BitInterleaving {
    /// The paper's MOP scheme as an explicit bit interleaving: `lines_per_chunk`
    /// low column bits, then channel, bank, bank-group, rank, the remaining
    /// column bits, and finally the row bits. Bit-exact to
    /// [`AddressMapping::Mop`] on every address (see the equivalence tests).
    ///
    /// # Errors
    ///
    /// Returns [`DramError::InvalidMapping`] unless every organization dimension
    /// and `lines_per_chunk` is a power of two.
    pub fn mop(org: &DramOrganization, lines_per_chunk: u32) -> Result<Self, DramError> {
        let c_low = log2_exact(lines_per_chunk as u64, "lines_per_chunk")?;
        let dims = MappingDims::of(org)?;
        if c_low > dims.column {
            return Err(DramError::InvalidMapping {
                reason: "chunk larger than a row",
                component: "lines_per_chunk",
            });
        }
        let mut at = 0u8;
        let mut take = |len: u8| {
            let f = BitField::contiguous(at, len);
            at += len;
            f
        };
        let col_lo = take(c_low);
        let channel = take(dims.channel);
        let bank = take(dims.bank);
        let bank_group = take(dims.bank_group);
        let rank = take(dims.rank);
        let col_hi = take(dims.column - c_low);
        let row = take(dims.row);
        let mut column_positions = [0u8; MAX_FIELD_BITS];
        let n_lo = col_lo.len();
        column_positions[..n_lo].copy_from_slice(col_lo.positions());
        column_positions[n_lo..n_lo + col_hi.len()].copy_from_slice(col_hi.positions());
        let column = BitField::new(&column_positions[..n_lo + col_hi.len()]);
        Ok(Self {
            channel,
            rank,
            bank_group,
            bank,
            row,
            column,
        })
    }

    /// [`AddressMapping::RowInterleaved`] as an explicit bit interleaving:
    /// column, channel, bank, bank-group, rank, row (LSB to MSB).
    ///
    /// # Errors
    ///
    /// Returns [`DramError::InvalidMapping`] unless every dimension is a power
    /// of two.
    pub fn row_interleaved(org: &DramOrganization) -> Result<Self, DramError> {
        let dims = MappingDims::of(org)?;
        let mut at = 0u8;
        let mut take = |len: u8| {
            let f = BitField::contiguous(at, len);
            at += len;
            f
        };
        let column = take(dims.column);
        let channel = take(dims.channel);
        let bank = take(dims.bank);
        let bank_group = take(dims.bank_group);
        let rank = take(dims.rank);
        let row = take(dims.row);
        Ok(Self {
            channel,
            rank,
            bank_group,
            bank,
            row,
            column,
        })
    }

    /// [`AddressMapping::CachelineInterleaved`] as an explicit bit interleaving:
    /// channel, bank, bank-group, rank, column, row (LSB to MSB).
    ///
    /// # Errors
    ///
    /// Returns [`DramError::InvalidMapping`] unless every dimension is a power
    /// of two.
    pub fn cacheline_interleaved(org: &DramOrganization) -> Result<Self, DramError> {
        let dims = MappingDims::of(org)?;
        let mut at = 0u8;
        let mut take = |len: u8| {
            let f = BitField::contiguous(at, len);
            at += len;
            f
        };
        let channel = take(dims.channel);
        let bank = take(dims.bank);
        let bank_group = take(dims.bank_group);
        let rank = take(dims.rank);
        let column = take(dims.column);
        let row = take(dims.row);
        Ok(Self {
            channel,
            rank,
            bank_group,
            bank,
            row,
            column,
        })
    }

    /// The rowhammer-tester `DRAMAddressConverter` `ROW_BANK_COL` layout at line
    /// granularity: column low, then the flat bank bits (bank-in-group, group,
    /// rank), then the row bits — no channel interleaving (single-channel DMA
    /// space).
    ///
    /// # Errors
    ///
    /// Returns [`DramError::InvalidMapping`] unless every dimension is a power
    /// of two or the organization has more than one channel.
    pub fn row_bank_col(org: &DramOrganization) -> Result<Self, DramError> {
        let dims = MappingDims::of(org)?;
        if dims.channel != 0 {
            return Err(DramError::InvalidMapping {
                reason: "ROW_BANK_COL has no channel bits",
                component: "channels",
            });
        }
        let mut at = 0u8;
        let mut take = |len: u8| {
            let f = BitField::contiguous(at, len);
            at += len;
            f
        };
        let column = take(dims.column);
        let bank = take(dims.bank);
        let bank_group = take(dims.bank_group);
        let rank = take(dims.rank);
        let row = take(dims.row);
        Ok(Self {
            channel: BitField::empty(),
            rank,
            bank_group,
            bank,
            row,
            column,
        })
    }

    /// Checks that this interleaving exactly tiles `org`: every field is as wide
    /// as its dimension, the dimensions are powers of two, and the fields'
    /// positions form a permutation of the line-index bits.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::InvalidMapping`] naming the offending component.
    pub fn validate(&self, org: &DramOrganization) -> Result<(), DramError> {
        let dims = MappingDims::of(org)?;
        let checks = [
            (&self.channel, dims.channel, "channel"),
            (&self.rank, dims.rank, "rank"),
            (&self.bank_group, dims.bank_group, "bank_group"),
            (&self.bank, dims.bank, "bank"),
            (&self.row, dims.row, "row"),
            (&self.column, dims.column, "column"),
        ];
        let mut seen = 0u64;
        let total: u8 = checks.iter().map(|(_, len, _)| len).sum();
        for (field, len, component) in checks {
            if field.len() != len as usize {
                return Err(DramError::InvalidMapping {
                    reason: "field width does not match the organization",
                    component,
                });
            }
            for &p in field.positions() {
                if p >= total {
                    return Err(DramError::InvalidMapping {
                        reason: "bit position beyond the address width",
                        component,
                    });
                }
                if seen & (1u64 << p) != 0 {
                    return Err(DramError::InvalidMapping {
                        reason: "bit position used by two fields",
                        component,
                    });
                }
                seen |= 1u64 << p;
            }
        }
        Ok(())
    }
}

/// Field widths (log2 of each dimension) of a power-of-two organization.
struct MappingDims {
    channel: u8,
    rank: u8,
    bank_group: u8,
    bank: u8,
    row: u8,
    column: u8,
}

impl MappingDims {
    fn of(org: &DramOrganization) -> Result<Self, DramError> {
        Ok(Self {
            channel: log2_exact(org.channels as u64, "channels")?,
            rank: log2_exact(org.ranks as u64, "ranks")?,
            bank_group: log2_exact(org.bank_groups as u64, "bank_groups")?,
            bank: log2_exact(org.banks_per_group as u64, "banks_per_group")?,
            row: log2_exact(org.rows_per_bank as u64, "rows_per_bank")?,
            column: log2_exact(org.columns_per_row as u64, "columns_per_row")?,
        })
    }
}

/// Address-mapping schemes supported by the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AddressMapping {
    /// Minimalist Open Page: `lines_per_chunk` consecutive cache lines map to the same
    /// row, then the next chunk moves to the next channel/bank. The paper uses 8.
    Mop {
        /// Consecutive cache lines kept in the same row before interleaving.
        lines_per_chunk: u32,
    },
    /// Entire rows are consecutive in the physical address space (maximizes row-buffer
    /// locality; baseline for open-page studies).
    RowInterleaved,
    /// Consecutive cache lines alternate across channels and banks (minimizes
    /// row-buffer locality; close to a closed-page system).
    CachelineInterleaved,
    /// Arbitrary per-field bit interleaving: each DRAM coordinate is gathered from
    /// an explicit list of line-index bit positions. This is the general form every
    /// real controller/device mapping takes; the constructors on
    /// [`BitInterleaving`] reproduce the three schemes above exactly.
    BitInterleaved(BitInterleaving),
}

impl Default for AddressMapping {
    fn default() -> Self {
        AddressMapping::Mop { lines_per_chunk: 8 }
    }
}

impl AddressMapping {
    /// The paper's default mapping (MOP with 8 lines per chunk).
    pub fn paper_default() -> Self {
        Self::default()
    }

    /// The paper's MOP scheme expressed as an explicit [`BitInterleaved`] mapping
    /// for `org` (bit-exact to [`AddressMapping::Mop`]).
    ///
    /// # Errors
    ///
    /// Returns [`DramError::InvalidMapping`] unless every dimension is a power of
    /// two (see [`BitInterleaving::mop`]).
    pub fn bit_interleaved_mop(
        org: &DramOrganization,
        lines_per_chunk: u32,
    ) -> Result<Self, DramError> {
        Ok(AddressMapping::BitInterleaved(BitInterleaving::mop(
            org,
            lines_per_chunk,
        )?))
    }

    /// [`AddressMapping::RowInterleaved`] as an explicit bit interleaving.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::InvalidMapping`] unless every dimension is a power of
    /// two.
    pub fn bit_interleaved_row(org: &DramOrganization) -> Result<Self, DramError> {
        Ok(AddressMapping::BitInterleaved(
            BitInterleaving::row_interleaved(org)?,
        ))
    }

    /// [`AddressMapping::CachelineInterleaved`] as an explicit bit interleaving.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::InvalidMapping`] unless every dimension is a power of
    /// two.
    pub fn bit_interleaved_cacheline(org: &DramOrganization) -> Result<Self, DramError> {
        Ok(AddressMapping::BitInterleaved(
            BitInterleaving::cacheline_interleaved(org)?,
        ))
    }

    /// Decodes a physical address into a DRAM location under organization `org`.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::AddressOutOfRange`] if the address lies beyond the
    /// capacity described by `org`, or if a [`AddressMapping::BitInterleaved`]
    /// field decodes a component outside the organization's bounds.
    pub fn decode(
        &self,
        addr: PhysicalAddress,
        org: &DramOrganization,
    ) -> Result<DramAddress, DramError> {
        // `(x % d, x / d)`, via mask/shift when `d` is a power of two. Real
        // geometries are pure bit routing, so the decode — one call per trace
        // record on the ingest path — should cost shifts, not a chain of
        // hardware divisions.
        #[inline(always)]
        fn rem_div(x: u64, d: u64) -> (u64, u64) {
            if d.is_power_of_two() {
                (x & (d - 1), x >> d.trailing_zeros())
            } else {
                (x % d, x / d)
            }
        }
        if addr.as_u64() >= org.capacity_bytes() {
            return Err(DramError::AddressOutOfRange {
                component: "physical address",
                value: addr.as_u64(),
                limit: org.capacity_bytes(),
            });
        }
        let (_, line) = rem_div(addr.as_u64(), org.line_bytes as u64);
        let channels = org.channels as u64;
        let banks = org.banks_per_channel() as u64;
        let cols = org.columns_per_row as u64;
        let rows = org.rows_per_bank as u64;

        let (channel, bank, row, column) = match *self {
            AddressMapping::Mop { lines_per_chunk } => {
                let chunk_lines = lines_per_chunk as u64;
                let (low_col, rest) = rem_div(line, chunk_lines);
                let (channel, rest) = rem_div(rest, channels);
                let (bank, rest) = rem_div(rest, banks);
                let (_, chunks_per_row) = rem_div(cols, chunk_lines);
                let (high_col, row) = rem_div(rest, chunks_per_row);
                (channel, bank, row, high_col * chunk_lines + low_col)
            }
            AddressMapping::RowInterleaved => {
                let (column, rest) = rem_div(line, cols);
                let (channel, rest) = rem_div(rest, channels);
                let (bank, row) = rem_div(rest, banks);
                (channel, bank, row, column)
            }
            AddressMapping::CachelineInterleaved => {
                let (channel, rest) = rem_div(line, channels);
                let (bank, rest) = rem_div(rest, banks);
                let (column, row) = rem_div(rest, cols);
                (channel, bank, row, column)
            }
            AddressMapping::BitInterleaved(ref spec) => {
                let channel = spec.channel.extract(line);
                let rank = spec.rank.extract(line);
                let bank_group = spec.bank_group.extract(line);
                let bank = spec.bank.extract(line);
                let row = spec.row.extract(line);
                let column = spec.column.extract(line);
                for (value, limit, component) in [
                    (channel, channels, "channel"),
                    (rank, org.ranks as u64, "rank"),
                    (bank_group, org.bank_groups as u64, "bank_group"),
                    (bank, org.banks_per_group as u64, "bank"),
                    (row, rows, "row"),
                    (column, cols, "column"),
                ] {
                    if value >= limit {
                        return Err(DramError::AddressOutOfRange {
                            component,
                            value,
                            limit,
                        });
                    }
                }
                return Ok(DramAddress {
                    channel: channel as u8,
                    rank: rank as u8,
                    bank_group: bank_group as u8,
                    bank: bank as u8,
                    row: row as RowId,
                    column: column as u32,
                });
            }
        };

        if row >= rows {
            return Err(DramError::AddressOutOfRange {
                component: "row",
                value: row,
                limit: rows,
            });
        }

        // Unfold the flat bank index back into rank / bank group / bank.
        let banks_per_group = org.banks_per_group as u64;
        let groups = org.bank_groups as u64;
        let per_rank = banks_per_group * groups;
        let (within_rank, rank) = rem_div(bank, per_rank);
        let (bank_in_group, bank_group) = rem_div(within_rank, banks_per_group);

        Ok(DramAddress {
            channel: channel as u8,
            rank: rank as u8,
            bank_group: bank_group as u8,
            bank: bank_in_group as u8,
            row: row as RowId,
            column: column as u32,
        })
    }

    /// Encodes a DRAM location back into the physical address of its cache line —
    /// the exact inverse of [`AddressMapping::decode`]: for every line-aligned
    /// address `a`, `encode(decode(a)) == a`, and for every in-bounds location
    /// `d`, `decode(encode(d)) == d`.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::AddressOutOfRange`] if any component of `addr` lies
    /// outside the organization's bounds.
    pub fn encode(
        &self,
        addr: DramAddress,
        org: &DramOrganization,
    ) -> Result<PhysicalAddress, DramError> {
        for (value, limit, component) in [
            (addr.channel as u64, org.channels as u64, "channel"),
            (addr.rank as u64, org.ranks as u64, "rank"),
            (addr.bank_group as u64, org.bank_groups as u64, "bank_group"),
            (addr.bank as u64, org.banks_per_group as u64, "bank"),
            (addr.row as u64, org.rows_per_bank as u64, "row"),
            (addr.column as u64, org.columns_per_row as u64, "column"),
        ] {
            if value >= limit {
                return Err(DramError::AddressOutOfRange {
                    component,
                    value,
                    limit,
                });
            }
        }
        let channels = org.channels as u64;
        let banks = org.banks_per_channel() as u64;
        let cols = org.columns_per_row as u64;
        let flat_bank = addr.flat_bank(org.banks_per_group, org.bank_groups) as u64;
        let channel = addr.channel as u64;
        let row = addr.row as u64;
        let column = addr.column as u64;

        let line = match *self {
            AddressMapping::Mop { lines_per_chunk } => {
                let chunk_lines = lines_per_chunk as u64;
                let chunks_per_row = cols / chunk_lines;
                let low_col = column % chunk_lines;
                let high_col = column / chunk_lines;
                let rest = (row * chunks_per_row + high_col) * banks + flat_bank;
                (rest * channels + channel) * chunk_lines + low_col
            }
            AddressMapping::RowInterleaved => {
                ((row * banks + flat_bank) * channels + channel) * cols + column
            }
            AddressMapping::CachelineInterleaved => {
                ((row * cols + column) * banks + flat_bank) * channels + channel
            }
            AddressMapping::BitInterleaved(ref spec) => {
                spec.channel.insert(channel)
                    | spec.rank.insert(addr.rank as u64)
                    | spec.bank_group.insert(addr.bank_group as u64)
                    | spec.bank.insert(addr.bank as u64)
                    | spec.row.insert(row)
                    | spec.column.insert(column)
            }
        };
        Ok(PhysicalAddress::new(line * org.line_bytes as u64))
    }

    /// Returns the number of consecutive bytes that map to the same row before the
    /// mapping switches to another bank (the "chunk" size seen by streaming code).
    pub fn contiguous_row_bytes(&self, org: &DramOrganization) -> u64 {
        match *self {
            AddressMapping::Mop { lines_per_chunk } => {
                lines_per_chunk as u64 * org.line_bytes as u64
            }
            AddressMapping::RowInterleaved => org.row_bytes(),
            AddressMapping::CachelineInterleaved => org.line_bytes as u64,
            AddressMapping::BitInterleaved(ref spec) => {
                // The run of column bits starting at line-index bit 0 is the
                // contiguous span that stays within one row.
                let mut contiguous_lines = 0u8;
                while spec.column.positions().contains(&contiguous_lines) {
                    contiguous_lines += 1;
                }
                (1u64 << contiguous_lines) * org.line_bytes as u64
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn org() -> DramOrganization {
        DramOrganization::small()
    }

    fn all_fixed_mappings() -> [AddressMapping; 3] {
        [
            AddressMapping::paper_default(),
            AddressMapping::RowInterleaved,
            AddressMapping::CachelineInterleaved,
        ]
    }

    #[test]
    fn mop_keeps_eight_lines_in_one_row() {
        let org = org();
        let map = AddressMapping::paper_default();
        let base = map.decode(PhysicalAddress::new(0), &org).unwrap();
        for i in 0..8u64 {
            let a = map.decode(PhysicalAddress::new(i * 64), &org).unwrap();
            assert_eq!(a.row, base.row);
            assert_eq!(a.channel, base.channel);
            assert_eq!((a.bank_group, a.bank), (base.bank_group, base.bank));
        }
        // The 9th line moves to a different channel or bank.
        let ninth = map.decode(PhysicalAddress::new(8 * 64), &org).unwrap();
        assert!(
            ninth.channel != base.channel
                || (ninth.bank_group, ninth.bank) != (base.bank_group, base.bank)
        );
    }

    #[test]
    fn out_of_range_is_rejected() {
        let org = org();
        let map = AddressMapping::paper_default();
        let too_big = PhysicalAddress::new(org.capacity_bytes());
        assert!(matches!(
            map.decode(too_big, &org),
            Err(DramError::AddressOutOfRange { .. })
        ));
    }

    #[test]
    fn contiguous_row_bytes_matches_scheme() {
        let org = org();
        assert_eq!(
            AddressMapping::paper_default().contiguous_row_bytes(&org),
            512
        );
        assert_eq!(
            AddressMapping::RowInterleaved.contiguous_row_bytes(&org),
            org.row_bytes()
        );
        assert_eq!(
            AddressMapping::CachelineInterleaved.contiguous_row_bytes(&org),
            64
        );
        // The bit-sliced constructors agree with their arithmetic counterparts.
        assert_eq!(
            AddressMapping::bit_interleaved_mop(&org, 8)
                .unwrap()
                .contiguous_row_bytes(&org),
            512
        );
        assert_eq!(
            AddressMapping::bit_interleaved_row(&org)
                .unwrap()
                .contiguous_row_bytes(&org),
            org.row_bytes()
        );
        assert_eq!(
            AddressMapping::bit_interleaved_cacheline(&org)
                .unwrap()
                .contiguous_row_bytes(&org),
            64
        );
    }

    #[test]
    fn bit_field_extract_insert_round_trip() {
        let f = BitField::new(&[0, 1, 2, 7, 9, 10]);
        for v in 0..f.cardinality() {
            let scattered = f.insert(v);
            assert_eq!(f.extract(scattered), v);
        }
        // Scattered bits land where requested.
        assert_eq!(f.insert(0b111111), 0b0000_0110_1000_0111);
        assert_eq!(BitField::empty().extract(u64::MAX), 0);
        assert_eq!(BitField::empty().insert(u64::MAX), 0);
    }

    #[test]
    fn bit_field_rejects_bad_positions() {
        assert!(std::panic::catch_unwind(|| BitField::new(&[1, 1])).is_err());
        assert!(std::panic::catch_unwind(|| BitField::new(&[64])).is_err());
    }

    #[test]
    fn constructors_validate_against_their_organization() {
        let org = DramOrganization::baseline();
        for spec in [
            BitInterleaving::mop(&org, 8).unwrap(),
            BitInterleaving::row_interleaved(&org).unwrap(),
            BitInterleaving::cacheline_interleaved(&org).unwrap(),
        ] {
            spec.validate(&org).unwrap();
        }
        let single = DramOrganization {
            channels: 1,
            ..DramOrganization::baseline()
        };
        BitInterleaving::row_bank_col(&single)
            .unwrap()
            .validate(&single)
            .unwrap();
        // ROW_BANK_COL refuses multi-channel organizations.
        assert!(matches!(
            BitInterleaving::row_bank_col(&org),
            Err(DramError::InvalidMapping { .. })
        ));
    }

    #[test]
    fn validate_rejects_overlap_and_wrong_width() {
        let org = org();
        let mut spec = BitInterleaving::row_interleaved(&org).unwrap();
        let good = spec;
        // Overlap: point a row bit at a column bit.
        spec.row = BitField::new(&{
            let mut p: Vec<u8> = good.row.positions().to_vec();
            p[0] = good.column.positions()[0];
            p
        });
        assert!(matches!(
            spec.validate(&org),
            Err(DramError::InvalidMapping { .. })
        ));
        // Wrong width: drop a row bit.
        let mut narrow = good;
        narrow.row = BitField::new(&good.row.positions()[1..]);
        assert!(matches!(
            narrow.validate(&org),
            Err(DramError::InvalidMapping { .. })
        ));
    }

    #[test]
    fn non_power_of_two_dimension_is_rejected() {
        let bad = DramOrganization {
            columns_per_row: 96,
            ..DramOrganization::small()
        };
        assert!(matches!(
            AddressMapping::bit_interleaved_row(&bad),
            Err(DramError::InvalidMapping { .. })
        ));
    }

    #[test]
    fn encode_rejects_out_of_bounds_components() {
        let org = org();
        let bad = DramAddress {
            row: org.rows_per_bank,
            ..DramAddress::default()
        };
        for map in all_fixed_mappings() {
            assert!(matches!(
                map.encode(bad, &org),
                Err(DramError::AddressOutOfRange { .. })
            ));
        }
    }

    #[test]
    fn row_bank_col_matches_converter_layout() {
        // A LiteX-style organization: 2^10 cols/row at 64B lines folds the
        // converter's colbits into line-index bits; check the field order.
        let org = DramOrganization {
            channels: 1,
            ranks: 1,
            bank_groups: 4,
            banks_per_group: 2,
            rows_per_bank: 1 << 14,
            columns_per_row: 1 << 7,
            line_bytes: 64,
        };
        let spec = BitInterleaving::row_bank_col(&org).unwrap();
        let map = AddressMapping::BitInterleaved(spec);
        // Lowest line bits are column bits; bank bits sit between column and row.
        let a = map.decode(PhysicalAddress::new(64), &org).unwrap();
        assert_eq!((a.row, a.bank, a.bank_group, a.column), (0, 0, 0, 1));
        let b = map
            .decode(PhysicalAddress::new(64 * org.columns_per_row as u64), &org)
            .unwrap();
        assert_eq!((b.row, b.bank, b.column), (0, 1, 0));
        let r = map
            .decode(
                PhysicalAddress::new(
                    64 * org.columns_per_row as u64 * org.banks_per_channel() as u64,
                ),
                &org,
            )
            .unwrap();
        assert_eq!((r.row, r.bank, r.bank_group, r.column), (1, 0, 0, 0));
    }

    proptest! {
        /// Decoding is injective at cache-line granularity: two distinct line
        /// addresses never map to the same (channel, bank, row, column).
        #[test]
        fn decode_is_injective(a in 0u64..1_000_000, b in 0u64..1_000_000) {
            prop_assume!(a != b);
            let org = DramOrganization::small();
            for map in [AddressMapping::paper_default(), AddressMapping::RowInterleaved, AddressMapping::CachelineInterleaved] {
                let pa = PhysicalAddress::new(a * 64);
                let pb = PhysicalAddress::new(b * 64);
                if pa.as_u64() < org.capacity_bytes() && pb.as_u64() < org.capacity_bytes() {
                    let da = map.decode(pa, &org).unwrap();
                    let db = map.decode(pb, &org).unwrap();
                    prop_assert_ne!(da, db);
                }
            }
        }

        /// All decoded components stay within the organization's bounds.
        #[test]
        fn decode_stays_in_bounds(line in 0u64..4_000_000) {
            let org = DramOrganization::small();
            let map = AddressMapping::paper_default();
            let addr = PhysicalAddress::new(line * 64);
            prop_assume!(addr.as_u64() < org.capacity_bytes());
            let d = map.decode(addr, &org).unwrap();
            prop_assert!(d.channel < org.channels);
            prop_assert!(d.rank < org.ranks);
            prop_assert!(d.bank_group < org.bank_groups);
            prop_assert!(d.bank < org.banks_per_group);
            prop_assert!(d.row < org.rows_per_bank);
            prop_assert!(d.column < org.columns_per_row);
        }

        /// The bit-sliced constructors are bit-exact to the arithmetic schemes
        /// they generalize, on every in-bounds address.
        #[test]
        fn bit_interleaved_constructors_match_arithmetic(line in 0u64..4_000_000) {
            let org = DramOrganization::small();
            let addr = PhysicalAddress::new(line * 64);
            prop_assume!(addr.as_u64() < org.capacity_bytes());
            let pairs = [
                (AddressMapping::paper_default(), AddressMapping::bit_interleaved_mop(&org, 8).unwrap()),
                (AddressMapping::RowInterleaved, AddressMapping::bit_interleaved_row(&org).unwrap()),
                (AddressMapping::CachelineInterleaved, AddressMapping::bit_interleaved_cacheline(&org).unwrap()),
            ];
            for (arith, sliced) in pairs {
                prop_assert_eq!(arith.decode(addr, &org).unwrap(), sliced.decode(addr, &org).unwrap());
            }
        }

        /// encode is the exact inverse of decode on every variant: line-aligned
        /// round trip `encode(decode(a)) == a`.
        #[test]
        fn encode_inverts_decode(line in 0u64..4_000_000) {
            let org = DramOrganization::small();
            let addr = PhysicalAddress::new(line * 64);
            prop_assume!(addr.as_u64() < org.capacity_bytes());
            let mut maps = all_fixed_mappings().to_vec();
            maps.push(AddressMapping::bit_interleaved_mop(&org, 8).unwrap());
            maps.push(AddressMapping::bit_interleaved_row(&org).unwrap());
            maps.push(AddressMapping::bit_interleaved_cacheline(&org).unwrap());
            for map in maps {
                let d = map.decode(addr, &org).unwrap();
                prop_assert_eq!(map.encode(d, &org).unwrap(), addr);
            }
        }

        /// ... and the other direction: `decode(encode(d)) == d` for every
        /// in-bounds DRAM location.
        #[test]
        fn decode_inverts_encode(
            channel in 0u8..1,
            bank_group in 0u8..2,
            bank in 0u8..2,
            row in 0u32..(1 << 12),
            column in 0u32..128,
        ) {
            let org = DramOrganization::small();
            let d = DramAddress { channel, rank: 0, bank_group, bank, row, column };
            let mut maps = all_fixed_mappings().to_vec();
            maps.push(AddressMapping::bit_interleaved_mop(&org, 8).unwrap());
            maps.push(AddressMapping::bit_interleaved_row(&org).unwrap());
            maps.push(AddressMapping::bit_interleaved_cacheline(&org).unwrap());
            for map in maps {
                let a = map.encode(d, &org).unwrap();
                prop_assert_eq!(map.decode(a, &org).unwrap(), d);
            }
        }
    }
}
