//! DRAM module organization (channels, ranks, bank groups, banks, rows, columns).

use crate::address::PhysicalAddress;

/// Describes how much DRAM exists and how it is organized, mirroring Table II of the
/// paper (64 GB DDR5, 2 channels, 32 banks × 1 rank × 2 sub-channels per channel).
///
/// Sub-channels are folded into the bank-group dimension: the paper's
/// "32 banks × 2 sub-channels" per channel is modelled as 64 independently schedulable
/// banks per channel, which is what matters for row-buffer and Rowhammer behaviour.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DramOrganization {
    /// Number of memory channels.
    pub channels: u8,
    /// Ranks per channel.
    pub ranks: u8,
    /// Bank groups per rank.
    pub bank_groups: u8,
    /// Banks per bank group.
    pub banks_per_group: u8,
    /// Rows per bank.
    pub rows_per_bank: u32,
    /// Cache lines per row (row size / 64 B).
    pub columns_per_row: u32,
    /// Cache-line size in bytes.
    pub line_bytes: u32,
}

impl DramOrganization {
    /// The baseline configuration of Table II: 64 GB across 2 channels, 64 banks per
    /// channel, 8 KB rows.
    pub fn baseline() -> Self {
        Self {
            channels: 2,
            ranks: 1,
            bank_groups: 8,
            banks_per_group: 8,
            rows_per_bank: 1 << 16, // 64K rows per bank
            columns_per_row: 128,   // 8 KB row / 64 B lines
            line_bytes: 64,
        }
    }

    /// A small configuration convenient for unit tests and examples (keeps address
    /// footprints small while preserving the same structure).
    pub fn small() -> Self {
        Self {
            channels: 1,
            ranks: 1,
            bank_groups: 2,
            banks_per_group: 2,
            rows_per_bank: 1 << 12,
            columns_per_row: 128,
            line_bytes: 64,
        }
    }

    /// Banks per channel (ranks × bank groups × banks per group).
    pub fn banks_per_channel(&self) -> usize {
        self.ranks as usize * self.bank_groups as usize * self.banks_per_group as usize
    }

    /// Total number of banks in the system.
    pub fn total_banks(&self) -> usize {
        self.channels as usize * self.banks_per_channel()
    }

    /// Bytes per row.
    pub fn row_bytes(&self) -> u64 {
        self.columns_per_row as u64 * self.line_bytes as u64
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.total_banks() as u64 * self.rows_per_bank as u64 * self.row_bytes()
    }

    /// Returns the largest physical address (exclusive) representable in this
    /// organization; addresses passed to the mapping must be below this.
    pub fn address_limit(&self) -> PhysicalAddress {
        PhysicalAddress::new(self.capacity_bytes())
    }
}

impl Default for DramOrganization {
    fn default() -> Self {
        Self::baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table2() {
        let org = DramOrganization::baseline();
        // 2 channels × 64 banks/channel.
        assert_eq!(org.banks_per_channel(), 64);
        assert_eq!(org.total_banks(), 128);
        // 64 GB total capacity.
        assert_eq!(org.capacity_bytes(), 64 << 30);
        assert_eq!(org.row_bytes(), 8192);
    }

    #[test]
    fn small_config_is_consistent() {
        let org = DramOrganization::small();
        assert_eq!(org.total_banks(), 4);
        assert!(org.capacity_bytes() > 0);
    }
}
