//! Periodic-refresh scheduling with DDR5 refresh postponement.
//!
//! DRAM must refresh all rows every `tREFW`; to amortize the cost, the controller sends
//! one REF command per `tREFI`. DDR5 allows up to 4 REF commands to be postponed, which
//! is what makes long Row-Press patterns (up to 5 × tREFI of row-open time) possible.

use crate::timing::{Cycle, DramTimings};

/// Tracks when periodic REF commands are due for one rank/channel and how many have
/// been postponed.
#[derive(Debug, Clone)]
pub struct RefreshScheduler {
    t_refi: Cycle,
    max_postponed: u32,
    /// Cycle at which the next REF becomes due.
    next_due: Cycle,
    /// Number of REF commands currently owed (postponed).
    owed: u32,
    /// Total REF commands issued.
    issued: u64,
    /// Largest number of simultaneously postponed REF commands observed.
    max_owed_seen: u32,
}

impl RefreshScheduler {
    /// Creates a scheduler with the refresh cadence from `timings`, starting at cycle 0.
    pub fn new(timings: &DramTimings) -> Self {
        Self {
            t_refi: timings.t_refi,
            max_postponed: timings.max_postponed_ref,
            next_due: timings.t_refi,
            owed: 0,
            issued: 0,
            max_owed_seen: 0,
        }
    }

    /// Advances internal bookkeeping to `now`, converting elapsed `tREFI` intervals
    /// into owed REF commands. Call this before querying [`Self::due`] / [`Self::urgent`].
    pub fn tick(&mut self, now: Cycle) {
        while now >= self.next_due {
            self.owed += 1;
            self.next_due += self.t_refi;
        }
        self.max_owed_seen = self.max_owed_seen.max(self.owed);
    }

    /// Returns `true` if at least one REF command is owed.
    pub fn due(&self) -> bool {
        self.owed > 0
    }

    /// Returns `true` if the postponement limit has been reached and a REF command
    /// must be issued before any other command.
    pub fn urgent(&self) -> bool {
        self.owed > self.max_postponed
    }

    /// Number of currently owed (postponed) REF commands.
    pub fn owed(&self) -> u32 {
        self.owed
    }

    /// Records that a REF command was issued at `now`.
    pub fn on_refresh_issued(&mut self, _now: Cycle) {
        self.owed = self.owed.saturating_sub(1);
        self.issued += 1;
    }

    /// Consumes the oldest owed REF command (advancing bookkeeping to `now` first) and
    /// returns the cycle at which it became due, or `None` if no REF is owed.
    ///
    /// Lazy controllers use this to back-date refreshes that became due while no
    /// requests were in flight, instead of piling them all up at the current cycle.
    pub fn take_due(&mut self, now: Cycle) -> Option<Cycle> {
        self.tick(now);
        if self.owed == 0 {
            return None;
        }
        let oldest_due = self.next_due - Cycle::from(self.owed) * self.t_refi;
        self.owed -= 1;
        self.issued += 1;
        Some(oldest_due)
    }

    /// Total number of REF commands issued so far.
    pub fn refreshes_issued(&self) -> u64 {
        self.issued
    }

    /// Largest number of simultaneously postponed REF commands observed (≤ limit + 1).
    pub fn max_postponed_observed(&self) -> u32 {
        self.max_owed_seen
    }

    /// Longest row-open time (in cycles) an attacker can achieve before a refresh
    /// forcibly closes the row, given the postponement limit: `(1 + max_postponed) × tREFI`.
    pub fn max_attacker_open_time(&self) -> Cycle {
        (1 + self.max_postponed as u64) * self.t_refi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refresh_becomes_due_every_trefi() {
        let t = DramTimings::ddr5();
        let mut sched = RefreshScheduler::new(&t);
        sched.tick(t.t_refi - 1);
        assert!(!sched.due());
        sched.tick(t.t_refi);
        assert!(sched.due());
        sched.on_refresh_issued(t.t_refi);
        assert!(!sched.due());
    }

    #[test]
    fn urgency_after_postponement_limit() {
        let t = DramTimings::ddr5();
        let mut sched = RefreshScheduler::new(&t);
        // Five intervals elapse without a REF: with max 4 postponed, it becomes urgent.
        sched.tick(5 * t.t_refi);
        assert_eq!(sched.owed(), 5);
        assert!(sched.urgent());
        for _ in 0..5 {
            sched.on_refresh_issued(5 * t.t_refi);
        }
        assert!(!sched.due());
        assert_eq!(sched.refreshes_issued(), 5);
    }

    #[test]
    fn max_attacker_open_time_is_five_trefi_for_ddr5() {
        let t = DramTimings::ddr5();
        let sched = RefreshScheduler::new(&t);
        // §II-E: "this time gets constrained only by the time between refresh operations
        // ... it can be extended with refresh postponement to 5 times tREFI in DDR5".
        assert_eq!(sched.max_attacker_open_time(), 5 * t.t_refi);
    }

    #[test]
    fn take_due_backdates_owed_refreshes() {
        let t = DramTimings::ddr5();
        let mut sched = RefreshScheduler::new(&t);
        // Three intervals elapse quietly; the owed refreshes report their original due
        // times, oldest first.
        let now = 3 * t.t_refi + 500;
        assert_eq!(sched.take_due(now), Some(t.t_refi));
        assert_eq!(sched.take_due(now), Some(2 * t.t_refi));
        assert_eq!(sched.take_due(now), Some(3 * t.t_refi));
        assert_eq!(sched.take_due(now), None);
        assert_eq!(sched.refreshes_issued(), 3);
    }

    #[test]
    fn ddr4_allows_nine_trefi() {
        let t = DramTimings::ddr4();
        let sched = RefreshScheduler::new(&t);
        assert_eq!(sched.max_attacker_open_time(), 9 * t.t_refi);
    }
}
