//! Refresh Management (RFM) bookkeeping.
//!
//! DDR5 exposes RFM so that in-DRAM Rowhammer trackers (Mithril, MINT) get guaranteed
//! time to perform mitigations: the memory controller counts activations per bank in a
//! Rolling Accumulated ACT (RAA) counter and must issue an RFM command once the counter
//! reaches the RFM threshold (`RFMTH`, 80 in the paper's default configuration).

use crate::timing::Cycle;

/// Per-bank RAA counter tracking when an RFM command is owed.
#[derive(Debug, Clone)]
pub struct RfmCounter {
    rfm_th: u32,
    raa: u32,
    rfms_issued: u64,
    acts_counted: u64,
}

impl RfmCounter {
    /// Creates a counter with the given RFM threshold (`RFMTH` activations per RFM).
    ///
    /// # Panics
    ///
    /// Panics if `rfm_th` is zero.
    pub fn new(rfm_th: u32) -> Self {
        assert!(rfm_th > 0, "RFM threshold must be positive");
        Self {
            rfm_th,
            raa: 0,
            rfms_issued: 0,
            acts_counted: 0,
        }
    }

    /// The configured RFM threshold.
    pub fn rfm_threshold(&self) -> u32 {
        self.rfm_th
    }

    /// Records one activation; returns `true` if an RFM command is now owed.
    pub fn on_activation(&mut self) -> bool {
        self.raa += 1;
        self.acts_counted += 1;
        self.raa >= self.rfm_th
    }

    /// Returns `true` if an RFM command is currently owed.
    pub fn rfm_due(&self) -> bool {
        self.raa >= self.rfm_th
    }

    /// Records that an RFM command was issued at `now`; the RAA counter is decremented
    /// by one threshold's worth of activations.
    pub fn on_rfm_issued(&mut self, _now: Cycle) {
        self.raa = self.raa.saturating_sub(self.rfm_th);
        self.rfms_issued += 1;
    }

    /// Current value of the RAA counter.
    pub fn raa(&self) -> u32 {
        self.raa
    }

    /// Total RFM commands issued.
    pub fn rfms_issued(&self) -> u64 {
        self.rfms_issued
    }

    /// Total activations counted.
    pub fn activations_counted(&self) -> u64 {
        self.acts_counted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfm_due_after_threshold_acts() {
        let mut c = RfmCounter::new(80);
        for i in 0..79 {
            assert!(
                !c.on_activation(),
                "RFM should not be due after {} ACTs",
                i + 1
            );
        }
        assert!(c.on_activation());
        assert!(c.rfm_due());
        c.on_rfm_issued(0);
        assert!(!c.rfm_due());
        assert_eq!(c.rfms_issued(), 1);
    }

    #[test]
    fn excess_acts_carry_over() {
        let mut c = RfmCounter::new(10);
        for _ in 0..15 {
            c.on_activation();
        }
        c.on_rfm_issued(0);
        assert_eq!(c.raa(), 5);
        assert!(!c.rfm_due());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_threshold_panics() {
        let _ = RfmCounter::new(0);
    }
}
