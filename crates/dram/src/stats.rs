//! Activation, row-buffer, refresh and mitigation statistics.

use std::ops::AddAssign;

use crate::timing::Cycle;

/// Per-bank event counters accumulated by the [`crate::Bank`] state machine and the
/// memory controller.
///
/// These are the raw quantities behind the paper's Figure 14 (demand vs. mitigative
/// activations) and the §VI-E energy analysis.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BankStats {
    /// Demand activations (row opens caused by reads/writes).
    pub activations: u64,
    /// Precharges issued.
    pub precharges: u64,
    /// Column reads serviced.
    pub reads: u64,
    /// Column writes serviced.
    pub writes: u64,
    /// Row-buffer hits observed by the controller.
    pub row_hits: u64,
    /// Row-buffer misses (required an ACT) observed by the controller.
    pub row_misses: u64,
    /// Row-buffer conflicts (required a PRE then an ACT) observed by the controller.
    pub row_conflicts: u64,
    /// Periodic REF commands executed.
    pub refreshes: u64,
    /// RFM commands executed.
    pub rfm_commands: u64,
    /// Mitigative (victim-refresh) activations issued by the Rowhammer defense.
    pub mitigative_activations: u64,
    /// Total cycles rows spent open in this bank.
    pub total_open_cycles: Cycle,
    /// Longest single row-open interval observed.
    pub max_open_cycles: Cycle,
}

impl BankStats {
    /// Total activations of any kind (demand + mitigative).
    pub fn total_activations(&self) -> u64 {
        self.activations + self.mitigative_activations
    }

    /// Row-buffer hit rate over all classified accesses (0.0 if none recorded).
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses + self.row_conflicts;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }

    /// Total column accesses (reads + writes).
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }
}

impl AddAssign for BankStats {
    fn add_assign(&mut self, rhs: Self) {
        self.activations += rhs.activations;
        self.precharges += rhs.precharges;
        self.reads += rhs.reads;
        self.writes += rhs.writes;
        self.row_hits += rhs.row_hits;
        self.row_misses += rhs.row_misses;
        self.row_conflicts += rhs.row_conflicts;
        self.refreshes += rhs.refreshes;
        self.rfm_commands += rhs.rfm_commands;
        self.mitigative_activations += rhs.mitigative_activations;
        self.total_open_cycles += rhs.total_open_cycles;
        self.max_open_cycles = self.max_open_cycles.max(rhs.max_open_cycles);
    }
}

/// Aggregated statistics for a whole channel (or the whole system).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Sum of all per-bank statistics.
    pub banks: BankStats,
    /// Number of demand requests serviced.
    pub requests: u64,
    /// Sum of request latencies in cycles (queue + service).
    pub total_latency: Cycle,
    /// Cycles the channel data bus was busy transferring data.
    pub bus_busy_cycles: Cycle,
}

impl ChannelStats {
    /// Average request latency in cycles (0.0 if no requests were serviced).
    pub fn average_latency(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.requests as f64
        }
    }

    /// Merges another channel's statistics into this one.
    pub fn merge(&mut self, other: &ChannelStats) {
        self.banks += other.banks;
        self.requests += other.requests;
        self.total_latency += other.total_latency;
        self.bus_busy_cycles += other.bus_busy_cycles;
    }

    /// Merges per-shard statistics into one system-wide total.
    ///
    /// This is the reduction used by the memory controller and by the epoch-phased
    /// system loop after running channel shards on separate workers; every additive
    /// field is a plain sum (order-independent), and `banks.max_open_cycles` takes
    /// the maximum across shards.
    pub fn merged<I: IntoIterator<Item = ChannelStats>>(parts: I) -> ChannelStats {
        let mut total = ChannelStats::default();
        for part in parts {
            total.merge(&part);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_handles_zero() {
        assert_eq!(BankStats::default().row_hit_rate(), 0.0);
    }

    #[test]
    fn hit_rate_computes_fraction() {
        let stats = BankStats {
            row_hits: 3,
            row_misses: 1,
            ..BankStats::default()
        };
        assert!((stats.row_hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = BankStats {
            activations: 1,
            max_open_cycles: 10,
            ..BankStats::default()
        };
        let b = BankStats {
            activations: 2,
            max_open_cycles: 5,
            mitigative_activations: 4,
            ..BankStats::default()
        };
        a += b;
        assert_eq!(a.activations, 3);
        assert_eq!(a.total_activations(), 7);
        assert_eq!(a.max_open_cycles, 10);
    }

    #[test]
    fn channel_average_latency() {
        let mut c = ChannelStats::default();
        assert_eq!(c.average_latency(), 0.0);
        c.requests = 4;
        c.total_latency = 400;
        assert!((c.average_latency() - 100.0).abs() < 1e-12);
    }

    /// Deterministic pseudo-random `BankStats` (no RNG dependency in this crate).
    fn synthetic_bank_stats(seed: u64) -> BankStats {
        let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut next = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x % 10_000
        };
        BankStats {
            activations: next(),
            precharges: next(),
            reads: next(),
            writes: next(),
            row_hits: next(),
            row_misses: next(),
            row_conflicts: next(),
            refreshes: next(),
            rfm_commands: next(),
            mitigative_activations: next(),
            total_open_cycles: next(),
            max_open_cycles: next(),
        }
    }

    fn synthetic_channel_stats(seed: u64) -> ChannelStats {
        ChannelStats {
            banks: synthetic_bank_stats(seed),
            requests: seed * 3 + 1,
            total_latency: seed * 1_000 + 7,
            bus_busy_cycles: seed * 8,
        }
    }

    #[test]
    fn bank_stats_sum_is_independent_of_grouping() {
        // Shard-merge arithmetic: summing per-shard partial sums must equal summing
        // the parts directly, for any grouping of the parts.
        let parts: Vec<BankStats> = (0..12).map(synthetic_bank_stats).collect();
        let mut whole = BankStats::default();
        for p in &parts {
            whole += *p;
        }
        for split in [1, 2, 3, 5, 12] {
            let mut regrouped = BankStats::default();
            for chunk in parts.chunks(split) {
                let mut partial = BankStats::default();
                for p in chunk {
                    partial += *p;
                }
                regrouped += partial;
            }
            assert_eq!(regrouped, whole, "split = {split}");
        }
    }

    #[test]
    fn channel_merged_round_trips_sharded_totals() {
        // A system split into N channel shards must report the same totals as the
        // same events accounted in one monolithic ChannelStats.
        let shards: Vec<ChannelStats> = (1..=8).map(synthetic_channel_stats).collect();
        let total = ChannelStats::merged(shards.iter().copied());

        let mut expected = ChannelStats::default();
        for s in &shards {
            expected.banks += s.banks;
            expected.requests += s.requests;
            expected.total_latency += s.total_latency;
            expected.bus_busy_cycles += s.bus_busy_cycles;
        }
        assert_eq!(total, expected);

        // Merging is order-independent for every additive field and for the max.
        let reversed = ChannelStats::merged(shards.iter().rev().copied());
        assert_eq!(total, reversed);

        // max_open_cycles is a maximum, not a sum.
        let max_open = shards
            .iter()
            .map(|s| s.banks.max_open_cycles)
            .max()
            .unwrap();
        assert_eq!(total.banks.max_open_cycles, max_open);
    }

    #[test]
    fn merged_of_nothing_is_default() {
        assert_eq!(
            ChannelStats::merged(std::iter::empty()),
            ChannelStats::default()
        );
        let one = synthetic_channel_stats(9);
        assert_eq!(ChannelStats::merged([one]), one);
    }

    #[test]
    fn average_latency_survives_merge() {
        let a = ChannelStats {
            requests: 10,
            total_latency: 1_000,
            ..ChannelStats::default()
        };
        let b = ChannelStats {
            requests: 30,
            total_latency: 1_200,
            ..ChannelStats::default()
        };
        let merged = ChannelStats::merged([a, b]);
        // The merged average is the request-weighted average of the parts.
        assert!((merged.average_latency() - 55.0).abs() < 1e-12);
    }

    #[test]
    fn channel_merge_adds_requests() {
        let mut a = ChannelStats {
            requests: 1,
            total_latency: 10,
            ..ChannelStats::default()
        };
        let b = ChannelStats {
            requests: 2,
            total_latency: 30,
            ..ChannelStats::default()
        };
        a.merge(&b);
        assert_eq!(a.requests, 3);
        assert_eq!(a.total_latency, 40);
    }
}
