//! JEDEC timing parameters (Table I of the ImPress paper) and time-unit conversions.

/// A point in time or a duration, measured in DRAM clock cycles.
///
/// The model clocks the DRAM command bus at 2.666 GHz (0.375 ns per cycle), so `tRC`
/// (48 ns) is exactly 128 cycles and the division by `tRC` used by ImPress-P is a right
/// shift by 7 bits, exactly as described in §VI-A of the paper.
pub type Cycle = u64;

/// Number of DRAM clock cycles per 3 nanoseconds (2.666 GHz ⇒ 8 cycles every 3 ns).
const CYCLES_PER_3NS: u64 = 8;

/// Converts a duration in nanoseconds to DRAM clock cycles (rounding up).
///
/// ```
/// use impress_dram::timing::ns_to_cycles;
/// assert_eq!(ns_to_cycles(48), 128);
/// assert_eq!(ns_to_cycles(12), 32);
/// ```
pub const fn ns_to_cycles(ns: u64) -> Cycle {
    (ns * CYCLES_PER_3NS).div_ceil(3)
}

/// Converts a duration in DRAM clock cycles back to nanoseconds (rounding to nearest).
///
/// ```
/// use impress_dram::timing::cycles_to_ns;
/// assert_eq!(cycles_to_ns(128), 48);
/// ```
pub const fn cycles_to_ns(cycles: Cycle) -> u64 {
    (cycles * 3 + CYCLES_PER_3NS / 2) / CYCLES_PER_3NS
}

/// DRAM timing parameters, mirroring Table I of the paper.
///
/// All values are expressed in DRAM clock cycles. The default constructor
/// [`DramTimings::ddr5`] matches the paper's DDR5 configuration; [`DramTimings::ddr4`]
/// is provided because the Row-Press characterization of Luo et al. was performed on
/// DDR4 devices (different `tREFI`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DramTimings {
    /// Time to perform an activation (row open), `tACT` = 12 ns.
    pub t_act: Cycle,
    /// Time to precharge an open row, `tPRE` = 12 ns.
    pub t_pre: Cycle,
    /// Minimum time a row must be kept open, `tRAS` = 36 ns.
    pub t_ras: Cycle,
    /// Minimum time between successive activations to a bank, `tRC` = 48 ns.
    pub t_rc: Cycle,
    /// Four-activation window: at most four ACTs may be issued to a rank per `tFAW`.
    /// The controller approximates this as a minimum spacing of `tFAW/4` between
    /// demand activations on a channel.
    pub t_faw: Cycle,
    /// Refresh window: every row is refreshed once per `tREFW` = 32 ms.
    pub t_refw: Cycle,
    /// Time between successive REF commands, `tREFI` (3900 ns in DDR5, 7800 ns in DDR4).
    pub t_refi: Cycle,
    /// Execution time of a REF command, `tRFC` = 350 ns.
    pub t_rfc: Cycle,
    /// Execution time of an RFM command (the paper assumes half of `tRFC`, 205 ns ≈ tRFC/2 + margin).
    pub t_rfm: Cycle,
    /// Maximum time a row may stay open per the DDR5 specification (9 × tREFI postponed ≈ 19.5 µs).
    pub t_on_max: Cycle,
    /// Column-access latency (CAS latency), used for read/write service time.
    pub t_cas: Cycle,
    /// Data burst duration on the bus for one cache line.
    pub t_burst: Cycle,
    /// Maximum number of REF commands that may be postponed (DDR5 allows 4).
    pub max_postponed_ref: u32,
}

impl DramTimings {
    /// DDR5 timings used throughout the paper's evaluation (Table I).
    ///
    /// ```
    /// use impress_dram::DramTimings;
    /// let t = DramTimings::ddr5();
    /// assert_eq!(t.t_rc, 128);
    /// assert_eq!(t.t_refi, 10_400);
    /// ```
    pub fn ddr5() -> Self {
        Self {
            t_act: ns_to_cycles(12),
            t_pre: ns_to_cycles(12),
            t_ras: ns_to_cycles(36),
            t_rc: ns_to_cycles(48),
            t_faw: ns_to_cycles(32),
            t_refw: ns_to_cycles(32_000_000),
            t_refi: ns_to_cycles(3_900),
            t_rfc: ns_to_cycles(350),
            t_rfm: ns_to_cycles(205),
            t_on_max: ns_to_cycles(19_500),
            t_cas: ns_to_cycles(14),
            t_burst: 8,
            max_postponed_ref: 4,
        }
    }

    /// DDR4 timings (used only to interpret the Row-Press characterization data of
    /// Luo et al., which was collected on DDR4 devices with `tREFI` = 7800 ns).
    pub fn ddr4() -> Self {
        Self {
            t_refi: ns_to_cycles(7_800),
            t_on_max: ns_to_cycles(70_200),
            max_postponed_ref: 8,
            ..Self::ddr5()
        }
    }

    /// Number of `tRC` windows in one refresh interval (`tREFI / tRC`).
    ///
    /// For DDR4 this is ~162 and for 9×tREFI ~1462, the durations used in Figure 7.
    pub fn trc_windows_per_refi(&self) -> u64 {
        self.t_refi / self.t_rc
    }

    /// Maximum number of activations a single bank can receive within one refresh
    /// window, accounting for the time spent executing REF commands.
    ///
    /// This is the activation budget used to size Misra-Gries style trackers
    /// (Graphene, Mithril).
    pub fn act_budget_per_refw(&self) -> u64 {
        let refs_per_refw = self.t_refw / self.t_refi;
        let refresh_cycles = refs_per_refw * self.t_rfc;
        (self.t_refw - refresh_cycles) / self.t_rc
    }

    /// Converts a duration expressed in nanoseconds into cycles with these timings'
    /// clock (provided for symmetry; the clock is fixed at 2.666 GHz).
    pub fn from_ns(&self, ns: u64) -> Cycle {
        ns_to_cycles(ns)
    }
}

impl Default for DramTimings {
    fn default() -> Self {
        Self::ddr5()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values_match_paper() {
        let t = DramTimings::ddr5();
        assert_eq!(cycles_to_ns(t.t_act), 12);
        assert_eq!(cycles_to_ns(t.t_pre), 12);
        assert_eq!(cycles_to_ns(t.t_ras), 36);
        assert_eq!(cycles_to_ns(t.t_rc), 48);
        assert_eq!(cycles_to_ns(t.t_refi), 3900);
        assert_eq!(cycles_to_ns(t.t_rfc), 350);
        assert_eq!(cycles_to_ns(t.t_refw), 32_000_000);
    }

    #[test]
    fn trc_is_128_cycles() {
        // §VI-A: "tRC (48ns) is equal to 128 cycles, thus the division by tRC can be
        // implemented by shifting right by 7 bits."
        assert_eq!(DramTimings::ddr5().t_rc, 128);
        assert_eq!(DramTimings::ddr5().t_rc, 1 << 7);
    }

    #[test]
    fn ras_plus_pre_less_than_rc() {
        let t = DramTimings::ddr5();
        assert!(t.t_ras + t.t_pre <= t.t_rc);
    }

    #[test]
    fn faw_allows_more_than_one_act_per_trc() {
        let t = DramTimings::ddr5();
        assert!(t.t_faw / 4 < t.t_rc);
        assert!(t.t_faw > 0);
    }

    #[test]
    fn ddr4_has_longer_refi() {
        let d4 = DramTimings::ddr4();
        let d5 = DramTimings::ddr5();
        assert_eq!(d4.t_refi, 2 * d5.t_refi);
        // Figure 7: 1 tREFI in DDR4 is ~162 tRC windows.
        assert_eq!(d4.trc_windows_per_refi(), 162);
    }

    #[test]
    fn act_budget_is_roughly_600k() {
        // 32 ms / 48 ns ≈ 666K activations, minus ~7% lost to refresh.
        let budget = DramTimings::ddr5().act_budget_per_refw();
        assert!(budget > 550_000 && budget < 650_000, "budget = {budget}");
    }

    #[test]
    fn ns_cycle_roundtrip() {
        for ns in [12u64, 36, 48, 205, 350, 3900, 19_500] {
            assert_eq!(cycles_to_ns(ns_to_cycles(ns)), ns);
        }
    }
}
