//! Scoped parallel execution for experiment sweeps.
//!
//! The figure harness runs hundreds of independent `(workload, configuration)`
//! simulation cells; this crate provides the minimal parallel substrate to spread
//! them over a thread pool without reaching for crates.io (the build environment is
//! offline, so rayon is unavailable).
//!
//! The core primitive is [`par_map`]: a scoped fork-join map over a slice that
//!
//! * distributes items dynamically (an atomic work index — fast items do not leave
//!   threads idle behind slow ones, which matters because STREAM cells simulate
//!   several times faster than SPEC cells);
//! * returns results **in input order**, regardless of which thread finished which
//!   item when, so parallel sweeps are bit-for-bit identical to serial sweeps;
//! * runs inline (no threads spawned) when one worker is requested or the input has
//!   at most one item, keeping the serial path truly serial.
//!
//! The worker count defaults to the machine's available parallelism and is
//! overridden with the `IMPRESS_THREADS` environment variable.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Environment variable overriding the worker count used by [`par_map`].
pub const THREADS_ENV: &str = "IMPRESS_THREADS";

/// The number of worker threads sweeps should use.
///
/// Reads the `IMPRESS_THREADS` environment variable (values `>= 1`; anything
/// unparsable is ignored) and falls back to [`std::thread::available_parallelism`].
pub fn thread_count() -> usize {
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Maps `f` over `items` on [`thread_count`] workers, preserving input order.
///
/// See [`par_map_with`] for the execution contract.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_with(thread_count(), items, f)
}

/// Maps `f` over `items` on exactly `threads` workers, preserving input order.
///
/// Items are claimed dynamically from a shared atomic index, so uneven per-item
/// costs balance automatically. The output is ordered by input index — the result
/// is indistinguishable from `items.iter().map(f).collect()` whenever `f` is a pure
/// function of its input.
///
/// If any invocation of `f` panics, the panic is re-raised on the caller's thread
/// after all workers have stopped.
pub fn par_map_with<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads == 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let f = &f;
    let next = &next;

    // Each worker collects (index, result) pairs locally (no lock contention on the
    // hot path), and the caller reassembles them into input order afterwards.
    let mut buckets: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(move || {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    let mut poisoned = None;
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        match catch_unwind(AssertUnwindSafe(|| f(&items[i]))) {
                            Ok(r) => local.push((i, r)),
                            Err(payload) => {
                                // Park the claim counter at the end so the other
                                // workers drain quickly, then surface the panic.
                                next.store(usize::MAX - threads, Ordering::Relaxed);
                                poisoned = Some(payload);
                                break;
                            }
                        }
                    }
                    match poisoned {
                        Some(payload) => Err(payload),
                        None => Ok(local),
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker threads do not die outside f"))
            .collect::<Result<Vec<_>, _>>()
            .unwrap_or_else(|payload| resume_unwind(payload))
    });

    let mut out: Vec<Option<R>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);
    for bucket in &mut buckets {
        for (i, r) in bucket.drain(..) {
            debug_assert!(out[i].is_none(), "item {i} computed twice");
            out[i] = Some(r);
        }
    }
    out.into_iter()
        .map(|r| r.expect("every index claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..257).collect();
        for threads in [1, 2, 3, 8, 64] {
            let out = par_map_with(threads, &items, |&x| x * x);
            let expect: Vec<u64> = items.iter().map(|&x| x * x).collect();
            assert_eq!(out, expect, "threads = {threads}");
        }
    }

    #[test]
    fn matches_serial_map_on_uneven_work() {
        let items: Vec<u64> = (0..100).collect();
        let serial = par_map_with(1, &items, |&x| {
            // Uneven per-item cost: item i spins i iterations.
            (0..x).fold(x, |acc, v| acc.wrapping_mul(31).wrapping_add(v))
        });
        let parallel = par_map_with(7, &items, |&x| {
            (0..x).fold(x, |acc, v| acc.wrapping_mul(31).wrapping_add(v))
        });
        assert_eq!(serial, parallel);
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let counter = AtomicU64::new(0);
        let items: Vec<usize> = (0..1000).collect();
        let out = par_map_with(5, &items, |&i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
        assert_eq!(out.iter().copied().collect::<HashSet<_>>().len(), 1000);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map_with(4, &empty, |&x| x).is_empty());
        assert_eq!(par_map_with(4, &[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let items = [1u32, 2, 3];
        assert_eq!(par_map_with(100, &items, |&x| x * 2), vec![2, 4, 6]);
    }

    #[test]
    #[should_panic(expected = "boom at 13")]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..64).collect();
        let _ = par_map_with(4, &items, |&x| {
            if x == 13 {
                panic!("boom at 13");
            }
            x
        });
    }

    #[test]
    fn thread_count_env_override() {
        // Serialized with other env-touching tests by running in one test binary.
        std::env::set_var(THREADS_ENV, "3");
        assert_eq!(thread_count(), 3);
        std::env::set_var(THREADS_ENV, "not-a-number");
        assert!(thread_count() >= 1);
        std::env::set_var(THREADS_ENV, "0");
        assert!(thread_count() >= 1);
        std::env::remove_var(THREADS_ENV);
        assert!(thread_count() >= 1);
    }
}
