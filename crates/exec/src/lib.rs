//! Scoped parallel execution for experiment sweeps.
//!
//! The figure harness runs hundreds of independent `(workload, configuration)`
//! simulation cells; this crate provides the minimal parallel substrate to spread
//! them over a thread pool without reaching for crates.io (the build environment is
//! offline, so rayon is unavailable).
//!
//! The core primitive is [`par_map`]: a scoped fork-join map over a slice that
//!
//! * distributes items dynamically (an atomic work index — fast items do not leave
//!   threads idle behind slow ones, which matters because STREAM cells simulate
//!   several times faster than SPEC cells);
//! * returns results **in input order**, regardless of which thread finished which
//!   item when, so parallel sweeps are bit-for-bit identical to serial sweeps;
//! * runs inline (no threads spawned) when one worker is requested or the input has
//!   at most one item, keeping the serial path truly serial.
//!
//! For *intra-run* parallelism — the epoch-phased sharded system loop, which needs
//! thousands of tiny fork-join rounds per simulation — [`epoch_scope`] provides a
//! persistent pool: workers are spawned once, wait between rounds with a bounded
//! spin, then a bounded yield, then a `Condvar` park (so round-trip latency stays
//! low in a hot loop while idle workers cost nothing during a run's serial
//! issue/merge phases or on oversubscribed hosts), and claim tasks from the same
//! dynamic atomic index as [`par_map`]. A hot round costs a couple of atomic
//! operations instead of a thread spawn, which is what makes barriers every few
//! dozen simulated cycles affordable.
//!
//! The worker count defaults to the machine's available parallelism and is
//! overridden with the `IMPRESS_THREADS` environment variable.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Environment variable overriding the worker count used by [`par_map`].
pub const THREADS_ENV: &str = "IMPRESS_THREADS";

/// The number of worker threads sweeps should use.
///
/// Reads the `IMPRESS_THREADS` environment variable (values `>= 1`; anything
/// unparsable is ignored) and falls back to [`std::thread::available_parallelism`].
pub fn thread_count() -> usize {
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Maps `f` over `items` on [`thread_count`] workers, preserving input order.
///
/// See [`par_map_with`] for the execution contract.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_with(thread_count(), items, f)
}

/// Maps `f` over `items` on exactly `threads` workers, preserving input order.
///
/// Items are claimed dynamically from a shared atomic index, so uneven per-item
/// costs balance automatically. The output is ordered by input index — the result
/// is indistinguishable from `items.iter().map(f).collect()` whenever `f` is a pure
/// function of its input.
///
/// If any invocation of `f` panics, the panic is re-raised on the caller's thread
/// after all workers have stopped.
pub fn par_map_with<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads == 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let f = &f;
    let next = &next;

    // Each worker collects (index, result) pairs locally (no lock contention on the
    // hot path), and the caller reassembles them into input order afterwards.
    let mut buckets: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(move || {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    let mut poisoned = None;
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        match catch_unwind(AssertUnwindSafe(|| f(&items[i]))) {
                            Ok(r) => local.push((i, r)),
                            Err(payload) => {
                                // Park the claim counter at the end so the other
                                // workers drain quickly, then surface the panic.
                                next.store(usize::MAX - threads, Ordering::Relaxed);
                                poisoned = Some(payload);
                                break;
                            }
                        }
                    }
                    match poisoned {
                        Some(payload) => Err(payload),
                        None => Ok(local),
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker threads do not die outside f"))
            .collect::<Result<Vec<_>, _>>()
            .unwrap_or_else(|payload| resume_unwind(payload))
    });

    let mut out: Vec<Option<R>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);
    for bucket in &mut buckets {
        for (i, r) in bucket.drain(..) {
            debug_assert!(out[i].is_none(), "item {i} computed twice");
            out[i] = Some(r);
        }
    }
    out.into_iter()
        .map(|r| r.expect("every index claimed exactly once"))
        .collect()
}

/// Spin iterations before a waiting worker starts yielding its time slice (keeps
/// round-trip latency low on idle cores without starving oversubscribed hosts).
const SPINS_BEFORE_YIELD: u32 = 128;

/// Spin + yield iterations before a between-rounds worker parks on the pool's
/// `Condvar`. Below this threshold a new round is picked up within nanoseconds;
/// beyond it the driver is in a long serial phase (issue/merge of a big epoch, or
/// finished with the pool entirely) and a parked worker costs the host nothing.
const SPINS_BEFORE_PARK: u32 = SPINS_BEFORE_YIELD + 64;

/// Synchronization state shared between an epoch-scope driver and its workers.
struct EpochSync {
    /// Round generation counter; the driver bumps it to start a round.
    epoch: AtomicU64,
    /// Dynamic claim index for the current round (the `par_map` idiom).
    claim: AtomicUsize,
    /// Tasks completed in the current round.
    done: AtomicUsize,
    /// Set when the driver is finished or unwinding: workers exit.
    stop: AtomicBool,
    /// Set when a task of the current round panicked. Cleared by the driver when
    /// it collects the round's outcome, so a contained panic does not poison the
    /// next round.
    panicked: AtomicBool,
    /// Panic payloads of the current round, collected on the driver thread.
    payload: Mutex<Vec<Box<dyn std::any::Any + Send>>>,
    /// Workers currently parked on `wake`. Incremented/decremented only with
    /// `park_lock` held, so a round-starter that takes the lock observes every
    /// committed park (see the handshake argument on [`EpochScope::run_epoch`]).
    parked: AtomicUsize,
    /// Guards the park/wake handshake; deliberately holds no data — the state it
    /// orders lives in the atomics above.
    park_lock: Mutex<()>,
    /// Parked workers wait here for a new round (or shutdown).
    wake: Condvar,
}

impl EpochSync {
    fn new() -> Self {
        Self {
            epoch: AtomicU64::new(0),
            claim: AtomicUsize::new(0),
            done: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
            panicked: AtomicBool::new(false),
            payload: Mutex::new(Vec::new()),
            parked: AtomicUsize::new(0),
            park_lock: Mutex::new(()),
            wake: Condvar::new(),
        }
    }

    /// Publishes `publish` (an epoch bump or a stop flag) under the park lock and
    /// wakes any parked workers.
    ///
    /// Holding the lock across the store is what makes the park handshake
    /// lost-wakeup-free: a worker parks only after re-checking the epoch/stop
    /// state *with the lock held*, so either the worker sees this store and never
    /// waits, or its park is visible to `parked` here and gets the notification.
    fn publish_and_wake(&self, publish: impl FnOnce()) {
        let guard = self.park_lock.lock().expect("park lock poisoned");
        publish();
        let any_parked = self.parked.load(Ordering::Relaxed) > 0;
        drop(guard);
        if any_parked {
            self.wake.notify_all();
        }
    }
}

/// Ensures workers are released even if the driver unwinds.
struct StopGuard<'a>(&'a EpochSync);

impl Drop for StopGuard<'_> {
    fn drop(&mut self) {
        // This runs during unwinding too, so tolerate a poisoned lock instead of
        // aborting: the `Err` branch of `lock()` still holds the guard, so the
        // store is ordered against parking workers either way.
        let guard = self.0.park_lock.lock();
        self.0.stop.store(true, Ordering::Release);
        drop(guard);
        self.0.wake.notify_all();
    }
}

/// The outcome of a round in which one or more tasks panicked, returned by
/// [`EpochScope::try_run_epoch`].
///
/// The round still ran to completion — every task index was claimed exactly once
/// and either finished or panicked — and the pool remains fully usable for
/// subsequent rounds. This is the containment primitive supervised drivers (the
/// trace daemon) build per-window quarantine on: a panicking shard worker costs
/// one round's work on the panicking task, not the process.
pub struct EpochPanic {
    payloads: Vec<Box<dyn std::any::Any + Send>>,
}

impl std::fmt::Debug for EpochPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochPanic")
            .field("failed_tasks", &self.payloads.len())
            .field("messages", &self.messages())
            .finish()
    }
}

impl EpochPanic {
    /// Number of tasks that panicked during the round.
    pub fn failed_tasks(&self) -> usize {
        self.payloads.len()
    }

    /// Human-readable panic messages, where payloads are strings (the common
    /// `panic!("...")` case); other payload types render as `"<non-string panic>"`.
    pub fn messages(&self) -> Vec<String> {
        self.payloads
            .iter()
            .map(|p| {
                if let Some(s) = p.downcast_ref::<&str>() {
                    (*s).to_string()
                } else if let Some(s) = p.downcast_ref::<String>() {
                    s.clone()
                } else {
                    "<non-string panic>".to_string()
                }
            })
            .collect()
    }

    /// Re-raises the first captured panic on the current thread.
    pub fn resume(mut self) -> ! {
        match self.payloads.pop() {
            Some(p) => resume_unwind(p),
            None => panic!("epoch worker panicked"),
        }
    }
}

/// Handle to a running epoch pool, passed to the driver closure of [`epoch_scope`].
///
/// Each [`EpochScope::run_epoch`] call executes `execute(i)` exactly once for every
/// task index `i in 0..tasks` and returns only when all of them have finished — a
/// reusable fork-join barrier. Tasks of one round are claimed dynamically, so uneven
/// per-task costs balance across workers; successive rounds reuse the same parked
/// worker threads.
pub struct EpochScope<'a, F: Fn(usize) + Sync> {
    execute: &'a F,
    tasks: usize,
    /// `None` in inline (single-threaded) mode.
    sync: Option<&'a EpochSync>,
    /// Rounds completed so far (the statistics hook for epoch-phased drivers).
    rounds: Cell<u64>,
}

impl<F: Fn(usize) + Sync> std::fmt::Debug for EpochScope<'_, F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochScope")
            .field("tasks", &self.tasks)
            .field("parallel", &self.sync.is_some())
            .finish()
    }
}

impl<F: Fn(usize) + Sync> EpochScope<'_, F> {
    /// Runs one round: every task index is executed exactly once, on this thread and
    /// any parked workers, and the call returns after the last task completes.
    ///
    /// If any task panics (on a worker or on the driver thread itself), the panic is
    /// re-raised here after the round completes; the workers are released by the
    /// scope's unwind guard. Drivers that must survive task panics — supervised
    /// ingestion daemons quarantining a failed window — use
    /// [`EpochScope::try_run_epoch`] instead.
    pub fn run_epoch(&self) {
        if let Err(panic) = self.try_run_epoch() {
            if let Some(sync) = self.sync {
                sync.stop.store(true, Ordering::Release);
            }
            panic.resume();
        }
    }

    /// Runs one round like [`EpochScope::run_epoch`], but *contains* task panics:
    /// a panicking task counts as finished, the remaining tasks of the round still
    /// execute, and the captured payloads are returned as an [`EpochPanic`] instead
    /// of unwinding. The pool stays fully usable afterwards, so a supervising
    /// driver can quarantine the failed round's work and keep serving.
    ///
    /// Tasks are independent by contract, so completing the round after a panic is
    /// safe; state owned by a panicking task may of course be left mid-update, and
    /// it is the caller's job to discard or quarantine it.
    ///
    /// # Errors
    ///
    /// Returns an [`EpochPanic`] carrying every panic payload captured during the
    /// round.
    pub fn try_run_epoch(&self) -> Result<(), EpochPanic> {
        self.rounds.set(self.rounds.get() + 1);
        let Some(sync) = self.sync else {
            // Inline mode: the serial path stays serial (no atomics, no locks);
            // panics are still contained so daemons can run single-threaded.
            let mut payloads = Vec::new();
            for i in 0..self.tasks {
                if let Err(p) = catch_unwind(AssertUnwindSafe(|| (self.execute)(i))) {
                    payloads.push(p);
                }
            }
            return if payloads.is_empty() {
                Ok(())
            } else {
                Err(EpochPanic { payloads })
            };
        };
        // Reset order matters: `done` strictly before `claim`. A straggler worker
        // still in the previous round's claim loop may claim from the freshly reset
        // counter before the epoch bump; because its claim (Acquire) synchronizes
        // with the `claim` reset (Release, below), its `done` increment is
        // guaranteed to land after this `done` reset and is never lost. Resetting
        // in the opposite order would let such an increment be wiped, leaving the
        // round one task short and the wait loop below spinning forever.
        sync.done.store(0, Ordering::Relaxed);
        sync.claim.store(0, Ordering::Release);
        // The epoch bump is published under the park lock so a worker that is
        // about to park cannot miss it (see EpochSync::publish_and_wake); spinning
        // and yielding workers pick it up straight from the atomic.
        sync.publish_and_wake(|| {
            sync.epoch.fetch_add(1, Ordering::Release);
        });
        // The driver participates in the round. Its tasks are contained exactly
        // like a worker's: a panicking task is recorded and counted as done, so
        // the round always completes and the wait below always terminates.
        loop {
            let i = sync.claim.fetch_add(1, Ordering::Acquire);
            if i >= self.tasks {
                break;
            }
            match catch_unwind(AssertUnwindSafe(|| (self.execute)(i))) {
                Ok(()) => {}
                Err(p) => {
                    sync.payload.lock().expect("payload mutex").push(p);
                    sync.panicked.store(true, Ordering::Release);
                }
            }
            sync.done.fetch_add(1, Ordering::Release);
        }
        let mut spins = 0u32;
        while sync.done.load(Ordering::Acquire) < self.tasks {
            spins += 1;
            if spins < SPINS_BEFORE_YIELD {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        // Collect the round's outcome. Every task has finished (done == tasks), so
        // every panic of this round is already recorded; clearing the flag here
        // cannot race a straggler.
        if sync.panicked.swap(false, Ordering::AcqRel) {
            let payloads = std::mem::take(&mut *sync.payload.lock().expect("payload mutex"));
            return Err(EpochPanic { payloads });
        }
        Ok(())
    }

    /// Number of tasks executed per round.
    pub fn tasks(&self) -> usize {
        self.tasks
    }

    /// Number of rounds run so far — the statistics hook epoch-phased drivers use
    /// to cross-check their own round accounting.
    pub fn rounds_run(&self) -> u64 {
        self.rounds.get()
    }

    /// `true` when rounds actually fan out to worker threads.
    pub fn is_parallel(&self) -> bool {
        self.sync.is_some()
    }
}

fn epoch_worker<F: Fn(usize) + Sync>(sync: &EpochSync, execute: &F, tasks: usize) {
    let mut seen = 0u64;
    loop {
        // Wait until the driver starts a new round (or shuts the pool down):
        // bounded spin (round already being launched), then bounded yield
        // (driver briefly busy), then a Condvar park (driver in a long serial
        // phase — the worker must cost the host nothing).
        let mut spins = 0u32;
        loop {
            if sync.stop.load(Ordering::Acquire) {
                return;
            }
            let e = sync.epoch.load(Ordering::Acquire);
            if e != seen {
                seen = e;
                break;
            }
            spins += 1;
            if spins < SPINS_BEFORE_YIELD {
                std::hint::spin_loop();
            } else if spins < SPINS_BEFORE_PARK {
                std::thread::yield_now();
            } else {
                // Park. The re-check of stop/epoch happens with the lock held:
                // any round start or shutdown is published under this same lock
                // (EpochSync::publish_and_wake, StopGuard), so either we observe
                // it here and skip the wait, or our `parked` increment is visible
                // to the publisher and we receive its notification — no window
                // for a lost wakeup.
                let mut guard = sync.park_lock.lock().expect("park lock poisoned");
                sync.parked.fetch_add(1, Ordering::Relaxed);
                while !sync.stop.load(Ordering::Acquire)
                    && sync.epoch.load(Ordering::Acquire) == seen
                {
                    guard = sync.wake.wait(guard).expect("park condvar poisoned");
                }
                sync.parked.fetch_sub(1, Ordering::Relaxed);
                drop(guard);
                // Loop around to re-read stop/epoch on the normal path.
            }
        }
        // Claim loop. A straggler that observes a round late simply joins whichever
        // round is current — claim indices are unique per round, so no task can run
        // twice and `done` counts every task exactly once (the Acquire claim pairs
        // with the driver's Release reset: any claim drawn from a freshly reset
        // counter is ordered after that round's `done` reset).
        //
        // A panicking task is *contained*: its payload is recorded, it counts as
        // done (so the driver's completion wait terminates), and the worker keeps
        // claiming — tasks are independent, so the rest of the round still runs.
        // The driver decides whether to unwind (run_epoch) or quarantine
        // (try_run_epoch) once the round completes.
        loop {
            if sync.stop.load(Ordering::Acquire) {
                break;
            }
            let i = sync.claim.fetch_add(1, Ordering::Acquire);
            if i >= tasks {
                break;
            }
            match catch_unwind(AssertUnwindSafe(|| execute(i))) {
                Ok(()) => {
                    sync.done.fetch_add(1, Ordering::Release);
                }
                Err(p) => {
                    sync.payload.lock().expect("payload mutex").push(p);
                    sync.panicked.store(true, Ordering::Release);
                    sync.done.fetch_add(1, Ordering::Release);
                }
            }
        }
    }
}

/// Runs `driver` with a persistent pool of `threads` workers that repeatedly execute
/// `execute(0..tasks)` on demand (one [`EpochScope::run_epoch`] call per round).
///
/// This is the fork-join substrate for epoch-phased simulation: [`par_map`] pays a
/// thread spawn per call, which is fine for sweep cells that run for milliseconds but
/// ruinous for the thousands of micro-rounds of a sharded `System` run. Here the
/// workers are spawned once for the lifetime of `driver` and a round costs a few
/// atomic operations.
///
/// With `threads <= 1` or `tasks <= 1` no threads are spawned and rounds execute
/// inline on the caller — the serial path stays serial. Results are deterministic by
/// construction for any thread count as long as the tasks are independent (the
/// sharded run loop guarantees this by giving each task exclusive state).
pub fn epoch_scope<F, D, R>(threads: usize, tasks: usize, execute: F, driver: D) -> R
where
    F: Fn(usize) + Sync,
    D: FnOnce(&EpochScope<'_, F>) -> R,
{
    let threads = threads.max(1).min(tasks.max(1));
    if threads == 1 || tasks <= 1 {
        return driver(&EpochScope {
            execute: &execute,
            tasks,
            sync: None,
            rounds: Cell::new(0),
        });
    }
    let sync = EpochSync::new();
    let execute = &execute;
    let sync_ref = &sync;
    std::thread::scope(|scope| {
        for _ in 0..threads - 1 {
            scope.spawn(move || epoch_worker(sync_ref, execute, tasks));
        }
        let _guard = StopGuard(sync_ref);
        driver(&EpochScope {
            execute,
            tasks,
            sync: Some(sync_ref),
            rounds: Cell::new(0),
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..257).collect();
        for threads in [1, 2, 3, 8, 64] {
            let out = par_map_with(threads, &items, |&x| x * x);
            let expect: Vec<u64> = items.iter().map(|&x| x * x).collect();
            assert_eq!(out, expect, "threads = {threads}");
        }
    }

    #[test]
    fn matches_serial_map_on_uneven_work() {
        let items: Vec<u64> = (0..100).collect();
        let serial = par_map_with(1, &items, |&x| {
            // Uneven per-item cost: item i spins i iterations.
            (0..x).fold(x, |acc, v| acc.wrapping_mul(31).wrapping_add(v))
        });
        let parallel = par_map_with(7, &items, |&x| {
            (0..x).fold(x, |acc, v| acc.wrapping_mul(31).wrapping_add(v))
        });
        assert_eq!(serial, parallel);
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let counter = AtomicU64::new(0);
        let items: Vec<usize> = (0..1000).collect();
        let out = par_map_with(5, &items, |&i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
        assert_eq!(out.iter().copied().collect::<HashSet<_>>().len(), 1000);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map_with(4, &empty, |&x| x).is_empty());
        assert_eq!(par_map_with(4, &[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let items = [1u32, 2, 3];
        assert_eq!(par_map_with(100, &items, |&x| x * 2), vec![2, 4, 6]);
    }

    #[test]
    #[should_panic(expected = "boom at 13")]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..64).collect();
        let _ = par_map_with(4, &items, |&x| {
            if x == 13 {
                panic!("boom at 13");
            }
            x
        });
    }

    /// Drives `rounds` epochs over `tasks` accumulator cells and returns the cells.
    fn run_epochs(threads: usize, tasks: usize, rounds: u64) -> Vec<u64> {
        let cells: Vec<Mutex<u64>> = (0..tasks).map(|i| Mutex::new(i as u64)).collect();
        let cells_ref = &cells;
        epoch_scope(
            threads,
            tasks,
            move |i| {
                let mut cell = cells_ref[i].lock().unwrap();
                *cell = cell
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(i as u64);
            },
            |scope| {
                for _ in 0..rounds {
                    scope.run_epoch();
                }
            },
        );
        cells.into_iter().map(|c| c.into_inner().unwrap()).collect()
    }

    #[test]
    fn epoch_rounds_match_inline_execution() {
        let expect = run_epochs(1, 5, 2_000);
        for threads in [2, 3, 8] {
            assert_eq!(run_epochs(threads, 5, 2_000), expect, "threads = {threads}");
        }
    }

    #[test]
    fn many_tiny_epochs_do_not_deadlock() {
        // The sharded system loop runs tens of thousands of rounds per simulation;
        // exercise the park/claim handshake hard enough to catch lost wakeups.
        let out = run_epochs(4, 3, 20_000);
        assert_eq!(out, run_epochs(1, 3, 20_000));
    }

    /// Like [`run_epochs`], but the driver stalls between some rounds long enough
    /// for every worker to walk the full spin → yield → park ladder, so each
    /// stalled round exercises a genuine Condvar wakeup.
    fn run_epochs_with_stalls(
        threads: usize,
        tasks: usize,
        rounds: u64,
        stall_every: u64,
    ) -> Vec<u64> {
        let cells: Vec<Mutex<u64>> = (0..tasks).map(|i| Mutex::new(i as u64)).collect();
        let cells_ref = &cells;
        epoch_scope(
            threads,
            tasks,
            move |i| {
                let mut cell = cells_ref[i].lock().unwrap();
                *cell = cell
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(i as u64);
            },
            |scope| {
                for r in 0..rounds {
                    if r % stall_every == 0 {
                        std::thread::sleep(std::time::Duration::from_micros(500));
                    }
                    scope.run_epoch();
                }
                assert_eq!(scope.rounds_run(), rounds);
            },
        );
        cells.into_iter().map(|c| c.into_inner().unwrap()).collect()
    }

    #[test]
    fn parked_workers_wake_for_every_round() {
        // Bursts of back-to-back rounds separated by driver stalls: workers park
        // during each stall and must be woken for the next burst. A lost wakeup
        // hangs the next run_epoch (its done-wait never completes) and fails the
        // test by timeout.
        let expect = run_epochs_with_stalls(1, 4, 3_000, 97);
        for threads in [2, 4, 8] {
            assert_eq!(
                run_epochs_with_stalls(threads, 4, 3_000, 97),
                expect,
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn oversubscribed_round_handshake_survives_a_stress_run() {
        // Many epochs x few tasks x more threads than this container has cores:
        // the shape the ROADMAP flagged as the risk case for the spin/park
        // handshake. Stalls are interleaved so both the hot (spin) path and the
        // cold (park/wake) path run tens of thousands of times.
        let expect = run_epochs(1, 2, 40_000);
        assert_eq!(run_epochs(2, 2, 40_000), expect);
        let expect = run_epochs_with_stalls(1, 3, 10_000, 211);
        assert_eq!(run_epochs_with_stalls(3, 3, 10_000, 211), expect);
    }

    #[test]
    fn single_task_runs_inline() {
        epoch_scope(
            8,
            1,
            |i| assert_eq!(i, 0),
            |scope| {
                assert!(!scope.is_parallel());
                assert_eq!(scope.tasks(), 1);
                scope.run_epoch();
            },
        );
    }

    #[test]
    #[should_panic(expected = "epoch boom")]
    fn epoch_worker_panic_propagates() {
        let counter = AtomicU64::new(0);
        let counter_ref = &counter;
        epoch_scope(
            4,
            8,
            move |i| {
                if i == 5 && counter_ref.load(Ordering::Relaxed) >= 3 {
                    panic!("epoch boom");
                }
            },
            |scope| loop {
                counter_ref.fetch_add(1, Ordering::Relaxed);
                scope.run_epoch();
            },
        );
    }

    #[test]
    fn contained_panic_leaves_the_pool_usable() {
        // One poisoned round among many: try_run_epoch reports it, every other
        // round (before and after) completes normally on the same pool, and the
        // non-panicking tasks of the poisoned round still run.
        for threads in [1usize, 2, 4] {
            let hits: Vec<AtomicU64> = (0..6).map(|_| AtomicU64::new(0)).collect();
            let round = AtomicU64::new(0);
            let hits_ref = &hits;
            let round_ref = &round;
            epoch_scope(
                threads,
                6,
                move |i| {
                    if i == 3 && round_ref.load(Ordering::Relaxed) == 5 {
                        panic!("contained boom");
                    }
                    hits_ref[i].fetch_add(1, Ordering::Relaxed);
                },
                |scope| {
                    for r in 0..10u64 {
                        round_ref.store(r, Ordering::Relaxed);
                        let result = scope.try_run_epoch();
                        if r == 5 {
                            let panic = result.expect_err("round 5 must report the panic");
                            assert_eq!(panic.failed_tasks(), 1);
                            assert_eq!(panic.messages(), vec!["contained boom".to_string()]);
                        } else {
                            result.expect("clean rounds must succeed");
                        }
                    }
                    assert_eq!(scope.rounds_run(), 10);
                },
            );
            for (i, h) in hits.iter().enumerate() {
                let expect = if i == 3 { 9 } else { 10 };
                assert_eq!(
                    h.load(Ordering::Relaxed),
                    expect,
                    "task {i} at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn contained_panics_collect_every_payload() {
        let panic = epoch_scope(
            4,
            8,
            |i| {
                if i % 2 == 0 {
                    panic!("boom {i}");
                }
            },
            |scope| scope.try_run_epoch().expect_err("half the tasks panic"),
        );
        assert_eq!(panic.failed_tasks(), 4);
        let mut messages = panic.messages();
        messages.sort();
        assert_eq!(messages, vec!["boom 0", "boom 2", "boom 4", "boom 6"]);
    }

    #[test]
    fn thread_count_env_override() {
        // Serialized with other env-touching tests by running in one test binary.
        std::env::set_var(THREADS_ENV, "3");
        assert_eq!(thread_count(), 3);
        std::env::set_var(THREADS_ENV, "not-a-number");
        assert!(thread_count() >= 1);
        std::env::set_var(THREADS_ENV, "0");
        assert!(thread_count() >= 1);
        std::env::remove_var(THREADS_ENV);
        assert!(thread_count() >= 1);
    }
}
