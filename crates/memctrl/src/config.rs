//! Memory-controller configuration.

use impress_core::config::ProtectionConfig;
use impress_dram::mapping::AddressMapping;
use impress_dram::organization::DramOrganization;
use impress_dram::timing::{Cycle, DramTimings};

/// Row-buffer management policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PagePolicy {
    /// Open-page: rows stay open until a conflict, a refresh, or (if set) the maximum
    /// row-open time `t_mro` expires. ExPress is open-page with `t_mro = Some(tMRO)`.
    Open {
        /// Maximum row-open time enforced by the controller, if any.
        t_mro: Option<Cycle>,
    },
    /// Closed-page: the row is precharged immediately after each access.
    Closed,
}

impl PagePolicy {
    /// The paper's baseline policy: open-page with no row-open limit.
    pub fn open() -> Self {
        PagePolicy::Open { t_mro: None }
    }

    /// Open-page with a maximum row-open time (ExPress).
    pub fn open_with_tmro(t_mro: Cycle) -> Self {
        PagePolicy::Open { t_mro: Some(t_mro) }
    }

    /// The effective row-open limit of this policy, if any.
    pub fn t_mro(&self) -> Option<Cycle> {
        match *self {
            PagePolicy::Open { t_mro } => t_mro,
            PagePolicy::Closed => None,
        }
    }
}

/// Full configuration of the memory controller.
#[derive(Debug, Clone)]
pub struct ControllerConfig {
    /// DRAM organization (channels, banks, rows).
    pub organization: DramOrganization,
    /// DRAM timing parameters.
    pub timings: DramTimings,
    /// Physical-to-DRAM address mapping.
    pub mapping: AddressMapping,
    /// Row-buffer policy. If a protection configuration with an ExPress defense is
    /// supplied, its tMRO is enforced automatically even if the policy does not set one.
    pub page_policy: PagePolicy,
    /// Rowhammer/Row-Press protection; `None` models a completely unprotected system.
    pub protection: Option<ProtectionConfig>,
    /// Whether the controller issues RFM commands every `rfm_threshold` activations
    /// (required by in-DRAM trackers; the paper's baseline system always does).
    pub rfm_enabled: bool,
    /// Idle-row timeout: an open-page controller precharges a row that has not been
    /// accessed for this many cycles (speculative closure, standard in adaptive
    /// open-page policies). `None` keeps rows open until a conflict or refresh.
    pub idle_row_timeout: Option<Cycle>,
}

impl ControllerConfig {
    /// The paper's baseline controller: Table II organization, DDR5 timings, MOP
    /// mapping, open-page policy, RFM enabled, no protection.
    pub fn baseline() -> Self {
        Self {
            organization: DramOrganization::baseline(),
            timings: DramTimings::ddr5(),
            mapping: AddressMapping::paper_default(),
            page_policy: PagePolicy::open(),
            protection: None,
            rfm_enabled: true,
            idle_row_timeout: Some(8 * DramTimings::ddr5().t_rc),
        }
    }

    /// A small configuration for unit tests (few banks, small rows).
    pub fn small_for_tests() -> Self {
        Self {
            organization: DramOrganization::small(),
            ..Self::baseline()
        }
    }

    /// Sets the protection configuration, automatically enforcing ExPress's tMRO in
    /// the page policy.
    pub fn with_protection(mut self, protection: ProtectionConfig) -> Self {
        if let impress_core::config::DefenseKind::Express { t_mro, .. } = protection.defense {
            self.page_policy = PagePolicy::open_with_tmro(t_mro);
        }
        self.protection = Some(protection);
        self
    }

    /// Sets the page policy (e.g. to sweep tMRO values in Figure 3).
    pub fn with_page_policy(mut self, policy: PagePolicy) -> Self {
        self.page_policy = policy;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use impress_core::config::{DefenseKind, TrackerChoice};

    #[test]
    fn baseline_matches_table2() {
        let cfg = ControllerConfig::baseline();
        assert_eq!(cfg.organization.channels, 2);
        assert_eq!(cfg.organization.banks_per_channel(), 64);
        assert!(cfg.rfm_enabled);
        assert_eq!(cfg.page_policy, PagePolicy::open());
    }

    #[test]
    fn express_protection_sets_tmro() {
        let timings = DramTimings::ddr5();
        let protection = ProtectionConfig::paper_default(
            TrackerChoice::Graphene,
            DefenseKind::express_paper_baseline(&timings),
        );
        let cfg = ControllerConfig::baseline().with_protection(protection);
        assert_eq!(cfg.page_policy.t_mro(), Some(timings.t_ras + timings.t_rc));
    }

    #[test]
    fn page_policy_helpers() {
        assert_eq!(PagePolicy::open().t_mro(), None);
        assert_eq!(PagePolicy::open_with_tmro(176).t_mro(), Some(176));
        assert_eq!(PagePolicy::Closed.t_mro(), None);
    }
}
