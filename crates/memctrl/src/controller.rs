//! The DDR5 memory controller model.
//!
//! The controller services one request at a time per bank (requests arrive in program
//! order from the system model), keeps rows open according to the configured page
//! policy, issues periodic REF and RFM commands, and routes every activation and row
//! closure through the per-bank [`BankMitigationEngine`] so that the deployed
//! Rowhammer/Row-Press defense sees exactly the events it would see in hardware.
//! Mitigative refreshes requested by memory-controller trackers occupy the bank for
//! four `tRC` (blast radius 2) before the pending demand activation proceeds.

use impress_core::engine::BankMitigationEngine;
use impress_dram::address::{DramAddress, PhysicalAddress};
use impress_dram::bank::{Bank, ClosedRow};
use impress_dram::error::DramError;
use impress_dram::refresh::RefreshScheduler;
use impress_dram::rfm::RfmCounter;
use impress_dram::stats::{BankStats, ChannelStats};
use impress_dram::timing::{Cycle, DramTimings};
use impress_trackers::MitigationRequest;

use crate::config::{ControllerConfig, PagePolicy};
use crate::request::{AccessOutcome, RowBufferOutcome};

/// Per-bank state: the DRAM bank plus its defense engine and RFM counter.
struct BankUnit {
    bank: Bank,
    engine: Option<BankMitigationEngine>,
    rfm: RfmCounter,
    /// Cycle of the last demand access serviced by this bank (for the idle-row timeout).
    last_use: Cycle,
    /// Reusable scratch for tracker mitigation requests, so the activation/closure
    /// hot path performs no allocation in steady state.
    mitigation_buf: Vec<MitigationRequest>,
}

impl std::fmt::Debug for BankUnit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BankUnit")
            .field("bank", &self.bank.index())
            .field("protected", &self.engine.is_some())
            .finish()
    }
}

impl BankUnit {
    /// Applies a batch of memory-controller mitigations (victim refreshes) starting at
    /// `from`, returning the cycle at which the bank becomes available again.
    fn apply_mc_mitigations(
        &mut self,
        requests: &[MitigationRequest],
        from: Cycle,
        timings: &DramTimings,
    ) -> Cycle {
        let mut t = from;
        for request in requests {
            // Blast radius 2: four victim rows, each refreshed with an ACT+PRE pair.
            let victims = request.victim_count(2, u32::MAX).max(1);
            for _ in 0..victims {
                // Each victim refresh bumps the bank's mitigative-activation counter.
                self.bank.victim_refresh(t, timings);
                t += timings.t_rc;
            }
        }
        t
    }

    /// Routes a row closure through the defense engine and applies any resulting
    /// mitigations immediately (they occupy the bank after the precharge).
    fn handle_closure(&mut self, closed: &ClosedRow, timings: &DramTimings) {
        let Some(engine) = self.engine.as_mut() else {
            return;
        };
        // Move the scratch buffer out so the engine and the bank can be borrowed in
        // sequence; `mem::take` leaves an empty (allocation-free) Vec behind.
        let mut requests = std::mem::take(&mut self.mitigation_buf);
        requests.clear();
        engine.on_close_into(closed, &mut requests);
        if !requests.is_empty() {
            self.apply_mc_mitigations(&requests, closed.closed_at + timings.t_pre, timings);
        }
        self.mitigation_buf = requests;
    }

    /// Gives the in-DRAM tracker its mitigation opportunity (under REF or RFM) and
    /// records the victim refreshes it performs (they are absorbed by the command's
    /// own execution time).
    fn in_dram_mitigation_opportunity(&mut self, now: Cycle) {
        let request = match self.engine.as_mut() {
            Some(engine) => engine.on_rfm(now),
            None => return,
        };
        if let Some(request) = request {
            let victims = request.victim_count(2, u32::MAX).max(1);
            self.bank.stats_mut().mitigative_activations += victims;
        }
    }

    /// Activates `row` at or after `earliest`, issuing any owed RFM first and applying
    /// tracker mitigations (which delay the demand activation). Returns the ACT cycle.
    fn activate(
        &mut self,
        row: impress_dram::address::RowId,
        earliest: Cycle,
        timings: &DramTimings,
        rfm_enabled: bool,
    ) -> Cycle {
        // Issue an owed RFM first: it blocks the bank for tRFM and gives the in-DRAM
        // tracker its mitigation window.
        if rfm_enabled && self.rfm.rfm_due() {
            let rfm_at = earliest.max(self.bank.busy_until());
            if let Some(closed) = self.bank.refresh_management(rfm_at, timings) {
                self.handle_closure(&closed, timings);
            }
            self.rfm.on_rfm_issued(rfm_at);
            self.in_dram_mitigation_opportunity(rfm_at);
        }

        let act_at = earliest.max(self.bank.next_act_allowed(timings));

        // Tell the defense about the activation; memory-controller trackers may request
        // mitigations, which the controller schedules right after the demand ACT (they
        // occupy the bank and delay *subsequent* accesses, not this one).
        let mut requests = std::mem::take(&mut self.mitigation_buf);
        requests.clear();
        if let Some(engine) = self.engine.as_mut() {
            engine.on_activate_into(row, act_at, &mut requests);
        }

        self.bank
            .activate(row, act_at, timings)
            .expect("activation time respects tRC by construction");

        if !requests.is_empty() {
            self.apply_mc_mitigations(&requests, act_at + timings.t_ras, timings);
        }
        self.mitigation_buf = requests;

        if rfm_enabled {
            self.rfm.on_activation();
        }
        act_at
    }
}

/// One memory channel: banks, refresh scheduling and a shared data bus.
#[derive(Debug)]
struct ChannelController {
    banks: Vec<BankUnit>,
    refresh: RefreshScheduler,
    /// Cycle until which the channel data bus is busy.
    bus_free: Cycle,
    /// Cycle until which all banks are blocked by an in-flight REF.
    refresh_block_until: Cycle,
    /// Time of the most recent demand ACT on this channel (for the tFAW/4 spacing rule).
    last_demand_act: Cycle,
    stats: ChannelStats,
}

/// The memory controller for the whole system (all channels).
#[derive(Debug)]
pub struct MemoryController {
    config: ControllerConfig,
    channels: Vec<ChannelController>,
    t_mro: Option<Cycle>,
}

impl MemoryController {
    /// Builds a controller (and its per-bank defense engines) from a configuration.
    pub fn new(config: ControllerConfig) -> Self {
        let timings = &config.timings;
        let banks_per_channel = config.organization.banks_per_channel();
        let rfm_threshold = config
            .protection
            .as_ref()
            .map(|p| p.effective_rfm_threshold(timings))
            .unwrap_or(80);
        let channels = (0..config.organization.channels)
            .map(|_| ChannelController {
                banks: (0..banks_per_channel)
                    .map(|i| BankUnit {
                        bank: Bank::new(i),
                        engine: config
                            .protection
                            .as_ref()
                            .map(|p| BankMitigationEngine::new(p, timings)),
                        rfm: RfmCounter::new(rfm_threshold),
                        last_use: 0,
                        mitigation_buf: Vec::with_capacity(8),
                    })
                    .collect(),
                refresh: RefreshScheduler::new(timings),
                bus_free: 0,
                refresh_block_until: 0,
                last_demand_act: 0,
                stats: ChannelStats::default(),
            })
            .collect();
        let t_mro = config.page_policy.t_mro();
        Self {
            config,
            channels,
            t_mro,
        }
    }

    /// The controller's configuration.
    pub fn config(&self) -> &ControllerConfig {
        &self.config
    }

    /// Services a demand access to a physical address arriving at `now`.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::AddressOutOfRange`] if the address does not decode under
    /// the configured organization.
    pub fn access_physical(
        &mut self,
        address: PhysicalAddress,
        is_write: bool,
        now: Cycle,
    ) -> Result<AccessOutcome, DramError> {
        let location = self
            .config
            .mapping
            .decode(address, &self.config.organization)?;
        Ok(self.access(location, is_write, now))
    }

    /// Services a demand access to an already-decoded DRAM location arriving at `now`.
    pub fn access(&mut self, location: DramAddress, is_write: bool, now: Cycle) -> AccessOutcome {
        let org = &self.config.organization;
        let flat_bank = location.flat_bank(org.banks_per_group, org.bank_groups);
        let timings = &self.config.timings;
        let t_mro = self.t_mro;
        let idle_timeout = self.config.idle_row_timeout;
        let closed_page = matches!(self.config.page_policy, PagePolicy::Closed);
        let rfm_enabled = self.config.rfm_enabled;
        let channel = &mut self.channels[location.channel as usize];

        // 1. Periodic refresh: issue any REF commands that have become due, back-dated
        //    to their due times (the channel was free when they became due).
        while let Some(due_at) = channel.refresh.take_due(now) {
            let refresh_at = due_at.max(channel.refresh_block_until);
            for unit in &mut channel.banks {
                if let Some(closed) = unit.bank.refresh(refresh_at, timings) {
                    unit.handle_closure(&closed, timings);
                }
                // In-DRAM trackers mitigate "under REF" (Appendix B) at no extra cost.
                unit.in_dram_mitigation_opportunity(refresh_at);
            }
            channel.refresh_block_until = refresh_at + timings.t_rfc;
        }

        let unit = &mut channel.banks[flat_bank];
        let earliest = now.max(channel.refresh_block_until);

        // 2. Enforce the maximum row-open time (ExPress) and the idle-row timeout: if
        //    the open row has exceeded either, the policy already closed it at the
        //    corresponding deadline.
        if let Some(opened_at) = unit.bank.opened_at() {
            let mut deadline = Cycle::MAX;
            if let Some(t_mro) = t_mro {
                deadline = deadline.min(opened_at + t_mro.max(timings.t_ras));
            }
            if let Some(timeout) = idle_timeout {
                deadline = deadline
                    .min(unit.last_use.max(opened_at).max(opened_at + timings.t_ras) + timeout);
            }
            if deadline != Cycle::MAX && earliest > deadline {
                let closed = unit
                    .bank
                    .precharge(deadline, timings)
                    .expect("policy closure is tRAS-legal by construction");
                unit.handle_closure(&closed, timings);
            }
        }

        // 3. Classify the access and compute its timing.
        let open_row = unit.bank.open_row();
        let (outcome, data_start) = match open_row {
            Some(row) if row == location.row => {
                unit.bank.stats_mut().row_hits += 1;
                (RowBufferOutcome::Hit, earliest)
            }
            Some(_) => {
                // Conflict: precharge the old row (respecting tRAS), then activate.
                let pre_at =
                    earliest.max(unit.bank.earliest_precharge(timings).unwrap_or(earliest));
                let closed = unit
                    .bank
                    .precharge(pre_at, timings)
                    .expect("precharge time respects tRAS");
                unit.handle_closure(&closed, timings);
                unit.bank.stats_mut().row_conflicts += 1;
                // The tFAW/4 spacing rule limits the channel's aggregate ACT rate.
                let act_ready =
                    (pre_at + timings.t_pre).max(channel.last_demand_act + timings.t_faw / 4);
                let act_at = unit.activate(location.row, act_ready, timings, rfm_enabled);
                channel.last_demand_act = act_at;
                (RowBufferOutcome::Conflict, act_at + timings.t_act)
            }
            None => {
                unit.bank.stats_mut().row_misses += 1;
                let act_ready = earliest.max(channel.last_demand_act + timings.t_faw / 4);
                let act_at = unit.activate(location.row, act_ready, timings, rfm_enabled);
                channel.last_demand_act = act_at;
                (RowBufferOutcome::Miss, act_at + timings.t_act)
            }
        };

        unit.bank
            .access(location.row, is_write, data_start)
            .expect("row is open at data_start by construction");

        // 4. Data transfer on the shared channel bus (CAS latency + burst).
        let bus_start = (data_start + timings.t_cas).max(channel.bus_free);
        let completed_at = bus_start + timings.t_burst;
        channel.bus_free = completed_at;

        // 5. Closed-page policy precharges immediately after the access.
        if closed_page {
            let pre_at = completed_at.max(
                unit.bank
                    .earliest_precharge(timings)
                    .unwrap_or(completed_at),
            );
            if let Ok(closed) = unit.bank.precharge(pre_at, timings) {
                unit.handle_closure(&closed, timings);
            }
        }

        unit.last_use = completed_at;
        channel.stats.requests += 1;
        channel.stats.total_latency += completed_at.saturating_sub(now);
        channel.stats.bus_busy_cycles += timings.t_burst;

        AccessOutcome {
            completed_at,
            outcome,
            location,
        }
    }

    /// Aggregated statistics across all channels and banks.
    pub fn stats(&self) -> ChannelStats {
        let mut total = ChannelStats::default();
        for channel in &self.channels {
            let mut per_channel = channel.stats;
            for unit in &channel.banks {
                per_channel.banks += *unit.bank.stats();
            }
            total.merge(&per_channel);
        }
        total
    }

    /// Total demand activations across the system.
    pub fn demand_activations(&self) -> u64 {
        self.stats().banks.activations
    }

    /// Total mitigative activations (victim refreshes) across the system.
    pub fn mitigative_activations(&self) -> u64 {
        self.stats().banks.mitigative_activations
    }

    /// Aggregated per-bank statistics (for the energy model).
    pub fn bank_stats(&self) -> BankStats {
        self.stats().banks
    }

    /// Total number of banks in the system.
    pub fn total_banks(&self) -> usize {
        self.config.organization.total_banks()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use impress_core::config::{DefenseKind, ProtectionConfig, TrackerChoice};

    fn decoded(cfg: &ControllerConfig, line: u64) -> DramAddress {
        cfg.mapping
            .decode(PhysicalAddress::new(line * 64), &cfg.organization)
            .unwrap()
    }

    #[test]
    fn sequential_lines_hit_in_the_row_buffer() {
        let cfg = ControllerConfig::small_for_tests();
        let mut mc = MemoryController::new(cfg.clone());
        // The first line of a MOP chunk misses, the next seven hit.
        let mut outcomes = Vec::new();
        let mut now = 0;
        for line in 0..8u64 {
            let o = mc.access(decoded(&cfg, line), false, now);
            now = o.completed_at;
            outcomes.push(o.outcome);
        }
        assert_eq!(outcomes[0], RowBufferOutcome::Miss);
        assert!(outcomes[1..].iter().all(|o| *o == RowBufferOutcome::Hit));
        let stats = mc.stats();
        assert_eq!(stats.banks.row_hits, 7);
        assert_eq!(stats.banks.row_misses, 1);
    }

    #[test]
    fn hits_are_faster_than_misses_and_conflicts() {
        let cfg = ControllerConfig::small_for_tests();
        let t = DramTimings::ddr5();
        let mut mc = MemoryController::new(cfg.clone());
        let base = 100_000u64;
        let miss = mc.access(decoded(&cfg, 0), false, base);
        let hit = mc.access(decoded(&cfg, 1), false, miss.completed_at + 10);
        // Conflict: another row in the same bank (512 lines away under MOP/small org).
        let conflict_line = 8 * cfg.organization.banks_per_channel() as u64 * 16;
        let conflict = mc.access(decoded(&cfg, conflict_line), false, hit.completed_at + 10);
        assert_eq!(
            conflict.location.flat_bank(
                cfg.organization.banks_per_group,
                cfg.organization.bank_groups
            ),
            miss.location.flat_bank(
                cfg.organization.banks_per_group,
                cfg.organization.bank_groups
            )
        );
        assert_eq!(conflict.outcome, RowBufferOutcome::Conflict);
        let miss_latency = miss.latency(base);
        let hit_latency = hit.latency(miss.completed_at + 10);
        let conflict_latency = conflict.latency(hit.completed_at + 10);
        assert!(
            hit_latency < miss_latency,
            "{hit_latency} !< {miss_latency}"
        );
        assert!(
            miss_latency < conflict_latency,
            "{miss_latency} !< {conflict_latency}"
        );
        assert!(hit_latency >= t.t_cas + t.t_burst);
    }

    #[test]
    fn tmro_converts_hits_into_misses() {
        let t = DramTimings::ddr5();
        let cfg = ControllerConfig::small_for_tests();
        let mut strict = MemoryController::new(
            cfg.clone()
                .with_page_policy(PagePolicy::open_with_tmro(t.t_ras)),
        );
        let mut relaxed = MemoryController::new(cfg.clone());
        // Two accesses to the same row separated by several tRC: with tMRO = tRAS the
        // row has been closed in between; without it the second access hits.
        let gap = 4 * t.t_rc;
        let a1 = strict.access(decoded(&cfg, 0), false, 0);
        let a2 = strict.access(decoded(&cfg, 1), false, a1.completed_at + gap);
        assert_eq!(a2.outcome, RowBufferOutcome::Miss);
        let b1 = relaxed.access(decoded(&cfg, 0), false, 0);
        let b2 = relaxed.access(decoded(&cfg, 1), false, b1.completed_at + gap);
        assert_eq!(b2.outcome, RowBufferOutcome::Hit);
    }

    #[test]
    fn closed_page_never_hits() {
        let cfg = ControllerConfig::small_for_tests().with_page_policy(PagePolicy::Closed);
        let mut mc = MemoryController::new(cfg.clone());
        let mut now = 0;
        for line in 0..8u64 {
            let o = mc.access(decoded(&cfg, line), false, now);
            now = o.completed_at + 10;
            assert_ne!(o.outcome, RowBufferOutcome::Hit);
        }
    }

    #[test]
    fn refresh_closes_rows_and_blocks_the_channel() {
        let t = DramTimings::ddr5();
        let cfg = ControllerConfig::small_for_tests();
        let mut mc = MemoryController::new(cfg.clone());
        let a = mc.access(decoded(&cfg, 0), false, 0);
        assert_eq!(a.outcome, RowBufferOutcome::Miss);
        // Jump past a tREFI: the refresh forces the row closed, so the next access to
        // the same row misses again.
        let b = mc.access(decoded(&cfg, 1), false, t.t_refi + 10);
        assert_eq!(b.outcome, RowBufferOutcome::Miss);
        assert!(mc.stats().banks.refreshes > 0);
    }

    #[test]
    fn para_protection_generates_mitigative_activations() {
        let cfg = ControllerConfig::small_for_tests();
        let protection =
            ProtectionConfig::paper_default(TrackerChoice::Para, DefenseKind::impress_p_default());
        let mut mc = MemoryController::new(cfg.clone().with_protection(protection));
        let mut now = 0;
        let total_lines = cfg.organization.capacity_bytes() / 64;
        for i in 0..20_000u64 {
            let line = (i * 64) % total_lines;
            let o = mc.access(decoded(&cfg, line), false, now);
            now = o.completed_at + 4;
        }
        let stats = mc.stats();
        assert!(stats.banks.mitigative_activations > 0);
        // PARA + ImPress-P mitigates with probability p×EACT per row closure (p = 1/184,
        // EACT of a few tRC for this access pattern), with 4 victim refreshes each.
        let rate = stats.banks.mitigative_activations as f64 / stats.banks.activations as f64;
        assert!(rate > 0.01 && rate < 0.15, "mitigation rate = {rate}");
    }

    #[test]
    fn unprotected_controller_has_no_mitigations() {
        let cfg = ControllerConfig::small_for_tests();
        let mut mc = MemoryController::new(cfg.clone());
        let mut now = 0;
        for i in 0..1_000u64 {
            let o = mc.access(decoded(&cfg, i * 64), false, now);
            now = o.completed_at + 2;
        }
        assert_eq!(mc.mitigative_activations(), 0);
        assert!(mc.demand_activations() > 0);
    }

    #[test]
    fn out_of_range_address_is_reported() {
        let cfg = ControllerConfig::small_for_tests();
        let mut mc = MemoryController::new(cfg.clone());
        let too_big = PhysicalAddress::new(cfg.organization.capacity_bytes() + 64);
        assert!(mc.access_physical(too_big, false, 0).is_err());
    }

    #[test]
    fn rfm_commands_are_issued_every_threshold_activations() {
        let cfg = ControllerConfig::small_for_tests();
        let protection = ProtectionConfig::paper_default(
            TrackerChoice::Mithril,
            DefenseKind::impress_p_default(),
        );
        let mut mc = MemoryController::new(cfg.clone().with_protection(protection));
        let mut now = 0;
        let total_lines = cfg.organization.capacity_bytes() / 64;
        // Alternate between two far-apart rows in the same bank: every access is an
        // activation, so 200 accesses cross the RFMTH = 80 boundary at least twice.
        for i in 0..200u64 {
            let line = ((i % 2) * 4096 + (i / 2) * 8192) % total_lines;
            let o = mc.access(decoded(&cfg, line), false, now);
            now = o.completed_at + 2;
        }
        let stats = mc.stats();
        assert!(
            stats.banks.rfm_commands >= 1,
            "rfm = {}",
            stats.banks.rfm_commands
        );
    }

    #[test]
    fn impress_p_close_events_reach_the_tracker() {
        // Keep one row open for a long time (no competing traffic), then conflict it
        // away: with Graphene + ImPress-P the closure contributes a large EACT, which
        // shows up as a few mitigative activations when repeated.
        let cfg = ControllerConfig::small_for_tests();
        let protection = ProtectionConfig::paper_default(
            TrackerChoice::Graphene,
            DefenseKind::impress_p_default(),
        );
        let t = DramTimings::ddr5();
        let mut mc = MemoryController::new(cfg.clone().with_protection(protection));
        let total_lines = cfg.organization.capacity_bytes() / 64;
        let mut now = 0;
        // Alternate between row A (kept open ~40 tRC) and row B in the same bank.
        for i in 0..2_000u64 {
            let line = if i % 2 == 0 { 0 } else { 8192 % total_lines };
            let o = mc.access(decoded(&cfg, line), false, now);
            now = o.completed_at + 40 * t.t_rc;
        }
        assert!(
            mc.mitigative_activations() > 0,
            "long row-open times should eventually trigger Graphene mitigations"
        );
    }
}
