//! The DDR5 memory controller: a thin router over per-channel [`ChannelShard`]s.
//!
//! All DRAM state-machine logic (row-buffer management, refresh, RFM, the per-bank
//! mitigation engines and the cost of mitigative refreshes) lives in
//! [`crate::shard::ChannelShard`]; the controller's job is to decode physical
//! addresses, route each request to the owning shard, and merge the per-shard
//! [`ChannelStats`] into system-wide totals. Keeping the router this thin is what
//! lets the system simulator take the shards apart (`into_parts`) and drive them on
//! separate workers between refresh epochs.

use impress_dram::address::{DramAddress, PhysicalAddress};
use impress_dram::error::DramError;
use impress_dram::stats::{BankStats, ChannelStats};
use impress_dram::timing::Cycle;

use crate::config::ControllerConfig;
use crate::request::AccessOutcome;
use crate::shard::ChannelShard;

/// The memory controller for the whole system: one [`ChannelShard`] per channel.
#[derive(Debug)]
pub struct MemoryController {
    config: ControllerConfig,
    shards: Vec<ChannelShard>,
}

impl MemoryController {
    /// Builds a controller (and its per-bank defense engines) from a configuration.
    pub fn new(config: ControllerConfig) -> Self {
        let shards = (0..config.organization.channels)
            .map(|index| ChannelShard::new(index, &config))
            .collect();
        Self { config, shards }
    }

    /// The controller's configuration.
    pub fn config(&self) -> &ControllerConfig {
        &self.config
    }

    /// The per-channel shards, in channel order (read-only: per-channel statistics
    /// and organization inspection). Mutation goes through [`Self::access`] or, for
    /// the epoch-phased loop, [`Self::into_parts`] — handing out `&mut` shards here
    /// would let callers reorder per-channel request streams and silently void the
    /// serial-equivalence guarantee.
    pub fn shards(&self) -> &[ChannelShard] {
        &self.shards
    }

    /// Decomposes the controller into its configuration and shards, the form the
    /// epoch-phased system loop needs to execute channels on separate workers.
    pub fn into_parts(self) -> (ControllerConfig, Vec<ChannelShard>) {
        (self.config, self.shards)
    }

    /// Services a demand access to a physical address arriving at `now`.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::AddressOutOfRange`] if the address does not decode under
    /// the configured organization.
    pub fn access_physical(
        &mut self,
        address: PhysicalAddress,
        is_write: bool,
        now: Cycle,
    ) -> Result<AccessOutcome, DramError> {
        let location = self
            .config
            .mapping
            .decode(address, &self.config.organization)?;
        Ok(self.access(location, is_write, now))
    }

    /// Services a demand access to an already-decoded DRAM location arriving at `now`.
    pub fn access(&mut self, location: DramAddress, is_write: bool, now: Cycle) -> AccessOutcome {
        self.shards[location.channel as usize].access(location, is_write, now)
    }

    /// Aggregated statistics across all channels and banks.
    pub fn stats(&self) -> ChannelStats {
        ChannelStats::merged(self.shards.iter().map(ChannelShard::stats))
    }

    /// Total demand activations across the system.
    pub fn demand_activations(&self) -> u64 {
        self.stats().banks.activations
    }

    /// Total mitigative activations (victim refreshes) across the system.
    pub fn mitigative_activations(&self) -> u64 {
        self.stats().banks.mitigative_activations
    }

    /// Aggregated per-bank statistics (for the energy model).
    pub fn bank_stats(&self) -> BankStats {
        self.stats().banks
    }

    /// Total number of banks in the system.
    pub fn total_banks(&self) -> usize {
        self.config.organization.total_banks()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PagePolicy;
    use crate::request::RowBufferOutcome;
    use impress_core::config::{DefenseKind, ProtectionConfig, TrackerChoice};
    use impress_dram::timing::DramTimings;

    fn decoded(cfg: &ControllerConfig, line: u64) -> DramAddress {
        cfg.mapping
            .decode(PhysicalAddress::new(line * 64), &cfg.organization)
            .unwrap()
    }

    #[test]
    fn sequential_lines_hit_in_the_row_buffer() {
        let cfg = ControllerConfig::small_for_tests();
        let mut mc = MemoryController::new(cfg.clone());
        // The first line of a MOP chunk misses, the next seven hit.
        let mut outcomes = Vec::new();
        let mut now = 0;
        for line in 0..8u64 {
            let o = mc.access(decoded(&cfg, line), false, now);
            now = o.completed_at;
            outcomes.push(o.outcome);
        }
        assert_eq!(outcomes[0], RowBufferOutcome::Miss);
        assert!(outcomes[1..].iter().all(|o| *o == RowBufferOutcome::Hit));
        let stats = mc.stats();
        assert_eq!(stats.banks.row_hits, 7);
        assert_eq!(stats.banks.row_misses, 1);
    }

    #[test]
    fn hits_are_faster_than_misses_and_conflicts() {
        let cfg = ControllerConfig::small_for_tests();
        let t = DramTimings::ddr5();
        let mut mc = MemoryController::new(cfg.clone());
        let base = 100_000u64;
        let miss = mc.access(decoded(&cfg, 0), false, base);
        let hit = mc.access(decoded(&cfg, 1), false, miss.completed_at + 10);
        // Conflict: another row in the same bank (512 lines away under MOP/small org).
        let conflict_line = 8 * cfg.organization.banks_per_channel() as u64 * 16;
        let conflict = mc.access(decoded(&cfg, conflict_line), false, hit.completed_at + 10);
        assert_eq!(
            conflict.location.flat_bank(
                cfg.organization.banks_per_group,
                cfg.organization.bank_groups
            ),
            miss.location.flat_bank(
                cfg.organization.banks_per_group,
                cfg.organization.bank_groups
            )
        );
        assert_eq!(conflict.outcome, RowBufferOutcome::Conflict);
        let miss_latency = miss.latency(base);
        let hit_latency = hit.latency(miss.completed_at + 10);
        let conflict_latency = conflict.latency(hit.completed_at + 10);
        assert!(
            hit_latency < miss_latency,
            "{hit_latency} !< {miss_latency}"
        );
        assert!(
            miss_latency < conflict_latency,
            "{miss_latency} !< {conflict_latency}"
        );
        assert!(hit_latency >= t.t_cas + t.t_burst);
    }

    #[test]
    fn tmro_converts_hits_into_misses() {
        let t = DramTimings::ddr5();
        let cfg = ControllerConfig::small_for_tests();
        let mut strict = MemoryController::new(
            cfg.clone()
                .with_page_policy(PagePolicy::open_with_tmro(t.t_ras)),
        );
        let mut relaxed = MemoryController::new(cfg.clone());
        // Two accesses to the same row separated by several tRC: with tMRO = tRAS the
        // row has been closed in between; without it the second access hits.
        let gap = 4 * t.t_rc;
        let a1 = strict.access(decoded(&cfg, 0), false, 0);
        let a2 = strict.access(decoded(&cfg, 1), false, a1.completed_at + gap);
        assert_eq!(a2.outcome, RowBufferOutcome::Miss);
        let b1 = relaxed.access(decoded(&cfg, 0), false, 0);
        let b2 = relaxed.access(decoded(&cfg, 1), false, b1.completed_at + gap);
        assert_eq!(b2.outcome, RowBufferOutcome::Hit);
    }

    #[test]
    fn closed_page_never_hits() {
        let cfg = ControllerConfig::small_for_tests().with_page_policy(PagePolicy::Closed);
        let mut mc = MemoryController::new(cfg.clone());
        let mut now = 0;
        for line in 0..8u64 {
            let o = mc.access(decoded(&cfg, line), false, now);
            now = o.completed_at + 10;
            assert_ne!(o.outcome, RowBufferOutcome::Hit);
        }
    }

    #[test]
    fn refresh_closes_rows_and_blocks_the_channel() {
        let t = DramTimings::ddr5();
        let cfg = ControllerConfig::small_for_tests();
        let mut mc = MemoryController::new(cfg.clone());
        let a = mc.access(decoded(&cfg, 0), false, 0);
        assert_eq!(a.outcome, RowBufferOutcome::Miss);
        // Jump past a tREFI: the refresh forces the row closed, so the next access to
        // the same row misses again.
        let b = mc.access(decoded(&cfg, 1), false, t.t_refi + 10);
        assert_eq!(b.outcome, RowBufferOutcome::Miss);
        assert!(mc.stats().banks.refreshes > 0);
    }

    #[test]
    fn para_protection_generates_mitigative_activations() {
        let cfg = ControllerConfig::small_for_tests();
        let protection =
            ProtectionConfig::paper_default(TrackerChoice::Para, DefenseKind::impress_p_default());
        let mut mc = MemoryController::new(cfg.clone().with_protection(protection));
        let mut now = 0;
        let total_lines = cfg.organization.capacity_bytes() / 64;
        for i in 0..20_000u64 {
            let line = (i * 64) % total_lines;
            let o = mc.access(decoded(&cfg, line), false, now);
            now = o.completed_at + 4;
        }
        let stats = mc.stats();
        assert!(stats.banks.mitigative_activations > 0);
        // PARA + ImPress-P mitigates with probability p×EACT per row closure (p = 1/184,
        // EACT of a few tRC for this access pattern), with 4 victim refreshes each.
        let rate = stats.banks.mitigative_activations as f64 / stats.banks.activations as f64;
        assert!(rate > 0.01 && rate < 0.15, "mitigation rate = {rate}");
    }

    #[test]
    fn unprotected_controller_has_no_mitigations() {
        let cfg = ControllerConfig::small_for_tests();
        let mut mc = MemoryController::new(cfg.clone());
        let mut now = 0;
        for i in 0..1_000u64 {
            let o = mc.access(decoded(&cfg, i * 64), false, now);
            now = o.completed_at + 2;
        }
        assert_eq!(mc.mitigative_activations(), 0);
        assert!(mc.demand_activations() > 0);
    }

    #[test]
    fn out_of_range_address_is_reported() {
        let cfg = ControllerConfig::small_for_tests();
        let mut mc = MemoryController::new(cfg.clone());
        let too_big = PhysicalAddress::new(cfg.organization.capacity_bytes() + 64);
        assert!(mc.access_physical(too_big, false, 0).is_err());
    }

    #[test]
    fn rfm_commands_are_issued_every_threshold_activations() {
        let cfg = ControllerConfig::small_for_tests();
        let protection = ProtectionConfig::paper_default(
            TrackerChoice::Mithril,
            DefenseKind::impress_p_default(),
        );
        let mut mc = MemoryController::new(cfg.clone().with_protection(protection));
        let mut now = 0;
        let total_lines = cfg.organization.capacity_bytes() / 64;
        // Alternate between two far-apart rows in the same bank: every access is an
        // activation, so 200 accesses cross the RFMTH = 80 boundary at least twice.
        for i in 0..200u64 {
            let line = ((i % 2) * 4096 + (i / 2) * 8192) % total_lines;
            let o = mc.access(decoded(&cfg, line), false, now);
            now = o.completed_at + 2;
        }
        let stats = mc.stats();
        assert!(
            stats.banks.rfm_commands >= 1,
            "rfm = {}",
            stats.banks.rfm_commands
        );
    }

    #[test]
    fn impress_p_close_events_reach_the_tracker() {
        // Keep one row open for a long time (no competing traffic), then conflict it
        // away: with Graphene + ImPress-P the closure contributes a large EACT, which
        // shows up as a few mitigative activations when repeated.
        let cfg = ControllerConfig::small_for_tests();
        let protection = ProtectionConfig::paper_default(
            TrackerChoice::Graphene,
            DefenseKind::impress_p_default(),
        );
        let t = DramTimings::ddr5();
        let mut mc = MemoryController::new(cfg.clone().with_protection(protection));
        let total_lines = cfg.organization.capacity_bytes() / 64;
        let mut now = 0;
        // Alternate between row A (kept open ~40 tRC) and row B in the same bank.
        for i in 0..2_000u64 {
            let line = if i % 2 == 0 { 0 } else { 8192 % total_lines };
            let o = mc.access(decoded(&cfg, line), false, now);
            now = o.completed_at + 40 * t.t_rc;
        }
        assert!(
            mc.mitigative_activations() > 0,
            "long row-open times should eventually trigger Graphene mitigations"
        );
    }
}
