//! DDR5 memory-controller model for the ImPress reproduction.
//!
//! The controller sits between the system simulator (`impress_sim`) and the DRAM
//! device model ([`impress_dram`]):
//!
//! * per-bank row-buffer management with open-page, closed-page, or open-page with a
//!   maximum row-open time (the ExPress tMRO knob swept in Figure 3) — [`config`];
//! * a self-contained per-channel unit of concurrency carrying banks, refresh, the
//!   data bus, per-channel statistics and the channel's slice of defense/tracker
//!   state — [`shard`];
//! * a thin routing layer that decodes addresses, forwards each request to its
//!   [`ChannelShard`] and merges per-shard statistics — [`controller`];
//! * RFM issue every `RFMTH` activations, giving in-DRAM trackers their mitigation
//!   window;
//! * integration of the per-bank [`impress_core::BankMitigationEngine`], including the
//!   cost of mitigative victim refreshes requested by memory-controller trackers.
//!
//! The model is request-ordered rather than cycle-stepped: the system model presents
//! demand accesses in (approximate) program order and the controller computes each
//! access's completion time from the bank, bus and refresh state. This keeps full-
//! workload simulations fast while preserving the quantities the paper's figures depend
//! on: row-hit rates, activation counts, mitigation counts and queuing latency.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod controller;
pub mod request;
pub mod shard;

pub use config::{ControllerConfig, PagePolicy};
pub use controller::MemoryController;
pub use request::{AccessOutcome, MemRequest, RowBufferOutcome};
pub use shard::ChannelShard;
