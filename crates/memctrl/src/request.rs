//! Memory-request and access-outcome types.

use impress_dram::address::{DramAddress, PhysicalAddress};
use impress_dram::timing::Cycle;

/// A demand memory request from a core (an LLC miss or write-back).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRequest {
    /// Physical address of the cache line.
    pub address: PhysicalAddress,
    /// Whether the request is a write-back.
    pub is_write: bool,
    /// Issuing core (for statistics only).
    pub core: u8,
    /// Cycle at which the request reaches the memory controller.
    pub arrival: Cycle,
}

/// How the request interacted with the row buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RowBufferOutcome {
    /// The target row was already open.
    Hit,
    /// The bank was idle (or the row had been closed by the policy); one ACT was needed.
    Miss,
    /// A different row was open; a PRE + ACT pair was needed.
    Conflict,
}

/// The controller's response to a demand request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Cycle at which the data transfer completes.
    pub completed_at: Cycle,
    /// Row-buffer behaviour of the access.
    pub outcome: RowBufferOutcome,
    /// The DRAM location the request mapped to.
    pub location: DramAddress,
}

impl AccessOutcome {
    /// Latency from `arrival` to completion.
    pub fn latency(&self, arrival: Cycle) -> Cycle {
        self.completed_at.saturating_sub(arrival)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_is_relative_to_arrival() {
        let o = AccessOutcome {
            completed_at: 150,
            outcome: RowBufferOutcome::Hit,
            location: DramAddress::default(),
        };
        assert_eq!(o.latency(100), 50);
        assert_eq!(o.latency(200), 0);
    }
}
