//! A self-contained, single-channel slice of the memory controller.
//!
//! [`ChannelShard`] packages everything the controller keeps per channel — the banks
//! (each with its own slice of defense/tracker state via the per-bank
//! [`BankMitigationEngine`]), the refresh scheduler, the shared data bus, the
//! tFAW-derived activation spacing state, and per-channel [`ChannelStats`] — behind
//! one `access` entry point. Shards of one controller share no mutable state, which
//! makes the channel the natural unit of concurrency: `impress_sim`'s epoch-phased
//! run loop executes the shards of a multi-channel system on different workers and
//! still produces bit-for-bit the same result as a serial run, because each shard
//! sees exactly the same request sequence either way.
//!
//! [`crate::MemoryController`] is a thin router over a `Vec<ChannelShard>`; all the
//! DRAM state-machine logic lives here.

use impress_core::engine::BankMitigationEngine;
use impress_dram::address::{DramAddress, RowId};
use impress_dram::bank::{Bank, ClosedRow};
use impress_dram::refresh::RefreshScheduler;
use impress_dram::rfm::RfmCounter;
use impress_dram::stats::ChannelStats;
use impress_dram::timing::{Cycle, DramTimings};
use impress_trackers::MitigationRequest;

use crate::config::{ControllerConfig, PagePolicy};
use crate::request::{AccessOutcome, RowBufferOutcome};

/// Per-bank state: the DRAM bank plus its defense engine and RFM counter.
struct BankUnit {
    bank: Bank,
    engine: Option<BankMitigationEngine>,
    rfm: RfmCounter,
    /// Cycle of the last demand access serviced by this bank (for the idle-row timeout).
    last_use: Cycle,
    /// Reusable scratch for tracker mitigation requests, so the activation/closure
    /// hot path performs no allocation in steady state.
    mitigation_buf: Vec<MitigationRequest>,
}

impl std::fmt::Debug for BankUnit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BankUnit")
            .field("bank", &self.bank.index())
            .field("protected", &self.engine.is_some())
            .finish()
    }
}

impl BankUnit {
    /// Applies a batch of memory-controller mitigations (victim refreshes) starting at
    /// `from`, returning the cycle at which the bank becomes available again.
    fn apply_mc_mitigations(
        &mut self,
        requests: &[MitigationRequest],
        from: Cycle,
        timings: &DramTimings,
    ) -> Cycle {
        let mut t = from;
        for request in requests {
            // Blast radius 2: four victim rows, each refreshed with an ACT+PRE pair.
            let victims = request.victim_count(2, u32::MAX).max(1);
            for _ in 0..victims {
                // Each victim refresh bumps the bank's mitigative-activation counter.
                self.bank.victim_refresh(t, timings);
                t += timings.t_rc;
            }
        }
        t
    }

    /// Routes a row closure through the defense engine and applies any resulting
    /// mitigations immediately (they occupy the bank after the precharge).
    fn handle_closure(&mut self, closed: &ClosedRow, timings: &DramTimings) {
        let Some(engine) = self.engine.as_mut() else {
            return;
        };
        // Move the scratch buffer out so the engine and the bank can be borrowed in
        // sequence; `mem::take` leaves an empty (allocation-free) Vec behind.
        let mut requests = std::mem::take(&mut self.mitigation_buf);
        requests.clear();
        engine.on_close_into(closed, &mut requests);
        if !requests.is_empty() {
            self.apply_mc_mitigations(&requests, closed.closed_at + timings.t_pre, timings);
        }
        self.mitigation_buf = requests;
    }

    /// Gives the in-DRAM tracker its mitigation opportunity (under REF or RFM) and
    /// records the victim refreshes it performs (they are absorbed by the command's
    /// own execution time).
    fn in_dram_mitigation_opportunity(&mut self, now: Cycle) {
        let request = match self.engine.as_mut() {
            Some(engine) => engine.on_rfm(now),
            None => return,
        };
        if let Some(request) = request {
            let victims = request.victim_count(2, u32::MAX).max(1);
            self.bank.stats_mut().mitigative_activations += victims;
        }
    }

    /// Activates `row` at or after `earliest`, issuing any owed RFM first and applying
    /// tracker mitigations (which delay the demand activation). Returns the ACT cycle.
    fn activate(
        &mut self,
        row: RowId,
        earliest: Cycle,
        timings: &DramTimings,
        rfm_enabled: bool,
    ) -> Cycle {
        // Issue an owed RFM first: it blocks the bank for tRFM and gives the in-DRAM
        // tracker its mitigation window.
        if rfm_enabled && self.rfm.rfm_due() {
            let rfm_at = earliest.max(self.bank.busy_until());
            if let Some(closed) = self.bank.refresh_management(rfm_at, timings) {
                self.handle_closure(&closed, timings);
            }
            self.rfm.on_rfm_issued(rfm_at);
            self.in_dram_mitigation_opportunity(rfm_at);
        }

        let act_at = earliest.max(self.bank.next_act_allowed(timings));

        // Tell the defense about the activation; memory-controller trackers may request
        // mitigations, which the controller schedules right after the demand ACT (they
        // occupy the bank and delay *subsequent* accesses, not this one).
        let mut requests = std::mem::take(&mut self.mitigation_buf);
        requests.clear();
        if let Some(engine) = self.engine.as_mut() {
            engine.on_activate_into(row, act_at, &mut requests);
        }

        self.bank
            .activate(row, act_at, timings)
            .expect("activation time respects tRC by construction");

        if !requests.is_empty() {
            self.apply_mc_mitigations(&requests, act_at + timings.t_ras, timings);
        }
        self.mitigation_buf = requests;

        if rfm_enabled {
            self.rfm.on_activation();
        }
        act_at
    }
}

/// One memory channel as an independent unit of concurrency: banks (with their
/// per-bank defense/tracker engines), refresh scheduling, the shared data bus, and
/// per-channel statistics.
///
/// A shard carries a private copy of the timing/policy parameters it needs, so it can
/// be moved to a worker thread without borrowing the controller configuration.
/// Accesses must be presented in the same order a serial controller would see them
/// (non-decreasing `now` per channel); under that contract the shard's evolution is a
/// pure function of its request sequence, independent of what other channels do.
#[derive(Debug)]
pub struct ChannelShard {
    index: u8,
    timings: DramTimings,
    t_mro: Option<Cycle>,
    idle_row_timeout: Option<Cycle>,
    closed_page: bool,
    rfm_enabled: bool,
    banks_per_group: u8,
    bank_groups: u8,
    banks: Vec<BankUnit>,
    refresh: RefreshScheduler,
    /// Cycle until which the channel data bus is busy.
    bus_free: Cycle,
    /// Cycle until which all banks are blocked by an in-flight REF.
    refresh_block_until: Cycle,
    /// Time of the most recent demand ACT on this channel (for the tFAW/4 spacing rule).
    last_demand_act: Cycle,
    stats: ChannelStats,
}

impl ChannelShard {
    /// Builds the shard for channel `index` of a controller configuration, including
    /// its slice of the defense/tracker state (one engine per bank).
    pub fn new(index: u8, config: &ControllerConfig) -> Self {
        let timings = &config.timings;
        let banks_per_channel = config.organization.banks_per_channel();
        let rfm_threshold = config
            .protection
            .as_ref()
            .map(|p| p.effective_rfm_threshold(timings))
            .unwrap_or(80);
        let banks = (0..banks_per_channel)
            .map(|i| BankUnit {
                bank: Bank::new(i),
                engine: config
                    .protection
                    .as_ref()
                    .map(|p| BankMitigationEngine::new(p, timings)),
                rfm: RfmCounter::new(rfm_threshold),
                last_use: 0,
                mitigation_buf: Vec::with_capacity(8),
            })
            .collect();
        Self {
            index,
            timings: timings.clone(),
            t_mro: config.page_policy.t_mro(),
            idle_row_timeout: config.idle_row_timeout,
            closed_page: matches!(config.page_policy, PagePolicy::Closed),
            rfm_enabled: config.rfm_enabled,
            banks_per_group: config.organization.banks_per_group,
            bank_groups: config.organization.bank_groups,
            banks,
            refresh: RefreshScheduler::new(timings),
            bus_free: 0,
            refresh_block_until: 0,
            last_demand_act: 0,
            stats: ChannelStats::default(),
        }
    }

    /// The channel this shard models.
    pub fn channel_index(&self) -> u8 {
        self.index
    }

    /// Number of banks in this channel.
    pub fn bank_count(&self) -> usize {
        self.banks.len()
    }

    /// The shard's private copy of the DRAM timing parameters.
    pub fn timings(&self) -> &DramTimings {
        &self.timings
    }

    /// Guaranteed lower bound on the latency of any demand access serviced by a
    /// shard: the data transfer alone takes `tCAS + tBURST` after arrival.
    ///
    /// This per-access bound is the contract the epoch-phased run loop's
    /// dependency-bounded horizons are built on: an access issued at `t` cannot
    /// complete before `t + min_access_latency`, so a core whose MLP window is
    /// full of not-yet-executed issues provably cannot issue again before its
    /// oldest pending issue time plus this latency. (The PR 3 fixed-window loop
    /// used the same bound globally — no completion inside a window of this
    /// length; the adaptive loop needs it per access.) [`ChannelShard::access`]
    /// asserts the bound on every outcome in debug builds.
    pub fn min_access_latency(timings: &DramTimings) -> Cycle {
        (timings.t_cas + timings.t_burst).max(1)
    }

    /// Guaranteed minimum spacing between consecutive demand-access completions
    /// on one channel: the data bus is serialized, so each completion occupies it
    /// for `tBURST` and the next completion cannot land earlier than that.
    ///
    /// Together with [`ChannelShard::min_access_latency`] this gives the
    /// epoch-phased run loop a *conveyor* lower bound: the `k`-th access queued on
    /// a channel whose last known completion is `C` cannot complete before
    /// `C + k * min_completion_spacing`. Under load that bound reaches far beyond
    /// the per-access latency bound (the channel has a backlog of bus slots), and
    /// it is what lets the adaptive horizon keep cores provably exact while they
    /// drain deep MLP windows. Asserted per access in debug builds.
    pub fn min_completion_spacing(timings: &DramTimings) -> Cycle {
        timings.t_burst
    }

    /// Services a demand access to `location` arriving at `now`.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if `location.channel` does not match this shard.
    pub fn access(&mut self, location: DramAddress, is_write: bool, now: Cycle) -> AccessOutcome {
        debug_assert_eq!(
            location.channel, self.index,
            "request routed to the wrong channel shard"
        );
        let flat_bank = location.flat_bank(self.banks_per_group, self.bank_groups);
        let timings = &self.timings;

        // 1. Periodic refresh: issue any REF commands that have become due, back-dated
        //    to their due times (the channel was free when they became due).
        while let Some(due_at) = self.refresh.take_due(now) {
            let refresh_at = due_at.max(self.refresh_block_until);
            for unit in &mut self.banks {
                if let Some(closed) = unit.bank.refresh(refresh_at, timings) {
                    unit.handle_closure(&closed, timings);
                }
                // In-DRAM trackers mitigate "under REF" (Appendix B) at no extra cost.
                unit.in_dram_mitigation_opportunity(refresh_at);
            }
            self.refresh_block_until = refresh_at + timings.t_rfc;
        }

        let unit = &mut self.banks[flat_bank];
        let earliest = now.max(self.refresh_block_until);

        // 2. Enforce the maximum row-open time (ExPress) and the idle-row timeout: if
        //    the open row has exceeded either, the policy already closed it at the
        //    corresponding deadline.
        if let Some(opened_at) = unit.bank.opened_at() {
            let mut deadline = Cycle::MAX;
            if let Some(t_mro) = self.t_mro {
                deadline = deadline.min(opened_at + t_mro.max(timings.t_ras));
            }
            if let Some(timeout) = self.idle_row_timeout {
                deadline = deadline
                    .min(unit.last_use.max(opened_at).max(opened_at + timings.t_ras) + timeout);
            }
            if deadline != Cycle::MAX && earliest > deadline {
                let closed = unit
                    .bank
                    .precharge(deadline, timings)
                    .expect("policy closure is tRAS-legal by construction");
                unit.handle_closure(&closed, timings);
            }
        }

        // 3. Classify the access and compute its timing.
        let open_row = unit.bank.open_row();
        let (outcome, data_start) = match open_row {
            Some(row) if row == location.row => {
                unit.bank.stats_mut().row_hits += 1;
                (RowBufferOutcome::Hit, earliest)
            }
            Some(_) => {
                // Conflict: precharge the old row (respecting tRAS), then activate.
                let pre_at =
                    earliest.max(unit.bank.earliest_precharge(timings).unwrap_or(earliest));
                let closed = unit
                    .bank
                    .precharge(pre_at, timings)
                    .expect("precharge time respects tRAS");
                unit.handle_closure(&closed, timings);
                unit.bank.stats_mut().row_conflicts += 1;
                // The tFAW/4 spacing rule limits the channel's aggregate ACT rate.
                let act_ready =
                    (pre_at + timings.t_pre).max(self.last_demand_act + timings.t_faw / 4);
                let act_at = unit.activate(location.row, act_ready, timings, self.rfm_enabled);
                self.last_demand_act = act_at;
                (RowBufferOutcome::Conflict, act_at + timings.t_act)
            }
            None => {
                unit.bank.stats_mut().row_misses += 1;
                let act_ready = earliest.max(self.last_demand_act + timings.t_faw / 4);
                let act_at = unit.activate(location.row, act_ready, timings, self.rfm_enabled);
                self.last_demand_act = act_at;
                (RowBufferOutcome::Miss, act_at + timings.t_act)
            }
        };

        unit.bank
            .access(location.row, is_write, data_start)
            .expect("row is open at data_start by construction");

        // 4. Data transfer on the shared channel bus (CAS latency + burst).
        let bus_start = (data_start + timings.t_cas).max(self.bus_free);
        let completed_at = bus_start + timings.t_burst;
        debug_assert!(
            completed_at >= self.bus_free + Self::min_completion_spacing(timings),
            "completion at {completed_at} inside the bus conveyor bound \
             (previous completion {}, spacing {})",
            self.bus_free,
            Self::min_completion_spacing(timings)
        );
        self.bus_free = completed_at;

        // 5. Closed-page policy precharges immediately after the access.
        if self.closed_page {
            let pre_at = completed_at.max(
                unit.bank
                    .earliest_precharge(timings)
                    .unwrap_or(completed_at),
            );
            if let Ok(closed) = unit.bank.precharge(pre_at, timings) {
                unit.handle_closure(&closed, timings);
            }
        }

        unit.last_use = completed_at;
        self.stats.requests += 1;
        self.stats.total_latency += completed_at.saturating_sub(now);
        self.stats.bus_busy_cycles += timings.t_burst;

        debug_assert!(
            completed_at >= now + Self::min_access_latency(timings),
            "access at {now} completed at {completed_at}, inside the published \
             per-access latency lower bound"
        );
        AccessOutcome {
            completed_at,
            outcome,
            location,
        }
    }

    /// Enables or disables the bank-batched tracker record path on every
    /// protected bank (see [`BankMitigationEngine::set_record_batching`]).
    /// Disabling flushes any staged events first.
    pub fn set_record_batching(&mut self, on: bool) {
        for unit in &mut self.banks {
            if let Some(engine) = unit.engine.as_mut() {
                engine.set_record_batching(on);
            }
        }
    }

    /// Flushes staged tracked events on every protected bank. Call before
    /// reading tracker state or merging final statistics; window-boundary and
    /// RFM flushes happen automatically inside the engines.
    pub fn flush_staged_records(&mut self) {
        for unit in &mut self.banks {
            if let Some(engine) = unit.engine.as_mut() {
                engine.flush_staged();
            }
        }
    }

    /// This shard's statistics: the per-channel counters plus the sum of its banks'
    /// counters (ready to be merged across shards with [`ChannelStats::merged`]).
    pub fn stats(&self) -> ChannelStats {
        let mut out = self.stats;
        for unit in &self.banks {
            out.banks += *unit.bank.stats();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use impress_dram::address::PhysicalAddress;

    fn decoded(cfg: &ControllerConfig, line: u64) -> DramAddress {
        cfg.mapping
            .decode(PhysicalAddress::new(line * 64), &cfg.organization)
            .unwrap()
    }

    #[test]
    fn shard_services_accesses_standalone() {
        let cfg = ControllerConfig::small_for_tests();
        let mut shard = ChannelShard::new(0, &cfg);
        let mut now = 0;
        let mut outcomes = Vec::new();
        for line in 0..8u64 {
            let o = shard.access(decoded(&cfg, line), false, now);
            now = o.completed_at;
            outcomes.push(o.outcome);
        }
        assert_eq!(outcomes[0], RowBufferOutcome::Miss);
        assert!(outcomes[1..].iter().all(|o| *o == RowBufferOutcome::Hit));
        let stats = shard.stats();
        assert_eq!(stats.requests, 8);
        assert_eq!(stats.banks.row_hits, 7);
    }

    #[test]
    fn min_access_latency_bounds_every_outcome() {
        let cfg = ControllerConfig::small_for_tests();
        let lat = ChannelShard::min_access_latency(&cfg.timings);
        assert!(lat > 0);
        let mut shard = ChannelShard::new(0, &cfg);
        let mut now = 12_345;
        for line in 0..64u64 {
            let o = shard.access(decoded(&cfg, line * 17 % 512), line % 3 == 0, now);
            assert!(
                o.completed_at >= now + lat,
                "access at {now} completed at {} < now + {lat}",
                o.completed_at
            );
            now = o.completed_at + (line % 5);
        }
    }

    #[test]
    fn shard_matches_whole_controller_on_single_channel_config() {
        // With one channel, a standalone shard must reproduce the controller exactly.
        let cfg = ControllerConfig::small_for_tests();
        let mut shard = ChannelShard::new(0, &cfg);
        let mut mc = crate::MemoryController::new(cfg.clone());
        let mut now = 0;
        for i in 0..2_000u64 {
            let line = (i * 29) % (cfg.organization.capacity_bytes() / 64);
            let a = shard.access(decoded(&cfg, line), i % 7 == 0, now);
            let b = mc.access(decoded(&cfg, line), i % 7 == 0, now);
            assert_eq!(a, b);
            now = a.completed_at + 3;
        }
        assert_eq!(shard.stats(), mc.stats());
    }
}
