//! System configuration (Table II of the paper).

use impress_memctrl::ControllerConfig;

/// Configuration of the multi-core system model.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Number of cores (Table II: 8 out-of-order cores).
    pub cores: usize,
    /// Reorder-buffer size per core (Table II: 352).
    pub rob_size: u32,
    /// Instructions the core can retire per DRAM clock cycle when not stalled on
    /// memory. The paper's cores are 6-wide at 4 GHz; at a realistic IPC of ~2.7 this
    /// is ~4 instructions per 2.666 GHz DRAM cycle.
    pub retire_per_dram_cycle: f64,
    /// Maximum outstanding LLC misses per core (memory-level parallelism cap, bounded
    /// by MSHRs in real hardware).
    pub max_mlp: usize,
    /// Number of LLC-miss requests each core issues in one simulation run.
    pub requests_per_core: u64,
    /// Memory-controller configuration (organization, timings, mapping, protection).
    pub controller: ControllerConfig,
}

impl SystemConfig {
    /// The paper's baseline system (Table II) with the default simulation length.
    pub fn baseline() -> Self {
        Self {
            cores: 8,
            rob_size: 352,
            retire_per_dram_cycle: 4.0,
            max_mlp: 12,
            requests_per_core: default_requests_per_core(),
            controller: ControllerConfig::baseline(),
        }
    }

    /// Replaces the controller configuration (used to sweep defenses and policies).
    pub fn with_controller(mut self, controller: ControllerConfig) -> Self {
        self.controller = controller;
        self
    }

    /// Per-core memory-level parallelism for a workload with the given MPKI: the ROB
    /// can hold `rob_size × MPKI / 1000` misses, capped at `max_mlp`.
    pub fn mlp_for_mpki(&self, mpki: f64) -> usize {
        let in_rob = (f64::from(self.rob_size) * mpki / 1000.0).floor() as usize;
        in_rob.clamp(1, self.max_mlp)
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::baseline()
    }
}

/// The default number of requests each core issues per run.
///
/// The paper simulates 200 M instructions per workload on ChampSim; this model defaults
/// to a smaller, statistically stable run so the full figure suite finishes in minutes.
/// Set the `IMPRESS_SCALE` environment variable to scale the run length (e.g.
/// `IMPRESS_SCALE=4` quadruples it).
pub fn default_requests_per_core() -> u64 {
    let base = 40_000u64;
    match std::env::var("IMPRESS_SCALE") {
        Ok(v) => {
            let scale: f64 = v.parse().unwrap_or(1.0);
            ((base as f64) * scale.clamp(0.05, 1000.0)) as u64
        }
        Err(_) => base,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table2() {
        let cfg = SystemConfig::baseline();
        assert_eq!(cfg.cores, 8);
        assert_eq!(cfg.rob_size, 352);
        assert_eq!(cfg.controller.organization.channels, 2);
    }

    #[test]
    fn mlp_scales_with_memory_intensity() {
        let cfg = SystemConfig::baseline();
        // gcc-like (6 MPKI) has little MLP; STREAM-like (100 MPKI) saturates the cap.
        assert_eq!(cfg.mlp_for_mpki(6.0), 2);
        assert_eq!(cfg.mlp_for_mpki(100.0), cfg.max_mlp);
        assert_eq!(cfg.mlp_for_mpki(0.1), 1);
    }

    #[test]
    fn default_run_length_is_positive() {
        assert!(default_requests_per_core() > 0);
    }
}
