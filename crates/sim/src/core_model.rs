//! A throughput-oriented core model.
//!
//! Each core alternates between executing instructions (at a fixed retire rate) and
//! waiting for LLC misses. The core may have up to `mlp` misses outstanding — the
//! memory-level parallelism permitted by its reorder buffer — and stalls when the
//! window is full. This is the standard analytical abstraction of an out-of-order core
//! for memory-system studies: absolute IPC is approximate, but the *sensitivity* of
//! performance to memory latency and bandwidth (which is what the paper's figures
//! normalize away) is captured.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use impress_dram::timing::Cycle;

/// The state of one simulated core.
#[derive(Debug)]
pub struct CoreModel {
    id: usize,
    /// Cycles of compute between consecutive LLC misses.
    think_gap: f64,
    /// Maximum outstanding misses.
    mlp: usize,
    /// Completion times of outstanding misses.
    outstanding: BinaryHeap<Reverse<Cycle>>,
    /// Cycle at which the core's front-end is ready to issue its next miss.
    front_end_ready: f64,
    /// Number of misses issued so far.
    issued: u64,
    /// Completion time of the latest miss to retire.
    last_completion: Cycle,
}

impl CoreModel {
    /// Creates a core with the given inter-miss compute time and MLP limit.
    ///
    /// # Panics
    ///
    /// Panics if `mlp` is zero or `think_gap` is negative.
    pub fn new(id: usize, think_gap: f64, mlp: usize) -> Self {
        assert!(mlp > 0, "MLP must be at least 1");
        assert!(think_gap >= 0.0, "think gap cannot be negative");
        Self {
            id,
            think_gap,
            mlp,
            outstanding: BinaryHeap::new(),
            front_end_ready: 0.0,
            issued: 0,
            last_completion: 0,
        }
    }

    /// Core identifier.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Number of misses issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// The earliest cycle at which this core can issue its next miss: the front end
    /// must be ready, and if the MLP window is full the oldest outstanding miss must
    /// retire first.
    pub fn next_issue_time(&self) -> Cycle {
        let front_end = self.front_end_ready.ceil() as Cycle;
        if self.outstanding.len() >= self.mlp {
            let oldest = self.outstanding.peek().map(|Reverse(t)| *t).unwrap_or(0);
            front_end.max(oldest)
        } else {
            front_end
        }
    }

    /// Records that a miss was issued at `now` and will complete at `completes_at`.
    pub fn on_issue(&mut self, now: Cycle, completes_at: Cycle) {
        // Retire everything that has completed by now.
        while let Some(Reverse(t)) = self.outstanding.peek() {
            if *t <= now {
                self.outstanding.pop();
            } else {
                break;
            }
        }
        self.outstanding.push(Reverse(completes_at));
        self.issued += 1;
        self.last_completion = self.last_completion.max(completes_at);
        self.front_end_ready = (now as f64).max(self.front_end_ready) + self.think_gap;
    }

    /// The cycle at which this core finishes all the work it has issued.
    pub fn finish_time(&self) -> Cycle {
        self.last_completion
            .max(self.front_end_ready.ceil() as Cycle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn issues_are_spaced_by_think_gap_when_unconstrained() {
        let mut core = CoreModel::new(0, 10.0, 4);
        assert_eq!(core.next_issue_time(), 0);
        core.on_issue(0, 5);
        assert_eq!(core.next_issue_time(), 10);
        core.on_issue(10, 15);
        assert_eq!(core.next_issue_time(), 20);
    }

    #[test]
    fn mlp_limit_stalls_the_core() {
        let mut core = CoreModel::new(0, 1.0, 2);
        core.on_issue(0, 100);
        core.on_issue(1, 200);
        // Window full: the next issue waits for the oldest completion (cycle 100).
        assert_eq!(core.next_issue_time(), 100);
        core.on_issue(100, 300);
        assert_eq!(core.issued(), 3);
    }

    #[test]
    fn finish_time_covers_all_outstanding_work() {
        let mut core = CoreModel::new(0, 2.0, 8);
        core.on_issue(0, 500);
        core.on_issue(2, 90);
        assert_eq!(core.finish_time(), 500);
    }

    #[test]
    fn memory_bound_core_is_limited_by_latency() {
        // With think gap 0 and MLP 1, throughput is entirely latency-bound.
        let mut core = CoreModel::new(0, 0.0, 1);
        let mut now;
        for _ in 0..10 {
            now = core.next_issue_time();
            core.on_issue(now, now + 50);
        }
        assert_eq!(core.finish_time(), 500);
    }

    #[test]
    #[should_panic(expected = "MLP")]
    fn zero_mlp_is_rejected() {
        let _ = CoreModel::new(0, 1.0, 0);
    }
}
