//! A throughput-oriented core model.
//!
//! Each core alternates between executing instructions (at a fixed retire rate) and
//! waiting for LLC misses. The core may have up to `mlp` misses outstanding — the
//! memory-level parallelism permitted by its reorder buffer — and stalls when the
//! window is full. This is the standard analytical abstraction of an out-of-order core
//! for memory-system studies: absolute IPC is approximate, but the *sensitivity* of
//! performance to memory latency and bandwidth (which is what the paper's figures
//! normalize away) is captured.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use impress_dram::timing::Cycle;

/// The state of one simulated core.
#[derive(Debug)]
pub struct CoreModel {
    id: usize,
    /// Cycles of compute between consecutive LLC misses.
    think_gap: f64,
    /// Maximum outstanding misses.
    mlp: usize,
    /// Completion times of outstanding misses.
    outstanding: BinaryHeap<Reverse<Cycle>>,
    /// Misses issued in the current epoch whose completion times are not yet known
    /// (epoch-phased mode): they occupy MLP window slots but are not in `outstanding`.
    pending: usize,
    /// Cycle at which the core's front-end is ready to issue its next miss.
    front_end_ready: f64,
    /// Number of misses issued so far.
    issued: u64,
    /// Completion time of the latest miss to retire.
    last_completion: Cycle,
}

impl CoreModel {
    /// Creates a core with the given inter-miss compute time and MLP limit.
    ///
    /// # Panics
    ///
    /// Panics if `mlp` is zero or `think_gap` is negative.
    pub fn new(id: usize, think_gap: f64, mlp: usize) -> Self {
        assert!(mlp > 0, "MLP must be at least 1");
        assert!(think_gap >= 0.0, "think gap cannot be negative");
        Self {
            id,
            think_gap,
            mlp,
            outstanding: BinaryHeap::new(),
            pending: 0,
            front_end_ready: 0.0,
            issued: 0,
            last_completion: 0,
        }
    }

    /// Core identifier.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Number of misses issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// The earliest cycle at which this core can issue its next miss: the front end
    /// must be ready, and if the MLP window is full the oldest outstanding miss must
    /// retire first.
    pub fn next_issue_time(&self) -> Cycle {
        let front_end = self.front_end_ready.ceil() as Cycle;
        if self.outstanding.len() >= self.mlp {
            let oldest = self.outstanding.peek().map(|Reverse(t)| *t).unwrap_or(0);
            front_end.max(oldest)
        } else {
            front_end
        }
    }

    /// Records that a miss was issued at `now` and will complete at `completes_at`.
    pub fn on_issue(&mut self, now: Cycle, completes_at: Cycle) {
        // Retire everything that has completed by now.
        while let Some(Reverse(t)) = self.outstanding.peek() {
            if *t <= now {
                self.outstanding.pop();
            } else {
                break;
            }
        }
        self.outstanding.push(Reverse(completes_at));
        self.issued += 1;
        self.last_completion = self.last_completion.max(completes_at);
        self.front_end_ready = (now as f64).max(self.front_end_ready) + self.think_gap;
    }

    /// The cycle at which this core finishes all the work it has issued.
    pub fn finish_time(&self) -> Cycle {
        self.last_completion
            .max(self.front_end_ready.ceil() as Cycle)
    }

    // ---- Epoch-phased (sharded) issue API -------------------------------------
    //
    // The epoch-phased system loop issues misses whose completion times are only
    // computed later (when the channel shards execute). The three methods below are
    // the split form of `on_issue`/`next_issue_time` for that mode; driven under the
    // documented contract, the core's observable state evolves bit-for-bit as if the
    // serial loop had called `on_issue` with the eventual completion times.

    /// Number of issues currently awaiting [`CoreModel::resolve_pending`].
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// The earliest cycle this core can issue its next miss, **if** that cycle is
    /// provably below `horizon`; `None` means the next issue is at or beyond
    /// `horizon` (and may depend on completions that are not yet known).
    ///
    /// Contract: every pending (unresolved) issue must be guaranteed to complete at
    /// or after `horizon`. The epoch-phased loop guarantees this by capping the
    /// epoch window at the minimum access latency of the memory system: an access
    /// issued inside the window cannot complete inside it. Under that contract the
    /// returned cycle is *exact* — identical to what [`CoreModel::next_issue_time`]
    /// would return with full knowledge of the pending completions:
    ///
    /// * window not full: the answer is `front_end_ready`, which never depends on
    ///   completions;
    /// * window full with the oldest *resolved* completion below `horizon`: pending
    ///   completions are all `>= horizon`, so the oldest entry overall is that
    ///   resolved one;
    /// * otherwise every candidate for the oldest completion is `>= horizon`, so the
    ///   next issue is too — deferred to the next epoch, where it becomes exact.
    pub fn next_issue_before(&self, horizon: Cycle) -> Option<Cycle> {
        let front_end = self.front_end_ready.ceil() as Cycle;
        let t = if self.outstanding.len() + self.pending >= self.mlp {
            match self.outstanding.peek() {
                Some(Reverse(oldest)) if *oldest < horizon => front_end.max(*oldest),
                _ => return None,
            }
        } else {
            front_end
        };
        (t < horizon).then_some(t)
    }

    /// Records that a miss was issued at `now` with a not-yet-known completion time.
    ///
    /// Identical to [`CoreModel::on_issue`] except that the completion is registered
    /// later via [`CoreModel::resolve_pending`]. Retiring completed misses here only
    /// inspects resolved entries, which is exact under the epoch contract: pending
    /// completions are `>= horizon > now`, so the serial loop would not retire them
    /// at `now` either.
    pub fn on_issue_pending(&mut self, now: Cycle) {
        while let Some(Reverse(t)) = self.outstanding.peek() {
            if *t <= now {
                self.outstanding.pop();
            } else {
                break;
            }
        }
        self.pending += 1;
        self.issued += 1;
        self.front_end_ready = (now as f64).max(self.front_end_ready) + self.think_gap;
    }

    /// Resolves the completion time of one pending issue (in issue order).
    ///
    /// # Panics
    ///
    /// Panics if there is no pending issue to resolve.
    pub fn resolve_pending(&mut self, completes_at: Cycle) {
        assert!(self.pending > 0, "resolve_pending without a pending issue");
        self.pending -= 1;
        self.outstanding.push(Reverse(completes_at));
        self.last_completion = self.last_completion.max(completes_at);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn issues_are_spaced_by_think_gap_when_unconstrained() {
        let mut core = CoreModel::new(0, 10.0, 4);
        assert_eq!(core.next_issue_time(), 0);
        core.on_issue(0, 5);
        assert_eq!(core.next_issue_time(), 10);
        core.on_issue(10, 15);
        assert_eq!(core.next_issue_time(), 20);
    }

    #[test]
    fn mlp_limit_stalls_the_core() {
        let mut core = CoreModel::new(0, 1.0, 2);
        core.on_issue(0, 100);
        core.on_issue(1, 200);
        // Window full: the next issue waits for the oldest completion (cycle 100).
        assert_eq!(core.next_issue_time(), 100);
        core.on_issue(100, 300);
        assert_eq!(core.issued(), 3);
    }

    #[test]
    fn finish_time_covers_all_outstanding_work() {
        let mut core = CoreModel::new(0, 2.0, 8);
        core.on_issue(0, 500);
        core.on_issue(2, 90);
        assert_eq!(core.finish_time(), 500);
    }

    #[test]
    fn memory_bound_core_is_limited_by_latency() {
        // With think gap 0 and MLP 1, throughput is entirely latency-bound.
        let mut core = CoreModel::new(0, 0.0, 1);
        let mut now;
        for _ in 0..10 {
            now = core.next_issue_time();
            core.on_issue(now, now + 50);
        }
        assert_eq!(core.finish_time(), 500);
    }

    #[test]
    #[should_panic(expected = "MLP")]
    fn zero_mlp_is_rejected() {
        let _ = CoreModel::new(0, 1.0, 0);
    }

    /// Synthetic memory latency: deterministic, uneven, always >= `min_lat`.
    fn synth_latency(min_lat: Cycle, i: u64) -> Cycle {
        min_lat + (i * 37) % 150
    }

    #[test]
    fn epoch_phased_issue_matches_serial_issue() {
        // One core driven by the serial API and one by the epoch-phased API against
        // the same deterministic memory must issue at identical cycles and agree on
        // every observable at every epoch barrier.
        let min_lat = 46;
        for (think_gap, mlp) in [(0.0, 1), (2.5, 12), (41.7, 3), (160.0, 2)] {
            let mut serial = CoreModel::new(0, think_gap, mlp);
            let mut epoch = CoreModel::new(0, think_gap, mlp);
            let total = 500u64;
            let mut serial_times = Vec::new();
            for i in 0..total {
                let t = serial.next_issue_time();
                serial.on_issue(t, t + synth_latency(min_lat, i));
                serial_times.push(t);
            }
            let mut epoch_times = Vec::new();
            let mut i = 0u64;
            while i < total {
                assert_eq!(epoch.pending(), 0);
                let horizon = epoch.next_issue_time() + min_lat;
                let mut batch = Vec::new();
                while i < total {
                    let Some(t) = epoch.next_issue_before(horizon) else {
                        break;
                    };
                    epoch.on_issue_pending(t);
                    batch.push((t, i));
                    epoch_times.push(t);
                    i += 1;
                }
                assert!(!batch.is_empty(), "an epoch must issue at least once");
                for (t, idx) in batch {
                    epoch.resolve_pending(t + synth_latency(min_lat, idx));
                }
                // At every barrier, the epoch core's state agrees with a serial core
                // replayed over the same prefix of issues.
                let mut replay = CoreModel::new(0, think_gap, mlp);
                for (idx, &t) in serial_times.iter().take(i as usize).enumerate() {
                    replay.on_issue(t, t + synth_latency(min_lat, idx as u64));
                }
                assert_eq!(epoch.next_issue_time(), replay.next_issue_time());
                assert_eq!(epoch.finish_time(), replay.finish_time());
            }
            assert_eq!(epoch_times, serial_times, "think_gap={think_gap} mlp={mlp}");
            assert_eq!(epoch.finish_time(), serial.finish_time());
            assert_eq!(epoch.issued(), serial.issued());
        }
    }

    #[test]
    fn next_issue_before_defers_when_completion_unknown() {
        let mut core = CoreModel::new(0, 1.0, 2);
        core.on_issue_pending(0);
        core.on_issue_pending(1);
        // Window full, both completions unknown: the next issue cannot be computed
        // inside any horizon.
        assert_eq!(core.next_issue_before(1_000_000), None);
        core.resolve_pending(100);
        core.resolve_pending(200);
        // Resolved: oldest completion is 100, front end is ready at 2.
        assert_eq!(core.next_issue_time(), 100);
        assert_eq!(core.next_issue_before(101), Some(100));
        assert_eq!(core.next_issue_before(100), None);
    }

    #[test]
    #[should_panic(expected = "without a pending issue")]
    fn resolve_without_pending_panics() {
        let mut core = CoreModel::new(0, 1.0, 2);
        core.resolve_pending(10);
    }
}
