//! A throughput-oriented core model.
//!
//! Each core alternates between executing instructions (at a fixed retire rate) and
//! waiting for LLC misses. The core may have up to `mlp` misses outstanding — the
//! memory-level parallelism permitted by its reorder buffer — and stalls when the
//! window is full. This is the standard analytical abstraction of an out-of-order core
//! for memory-system studies: absolute IPC is approximate, but the *sensitivity* of
//! performance to memory latency and bandwidth (which is what the paper's figures
//! normalize away) is captured.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use impress_dram::timing::Cycle;

/// What a core can prove about its next issue time while some of its in-flight
/// misses have unresolved completion times (epoch-phased mode).
///
/// Returned by [`CoreModel::next_issue_bound`]; see that method for the contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IssueBound {
    /// The next issue time is exact: it is provably independent of every unresolved
    /// completion, so a serial scheduler with full knowledge would compute the same
    /// cycle.
    Exact(Cycle),
    /// The next issue time depends on an unresolved completion. It cannot occur
    /// before the carried cycle — the earliest any pending completion can land
    /// (each pending issue carries a completion lower bound) joined with the
    /// front-end readiness.
    NotBefore(Cycle),
}

/// The state of one simulated core.
#[derive(Debug)]
pub struct CoreModel {
    id: usize,
    /// Cycles of compute between consecutive LLC misses.
    think_gap: f64,
    /// Maximum outstanding misses.
    mlp: usize,
    /// Completion times of outstanding misses whose completions are known.
    outstanding: BinaryHeap<Reverse<Cycle>>,
    /// Completion-time lower bounds of misses issued in the current epoch whose
    /// completion times are not yet known (epoch-phased mode): they occupy MLP
    /// window slots but are not in `outstanding`. Front = oldest pending issue
    /// (bounds are resolved in issue order, but are not themselves ordered — the
    /// driver derives each from the target channel's bus conveyor, so a later
    /// issue to an idle channel can carry a smaller bound).
    pending_lbs: VecDeque<Cycle>,
    /// Cycle at which the core's front-end is ready to issue its next miss.
    front_end_ready: f64,
    /// Number of misses issued so far.
    issued: u64,
    /// Completion time of the latest miss to retire.
    last_completion: Cycle,
}

impl CoreModel {
    /// Creates a core with the given inter-miss compute time and MLP limit.
    ///
    /// # Panics
    ///
    /// Panics if `mlp` is zero or `think_gap` is negative.
    pub fn new(id: usize, think_gap: f64, mlp: usize) -> Self {
        assert!(mlp > 0, "MLP must be at least 1");
        assert!(think_gap >= 0.0, "think gap cannot be negative");
        Self {
            id,
            think_gap,
            mlp,
            outstanding: BinaryHeap::new(),
            pending_lbs: VecDeque::new(),
            front_end_ready: 0.0,
            issued: 0,
            last_completion: 0,
        }
    }

    /// Core identifier.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Number of misses issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// The earliest cycle at which this core can issue its next miss: the front end
    /// must be ready, and if the MLP window is full the oldest outstanding miss must
    /// retire first.
    pub fn next_issue_time(&self) -> Cycle {
        let front_end = self.front_end_ready.ceil() as Cycle;
        if self.outstanding.len() >= self.mlp {
            let oldest = self.outstanding.peek().map(|Reverse(t)| *t).unwrap_or(0);
            front_end.max(oldest)
        } else {
            front_end
        }
    }

    /// Records that a miss was issued at `now` and will complete at `completes_at`.
    pub fn on_issue(&mut self, now: Cycle, completes_at: Cycle) {
        // Retire everything that has completed by now.
        while let Some(Reverse(t)) = self.outstanding.peek() {
            if *t <= now {
                self.outstanding.pop();
            } else {
                break;
            }
        }
        self.outstanding.push(Reverse(completes_at));
        self.issued += 1;
        self.last_completion = self.last_completion.max(completes_at);
        self.front_end_ready = (now as f64).max(self.front_end_ready) + self.think_gap;
    }

    /// The cycle at which this core finishes all the work it has issued.
    pub fn finish_time(&self) -> Cycle {
        self.last_completion
            .max(self.front_end_ready.ceil() as Cycle)
    }

    // ---- Epoch-phased (sharded) issue API -------------------------------------
    //
    // The epoch-phased system loop issues misses whose completion times are only
    // computed later (when the channel shards execute). The methods below are the
    // split form of `on_issue`/`next_issue_time` for that mode; driven under the
    // documented contract, the core's observable issue schedule evolves bit-for-bit
    // as if the serial loop had called `on_issue` with the eventual completion times.

    /// Number of issues currently awaiting [`CoreModel::resolve_pending`].
    pub fn pending(&self) -> usize {
        self.pending_lbs.len()
    }

    /// The minimum completion-time lower bound over the pending issues
    /// (`Cycle::MAX` with no pending issues). The window is at most `mlp` entries,
    /// so the scan is a handful of compares.
    pub fn pending_completion_lower_bound(&self) -> Cycle {
        self.pending_lbs.iter().copied().min().unwrap_or(Cycle::MAX)
    }

    /// Classifies this core's next issue time as provably exact or as bounded from
    /// below by unresolved completions.
    ///
    /// Contract: every pending issue was registered via
    /// [`CoreModel::on_issue_pending`] with a `completion_lb` that its eventual
    /// completion time is guaranteed to meet (the epoch-phased loop uses
    /// `issue_time + min_access_latency`), and pending issues are registered (and
    /// later resolved) in non-decreasing issue-time order. Under that contract:
    ///
    /// * **window not full** (`outstanding + pending < mlp`): the serial window can
    ///   only be emptier (a pending completion the serial loop knows about may
    ///   already have retired), so the serial answer is also `front_end_ready` —
    ///   exact, and never a function of completions.
    /// * **window full, oldest resolved completion ≤ every pending lower bound**:
    ///   the oldest entry of the serial window is that resolved completion (any
    ///   pending completion the serial loop would instead have *retired* is below
    ///   the front end, so the `max` with `front_end_ready` erases the
    ///   difference) — exact.
    /// * **otherwise** the oldest completion may be one of the pending ones:
    ///   unknown, but provably at or after `max(front_end, min pending bound)` —
    ///   the epoch loop uses this cycle to bound its issue horizon.
    pub fn next_issue_bound(&self) -> IssueBound {
        let front_end = self.front_end_ready.ceil() as Cycle;
        if self.outstanding.len() + self.pending_lbs.len() < self.mlp {
            return IssueBound::Exact(front_end);
        }
        let pending_lb = self.pending_completion_lower_bound();
        match self.outstanding.peek() {
            Some(Reverse(oldest)) if *oldest <= pending_lb => {
                IssueBound::Exact(front_end.max(*oldest))
            }
            _ => IssueBound::NotBefore(front_end.max(pending_lb)),
        }
    }

    /// The earliest cycle this core can issue its next miss, **if** that cycle is
    /// provably exact and below `horizon`; `None` means the next issue is at or
    /// beyond `horizon`, or depends on completions that are not yet known.
    ///
    /// This is [`CoreModel::next_issue_bound`] restricted to a fixed window —
    /// retained for the fixed-horizon loop and its tests. Under the fixed-window
    /// contract (every pending completion lower bound at or beyond `horizon`) the
    /// two agree exactly.
    pub fn next_issue_before(&self, horizon: Cycle) -> Option<Cycle> {
        match self.next_issue_bound() {
            IssueBound::Exact(t) if t < horizon => Some(t),
            _ => None,
        }
    }

    /// Records that a miss was issued at `now` whose completion time is not yet
    /// known but is guaranteed to be at least `completion_lb`.
    ///
    /// Identical to [`CoreModel::on_issue`] except that the completion is registered
    /// later via [`CoreModel::resolve_pending`]. Retiring completed misses here only
    /// inspects resolved entries, which is exact for the issue schedule: a pending
    /// completion the serial loop would retire at `now` frees a window slot, and
    /// [`CoreModel::next_issue_bound`] already accounts for that asymmetry.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if `completion_lb <= now` (an access can never
    /// complete at or before its own issue cycle).
    pub fn on_issue_pending(&mut self, now: Cycle, completion_lb: Cycle) {
        debug_assert!(
            completion_lb > now,
            "completion lower bound {completion_lb} not after issue time {now}"
        );
        while let Some(Reverse(t)) = self.outstanding.peek() {
            if *t <= now {
                self.outstanding.pop();
            } else {
                break;
            }
        }
        self.pending_lbs.push_back(completion_lb);
        self.issued += 1;
        self.front_end_ready = (now as f64).max(self.front_end_ready) + self.think_gap;
    }

    /// Resolves the completion time of one pending issue (in issue order).
    ///
    /// # Panics
    ///
    /// Panics if there is no pending issue to resolve; in debug builds, panics if
    /// the completion beats the lower bound it was registered with.
    pub fn resolve_pending(&mut self, completes_at: Cycle) {
        let lb = self
            .pending_lbs
            .pop_front()
            .expect("resolve_pending without a pending issue");
        debug_assert!(
            completes_at >= lb,
            "completion {completes_at} beats its registered lower bound {lb}"
        );
        self.outstanding.push(Reverse(completes_at));
        self.last_completion = self.last_completion.max(completes_at);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn issues_are_spaced_by_think_gap_when_unconstrained() {
        let mut core = CoreModel::new(0, 10.0, 4);
        assert_eq!(core.next_issue_time(), 0);
        core.on_issue(0, 5);
        assert_eq!(core.next_issue_time(), 10);
        core.on_issue(10, 15);
        assert_eq!(core.next_issue_time(), 20);
    }

    #[test]
    fn mlp_limit_stalls_the_core() {
        let mut core = CoreModel::new(0, 1.0, 2);
        core.on_issue(0, 100);
        core.on_issue(1, 200);
        // Window full: the next issue waits for the oldest completion (cycle 100).
        assert_eq!(core.next_issue_time(), 100);
        core.on_issue(100, 300);
        assert_eq!(core.issued(), 3);
    }

    #[test]
    fn finish_time_covers_all_outstanding_work() {
        let mut core = CoreModel::new(0, 2.0, 8);
        core.on_issue(0, 500);
        core.on_issue(2, 90);
        assert_eq!(core.finish_time(), 500);
    }

    #[test]
    fn memory_bound_core_is_limited_by_latency() {
        // With think gap 0 and MLP 1, throughput is entirely latency-bound.
        let mut core = CoreModel::new(0, 0.0, 1);
        let mut now;
        for _ in 0..10 {
            now = core.next_issue_time();
            core.on_issue(now, now + 50);
        }
        assert_eq!(core.finish_time(), 500);
    }

    #[test]
    #[should_panic(expected = "MLP")]
    fn zero_mlp_is_rejected() {
        let _ = CoreModel::new(0, 1.0, 0);
    }

    /// Synthetic memory latency: deterministic, uneven, always >= `min_lat`.
    fn synth_latency(min_lat: Cycle, i: u64) -> Cycle {
        min_lat + (i * 37) % 150
    }

    #[test]
    fn epoch_phased_issue_matches_serial_issue() {
        // One core driven by the serial API and one by the fixed-window epoch API
        // against the same deterministic memory must issue at identical cycles and
        // agree on every observable at every epoch barrier.
        let min_lat = 46;
        for (think_gap, mlp) in [(0.0, 1), (2.5, 12), (41.7, 3), (160.0, 2)] {
            let mut serial = CoreModel::new(0, think_gap, mlp);
            let mut epoch = CoreModel::new(0, think_gap, mlp);
            let total = 500u64;
            let mut serial_times = Vec::new();
            for i in 0..total {
                let t = serial.next_issue_time();
                serial.on_issue(t, t + synth_latency(min_lat, i));
                serial_times.push(t);
            }
            let mut epoch_times = Vec::new();
            let mut i = 0u64;
            while i < total {
                assert_eq!(epoch.pending(), 0);
                let horizon = epoch.next_issue_time() + min_lat;
                let mut batch = Vec::new();
                while i < total {
                    let Some(t) = epoch.next_issue_before(horizon) else {
                        break;
                    };
                    epoch.on_issue_pending(t, t + min_lat);
                    batch.push((t, i));
                    epoch_times.push(t);
                    i += 1;
                }
                assert!(!batch.is_empty(), "an epoch must issue at least once");
                for (t, idx) in batch {
                    epoch.resolve_pending(t + synth_latency(min_lat, idx));
                }
                // At every barrier, the epoch core's state agrees with a serial core
                // replayed over the same prefix of issues.
                let mut replay = CoreModel::new(0, think_gap, mlp);
                for (idx, &t) in serial_times.iter().take(i as usize).enumerate() {
                    replay.on_issue(t, t + synth_latency(min_lat, idx as u64));
                }
                assert_eq!(epoch.next_issue_time(), replay.next_issue_time());
                assert_eq!(epoch.finish_time(), replay.finish_time());
            }
            assert_eq!(epoch_times, serial_times, "think_gap={think_gap} mlp={mlp}");
            assert_eq!(epoch.finish_time(), serial.finish_time());
            assert_eq!(epoch.issued(), serial.issued());
        }
    }

    #[test]
    fn next_issue_before_defers_when_completion_unknown() {
        let mut core = CoreModel::new(0, 1.0, 2);
        core.on_issue_pending(0, 46);
        core.on_issue_pending(1, 47);
        // Window full, both completions unknown: the next issue cannot be computed
        // inside any horizon.
        assert_eq!(core.next_issue_before(1_000_000), None);
        core.resolve_pending(100);
        core.resolve_pending(200);
        // Resolved: oldest completion is 100, front end is ready at 2.
        assert_eq!(core.next_issue_time(), 100);
        assert_eq!(core.next_issue_before(101), Some(100));
        assert_eq!(core.next_issue_before(100), None);
    }

    // ---- Pending-lower-bound contract ----------------------------------------

    #[test]
    fn bound_is_exact_while_the_window_has_room() {
        let mut core = CoreModel::new(0, 5.0, 3);
        assert_eq!(core.next_issue_bound(), IssueBound::Exact(0));
        core.on_issue_pending(0, 46);
        core.on_issue_pending(5, 51);
        // Two pending, window of three: still front-end-limited and exact.
        assert_eq!(core.next_issue_bound(), IssueBound::Exact(10));
        assert_eq!(core.pending_completion_lower_bound(), 46);
    }

    #[test]
    fn window_full_of_pending_defers_to_the_oldest_bound() {
        let mut core = CoreModel::new(0, 1.0, 2);
        core.on_issue_pending(0, 46);
        core.on_issue_pending(1, 47);
        // The next issue needs a completion, and the earliest any pending
        // completion can land is the oldest issue's bound.
        assert_eq!(core.next_issue_bound(), IssueBound::NotBefore(46));
        // A huge think gap dominates the pending bound.
        let mut slow = CoreModel::new(0, 1_000.0, 2);
        slow.on_issue_pending(0, 46);
        slow.on_issue_pending(1_000, 1_046);
        assert_eq!(slow.next_issue_bound(), IssueBound::NotBefore(2_000));
    }

    #[test]
    fn resolved_oldest_below_pending_bound_stays_exact() {
        // Window full with a mix of resolved and pending completions: exact as long
        // as the oldest resolved completion is at or below every pending bound.
        let mut core = CoreModel::new(0, 0.0, 2);
        core.on_issue_pending(0, 46);
        core.resolve_pending(60);
        core.on_issue_pending(0, 46);
        // outstanding = {60}, pending bound = 46: 60 > 46, so the oldest completion
        // might be the pending one — deferred.
        assert_eq!(core.next_issue_bound(), IssueBound::NotBefore(46));
        core.resolve_pending(50);
        // outstanding = {50, 60}: fully resolved, exact again.
        assert_eq!(core.next_issue_bound(), IssueBound::Exact(50));
        core.on_issue_pending(50, 96);
        // outstanding = {60} (50 retired at issue), pending bound = 96: 60 <= 96,
        // the oldest completion is provably the resolved one.
        assert_eq!(core.next_issue_bound(), IssueBound::Exact(60));
    }

    #[test]
    fn pending_bound_is_the_minimum_over_heterogeneous_bounds() {
        // A later issue to an idle channel can carry a *smaller* conveyor bound
        // than an earlier issue to a backlogged channel; the deferral bound must
        // be the minimum, not the oldest.
        let mut core = CoreModel::new(0, 0.0, 2);
        core.on_issue_pending(0, 500);
        core.on_issue_pending(3, 49);
        assert_eq!(core.pending_completion_lower_bound(), 49);
        assert_eq!(core.next_issue_bound(), IssueBound::NotBefore(49));
        // Resolution order stays issue order even though the bounds are unordered.
        core.resolve_pending(600);
        assert_eq!(core.pending_completion_lower_bound(), 49);
        core.resolve_pending(50);
        assert_eq!(core.next_issue_bound(), IssueBound::Exact(50));
    }

    #[test]
    fn resolutions_are_matched_to_bounds_in_issue_order() {
        let mut core = CoreModel::new(0, 0.0, 4);
        core.on_issue_pending(0, 46);
        core.on_issue_pending(10, 56);
        assert_eq!(core.pending(), 2);
        assert_eq!(core.pending_completion_lower_bound(), 46);
        core.resolve_pending(46);
        // The remaining pending issue carries the later bound.
        assert_eq!(core.pending(), 1);
        assert_eq!(core.pending_completion_lower_bound(), 56);
        core.resolve_pending(90);
        assert_eq!(core.pending(), 0);
        assert_eq!(core.pending_completion_lower_bound(), Cycle::MAX);
        assert_eq!(core.finish_time(), 90);
    }

    #[test]
    #[should_panic(expected = "without a pending issue")]
    fn resolve_without_pending_panics() {
        let mut core = CoreModel::new(0, 1.0, 2);
        core.resolve_pending(10);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "beats its registered lower bound")]
    fn completion_below_its_bound_is_rejected() {
        let mut core = CoreModel::new(0, 1.0, 2);
        core.on_issue_pending(0, 46);
        core.resolve_pending(45);
    }

    proptest! {
        /// The adaptive issue loop — issue while `next_issue_bound` is exact and
        /// below every deferred core's bound, resolve at the barrier — reproduces
        /// the serial issue schedule bit-for-bit, for any think gap, MLP and
        /// (deterministic, bound-respecting) latency profile. This is the
        /// single-core heart of the whole-system property pinned in
        /// `tests/sharded_determinism.rs`.
        #[test]
        fn adaptive_issue_loop_matches_serial(
            think_tenths in 0u64..2_000,
            mlp in 1usize..16,
            min_lat in 8u64..120,
            spread in 0u64..300,
        ) {
            let think_gap = think_tenths as f64 / 10.0;
            let latency = |i: u64| min_lat + if spread == 0 { 0 } else { (i * 131) % spread };
            let total = 400u64;

            let mut serial = CoreModel::new(0, think_gap, mlp);
            let mut serial_times = Vec::new();
            for i in 0..total {
                let t = serial.next_issue_time();
                serial.on_issue(t, t + latency(i));
                serial_times.push(t);
            }

            let mut core = CoreModel::new(0, think_gap, mlp);
            let mut times = Vec::new();
            let mut i = 0u64;
            while i < total {
                let mut batch = Vec::new();
                // Adaptive window: keep issuing while the next issue is provably
                // exact. (With one core there is no cross-core horizon to respect.)
                while i < total {
                    let IssueBound::Exact(t) = core.next_issue_bound() else {
                        break;
                    };
                    core.on_issue_pending(t, t + min_lat);
                    batch.push((t, i));
                    times.push(t);
                    i += 1;
                }
                prop_assert!(!batch.is_empty(), "an epoch must always issue");
                for (t, idx) in batch {
                    core.resolve_pending(t + latency(idx));
                }
            }
            prop_assert_eq!(&times, &serial_times);
            prop_assert_eq!(core.finish_time(), serial.finish_time());
            prop_assert_eq!(core.pending(), 0);
        }
    }
}
