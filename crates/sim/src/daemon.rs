//! Supervised daemon-mode ingestion: checkpoints, watchdog, quarantine.
//!
//! [`supervise`] runs the same open-loop decode → route → execute pipeline as
//! [`TraceRunner::ingest`](crate::trace_runner::TraceRunner), hardened for
//! long-running service operation:
//!
//! * **Checkpoints** — every [`DaemonOptions::checkpoint_every`] records the
//!   daemon emits a canonical-JSON [`Checkpoint`] (record count, source byte
//!   offset, window/ledger summary) through a caller-supplied sink. After a
//!   crash, [`DaemonOptions::resume_from`] restarts by *deterministic prefix
//!   re-execution*: the stream is re-ingested from byte zero (the simulator's
//!   state cannot be snapshotted cheaply, but re-execution is bit-exact), and
//!   when the record counter reaches the checkpoint the reader's position is
//!   validated against the pinned offset — a mismatch means the source changed
//!   underneath the checkpoint and the resume is refused. The validated resume
//!   is recorded in the fault ledger, so a resumed run's verdict differs from an
//!   uninterrupted run's only in resume-marker lines. Resume therefore requires
//!   a replayable source (a file, not a drained FIFO).
//! * **Bounded-lag watchdog** — per-window telemetry is retained up to
//!   [`DaemonOptions::max_lag_windows`]; beyond that the oldest window's
//!   telemetry is shed (and ledgered) before any record is dropped.
//! * **Quarantine** — a shard-worker panic is contained by the epoch pool
//!   ([`impress_exec::EpochScope::try_run_epoch`]); the daemon ledgers the
//!   failed round's records as a quarantined window and keeps serving instead
//!   of crashing.
//!
//! Paired with a [`FollowSource`](impress_workloads::FollowSource) for stall
//! tolerance and [`DecodeMode::Resync`] for corruption tolerance, this is the
//! `trace daemon` CLI's engine.

use std::fs::File;
use std::io;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use impress_dram::stats::ChannelStats;
use impress_dram::timing::Cycle;
use impress_memctrl::{ChannelShard, MemoryController};
use impress_workloads::codec::{DecodeMode, TraceReader};
use impress_workloads::source::TraceSource;

use crate::runner::Configuration;
use crate::sharded::{lock_task, make_tasks, QueuedAccess};
use crate::trace_runner::{
    FaultLedger, IngestReport, LedgerEntry, VerdictReport, WindowTelemetry, DEFAULT_GAP,
    INGEST_BATCH,
};

/// Canonical-JSON snapshot of ingest progress, durable across crashes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Checkpoint {
    /// Records ingested when the checkpoint was taken.
    pub records: u64,
    /// Reader position (absolute source bytes) pinned to `records` — resume
    /// validates the re-read stream against this.
    pub source_offset: u64,
    /// Telemetry windows emitted so far (including shed ones).
    pub windows: u64,
    /// Ledger's conservative records-lost bound so far.
    pub records_lost: u64,
    /// Simulated cycle of the last ingested record.
    pub elapsed_cycles: Cycle,
}

impl Checkpoint {
    /// Canonical JSON form (fixed key order, integers only).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"schema\": \"impress-trace-checkpoint-v1\",\n  \"records\": {},\n  \
             \"source_offset\": {},\n  \"windows\": {},\n  \"records_lost\": {},\n  \
             \"elapsed_cycles\": {}\n}}\n",
            self.records, self.source_offset, self.windows, self.records_lost, self.elapsed_cycles,
        )
    }

    /// Parses the canonical JSON form.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` when the schema marker or a field is missing or
    /// malformed.
    pub fn parse(json: &str) -> io::Result<Self> {
        if !json.contains("\"impress-trace-checkpoint-v1\"") {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not an impress checkpoint (missing schema marker)",
            ));
        }
        let field = |key: &str| -> io::Result<u64> {
            let pat = format!("\"{key}\":");
            let at = json.find(&pat).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("checkpoint is missing field {key:?}"),
                )
            })?;
            let rest = json[at + pat.len()..].trim_start();
            let digits: &str = &rest[..rest
                .find(|c: char| !c.is_ascii_digit())
                .unwrap_or(rest.len())];
            digits.parse().map_err(|_| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("checkpoint field {key:?} is not an integer"),
                )
            })
        };
        Ok(Self {
            records: field("records")?,
            source_offset: field("source_offset")?,
            windows: field("windows")?,
            records_lost: field("records_lost")?,
            elapsed_cycles: field("elapsed_cycles")?,
        })
    }
}

/// Writes `cp` to `path` durably: the JSON lands in a sibling `.tmp` file
/// which is fsynced *before* the atomic rename, and the parent directory is
/// fsynced *after* — so a host crash at any instant leaves either the previous
/// checkpoint or the new one, never a torn or vanished file.
///
/// # Errors
///
/// Propagates any I/O error; on failure the temp file is removed so retries
/// and crash-recovery never mistake it for a checkpoint.
pub fn write_checkpoint_durable(path: &Path, cp: &Checkpoint) -> io::Result<()> {
    let mut tmp_name = path.as_os_str().to_owned();
    tmp_name.push(".tmp");
    let tmp = PathBuf::from(tmp_name);
    let write = (|| {
        let mut f = File::create(&tmp)?;
        f.write_all(cp.to_json().as_bytes())?;
        f.sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if write.is_err() {
        let _ = std::fs::remove_file(&tmp);
        return write;
    }
    // Durability of the rename itself requires syncing the directory entry.
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    File::open(parent)?.sync_all()
}

/// Knobs for [`supervise`].
#[derive(Debug, Clone)]
pub struct DaemonOptions {
    /// Telemetry window size in records.
    pub window_records: u64,
    /// Records between checkpoints (`0` disables checkpointing).
    pub checkpoint_every: u64,
    /// Maximum telemetry windows retained before the watchdog sheds the oldest
    /// (`0` = unbounded).
    pub max_lag_windows: usize,
    /// Shard worker threads (same meaning as everywhere else; bit-identical
    /// output at any value).
    pub shard_threads: usize,
    /// Decode in resynchronizing mode, surviving stream corruption.
    pub resync: bool,
    /// Resume by re-executing the stream prefix and validating it against this
    /// checkpoint.
    pub resume_from: Option<Checkpoint>,
    /// Whether tracked events stage through the bank-batched record kernels.
    /// `None` defers to the `IMPRESS_RECORD_BATCH` environment variable
    /// (default on); output is bit-identical either way.
    pub record_batch: Option<bool>,
}

impl Default for DaemonOptions {
    fn default() -> Self {
        Self {
            window_records: 1 << 20,
            checkpoint_every: 1 << 22,
            max_lag_windows: 0,
            shard_threads: 1,
            resync: false,
            resume_from: None,
            record_batch: None,
        }
    }
}

/// Telemetry windows a listen-mode daemon retains before the bounded-lag
/// watchdog sheds the oldest. Network producers can outpace the simulator
/// indefinitely, so listen mode must bound lag by default — unlike file
/// ingest, where the stream is finite and `0` (unbounded) is safe.
pub const LISTEN_MAX_LAG: usize = 64;

impl DaemonOptions {
    /// Listen-mode defaults for a network daemon: identical to
    /// [`DaemonOptions::default`] except the bounded-lag watchdog is armed at
    /// [`LISTEN_MAX_LAG`] windows. The `trace daemon --listen` CLI builds its
    /// options from this, so the library defaults and the CLI's documented
    /// defaults agree by construction.
    pub fn listening() -> Self {
        Self {
            max_lag_windows: LISTEN_MAX_LAG,
            ..Self::default()
        }
    }
}

/// Runs supervised daemon-mode ingestion over `source`.
///
/// `on_checkpoint` is invoked with each periodic [`Checkpoint`] plus one final
/// checkpoint at a clean end of stream; a crash (source error) propagates
/// *without* a final checkpoint, leaving the last periodic one as the resume
/// point.
///
/// # Errors
///
/// Propagates source I/O errors, strict-mode codec errors, and a resume
/// validation mismatch (`InvalidData`).
pub fn supervise<S: TraceSource>(
    source: S,
    configuration: &Configuration,
    options: &DaemonOptions,
    on_checkpoint: &mut dyn FnMut(&Checkpoint) -> io::Result<()>,
) -> io::Result<IngestReport> {
    supervise_with_hook(source, configuration, options, on_checkpoint, |_| {})
}

/// [`supervise`] with a per-round hook run on the worker executing shard 0 —
/// the seam the quarantine tests use to inject deterministic panics.
pub(crate) fn supervise_with_hook<S: TraceSource>(
    source: S,
    configuration: &Configuration,
    options: &DaemonOptions,
    on_checkpoint: &mut dyn FnMut(&Checkpoint) -> io::Result<()>,
    round_hook: impl Fn(u64) + Sync,
) -> io::Result<IngestReport> {
    let mode = if options.resync {
        DecodeMode::Resync
    } else {
        DecodeMode::Strict
    };
    let mut reader = TraceReader::with_mode(source, mode)?;
    let controller = MemoryController::new(configuration.controller_config());
    let (cfg, shards) = controller.into_parts();
    let min_latency = ChannelShard::min_access_latency(&cfg.timings);
    let tasks = make_tasks(shards, min_latency);
    let channels = tasks.len();
    if options
        .record_batch
        .unwrap_or_else(impress_core::engine::record_batching_from_env)
    {
        for i in 0..channels {
            lock_task(&tasks, i).shard.set_record_batching(true);
        }
    }
    let mapping = cfg.mapping;
    let organization = &cfg.organization;
    let has_gaps = reader.meta().has_gaps;
    let workload = reader.meta().name.clone();
    let window_records = options.window_records.max(1);

    // Round counter shared with the hook; only the driver writes it, and only
    // between rounds, so workers read a stable value during execution.
    let round = AtomicU64::new(0);
    let (tasks_ref, round_ref) = (&tasks, &round);

    type LoopOut = (u64, Cycle, Vec<WindowTelemetry>, FaultLedger);
    let result: io::Result<LoopOut> = impress_exec::epoch_scope(
        options.shard_threads.max(1),
        channels,
        move |i| {
            if i == 0 {
                round_hook(round_ref.load(Ordering::Acquire));
            }
            lock_task(tasks_ref, i).execute()
        },
        |scope| {
            let mut queues: Vec<Vec<QueuedAccess>> = (0..channels).map(|_| Vec::new()).collect();
            let mut now: Cycle = 0;
            let mut records: u64 = 0;
            let mut batched: usize = 0;
            let mut windows: Vec<WindowTelemetry> = Vec::new();
            let mut windows_emitted: u64 = 0;
            let mut window_start_records: u64 = 0;
            let mut prev = ChannelStats::default();
            let mut ledger = FaultLedger::default();
            let mut last_checkpoint: u64 = 0;
            let mut resume_from = options.resume_from;

            // One epoch-pool round over the batched queues; a contained panic
            // quarantines the round's records instead of crashing the daemon.
            let flush = |queues: &mut Vec<Vec<QueuedAccess>>,
                         batched: &mut usize,
                         ledger: &mut FaultLedger,
                         window: u64| {
                if *batched == 0 {
                    return;
                }
                for (channel, queue) in queues.iter_mut().enumerate() {
                    std::mem::swap(&mut lock_task(tasks_ref, channel).queue, queue);
                }
                round_ref.fetch_add(1, Ordering::Release);
                if scope.try_run_epoch().is_err() {
                    ledger.push(LedgerEntry::QuarantinedWindow {
                        window,
                        records_lost: *batched as u64,
                    });
                }
                for (channel, queue) in queues.iter_mut().enumerate() {
                    std::mem::swap(&mut lock_task(tasks_ref, channel).queue, queue);
                    queue.clear();
                }
                *batched = 0;
            };

            while let Some(record) = reader.next_record()? {
                now += if has_gaps {
                    record.gap as Cycle
                } else {
                    DEFAULT_GAP as Cycle
                };
                let location = mapping
                    .decode(record.to_access().address, organization)
                    .map_err(|e| {
                        io::Error::new(io::ErrorKind::InvalidData, format!("record {records}: {e}"))
                    })?;
                queues[location.channel as usize].push(QueuedAccess {
                    location,
                    is_write: record.is_write,
                    at: now,
                });
                records += 1;
                batched += 1;

                if let Some(cp) = resume_from {
                    if records == cp.records {
                        if reader.position() != cp.source_offset {
                            return Err(io::Error::new(
                                io::ErrorKind::InvalidData,
                                format!(
                                    "stream diverged from checkpoint: record {} is at byte {}, \
                                     checkpoint pinned byte {}",
                                    records,
                                    reader.position(),
                                    cp.source_offset
                                ),
                            ));
                        }
                        ledger.push(LedgerEntry::Resume {
                            records,
                            offset: cp.source_offset,
                        });
                        resume_from = None;
                    }
                }

                if batched == INGEST_BATCH {
                    flush(&mut queues, &mut batched, &mut ledger, windows_emitted);
                    for f in reader.take_faults() {
                        ledger.push(LedgerEntry::Decode(f));
                    }
                    ledger.absorb_transport(reader.take_transport_events());
                    if options.checkpoint_every > 0
                        && records - last_checkpoint >= options.checkpoint_every
                    {
                        on_checkpoint(&Checkpoint {
                            records,
                            source_offset: reader.position(),
                            windows: windows_emitted,
                            records_lost: ledger.records_lost(),
                            elapsed_cycles: now,
                        })?;
                        last_checkpoint = records;
                    }
                }
                if records - window_start_records == window_records {
                    flush(&mut queues, &mut batched, &mut ledger, windows_emitted);
                    let snap = ChannelStats::merged(
                        (0..channels).map(|i| lock_task(tasks_ref, i).shard.stats()),
                    );
                    windows.push(WindowTelemetry::delta(
                        windows_emitted,
                        records - window_start_records,
                        now,
                        &prev,
                        &snap,
                    ));
                    windows_emitted += 1;
                    prev = snap;
                    window_start_records = records;
                    // Watchdog: shed oldest telemetry before ever shedding a
                    // record.
                    if options.max_lag_windows > 0 && windows.len() > options.max_lag_windows {
                        let shed = windows.remove(0);
                        ledger.push(LedgerEntry::ShedWindow { window: shed.index });
                    }
                }
            }
            flush(&mut queues, &mut batched, &mut ledger, windows_emitted);
            for f in reader.take_faults() {
                ledger.push(LedgerEntry::Decode(f));
            }
            ledger.absorb_transport(reader.take_transport_events());
            if reader.truncated() {
                ledger.push(LedgerEntry::TruncatedStream {
                    offset: reader.byte_offset(),
                });
            }
            if records > window_start_records {
                let snap = ChannelStats::merged(
                    (0..channels).map(|i| lock_task(tasks_ref, i).shard.stats()),
                );
                windows.push(WindowTelemetry::delta(
                    windows_emitted,
                    records - window_start_records,
                    now,
                    &prev,
                    &snap,
                ));
                windows_emitted += 1;
            }
            if resume_from.is_some() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "stream ended before reaching the checkpointed record count",
                ));
            }
            // Final checkpoint: the stream ended cleanly, so the resume point
            // is the end of the run.
            if options.checkpoint_every > 0 {
                on_checkpoint(&Checkpoint {
                    records,
                    source_offset: reader.position(),
                    windows: windows_emitted,
                    records_lost: ledger.records_lost(),
                    elapsed_cycles: now,
                })?;
            }
            Ok((records, now, windows, ledger))
        },
    );
    let (records, elapsed_cycles, windows, ledger) = result?;

    let memory = ChannelStats::merged(
        tasks
            .into_iter()
            .map(|t| t.into_inner().unwrap_or_else(|e| e.into_inner()).shard)
            .map(|mut shard| {
                // End-of-run flush (see `TraceRunner::ingest`): staged spans are
                // mitigation-free, so stats are final; this only settles the
                // trackers into their per-record-equivalent state.
                shard.flush_staged_records();
                shard.stats()
            }),
    );
    let verdict =
        VerdictReport::from_stats(&workload, configuration, records, elapsed_cycles, &memory)
            .with_faults(ledger);
    Ok(IngestReport {
        records,
        elapsed_cycles,
        memory,
        windows,
        verdict,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use impress_workloads::codec::{TraceMeta, TraceRecord, TraceWriter};
    use impress_workloads::source::SliceSource;
    use impress_workloads::{apply_plan, FaultPlan, FrameMap};

    fn sample_trace(records: u64) -> Vec<u8> {
        let meta = TraceMeta {
            name: "daemon".to_string(),
            cores: 2,
            has_gaps: false,
            instructions_per_miss: vec![40.0, 60.0],
        };
        let mut w = TraceWriter::new(Vec::new(), &meta).unwrap();
        for i in 0..records {
            w.push(TraceRecord {
                address: i * 64 + ((i % 512) << 26),
                gap: 0,
                core: (i % 2) as u8,
                is_write: i % 5 == 0,
            })
            .unwrap();
        }
        w.finish().unwrap()
    }

    #[test]
    fn durable_checkpoint_roundtrips_and_leaves_no_temp_file() {
        let dir = std::env::temp_dir().join(format!("impress-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("daemon.ckpt");
        let cp = Checkpoint {
            records: 123_456,
            source_offset: 7_890,
            windows: 12,
            records_lost: 3,
            elapsed_cycles: 99,
        };
        write_checkpoint_durable(&path, &cp).unwrap();
        // Overwrite with a later checkpoint: rename must replace atomically.
        let cp2 = Checkpoint {
            records: 223_456,
            ..cp
        };
        write_checkpoint_durable(&path, &cp2).unwrap();
        let back = Checkpoint::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(back.records, 223_456);
        assert_eq!(back.source_offset, 7_890);
        // The staging file must never survive a successful write.
        assert!(!path.with_extension("ckpt.tmp").exists());
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        assert_eq!(leftovers, vec![std::ffi::OsString::from("daemon.ckpt")]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn durable_checkpoint_failure_removes_temp_file() {
        let dir = std::env::temp_dir().join(format!("impress-ckpt-fail-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // Target is a directory: the rename must fail, and the temp file must
        // not be left behind to be mistaken for a checkpoint later.
        let path = dir.join("blocked");
        std::fs::create_dir_all(&path).unwrap();
        let cp = Checkpoint {
            records: 1,
            source_offset: 2,
            windows: 0,
            records_lost: 0,
            elapsed_cycles: 0,
        };
        assert!(write_checkpoint_durable(&path, &cp).is_err());
        assert!(!dir.join("blocked.tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn opts() -> DaemonOptions {
        DaemonOptions {
            window_records: 10_000,
            checkpoint_every: 20_000,
            ..DaemonOptions::default()
        }
    }

    #[test]
    fn checkpoint_json_round_trips() {
        let cp = Checkpoint {
            records: 123_456,
            source_offset: 789,
            windows: 12,
            records_lost: 34,
            elapsed_cycles: 567_890,
        };
        assert_eq!(Checkpoint::parse(&cp.to_json()).unwrap(), cp);
        assert!(Checkpoint::parse("{}").is_err());
    }

    #[test]
    fn supervised_clean_run_matches_plain_ingest() {
        let bytes = sample_trace(50_000);
        let configuration = Configuration::unprotected();
        let mut checkpoints = Vec::new();
        let report = supervise(
            SliceSource::new(&bytes),
            &configuration,
            &opts(),
            &mut |cp| {
                checkpoints.push(*cp);
                Ok(())
            },
        )
        .unwrap();

        let plain = crate::trace_runner::TraceRunner::new()
            .with_window_records(10_000)
            .ingest(
                TraceReader::new(SliceSource::new(&bytes)).unwrap(),
                &configuration,
            )
            .unwrap();
        assert_eq!(report.records, plain.records);
        assert_eq!(report.memory, plain.memory);
        assert_eq!(report.windows, plain.windows);
        assert_eq!(report.verdict, plain.verdict);
        assert_eq!(report.verdict.outcome(), "clean");
        // Periodic checkpoints at the first batch boundaries past 20k and 40k
        // records, plus the final one at end of stream.
        assert_eq!(
            checkpoints.iter().map(|c| c.records).collect::<Vec<_>>(),
            vec![28_192, 48_192, 50_000]
        );
    }

    #[test]
    fn resume_reproduces_the_uninterrupted_verdict_modulo_marker() {
        let bytes = sample_trace(60_000);
        let configuration = Configuration::unprotected();
        let mut checkpoints = Vec::new();
        let full = supervise(
            SliceSource::new(&bytes),
            &configuration,
            &opts(),
            &mut |cp| {
                checkpoints.push(*cp);
                Ok(())
            },
        )
        .unwrap();

        // Resume from a mid-run checkpoint, as a crashed daemon would.
        let mid = checkpoints[0];
        let resumed = supervise(
            SliceSource::new(&bytes),
            &configuration,
            &DaemonOptions {
                resume_from: Some(mid),
                ..opts()
            },
            &mut |_| Ok(()),
        )
        .unwrap();
        assert_eq!(resumed.records, full.records);
        assert_eq!(resumed.memory, full.memory);
        assert_eq!(resumed.verdict.outcome(), "clean");
        let strip = |json: &str| {
            json.lines()
                .filter(|l| !l.contains("\"kind\": \"resume\""))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(
            strip(&resumed.verdict.to_json_extended()),
            strip(&full.verdict.to_json_extended())
        );
        assert_ne!(
            resumed.verdict.to_json_extended(),
            full.verdict.to_json_extended(),
            "the resume marker must be visible"
        );
    }

    #[test]
    fn resume_refuses_a_diverged_stream() {
        let bytes = sample_trace(60_000);
        let configuration = Configuration::unprotected();
        let mut checkpoints = Vec::new();
        supervise(
            SliceSource::new(&bytes),
            &configuration,
            &opts(),
            &mut |cp| {
                checkpoints.push(*cp);
                Ok(())
            },
        )
        .unwrap();
        let mut lying = checkpoints[0];
        lying.source_offset += 16;
        let err = supervise(
            SliceSource::new(&bytes),
            &configuration,
            &DaemonOptions {
                resume_from: Some(lying),
                ..opts()
            },
            &mut |_| Ok(()),
        )
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("diverged"));
    }

    #[test]
    fn corrupt_stream_yields_a_degraded_verdict_with_stable_ledger() {
        let bytes = sample_trace(40_000);
        let map = FrameMap::scan(&bytes).unwrap();
        let plan = FaultPlan::seeded(7, &map);
        let corrupted = apply_plan(&bytes, &plan).unwrap();
        let configuration = Configuration::unprotected();
        let run = |threads: usize| {
            supervise(
                SliceSource::new(&corrupted),
                &configuration,
                &DaemonOptions {
                    resync: true,
                    shard_threads: threads,
                    ..opts()
                },
                &mut |_| Ok(()),
            )
            .unwrap()
        };
        let reference = run(1);
        assert_ne!(reference.verdict.outcome(), "clean");
        assert!(!reference.verdict.faults.entries.is_empty());
        for threads in [2usize, 4] {
            let out = run(threads);
            assert_eq!(
                out.verdict.to_json_extended(),
                reference.verdict.to_json_extended(),
                "ledger must be byte-identical at {threads} threads"
            );
        }
    }

    #[test]
    fn shard_panic_is_quarantined_and_the_daemon_keeps_serving() {
        let bytes = sample_trace(40_000);
        let configuration = Configuration::unprotected();
        let run = |threads: usize| {
            supervise_with_hook(
                SliceSource::new(&bytes),
                &configuration,
                &DaemonOptions {
                    shard_threads: threads,
                    ..opts()
                },
                &mut |_| Ok(()),
                |round| {
                    // Fires before any shard state is touched in the first
                    // round, so the quarantined run stays deterministic.
                    assert!(round != 1, "injected shard fault");
                },
            )
            .unwrap()
        };
        let reference = run(1);
        assert_eq!(reference.records, 40_000);
        assert_eq!(reference.verdict.outcome(), "quarantined");
        let quarantined: Vec<_> = reference
            .verdict
            .faults
            .entries
            .iter()
            .filter(|e| matches!(e, LedgerEntry::QuarantinedWindow { .. }))
            .collect();
        assert_eq!(quarantined.len(), 1);
        assert_eq!(quarantined[0].records_lost(), INGEST_BATCH as u64);
        for threads in [2usize, 4] {
            let out = run(threads);
            assert_eq!(
                out.verdict.to_json_extended(),
                reference.verdict.to_json_extended()
            );
        }
    }

    #[test]
    fn watchdog_sheds_telemetry_not_records() {
        let bytes = sample_trace(50_000);
        let configuration = Configuration::unprotected();
        let report = supervise(
            SliceSource::new(&bytes),
            &configuration,
            &DaemonOptions {
                max_lag_windows: 2,
                ..opts()
            },
            &mut |_| Ok(()),
        )
        .unwrap();
        assert_eq!(report.records, 50_000, "no records were shed");
        // 5 windows emitted, only the last 2 full ones + tail retained.
        assert!(report.windows.len() <= 3);
        let shed: Vec<_> = report
            .verdict
            .faults
            .entries
            .iter()
            .filter(|e| matches!(e, LedgerEntry::ShedWindow { .. }))
            .collect();
        assert!(!shed.is_empty());
        assert_eq!(report.verdict.outcome(), "degraded");
        assert_eq!(report.verdict.faults.records_lost(), 0);
    }
}
