//! Trace-driven multi-core system simulator for the ImPress evaluation.
//!
//! This crate is the reproduction's stand-in for ChampSim + DRAMsim3 (§III-A of the
//! paper): it combines
//!
//! * a throughput-oriented core model (ROB-limited memory-level parallelism, fixed
//!   retire rate) — [`core_model`];
//! * the epoch-phased sharded run loop (issue → execute channel shards in parallel →
//!   merge), bit-for-bit identical to a serial run at any thread count — [`sharded`];
//! * the shared-LLC substrate with SRRIP replacement — [`llc`];
//! * the DDR5 memory controller from `impress_memctrl`, including the Row-Press
//!   defense under test;
//! * synthetic workload mixes from `impress_workloads`;
//! * weighted-speedup metrics and normalization helpers — [`metrics`];
//! * a high-level experiment runner used by every performance figure — [`runner`].
//!
//! Absolute IPC numbers are not meaningful (the core model is analytical); all results
//! are reported as performance normalized to a baseline configuration, exactly like the
//! paper's figures.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod core_model;
pub mod daemon;
pub mod llc;
pub mod metrics;
pub mod runner;
pub mod sharded;
pub mod system;
pub mod tenants;
pub mod trace_runner;

pub use config::SystemConfig;
pub use core_model::{CoreModel, IssueBound};
pub use daemon::{supervise, write_checkpoint_durable, Checkpoint, DaemonOptions};
pub use llc::{Llc, LlcConfig, LlcOutcome};
pub use metrics::{geometric_mean, PerformanceResult};
pub use runner::{Configuration, ExperimentRunner, NormalizedResult, SweepOptions, SweepResults};
pub use sharded::{EpochStats, HorizonMode};
pub use system::{RunOutput, System};
pub use tenants::{serve_tenants, MultiReport, TenantReport};
pub use trace_runner::{
    FaultLedger, IngestReport, LedgerEntry, ReplaySource, TraceRunner, VerdictReport,
    WindowTelemetry,
};
