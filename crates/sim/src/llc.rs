//! A shared last-level cache with SRRIP replacement (Table II: 16 MB, 16-way, 64 B lines).
//!
//! The main performance path of the simulator drives the memory controller with
//! post-LLC miss streams generated directly by `impress_workloads` (the profiles are
//! specified in misses-per-kilo-instruction). This module provides the LLC substrate
//! itself — used by the `llc_filtering` example and available for studies that want to
//! derive miss streams from raw access streams.

use impress_dram::address::PhysicalAddress;

/// Result of a cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LlcOutcome {
    /// The line was present.
    Hit,
    /// The line was absent and has been filled (possibly evicting a victim).
    Miss {
        /// Dirty victim line that must be written back, if any.
        writeback: Option<PhysicalAddress>,
    },
}

/// Configuration of the shared LLC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LlcConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Maximum re-reference prediction value (SRRIP uses 2-bit RRPVs, max 3).
    pub max_rrpv: u8,
}

impl LlcConfig {
    /// The paper's LLC: 16 MB, 16-way, 64 B lines, SRRIP.
    pub fn baseline() -> Self {
        Self {
            capacity_bytes: 16 << 20,
            ways: 16,
            line_bytes: 64,
            max_rrpv: 3,
        }
    }

    /// Number of sets implied by the configuration.
    pub fn sets(&self) -> usize {
        (self.capacity_bytes / (self.ways as u64 * self.line_bytes)) as usize
    }
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    rrpv: u8,
}

/// A set-associative cache with Static RRIP replacement.
#[derive(Debug)]
pub struct Llc {
    config: LlcConfig,
    sets: Vec<Vec<Line>>,
    hits: u64,
    misses: u64,
}

impl Llc {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the configuration does not yield a power-of-two, non-zero set count.
    pub fn new(config: LlcConfig) -> Self {
        let sets = config.sets();
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "set count must be a power of two"
        );
        Self {
            config,
            sets: vec![
                vec![
                    Line {
                        tag: 0,
                        valid: false,
                        dirty: false,
                        rrpv: config.max_rrpv,
                    };
                    config.ways
                ];
                sets
            ],
            hits: 0,
            misses: 0,
        }
    }

    /// The cache configuration.
    pub fn config(&self) -> &LlcConfig {
        &self.config
    }

    /// Total hits observed.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total misses observed.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate over all accesses (0.0 before any access).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    fn index_and_tag(&self, address: PhysicalAddress) -> (usize, u64) {
        let line = address.as_u64() / self.config.line_bytes;
        let set = (line as usize) & (self.sets.len() - 1);
        (set, line / self.sets.len() as u64)
    }

    /// Accesses `address`; on a miss the line is filled. Returns whether it hit and any
    /// dirty victim that must be written back to memory.
    pub fn access(&mut self, address: PhysicalAddress, is_write: bool) -> LlcOutcome {
        let max_rrpv = self.config.max_rrpv;
        let num_sets = self.sets.len() as u64;
        let (set_idx, tag) = self.index_and_tag(address);
        let set = &mut self.sets[set_idx];

        if let Some(line) = set.iter_mut().find(|l| l.valid && l.tag == tag) {
            // SRRIP hit promotion: RRPV to 0.
            line.rrpv = 0;
            line.dirty |= is_write;
            self.hits += 1;
            return LlcOutcome::Hit;
        }
        self.misses += 1;

        // Find a victim: an invalid way, or age until a line reaches max RRPV.
        let victim_idx = loop {
            if let Some(i) = set.iter().position(|l| !l.valid) {
                break i;
            }
            if let Some(i) = set.iter().position(|l| l.rrpv >= max_rrpv) {
                break i;
            }
            for l in set.iter_mut() {
                l.rrpv = (l.rrpv + 1).min(max_rrpv);
            }
        };

        let victim = set[victim_idx];
        let writeback = if victim.valid && victim.dirty {
            let victim_line = victim.tag * num_sets + set_idx as u64;
            Some(PhysicalAddress::new(victim_line * self.config.line_bytes))
        } else {
            None
        };

        // SRRIP insertion: RRPV = max - 1 ("long re-reference interval").
        set[victim_idx] = Line {
            tag,
            valid: true,
            dirty: is_write,
            rrpv: max_rrpv - 1,
        };
        LlcOutcome::Miss { writeback }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Llc {
        Llc::new(LlcConfig {
            capacity_bytes: 4 * 64 * 4, // 4 sets, 4 ways
            ways: 4,
            line_bytes: 64,
            max_rrpv: 3,
        })
    }

    #[test]
    fn baseline_config_matches_table2() {
        let cfg = LlcConfig::baseline();
        assert_eq!(cfg.sets(), 16384);
        assert_eq!(cfg.ways, 16);
    }

    #[test]
    fn repeated_access_hits() {
        let mut llc = tiny();
        let a = PhysicalAddress::new(0x1000);
        assert!(matches!(llc.access(a, false), LlcOutcome::Miss { .. }));
        assert_eq!(llc.access(a, false), LlcOutcome::Hit);
        assert_eq!(llc.hits(), 1);
        assert_eq!(llc.misses(), 1);
    }

    #[test]
    fn dirty_victims_produce_writebacks() {
        let mut llc = tiny();
        // Fill one set (addresses that map to set 0) with dirty lines, then overflow it.
        let stride = 4 * 64; // next address in the same set
        for i in 0..4u64 {
            llc.access(PhysicalAddress::new(i * stride), true);
        }
        let mut writebacks = 0;
        for i in 4..12u64 {
            if let LlcOutcome::Miss { writeback: Some(_) } =
                llc.access(PhysicalAddress::new(i * stride), false)
            {
                writebacks += 1;
            }
        }
        assert!(writebacks >= 4, "writebacks = {writebacks}");
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let mut llc = tiny();
        // 64 distinct lines in a 16-line cache, streamed twice: hit rate stays low.
        for _ in 0..2 {
            for i in 0..64u64 {
                llc.access(PhysicalAddress::new(i * 64), false);
            }
        }
        assert!(llc.hit_rate() < 0.3, "hit rate = {}", llc.hit_rate());
    }

    #[test]
    fn small_working_set_fits() {
        let mut llc = tiny();
        for _ in 0..10 {
            for i in 0..8u64 {
                llc.access(PhysicalAddress::new(i * 64), false);
            }
        }
        assert!(llc.hit_rate() > 0.8, "hit rate = {}", llc.hit_rate());
    }

    #[test]
    fn srrip_protects_reused_lines_from_scans() {
        let mut llc = tiny();
        let hot = PhysicalAddress::new(0);
        llc.access(hot, false);
        // Interleave the hot line with a long scan of single-use lines.
        for i in 1..200u64 {
            llc.access(PhysicalAddress::new(i * 64 * 4), false); // all map to set 0
            llc.access(hot, false);
        }
        // The hot line should hit most of the time despite the scan.
        assert!(llc.hit_rate() > 0.4, "hit rate = {}", llc.hit_rate());
    }
}
