//! Performance metrics: IPC, weighted speedup and normalization helpers.

/// Per-core and aggregate performance results of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct PerformanceResult {
    /// Instructions per DRAM cycle achieved by each core.
    pub per_core_ipc: Vec<f64>,
    /// Total simulated duration in DRAM cycles.
    pub elapsed_cycles: u64,
    /// Total demand requests serviced.
    pub requests: u64,
}

impl PerformanceResult {
    /// Weighted speedup of this run relative to a baseline run of the same workload:
    /// `(1/N) Σ IPC_i / IPC_baseline_i` (the paper's "normalized weighted speedup").
    ///
    /// # Panics
    ///
    /// Panics if the two runs have different core counts.
    pub fn weighted_speedup(&self, baseline: &PerformanceResult) -> f64 {
        assert_eq!(
            self.per_core_ipc.len(),
            baseline.per_core_ipc.len(),
            "core count mismatch"
        );
        let n = self.per_core_ipc.len() as f64;
        self.per_core_ipc
            .iter()
            .zip(&baseline.per_core_ipc)
            .map(|(ipc, base)| if *base > 0.0 { ipc / base } else { 1.0 })
            .sum::<f64>()
            / n
    }

    /// Aggregate IPC (sum over cores).
    pub fn total_ipc(&self) -> f64 {
        self.per_core_ipc.iter().sum()
    }
}

/// Geometric mean of a slice of positive values (1.0 for an empty slice).
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(ipc: Vec<f64>) -> PerformanceResult {
        PerformanceResult {
            per_core_ipc: ipc,
            elapsed_cycles: 1000,
            requests: 100,
        }
    }

    #[test]
    fn weighted_speedup_of_identical_runs_is_one() {
        let a = result(vec![1.0, 2.0, 3.0]);
        assert!((a.weighted_speedup(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn slower_run_has_speedup_below_one() {
        let base = result(vec![2.0, 2.0]);
        let slow = result(vec![1.0, 2.0]);
        assert!((slow.weighted_speedup(&base) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn geometric_mean_basics() {
        assert!((geometric_mean(&[1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
        assert_eq!(geometric_mean(&[]), 1.0);
    }

    #[test]
    #[should_panic(expected = "core count")]
    fn mismatched_core_counts_panic() {
        let a = result(vec![1.0]);
        let b = result(vec![1.0, 2.0]);
        let _ = a.weighted_speedup(&b);
    }
}
