//! Performance metrics: IPC, weighted speedup and normalization helpers.
//!
//! All reductions here use Neumaier-compensated summation in the input's order:
//! parallel sweeps hand results back in deterministic input order, and the
//! compensation makes the aggregate insensitive to the rounding drift a plain
//! left-to-right `sum()` accumulates, so serial and parallel sweeps report
//! bit-identical geometric means.

/// Neumaier-compensated sum of an iterator of values: same result every run for the
/// same input order, and far less rounding drift than a naive running sum.
fn compensated_sum(values: impl Iterator<Item = f64>) -> f64 {
    let mut sum = 0.0f64;
    let mut compensation = 0.0f64;
    for v in values {
        let t = sum + v;
        compensation += if sum.abs() >= v.abs() {
            (sum - t) + v
        } else {
            (v - t) + sum
        };
        sum = t;
    }
    sum + compensation
}

/// Per-core and aggregate performance results of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct PerformanceResult {
    /// Instructions per DRAM cycle achieved by each core.
    pub per_core_ipc: Vec<f64>,
    /// Total simulated duration in DRAM cycles.
    pub elapsed_cycles: u64,
    /// Total demand requests serviced.
    pub requests: u64,
}

impl PerformanceResult {
    /// Weighted speedup of this run relative to a baseline run of the same workload:
    /// `(1/N) Σ IPC_i / IPC_baseline_i` (the paper's "normalized weighted speedup").
    ///
    /// # Panics
    ///
    /// Panics if the two runs have different core counts.
    pub fn weighted_speedup(&self, baseline: &PerformanceResult) -> f64 {
        assert_eq!(
            self.per_core_ipc.len(),
            baseline.per_core_ipc.len(),
            "core count mismatch"
        );
        let n = self.per_core_ipc.len() as f64;
        compensated_sum(
            self.per_core_ipc
                .iter()
                .zip(&baseline.per_core_ipc)
                .map(|(ipc, base)| if *base > 0.0 { ipc / base } else { 1.0 }),
        ) / n
    }

    /// Aggregate IPC (sum over cores).
    pub fn total_ipc(&self) -> f64 {
        compensated_sum(self.per_core_ipc.iter().copied())
    }
}

/// Geometric mean of a slice of positive values (1.0 for an empty slice).
///
/// Non-positive values are clamped to `1e-12` before taking logarithms, so a
/// degenerate run (zero IPC) cannot produce a NaN that poisons a whole figure.
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let log_sum = compensated_sum(values.iter().map(|v| v.max(1e-12).ln()));
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(ipc: Vec<f64>) -> PerformanceResult {
        PerformanceResult {
            per_core_ipc: ipc,
            elapsed_cycles: 1000,
            requests: 100,
        }
    }

    #[test]
    fn weighted_speedup_of_identical_runs_is_one() {
        let a = result(vec![1.0, 2.0, 3.0]);
        assert!((a.weighted_speedup(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn slower_run_has_speedup_below_one() {
        let base = result(vec![2.0, 2.0]);
        let slow = result(vec![1.0, 2.0]);
        assert!((slow.weighted_speedup(&base) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn geometric_mean_basics() {
        assert!((geometric_mean(&[1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
        assert_eq!(geometric_mean(&[]), 1.0);
    }

    #[test]
    fn compensated_sum_beats_naive_on_adversarial_input() {
        // 1.0 followed by many tiny values that a naive f64 sum drops entirely.
        let tiny = 1e-16;
        let mut values = vec![1.0f64];
        values.extend(std::iter::repeat_n(tiny, 10_000));
        let naive: f64 = values.iter().sum();
        let compensated = compensated_sum(values.iter().copied());
        let exact = 1.0 + tiny * 10_000.0;
        assert_eq!(naive, 1.0, "naive sum should lose the tail (sanity check)");
        assert!((compensated - exact).abs() < 1e-18);
    }

    #[test]
    fn geometric_mean_tolerates_non_positive_values() {
        let g = geometric_mean(&[0.0, 1.0]);
        assert!(g.is_finite() && g >= 0.0);
    }

    #[test]
    #[should_panic(expected = "core count")]
    fn mismatched_core_counts_panic() {
        let a = result(vec![1.0]);
        let b = result(vec![1.0, 2.0]);
        let _ = a.weighted_speedup(&b);
    }
}
