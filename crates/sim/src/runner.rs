//! High-level experiment runner: build, run and normalize workload × defense sweeps.
//!
//! Every performance figure of the paper has the same structure: run a set of
//! workloads under a set of memory-controller configurations and report performance
//! normalized to a baseline configuration. [`ExperimentRunner::run_sweep`] is the
//! engine behind the figure binaries: it computes each workload's baseline run
//! exactly once, shares the frozen baseline table across every configuration, and
//! executes the `(workload, configuration)` cells on a thread pool
//! (`IMPRESS_THREADS`, default: all cores) with deterministic, input-ordered results —
//! a parallel sweep is bit-for-bit identical to a serial one.
//! [`ExperimentRunner::run_normalized`] remains for one-off cells and caches
//! baselines incrementally.

use std::collections::HashMap;

use impress_exec::par_map_with;

use impress_core::config::ProtectionConfig;
use impress_dram::timing::Cycle;
use impress_memctrl::{ControllerConfig, PagePolicy};
use impress_workloads::{LocalityClass, WorkloadMix};

use crate::config::SystemConfig;
use crate::metrics::geometric_mean;
use crate::system::{RunOutput, System};

/// A named memory-system configuration to evaluate.
#[derive(Debug, Clone)]
pub struct Configuration {
    /// Label used in experiment output (e.g. `"ImPress-P"` or `"tMRO=66ns"`).
    pub label: String,
    /// Row-buffer policy (carries the tMRO limit for ExPress-style configurations).
    pub page_policy: PagePolicy,
    /// Rowhammer/Row-Press protection, if any.
    pub protection: Option<ProtectionConfig>,
}

impl Configuration {
    /// An unprotected open-page baseline.
    pub fn unprotected() -> Self {
        Self {
            label: "Unprotected".to_string(),
            page_policy: PagePolicy::open(),
            protection: None,
        }
    }

    /// An unprotected configuration with a maximum row-open time (the Figure 3 sweep).
    pub fn with_tmro(label: impl Into<String>, t_mro: Cycle) -> Self {
        Self {
            label: label.into(),
            page_policy: PagePolicy::open_with_tmro(t_mro),
            protection: None,
        }
    }

    /// A protected configuration (the page policy is derived from the defense: ExPress
    /// sets its tMRO, everything else runs unrestricted open-page).
    pub fn protected(label: impl Into<String>, protection: ProtectionConfig) -> Self {
        Self {
            label: label.into(),
            page_policy: PagePolicy::open(),
            protection: Some(protection),
        }
    }

    /// The controller configuration this experiment cell runs under (shared by
    /// the synthetic [`ExperimentRunner`] and the trace-driven
    /// [`crate::trace_runner::TraceRunner`]).
    pub fn controller_config(&self) -> ControllerConfig {
        let base = ControllerConfig::baseline().with_page_policy(self.page_policy);
        match &self.protection {
            Some(p) => base.with_protection(p.clone()),
            None => base,
        }
    }
}

/// The result of running one workload under one configuration, normalized to that
/// workload's baseline run.
#[derive(Debug, Clone)]
pub struct NormalizedResult {
    /// Workload name.
    pub workload: String,
    /// Workload class (SPEC or STREAM).
    pub class: LocalityClass,
    /// Configuration label.
    pub configuration: String,
    /// Weighted speedup relative to the baseline configuration (1.0 = no slowdown).
    pub normalized_performance: f64,
    /// Raw run output (stats, energy) for deeper analysis.
    pub output: RunOutput,
}

/// Options shared by every sweep entry point (and by the trace-driven
/// [`crate::trace_runner::TraceRunner`], which takes its thread knobs from the
/// same type).
///
/// Every field is an override; `None` keeps the corresponding default. All
/// combinations produce bit-for-bit identical simulation results — these are
/// scheduling and reporting knobs, never semantics.
#[derive(Debug, Clone, Default)]
pub struct SweepOptions {
    /// Sweep-level workers executing `(workload, configuration)` cells
    /// (`None`: [`impress_exec::thread_count`], the `IMPRESS_THREADS` knob).
    pub threads: Option<usize>,
    /// Workers executing channel shards inside each run (`None`: the runner's
    /// configured value, default 1 — see [`ExperimentRunner::with_shard_threads`]).
    pub shard_threads: Option<usize>,
    /// Baseline configuration to normalize against (`None`: raw outputs only).
    pub normalization: Option<Configuration>,
}

/// The outputs of [`ExperimentRunner::run_sweep_with_options`]: raw cell outputs,
/// plus normalized results when [`SweepOptions::normalization`] was set. Both are
/// nested `result[configuration][workload]`, matching the argument order.
#[derive(Debug)]
pub struct SweepResults {
    /// Raw run outputs for every cell.
    pub raw: Vec<Vec<RunOutput>>,
    /// Normalized results, present iff a normalization baseline was requested.
    pub normalized: Option<Vec<Vec<NormalizedResult>>>,
}

/// Runs workloads under configurations and normalizes against a baseline configuration.
///
/// Two independent parallelism axes are available: *sweep-level* (cells of a
/// `workloads × configurations` grid run on the pool — [`ExperimentRunner::run_sweep`])
/// and *channel-level* (each individual run executes its channel shards on the epoch
/// pool — [`ExperimentRunner::with_shard_threads`]). Results are bit-for-bit
/// identical along both axes at any thread count, so they compose freely; the
/// default is sweep-level only, which keeps every worker busy without
/// oversubscribing.
#[derive(Debug)]
pub struct ExperimentRunner {
    system: SystemConfig,
    seed: u64,
    shard_threads: usize,
    baseline_cache: HashMap<String, RunOutput>,
}

impl Default for ExperimentRunner {
    fn default() -> Self {
        Self::new()
    }
}

impl ExperimentRunner {
    /// Creates a runner with the paper's baseline system configuration.
    pub fn new() -> Self {
        Self {
            system: SystemConfig::baseline(),
            seed: 0x1A7E_2024,
            shard_threads: 1,
            baseline_cache: HashMap::new(),
        }
    }

    /// Overrides the number of requests each core issues per run (simulation length).
    pub fn with_requests_per_core(mut self, requests: u64) -> Self {
        self.system.requests_per_core = requests;
        self
    }

    /// Executes each individual run's channel shards on up to `threads` workers (the
    /// epoch-phased loop; clamped to the channel count, `1` = inline).
    ///
    /// Outputs are bit-for-bit identical for every value, so this is purely a
    /// scheduling knob: prefer it over sweep-level parallelism when the sweep has
    /// fewer cells than the machine has cores (e.g. a single long run of a
    /// many-channel system).
    pub fn with_shard_threads(mut self, threads: usize) -> Self {
        self.shard_threads = threads.max(1);
        self
    }

    /// Runs `workload` under `configuration` and returns the raw output.
    pub fn run_raw(&self, workload: &str, configuration: &Configuration) -> RunOutput {
        self.run_raw_with(workload, configuration, self.shard_threads)
    }

    fn run_raw_with(
        &self,
        workload: &str,
        configuration: &Configuration,
        shard_threads: usize,
    ) -> RunOutput {
        let mix = WorkloadMix::by_name(workload, self.seed)
            .unwrap_or_else(|| panic!("unknown workload {workload}"));
        let config = self
            .system
            .clone()
            .with_controller(configuration.controller_config());
        System::new(config, mix).run_with_threads(shard_threads)
    }

    /// Runs `workload` under `baseline` (cached) and `configuration`, returning the
    /// normalized result.
    pub fn run_normalized(
        &mut self,
        workload: &str,
        baseline: &Configuration,
        configuration: &Configuration,
    ) -> NormalizedResult {
        let cache_key = format!("{workload}::{}", baseline.label);
        if !self.baseline_cache.contains_key(&cache_key) {
            let output = self.run_raw(workload, baseline);
            self.baseline_cache.insert(cache_key.clone(), output);
        }
        let baseline_output = self.baseline_cache.get(&cache_key).expect("just inserted");
        self.normalize(workload, baseline_output, configuration)
    }

    /// Builds the normalized result of one already-run cell against a baseline output.
    fn normalize(
        &self,
        workload: &str,
        baseline_output: &RunOutput,
        configuration: &Configuration,
    ) -> NormalizedResult {
        let output = self.run_raw(workload, configuration);
        let class = WorkloadMix::by_name(workload, self.seed)
            .expect("workload exists")
            .class();
        let normalized_performance = output
            .performance
            .weighted_speedup(&baseline_output.performance);
        NormalizedResult {
            workload: workload.to_string(),
            class,
            configuration: configuration.label.clone(),
            normalized_performance,
            output,
        }
    }

    /// The single sweep engine: runs the `workloads` × `configurations` grid on
    /// the pool and (optionally) normalizes every cell against
    /// [`SweepOptions::normalization`].
    ///
    /// Cells run in parallel with deterministic, input-ordered results; when a
    /// normalization baseline is set, one baseline run per workload is computed
    /// (in parallel), frozen into a read-only table, and shared by every
    /// configuration. Output nesting is `result[configuration][workload]`,
    /// matching the argument order; contents are bit-for-bit identical for any
    /// worker count, including 1.
    ///
    /// [`ExperimentRunner::run_sweep`], [`ExperimentRunner::run_sweep_with_threads`]
    /// and [`ExperimentRunner::run_sweep_raw`] are thin wrappers over this method.
    pub fn run_sweep_with_options(
        &self,
        workloads: &[&str],
        configurations: &[Configuration],
        options: &SweepOptions,
    ) -> SweepResults {
        let threads = options.threads.unwrap_or_else(impress_exec::thread_count);
        let shard_threads = options.shard_threads.unwrap_or(self.shard_threads);

        let raw = run_cells(threads, workloads.len(), configurations.len(), |c, w| {
            self.run_raw_with(workloads[w], &configurations[c], shard_threads)
        });

        let normalized = options.normalization.as_ref().map(|baseline| {
            let baselines: Vec<RunOutput> = par_map_with(threads, workloads, |w| {
                self.run_raw_with(w, baseline, shard_threads)
            });
            raw.iter()
                .enumerate()
                .map(|(c, row)| {
                    row.iter()
                        .enumerate()
                        .map(|(w, output)| {
                            let class = WorkloadMix::by_name(workloads[w], self.seed)
                                .expect("workload exists")
                                .class();
                            NormalizedResult {
                                workload: workloads[w].to_string(),
                                class,
                                configuration: configurations[c].label.clone(),
                                normalized_performance: output
                                    .performance
                                    .weighted_speedup(&baselines[w].performance),
                                output: output.clone(),
                            }
                        })
                        .collect()
                })
                .collect()
        });

        SweepResults { raw, normalized }
    }

    /// Runs the full `workloads` × `configurations` sweep in parallel, normalizing
    /// every cell against `baseline` — [`ExperimentRunner::run_sweep_with_options`]
    /// with default threads ([`impress_exec::thread_count`], the `IMPRESS_THREADS`
    /// knob) and `baseline` as the normalization.
    pub fn run_sweep(
        &self,
        workloads: &[&str],
        baseline: &Configuration,
        configurations: &[Configuration],
    ) -> Vec<Vec<NormalizedResult>> {
        self.run_sweep_with_options(
            workloads,
            configurations,
            &SweepOptions {
                normalization: Some(baseline.clone()),
                ..SweepOptions::default()
            },
        )
        .normalized
        .expect("normalization was requested")
    }

    /// [`ExperimentRunner::run_sweep`] with an explicit worker count (1 = serial).
    pub fn run_sweep_with_threads(
        &self,
        threads: usize,
        workloads: &[&str],
        baseline: &Configuration,
        configurations: &[Configuration],
    ) -> Vec<Vec<NormalizedResult>> {
        self.run_sweep_with_options(
            workloads,
            configurations,
            &SweepOptions {
                threads: Some(threads),
                normalization: Some(baseline.clone()),
                ..SweepOptions::default()
            },
        )
        .normalized
        .expect("normalization was requested")
    }

    /// Runs `workloads` under each configuration in parallel, returning the raw
    /// outputs as `result[configuration][workload]` (no normalization) — the sweep
    /// entry point for figures that aggregate activation counts or energy.
    pub fn run_sweep_raw(
        &self,
        workloads: &[&str],
        configurations: &[Configuration],
    ) -> Vec<Vec<RunOutput>> {
        self.run_sweep_with_options(workloads, configurations, &SweepOptions::default())
            .raw
    }

    /// Geometric mean of the normalized performance of a slice of results, filtered by
    /// workload class (`None` averages everything).
    pub fn gmean_by_class(results: &[NormalizedResult], class: Option<LocalityClass>) -> f64 {
        let values: Vec<f64> = results
            .iter()
            .filter(|r| class.is_none_or(|c| r.class == c))
            .map(|r| r.normalized_performance)
            .collect();
        geometric_mean(&values)
    }
}

/// Shared sweep-cell executor: runs `f(configuration_index, workload_index)` for every
/// cell on the pool, flattened configuration-major so the dynamic scheduler balances
/// uneven workloads, and regroups results as `out[configuration][workload]`.
fn run_cells<R: Send>(
    threads: usize,
    workloads: usize,
    configurations: usize,
    f: impl Fn(usize, usize) -> R + Sync,
) -> Vec<Vec<R>> {
    let cells: Vec<(usize, usize)> = (0..configurations)
        .flat_map(|c| (0..workloads).map(move |w| (c, w)))
        .collect();
    let results = par_map_with(threads, &cells, |&(c, w)| f(c, w));
    let mut per_configuration: Vec<Vec<R>> = Vec::with_capacity(configurations);
    let mut it = results.into_iter();
    for _ in 0..configurations {
        per_configuration.push(it.by_ref().take(workloads).collect());
    }
    per_configuration
}

#[cfg(test)]
mod tests {
    use super::*;
    use impress_core::config::{DefenseKind, TrackerChoice};
    use impress_dram::timing::ns_to_cycles;

    fn runner() -> ExperimentRunner {
        ExperimentRunner::new().with_requests_per_core(3_000)
    }

    #[test]
    fn baseline_normalizes_to_one() {
        let mut r = runner();
        let base = Configuration::unprotected();
        let result = r.run_normalized("gcc", &base, &base);
        assert!((result.normalized_performance - 1.0).abs() < 1e-9);
    }

    #[test]
    fn tight_tmro_slows_stream_more_than_spec() {
        let mut r = runner();
        let base = Configuration::unprotected();
        let tight = Configuration::with_tmro("tMRO=36ns", ns_to_cycles(36));
        let stream = r.run_normalized("copy", &base, &tight);
        let spec = r.run_normalized("xalancbmk", &base, &tight);
        assert!(
            stream.normalized_performance < spec.normalized_performance,
            "stream {} should be hurt more than spec {}",
            stream.normalized_performance,
            spec.normalized_performance
        );
        assert!(spec.normalized_performance > 0.9);
    }

    #[test]
    fn impress_p_graphene_has_negligible_overhead() {
        let mut r = runner();
        let base = Configuration::unprotected();
        let protected = Configuration::protected(
            "Graphene+ImPress-P",
            ProtectionConfig::paper_default(
                TrackerChoice::Graphene,
                DefenseKind::impress_p_default(),
            ),
        );
        let result = r.run_normalized("bwaves", &base, &protected);
        assert!(
            result.normalized_performance > 0.97,
            "normalized = {}",
            result.normalized_performance
        );
    }

    #[test]
    fn sweep_matches_run_normalized() {
        let r = runner();
        let base = Configuration::unprotected();
        let tight = Configuration::with_tmro("tMRO=66ns", ns_to_cycles(66));
        let sweep = r.run_sweep(&["gcc", "copy"], &base, std::slice::from_ref(&tight));
        assert_eq!(sweep.len(), 1);
        assert_eq!(sweep[0].len(), 2);

        let mut serial = runner();
        for (i, w) in ["gcc", "copy"].iter().enumerate() {
            let expect = serial.run_normalized(w, &base, &tight);
            assert_eq!(sweep[0][i].workload, expect.workload);
            assert_eq!(
                sweep[0][i].normalized_performance.to_bits(),
                expect.normalized_performance.to_bits(),
                "sweep cell {w} differs from run_normalized"
            );
        }
    }

    #[test]
    fn parallel_sweep_is_bit_identical_to_serial() {
        let r = runner();
        let base = Configuration::unprotected();
        let configs = vec![
            Configuration::with_tmro("tMRO=36ns", ns_to_cycles(36)),
            Configuration::protected(
                "Graphene+ImPress-P",
                ProtectionConfig::paper_default(
                    TrackerChoice::Graphene,
                    DefenseKind::impress_p_default(),
                ),
            ),
        ];
        let workloads = ["gcc", "copy", "mcf"];
        let serial = r.run_sweep_with_threads(1, &workloads, &base, &configs);
        let parallel = r.run_sweep_with_threads(4, &workloads, &base, &configs);
        for (sc, pc) in serial.iter().zip(&parallel) {
            for (s, p) in sc.iter().zip(pc) {
                assert_eq!(s.workload, p.workload);
                assert_eq!(s.configuration, p.configuration);
                assert_eq!(
                    s.normalized_performance.to_bits(),
                    p.normalized_performance.to_bits()
                );
                assert_eq!(
                    s.output.performance.elapsed_cycles,
                    p.output.performance.elapsed_cycles
                );
                assert_eq!(s.output.memory.banks, p.output.memory.banks);
            }
        }
    }

    #[test]
    fn options_engine_matches_the_legacy_wrappers() {
        let r = runner();
        let base = Configuration::unprotected();
        let configs = vec![Configuration::with_tmro("tMRO=66ns", ns_to_cycles(66))];
        let workloads = ["gcc", "copy"];

        let results = r.run_sweep_with_options(
            &workloads,
            &configs,
            &SweepOptions {
                threads: Some(2),
                shard_threads: Some(2),
                normalization: Some(base.clone()),
            },
        );
        let legacy = r.run_sweep_with_threads(1, &workloads, &base, &configs);
        let normalized = results.normalized.expect("normalization requested");
        assert_eq!(results.raw.len(), 1);
        assert_eq!(results.raw[0].len(), 2);
        for (n, l) in normalized[0].iter().zip(&legacy[0]) {
            assert_eq!(n.workload, l.workload);
            assert_eq!(
                n.normalized_performance.to_bits(),
                l.normalized_performance.to_bits()
            );
        }
        // Raw outputs are the same runs the normalized results wrap.
        for (raw, n) in results.raw[0].iter().zip(&normalized[0]) {
            assert_eq!(
                raw.performance.elapsed_cycles,
                n.output.performance.elapsed_cycles
            );
        }
    }

    #[test]
    fn sweep_raw_matches_run_raw() {
        let r = runner();
        let cfg = Configuration::unprotected();
        let raw = r.run_sweep_raw(&["wrf"], std::slice::from_ref(&cfg));
        let direct = r.run_raw("wrf", &cfg);
        assert_eq!(
            raw[0][0].performance.elapsed_cycles,
            direct.performance.elapsed_cycles
        );
        assert_eq!(raw[0][0].memory.banks, direct.memory.banks);
    }

    #[test]
    fn gmean_by_class_filters() {
        let mut r = runner();
        let base = Configuration::unprotected();
        let cfg = Configuration::unprotected();
        let results = vec![
            r.run_normalized("gcc", &base, &cfg),
            r.run_normalized("copy", &base, &cfg),
        ];
        let spec = ExperimentRunner::gmean_by_class(&results, Some(LocalityClass::Spec));
        let all = ExperimentRunner::gmean_by_class(&results, None);
        assert!((spec - 1.0).abs() < 1e-9);
        assert!((all - 1.0).abs() < 1e-9);
    }
}
