//! The epoch-phased shard driver behind [`crate::System::run_with_threads`].
//!
//! A run is a sequence of *epochs*. Each epoch covers the issue-time window
//! `[T, T + L)` where `T` is the earliest cycle any core can issue and `L` is the
//! guaranteed minimum access latency of the memory system
//! ([`ChannelShard::min_access_latency`], `tCAS + tBURST`). The window length is the
//! load-bearing choice: an access issued inside the window completes at or after
//! `T + L`, i.e. strictly outside it, so **no core-timing feedback ever crosses an
//! epoch boundary**. That gives the loop three phases:
//!
//! 1. **Issue** — replay the serial scheduler exactly: repeatedly pick the
//!    lowest-numbered core with the minimal next issue time below the window end
//!    ([`crate::CoreModel::next_issue_before`], which is exact under the window
//!    invariant), draw its next access from the workload mix, decode the address and
//!    append it to the owning channel's queue. The global issue order is recorded.
//! 2. **Execute** — run every channel shard over its queue. Channels share no state,
//!    and each shard sees its requests in the same order and at the same cycles as a
//!    serial controller would, so this phase parallelizes freely across the
//!    `impress-exec` epoch pool ([`impress_exec::epoch_scope`], honoring
//!    `IMPRESS_THREADS` via [`crate::System::run_sharded`]) — with results that are
//!    bit-for-bit identical at *any* worker count, including the inline 1-thread
//!    path.
//! 3. **Merge** — walk the recorded issue order and feed each completion time back to
//!    its core ([`crate::CoreModel::resolve_pending`]). After the merge every
//!    completion is resolved, which re-establishes the issue-phase invariant for the
//!    next epoch.
//!
//! Because phase 1 reproduces the serial issue schedule exactly and each shard's
//! request sequence is the serial per-channel sequence, the whole loop is bit-for-bit
//! identical to the pre-shard serial `System::run` — `tests/sharded_determinism.rs`
//! pins this against a literal transcription of that loop.

use std::sync::Mutex;

use impress_dram::address::DramAddress;
use impress_dram::timing::Cycle;
use impress_memctrl::ChannelShard;

/// One demand access routed to a channel queue during the issue phase.
#[derive(Debug, Clone, Copy)]
pub(crate) struct QueuedAccess {
    pub location: DramAddress,
    pub is_write: bool,
    /// Cycle at which the access reaches the controller (its exact issue time).
    pub at: Cycle,
}

/// A channel shard plus its epoch queue and completion buffer.
///
/// The buffers are swapped with driver-owned vectors around each epoch, so the
/// steady-state loop performs no allocation.
#[derive(Debug)]
pub(crate) struct ShardTask {
    pub shard: ChannelShard,
    pub queue: Vec<QueuedAccess>,
    pub completions: Vec<Cycle>,
    /// The epoch window length; only used to check the window invariant.
    min_latency: Cycle,
}

impl ShardTask {
    pub fn new(shard: ChannelShard, min_latency: Cycle) -> Self {
        Self {
            shard,
            queue: Vec::new(),
            completions: Vec::new(),
            min_latency,
        }
    }

    /// Executes the queued accesses in order, recording each completion time.
    pub fn execute(&mut self) {
        let Self {
            shard,
            queue,
            completions,
            min_latency,
        } = self;
        completions.clear();
        for q in queue.iter() {
            let outcome = shard.access(q.location, q.is_write, q.at);
            debug_assert!(
                outcome.completed_at >= q.at + *min_latency,
                "access completed inside its epoch window: issued {} completed {} (L = {})",
                q.at,
                outcome.completed_at,
                min_latency
            );
            completions.push(outcome.completed_at);
        }
    }
}

/// The shard tasks of one run, each behind a `Mutex` so the epoch pool's workers can
/// claim them dynamically. A task is locked by exactly one thread at a time (the
/// claim index hands each task to one worker per epoch; the driver only touches
/// tasks between epochs), so the locks are always uncontended — they exist to make
/// the sharing safe, not to arbitrate.
pub(crate) type ShardTasks = Vec<Mutex<ShardTask>>;

pub(crate) fn make_tasks(shards: Vec<ChannelShard>, min_latency: Cycle) -> ShardTasks {
    shards
        .into_iter()
        .map(|shard| Mutex::new(ShardTask::new(shard, min_latency)))
        .collect()
}

/// Locks a task; the lock is uncontended by construction (see [`ShardTasks`]).
pub(crate) fn lock_task(tasks: &ShardTasks, index: usize) -> std::sync::MutexGuard<'_, ShardTask> {
    tasks[index].lock().expect("shard task mutex poisoned")
}
