//! The epoch-phased shard driver behind [`crate::System::run_with_threads`].
//!
//! A run is a sequence of *epochs*, each with three phases:
//!
//! 1. **Issue** — replay the serial scheduler exactly: repeatedly pick the
//!    lowest-numbered core with the minimal provably-exact next issue time (a
//!    heap-based ready queue ordered by `(cycle, core)` — see
//!    [`crate::CoreModel::next_issue_bound`]), draw its next access from the
//!    workload mix, decode the address and append it to the owning channel's queue.
//!    The global issue order is recorded.
//! 2. **Execute** — run every channel shard over its queue. Channels share no state,
//!    and each shard sees its requests in the same order and at the same cycles as a
//!    serial controller would, so this phase parallelizes freely across the
//!    `impress-exec` epoch pool ([`impress_exec::epoch_scope`], honoring
//!    `IMPRESS_THREADS` via [`crate::System::run_sharded`]) — with results that are
//!    bit-for-bit identical at *any* worker count, including the inline 1-thread
//!    path.
//! 3. **Merge** — walk the recorded issue order and feed each completion time back to
//!    its core ([`crate::CoreModel::resolve_pending`]). After the merge every
//!    completion is resolved, which re-establishes the issue-phase invariant for the
//!    next epoch.
//!
//! How long an epoch's issue window runs is governed by a [`HorizonMode`]:
//!
//! * [`HorizonMode::Fixed`] caps the window at the guaranteed minimum access
//!   latency ([`ChannelShard::min_access_latency`], `tCAS + tBURST`) past the
//!   epoch's first issue — the PR 3 loop. No access issued inside such a window
//!   can complete inside it, so every issue decision is trivially exact; but a run
//!   degenerates into thousands of tiny fork-join rounds whose barrier cost eats
//!   the shard parallelism.
//! * [`HorizonMode::Adaptive`] (the default) bounds the window by the *dependency
//!   structure* instead: cores keep issuing while their next issue time is provably
//!   independent of every unresolved completion. Front-end-limited cores extend
//!   the window freely; a core whose MLP window fills up with pending issues
//!   contributes a horizon bound at `max(front_end, oldest_pending_issue + L)` —
//!   the earliest cycle any of its pending completions can land, backed by the
//!   per-access latency lower bound [`ChannelShard::min_access_latency`] asserts.
//!   Issuing stops once every ready core's next exact issue time reaches the
//!   minimum of those bounds. Streams and high-MLP mixes batch tens to hundreds
//!   of issues per barrier instead of a handful.
//!
//! Both modes replay the serial scheduler's issue order and completion-visibility
//! decisions exactly, so the whole loop is bit-for-bit identical to the pre-shard
//! serial `System::run` at any `IMPRESS_THREADS` — `tests/sharded_determinism.rs`
//! pins both modes against a literal transcription of that loop, and
//! `crates/sim/src/core_model.rs` pins the per-core exactness argument.

use std::sync::Mutex;

use impress_dram::address::DramAddress;
use impress_dram::timing::Cycle;
use impress_memctrl::ChannelShard;

/// How the epoch-phased run loop sizes its issue windows.
///
/// Both modes produce bit-for-bit identical simulation output (the issue schedule
/// is the serial scheduler's either way); they differ only in how many issues are
/// batched between barriers, i.e. in wall-clock cost. [`HorizonMode::Adaptive`] is
/// the default; `Fixed` is retained as the reference point `perf_report` and the
/// determinism suite compare against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HorizonMode {
    /// Issue window capped at the guaranteed minimum access latency past the
    /// epoch's first issue (the PR 3 loop).
    Fixed,
    /// Dependency-bounded window: issue until every eligible core's next issue
    /// time depends on an unresolved completion.
    #[default]
    Adaptive,
}

/// Environment variable selecting the default [`HorizonMode`]
/// (`fixed`/`adaptive`; anything else falls back to adaptive).
pub const HORIZON_ENV: &str = "IMPRESS_HORIZON";

impl HorizonMode {
    /// The mode selected by the `IMPRESS_HORIZON` environment variable
    /// (default: [`HorizonMode::Adaptive`]).
    pub fn from_env() -> Self {
        Self::parse(std::env::var(HORIZON_ENV).ok().as_deref())
    }

    /// Parsing behind [`HorizonMode::from_env`], split out so tests can cover it
    /// without mutating process-global environment state (tests in one binary
    /// run concurrently, and other tests read the variable via `System::run`).
    fn parse(value: Option<&str>) -> Self {
        match value {
            Some(v) if v.trim().eq_ignore_ascii_case("fixed") => HorizonMode::Fixed,
            _ => HorizonMode::Adaptive,
        }
    }
}

/// Issue-batching statistics of one epoch-phased run.
///
/// These describe the *scheduling* of the run (how much work each fork-join round
/// amortized), not its simulated outcome: fixed- and adaptive-horizon runs of the
/// same system produce identical [`crate::RunOutput`] simulation results but very
/// different `EpochStats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EpochStats {
    /// Fork-join rounds (epochs) the run needed.
    pub epochs: u64,
    /// Demand accesses issued (equals the run's total request count).
    pub issues: u64,
    /// Sum over epochs of the issue-window span in cycles
    /// (`last_issue - first_issue + 1`).
    pub window_cycles: u64,
}

impl EpochStats {
    /// Mean demand accesses issued per epoch barrier.
    pub fn mean_issues_per_epoch(&self) -> f64 {
        if self.epochs == 0 {
            0.0
        } else {
            self.issues as f64 / self.epochs as f64
        }
    }

    /// Mean issue-window span per epoch, in simulated cycles.
    pub fn mean_window_cycles(&self) -> f64 {
        if self.epochs == 0 {
            0.0
        } else {
            self.window_cycles as f64 / self.epochs as f64
        }
    }
}

/// One demand access routed to a channel queue during the issue phase.
#[derive(Debug, Clone, Copy)]
pub(crate) struct QueuedAccess {
    pub location: DramAddress,
    pub is_write: bool,
    /// Cycle at which the access reaches the controller (its exact issue time).
    pub at: Cycle,
}

/// A channel shard plus its epoch queue and completion buffer.
///
/// The buffers are swapped with driver-owned vectors around each epoch, so the
/// steady-state loop performs no allocation.
#[derive(Debug)]
pub(crate) struct ShardTask {
    pub shard: ChannelShard,
    pub queue: Vec<QueuedAccess>,
    pub completions: Vec<Cycle>,
    /// The per-access latency lower bound; only used to check the invariant the
    /// adaptive horizon relies on.
    min_latency: Cycle,
}

impl ShardTask {
    pub fn new(shard: ChannelShard, min_latency: Cycle) -> Self {
        Self {
            shard,
            queue: Vec::new(),
            completions: Vec::new(),
            min_latency,
        }
    }

    /// Executes the queued accesses in order, recording each completion time.
    pub fn execute(&mut self) {
        let Self {
            shard,
            queue,
            completions,
            min_latency,
        } = self;
        completions.clear();
        for q in queue.iter() {
            let outcome = shard.access(q.location, q.is_write, q.at);
            // The per-access lower bound every pending-completion deferral is
            // built on (`ChannelShard::access` asserts the same bound at the
            // source): an access can never complete within `min_latency` of its
            // issue. Unlike PR 3's fixed windows, an adaptive window may well be
            // longer than `min_latency` — completions of early accesses can land
            // *inside* the window — but any core whose next issue could observe
            // such a completion was deferred at issue time, so the bound below is
            // exactly what correctness needs.
            debug_assert!(
                outcome.completed_at >= q.at + *min_latency,
                "access completed within the minimum access latency: issued {} \
                 completed {} (lower bound {})",
                q.at,
                outcome.completed_at,
                min_latency
            );
            completions.push(outcome.completed_at);
        }
    }
}

/// The shard tasks of one run, each behind a `Mutex` so the epoch pool's workers can
/// claim them dynamically. A task is locked by exactly one thread at a time (the
/// claim index hands each task to one worker per epoch; the driver only touches
/// tasks between epochs), so the locks are always uncontended — they exist to make
/// the sharing safe, not to arbitrate.
pub(crate) type ShardTasks = Vec<Mutex<ShardTask>>;

pub(crate) fn make_tasks(shards: Vec<ChannelShard>, min_latency: Cycle) -> ShardTasks {
    shards
        .into_iter()
        .map(|shard| Mutex::new(ShardTask::new(shard, min_latency)))
        .collect()
}

/// Locks a task; the lock is uncontended by construction (see [`ShardTasks`]).
///
/// Poison is cleared rather than propagated: a contained shard-worker panic
/// (daemon quarantine) poisons the task's mutex, but the driver still needs the
/// shard for subsequent windows and final statistics.
pub(crate) fn lock_task(tasks: &ShardTasks, index: usize) -> std::sync::MutexGuard<'_, ShardTask> {
    tasks[index].lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn horizon_mode_parsing() {
        // Exercises the parser directly rather than set_var/remove_var: tests in
        // this binary run concurrently and others read the variable through
        // `System::run`, so mutating the process environment here would race.
        assert_eq!(HorizonMode::parse(Some("fixed")), HorizonMode::Fixed);
        assert_eq!(HorizonMode::parse(Some(" FIXED ")), HorizonMode::Fixed);
        assert_eq!(HorizonMode::parse(Some("adaptive")), HorizonMode::Adaptive);
        assert_eq!(HorizonMode::parse(Some("nonsense")), HorizonMode::Adaptive);
        assert_eq!(HorizonMode::parse(None), HorizonMode::Adaptive);
    }

    #[test]
    fn epoch_stats_means() {
        let s = EpochStats {
            epochs: 4,
            issues: 100,
            window_cycles: 400,
        };
        assert_eq!(s.mean_issues_per_epoch(), 25.0);
        assert_eq!(s.mean_window_cycles(), 100.0);
        assert_eq!(EpochStats::default().mean_issues_per_epoch(), 0.0);
        assert_eq!(EpochStats::default().mean_window_cycles(), 0.0);
    }
}
