//! The multi-core system model: cores + workload mix + memory controller.

use impress_dram::energy::{EnergyBreakdown, EnergyModel};
use impress_dram::stats::ChannelStats;
use impress_memctrl::MemoryController;
use impress_workloads::WorkloadMix;

use crate::config::SystemConfig;
use crate::core_model::CoreModel;
use crate::metrics::PerformanceResult;

/// Everything a simulation run produces: performance, memory statistics and energy.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// Workload name.
    pub workload: String,
    /// Per-core IPC and aggregate performance.
    pub performance: PerformanceResult,
    /// Memory-system statistics (activations, hits, mitigations, ...).
    pub memory: ChannelStats,
    /// DRAM energy breakdown for the run.
    pub energy: EnergyBreakdown,
}

impl RunOutput {
    /// Row-buffer hit rate of the run.
    pub fn row_hit_rate(&self) -> f64 {
        self.memory.banks.row_hit_rate()
    }

    /// Demand activations relative to demand accesses.
    pub fn activations_per_access(&self) -> f64 {
        if self.memory.banks.accesses() == 0 {
            0.0
        } else {
            self.memory.banks.activations as f64 / self.memory.banks.accesses() as f64
        }
    }
}

/// The simulated system: 8 cores driving the memory controller with a workload mix.
#[derive(Debug)]
pub struct System {
    config: SystemConfig,
    cores: Vec<CoreModel>,
    mix: WorkloadMix,
    controller: MemoryController,
}

impl System {
    /// Builds a system running `mix` under `config`.
    pub fn new(config: SystemConfig, mix: WorkloadMix) -> Self {
        assert_eq!(
            config.cores,
            mix.cores(),
            "workload mix must provide one trace per core"
        );
        let cores = (0..config.cores)
            .map(|i| {
                let instructions_per_miss = mix.instructions_per_miss(i);
                let mpki = 1000.0 / instructions_per_miss;
                let think_gap = instructions_per_miss / config.retire_per_dram_cycle;
                CoreModel::new(i, think_gap, config.mlp_for_mpki(mpki))
            })
            .collect();
        let controller = MemoryController::new(config.controller.clone());
        Self {
            config,
            cores,
            mix,
            controller,
        }
    }

    /// Runs the workload until every core has issued its request quota, returning the
    /// run's performance, memory statistics and energy.
    pub fn run(mut self) -> RunOutput {
        let quota = self.config.requests_per_core;
        let mut remaining: u64 = quota * self.cores.len() as u64;

        while remaining > 0 {
            // Pick the core that can issue earliest (and still has budget).
            let mut best: Option<(usize, u64)> = None;
            for core in &self.cores {
                if core.issued() >= quota {
                    continue;
                }
                let t = core.next_issue_time();
                if best.is_none_or(|(_, bt)| t < bt) {
                    best = Some((core.id(), t));
                }
            }
            let (core_id, now) = best.expect("remaining > 0 implies an eligible core");

            let access = self.mix.next_access(core_id);
            let outcome = self
                .controller
                .access_physical(access.address, access.is_write, now)
                .expect("workload addresses are within the configured capacity");
            self.cores[core_id].on_issue(now, outcome.completed_at);
            remaining -= 1;
        }

        let elapsed = self
            .cores
            .iter()
            .map(CoreModel::finish_time)
            .max()
            .unwrap_or(0);
        let per_core_ipc = self
            .cores
            .iter()
            .enumerate()
            .map(|(i, core)| {
                let instructions = core.issued() as f64 * self.mix.instructions_per_miss(i);
                let cycles = core.finish_time().max(1) as f64;
                instructions / cycles
            })
            .collect();

        let memory = self.controller.stats();
        let energy = EnergyModel::ddr5().energy(
            &memory.banks,
            elapsed,
            self.controller.total_banks(),
            &self.config.controller.timings,
        );

        RunOutput {
            workload: self.mix.name().to_string(),
            performance: PerformanceResult {
                per_core_ipc,
                elapsed_cycles: elapsed,
                requests: memory.requests,
            },
            memory,
            energy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use impress_memctrl::{ControllerConfig, PagePolicy};

    fn quick_config(requests: u64) -> SystemConfig {
        SystemConfig {
            requests_per_core: requests,
            controller: ControllerConfig::baseline(),
            ..SystemConfig::baseline()
        }
    }

    #[test]
    fn run_completes_and_reports_sane_statistics() {
        let mix = WorkloadMix::by_name("gcc", 1).unwrap();
        let out = System::new(quick_config(2_000), mix).run();
        assert_eq!(out.performance.per_core_ipc.len(), 8);
        assert_eq!(out.memory.requests, 8 * 2_000);
        assert!(out.performance.elapsed_cycles > 0);
        assert!(out.row_hit_rate() >= 0.0 && out.row_hit_rate() <= 1.0);
        assert!(out.energy.total_nj() > 0.0);
    }

    #[test]
    fn stream_has_higher_row_hit_rate_than_mcf() {
        let stream = System::new(
            quick_config(4_000),
            WorkloadMix::by_name("copy", 2).unwrap(),
        )
        .run();
        let mcf = System::new(quick_config(4_000), WorkloadMix::by_name("mcf", 2).unwrap()).run();
        assert!(
            stream.row_hit_rate() > mcf.row_hit_rate() + 0.2,
            "stream {} vs mcf {}",
            stream.row_hit_rate(),
            mcf.row_hit_rate()
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let a = System::new(quick_config(1_000), WorkloadMix::by_name("wrf", 7).unwrap()).run();
        let b = System::new(quick_config(1_000), WorkloadMix::by_name("wrf", 7).unwrap()).run();
        assert_eq!(a.performance.elapsed_cycles, b.performance.elapsed_cycles);
        assert_eq!(a.memory.banks.activations, b.memory.banks.activations);
    }

    #[test]
    fn closed_page_slows_down_stream() {
        let open = System::new(
            quick_config(4_000),
            WorkloadMix::by_name("triad", 3).unwrap(),
        )
        .run();
        let closed_cfg = quick_config(4_000)
            .with_controller(ControllerConfig::baseline().with_page_policy(PagePolicy::Closed));
        let closed = System::new(closed_cfg, WorkloadMix::by_name("triad", 3).unwrap()).run();
        let speedup = closed.performance.weighted_speedup(&open.performance);
        assert!(speedup < 0.98, "closed-page speedup = {speedup}");
    }
}
