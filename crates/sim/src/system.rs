//! The multi-core system model: cores + workload mix + memory controller.
//!
//! [`System::run`] executes the epoch-phased loop described in [`crate::sharded`]:
//! cores route requests to per-channel queues (issue phase), the channel shards
//! execute independently (execute phase — on the `impress-exec` epoch pool when more
//! than one thread is requested), and core timing feedback is reconciled at the
//! epoch barrier (merge phase). The output is bit-for-bit identical for any thread
//! count, and identical to the pre-shard serial loop.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use impress_dram::energy::{EnergyBreakdown, EnergyModel};
use impress_dram::stats::ChannelStats;
use impress_dram::timing::Cycle;
use impress_memctrl::{ChannelShard, MemoryController};
use impress_workloads::{AccessSource, WorkloadMix};

use crate::config::SystemConfig;
use crate::core_model::{CoreModel, IssueBound};
use crate::metrics::PerformanceResult;
use crate::sharded::{lock_task, make_tasks, EpochStats, HorizonMode, QueuedAccess};

/// Everything a simulation run produces: performance, memory statistics and energy.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// Workload name.
    pub workload: String,
    /// Per-core IPC and aggregate performance.
    pub performance: PerformanceResult,
    /// Memory-system statistics (activations, hits, mitigations, ...).
    pub memory: ChannelStats,
    /// DRAM energy breakdown for the run.
    pub energy: EnergyBreakdown,
    /// Issue-batching statistics of the epoch-phased loop. Scheduling metadata
    /// only: two runs of the same system agree on every *simulation* field above
    /// regardless of thread count or [`HorizonMode`], but their `epoch_stats`
    /// differ across horizon modes.
    pub epoch_stats: EpochStats,
}

impl RunOutput {
    /// Row-buffer hit rate of the run.
    pub fn row_hit_rate(&self) -> f64 {
        self.memory.banks.row_hit_rate()
    }

    /// Demand activations relative to demand accesses.
    pub fn activations_per_access(&self) -> f64 {
        if self.memory.banks.accesses() == 0 {
            0.0
        } else {
            self.memory.banks.activations as f64 / self.memory.banks.accesses() as f64
        }
    }
}

/// The simulated system: cores driving the memory controller with an access source.
///
/// The source defaults to the synthetic [`WorkloadMix`]; any [`AccessSource`] —
/// e.g. the trace-replay source built by [`crate::trace_runner::TraceRunner`] —
/// drives the identical epoch-phased loop with the same determinism guarantees.
#[derive(Debug)]
pub struct System<S: AccessSource = WorkloadMix> {
    config: SystemConfig,
    cores: Vec<CoreModel>,
    mix: S,
    controller: MemoryController,
}

impl<S: AccessSource> System<S> {
    /// Builds a system running `mix` under `config`.
    pub fn new(config: SystemConfig, mix: S) -> Self {
        assert_eq!(
            config.cores,
            mix.cores(),
            "access source must provide one stream per core"
        );
        let cores = (0..config.cores)
            .map(|i| {
                let instructions_per_miss = mix.instructions_per_miss(i);
                let mpki = 1000.0 / instructions_per_miss;
                let think_gap = instructions_per_miss / config.retire_per_dram_cycle;
                CoreModel::new(i, think_gap, config.mlp_for_mpki(mpki))
            })
            .collect();
        let controller = MemoryController::new(config.controller.clone());
        Self {
            config,
            cores,
            mix,
            controller,
        }
    }

    /// Runs the workload until every core has issued its request quota, returning the
    /// run's performance, memory statistics and energy.
    ///
    /// Runs the epoch-phased loop on a single thread (the shard execute phase is
    /// inlined); see [`System::run_sharded`] for intra-run channel parallelism. The
    /// output is identical either way.
    pub fn run(self) -> RunOutput {
        self.run_with_threads(1)
    }

    /// Runs with the channel shards of each epoch executed on `IMPRESS_THREADS`
    /// workers (default: all available cores) — [`System::run_with_threads`] with
    /// [`impress_exec::thread_count`].
    pub fn run_sharded(self) -> RunOutput {
        self.run_with_threads(impress_exec::thread_count())
    }

    /// Runs the epoch-phased loop with up to `threads` workers executing channel
    /// shards (clamped to the channel count; `1` executes inline) and the horizon
    /// mode selected by `IMPRESS_HORIZON` (default: adaptive).
    ///
    /// The result is **bit-for-bit identical for every `threads` value and either
    /// horizon mode**: the issue phase replays the serial scheduler exactly, shards
    /// share no state, and the merge phase resolves completions in global issue
    /// order. See [`crate::sharded`] for the argument.
    pub fn run_with_threads(self, threads: usize) -> RunOutput {
        self.run_with_horizon(threads, HorizonMode::from_env())
    }

    /// [`System::run_with_threads`] with an explicit [`HorizonMode`].
    pub fn run_with_horizon(self, threads: usize, mode: HorizonMode) -> RunOutput {
        let System {
            config,
            mut cores,
            mut mix,
            controller,
        } = self;
        let quota = config.requests_per_core;
        let mut remaining: u64 = quota * cores.len() as u64;

        let (controller_config, shards) = controller.into_parts();
        let min_latency = ChannelShard::min_access_latency(&controller_config.timings);
        let bus_spacing = ChannelShard::min_completion_spacing(&controller_config.timings);
        let tasks = make_tasks(shards, min_latency);
        let channels = tasks.len();

        let tasks_ref = &tasks;
        let cores_ref = &mut cores;
        let mix_ref = &mut mix;
        let mapping = controller_config.mapping;
        let organization = &controller_config.organization;
        let mut epoch_stats = EpochStats::default();
        let epoch_stats_ref = &mut epoch_stats;

        impress_exec::epoch_scope(
            threads,
            channels,
            move |i| lock_task(tasks_ref, i).execute(),
            |scope| {
                // Driver-owned buffers, swapped with the shard tasks around each
                // epoch: the steady-state loop performs no allocation.
                let mut order: Vec<(usize, usize)> = Vec::new();
                let mut queues: Vec<Vec<QueuedAccess>> =
                    (0..channels).map(|_| Vec::new()).collect();
                let mut completions: Vec<Vec<u64>> = (0..channels).map(|_| Vec::new()).collect();
                let mut cursors: Vec<usize> = vec![0; channels];
                // Ready queue: cores whose next issue time is provably exact,
                // ordered by (cycle, core id) — exactly the serial scheduler's
                // pick-the-minimum-then-lowest-core rule, O(log cores) per issue
                // instead of the old O(cores) rescan.
                let mut ready: BinaryHeap<Reverse<(Cycle, usize)>> = BinaryHeap::new();
                // Last known completion per channel, feeding the bus-conveyor
                // completion lower bound: the k-th access queued on a channel this
                // epoch cannot complete before `last + k * bus_spacing`
                // (ChannelShard::min_completion_spacing). Under load this reaches
                // far beyond the per-access `min_latency` bound — the channel has
                // a backlog of bus slots — which is what keeps deep-MLP cores
                // provably exact while they drain their whole resolved window.
                let mut last_completion: Vec<Cycle> = vec![0; channels];

                while remaining > 0 {
                    // ---- Barrier state: every prior completion is resolved, so
                    // every eligible core's next issue time is exact.
                    ready.clear();
                    let mut horizon = Cycle::MAX;
                    for core in cores_ref.iter() {
                        if core.issued() >= quota {
                            continue;
                        }
                        match core.next_issue_bound() {
                            IssueBound::Exact(t) => ready.push(Reverse((t, core.id()))),
                            IssueBound::NotBefore(_) => {
                                unreachable!("a core cannot have pending issues at a barrier")
                            }
                        }
                    }
                    let epoch_start = ready
                        .peek()
                        .map(|Reverse((t, _))| *t)
                        .expect("remaining > 0 implies an eligible core");
                    if mode == HorizonMode::Fixed {
                        // The PR 3 window: no access issued below this horizon can
                        // complete below it, so no deferral bound ever undercuts it.
                        horizon = epoch_start + min_latency;
                    }

                    // ---- Issue phase: replay the serial scheduler inside the
                    // (dependency-bounded) window. A core leaves the ready queue
                    // when it issues and re-enters with its new exact time, or
                    // lowers the horizon to its pending-completion bound when its
                    // next issue is no longer provable — the epoch ends when the
                    // earliest ready issue reaches the horizon.
                    let mut last_issue = epoch_start;
                    order.clear();
                    while let Some(&Reverse((now, core_id))) = ready.peek() {
                        if now >= horizon {
                            break;
                        }
                        ready.pop();
                        let access = mix_ref.next_access(core_id);
                        let location = mapping
                            .decode(access.address, organization)
                            .expect("workload addresses are within the configured capacity");
                        let channel = location.channel as usize;
                        queues[channel].push(QueuedAccess {
                            location,
                            is_write: access.is_write,
                            at: now,
                        });
                        order.push((core_id, channel));
                        last_issue = now;
                        // Completion lower bound: the access's own minimum latency
                        // joined with its position on the channel's bus conveyor.
                        let conveyor =
                            last_completion[channel] + queues[channel].len() as Cycle * bus_spacing;
                        let core = &mut cores_ref[core_id];
                        core.on_issue_pending(now, (now + min_latency).max(conveyor));
                        remaining -= 1;
                        if core.issued() < quota {
                            match core.next_issue_bound() {
                                IssueBound::Exact(t) => ready.push(Reverse((t, core_id))),
                                IssueBound::NotBefore(bound) => horizon = horizon.min(bound),
                            }
                        }
                    }
                    debug_assert!(!order.is_empty(), "every epoch issues at least once");
                    epoch_stats_ref.epochs += 1;
                    epoch_stats_ref.issues += order.len() as u64;
                    epoch_stats_ref.window_cycles += last_issue - epoch_start + 1;

                    // ---- Execute phase: shards run independently (possibly on the
                    // epoch pool); each sees its serial per-channel request sequence.
                    for (channel, queue) in queues.iter_mut().enumerate() {
                        std::mem::swap(&mut lock_task(tasks_ref, channel).queue, queue);
                    }
                    scope.run_epoch();
                    for channel in 0..channels {
                        let mut task = lock_task(tasks_ref, channel);
                        std::mem::swap(&mut task.completions, &mut completions[channel]);
                        std::mem::swap(&mut task.queue, &mut queues[channel]);
                        queues[channel].clear();
                    }

                    // ---- Merge phase: feed completions back in global issue order
                    // and advance each channel's conveyor reference point.
                    cursors.fill(0);
                    for &(core_id, channel) in &order {
                        let completed_at = completions[channel][cursors[channel]];
                        cursors[channel] += 1;
                        cores_ref[core_id].resolve_pending(completed_at);
                    }
                    for (channel, batch) in completions.iter().enumerate() {
                        if let Some(&last) = batch.last() {
                            debug_assert!(last >= last_completion[channel]);
                            last_completion[channel] = last;
                        }
                    }
                }
                debug_assert_eq!(
                    scope.rounds_run(),
                    epoch_stats_ref.epochs,
                    "every epoch runs exactly one pool round"
                );
            },
        );

        let shards: Vec<ChannelShard> = tasks
            .into_iter()
            .map(|task| task.into_inner().expect("shard task mutex poisoned").shard)
            .collect();
        let memory = ChannelStats::merged(shards.iter().map(ChannelShard::stats));

        let elapsed = cores.iter().map(CoreModel::finish_time).max().unwrap_or(0);
        let per_core_ipc = cores
            .iter()
            .enumerate()
            .map(|(i, core)| {
                let instructions = core.issued() as f64 * mix.instructions_per_miss(i);
                let cycles = core.finish_time().max(1) as f64;
                instructions / cycles
            })
            .collect();

        let energy = EnergyModel::ddr5().energy(
            &memory.banks,
            elapsed,
            controller_config.organization.total_banks(),
            &controller_config.timings,
        );

        RunOutput {
            workload: mix.name().to_string(),
            performance: PerformanceResult {
                per_core_ipc,
                elapsed_cycles: elapsed,
                requests: memory.requests,
            },
            memory,
            energy,
            epoch_stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use impress_memctrl::{ControllerConfig, PagePolicy};

    fn quick_config(requests: u64) -> SystemConfig {
        SystemConfig {
            requests_per_core: requests,
            controller: ControllerConfig::baseline(),
            ..SystemConfig::baseline()
        }
    }

    #[test]
    fn run_completes_and_reports_sane_statistics() {
        let mix = WorkloadMix::by_name("gcc", 1).unwrap();
        let out = System::new(quick_config(2_000), mix).run();
        assert_eq!(out.performance.per_core_ipc.len(), 8);
        assert_eq!(out.memory.requests, 8 * 2_000);
        assert!(out.performance.elapsed_cycles > 0);
        assert!(out.row_hit_rate() >= 0.0 && out.row_hit_rate() <= 1.0);
        assert!(out.energy.total_nj() > 0.0);
    }

    #[test]
    fn stream_has_higher_row_hit_rate_than_mcf() {
        let stream = System::new(
            quick_config(4_000),
            WorkloadMix::by_name("copy", 2).unwrap(),
        )
        .run();
        let mcf = System::new(quick_config(4_000), WorkloadMix::by_name("mcf", 2).unwrap()).run();
        assert!(
            stream.row_hit_rate() > mcf.row_hit_rate() + 0.2,
            "stream {} vs mcf {}",
            stream.row_hit_rate(),
            mcf.row_hit_rate()
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let a = System::new(quick_config(1_000), WorkloadMix::by_name("wrf", 7).unwrap()).run();
        let b = System::new(quick_config(1_000), WorkloadMix::by_name("wrf", 7).unwrap()).run();
        assert_eq!(a.performance.elapsed_cycles, b.performance.elapsed_cycles);
        assert_eq!(a.memory.banks.activations, b.memory.banks.activations);
    }

    #[test]
    fn sharded_run_is_bit_identical_at_any_thread_count() {
        let reference =
            System::new(quick_config(1_500), WorkloadMix::by_name("mcf", 3).unwrap()).run();
        for threads in [2, 3, 8] {
            let out = System::new(quick_config(1_500), WorkloadMix::by_name("mcf", 3).unwrap())
                .run_with_threads(threads);
            assert_eq!(
                out.performance.elapsed_cycles, reference.performance.elapsed_cycles,
                "threads = {threads}"
            );
            assert_eq!(
                out.performance.per_core_ipc,
                reference.performance.per_core_ipc
            );
            assert_eq!(out.memory, reference.memory);
            assert_eq!(
                out.energy.total_nj().to_bits(),
                reference.energy.total_nj().to_bits()
            );
        }
    }

    #[test]
    fn sharded_run_matches_serial_under_protection() {
        use impress_core::config::{DefenseKind, ProtectionConfig, TrackerChoice};
        let protected = || {
            let protection = ProtectionConfig::paper_default(
                TrackerChoice::Para,
                DefenseKind::impress_p_default(),
            );
            quick_config(1_200)
                .with_controller(ControllerConfig::baseline().with_protection(protection))
        };
        let serial =
            System::new(protected(), WorkloadMix::by_name("copy", 5).unwrap()).run_with_threads(1);
        let sharded =
            System::new(protected(), WorkloadMix::by_name("copy", 5).unwrap()).run_sharded();
        assert_eq!(
            serial.performance.elapsed_cycles,
            sharded.performance.elapsed_cycles
        );
        assert_eq!(serial.memory, sharded.memory);
        assert!(serial.memory.banks.mitigative_activations > 0);
    }

    #[test]
    fn adaptive_horizon_matches_fixed_horizon_bit_for_bit() {
        use crate::sharded::HorizonMode;
        let mk = || {
            System::new(
                quick_config(1_500),
                WorkloadMix::by_name("copy", 9).unwrap(),
            )
        };
        let fixed = mk().run_with_horizon(1, HorizonMode::Fixed);
        for threads in [1usize, 4] {
            let adaptive = mk().run_with_horizon(threads, HorizonMode::Adaptive);
            assert_eq!(
                adaptive.performance.elapsed_cycles, fixed.performance.elapsed_cycles,
                "threads = {threads}"
            );
            assert_eq!(
                adaptive.performance.per_core_ipc,
                fixed.performance.per_core_ipc
            );
            assert_eq!(adaptive.memory, fixed.memory);
            assert_eq!(
                adaptive.energy.total_nj().to_bits(),
                fixed.energy.total_nj().to_bits()
            );
            // Identical simulation, very different scheduling: the adaptive loop
            // amortizes far more issues over each barrier on a stream workload.
            assert_eq!(adaptive.epoch_stats.issues, fixed.epoch_stats.issues);
            assert!(
                adaptive.epoch_stats.epochs * 4 <= fixed.epoch_stats.epochs,
                "adaptive used {} epochs vs fixed {}",
                adaptive.epoch_stats.epochs,
                fixed.epoch_stats.epochs
            );
        }
    }

    #[test]
    fn epoch_stats_account_for_every_issue() {
        let out = System::new(quick_config(800), WorkloadMix::by_name("mcf", 1).unwrap()).run();
        assert_eq!(out.epoch_stats.issues, 8 * 800);
        assert!(out.epoch_stats.epochs > 0);
        assert!(out.epoch_stats.window_cycles >= out.epoch_stats.epochs);
        assert!(out.epoch_stats.mean_issues_per_epoch() >= 1.0);
    }

    #[test]
    fn closed_page_slows_down_stream() {
        let open = System::new(
            quick_config(4_000),
            WorkloadMix::by_name("triad", 3).unwrap(),
        )
        .run();
        let closed_cfg = quick_config(4_000)
            .with_controller(ControllerConfig::baseline().with_page_policy(PagePolicy::Closed));
        let closed = System::new(closed_cfg, WorkloadMix::by_name("triad", 3).unwrap()).run();
        let speedup = closed.performance.weighted_speedup(&open.performance);
        assert!(speedup < 0.98, "closed-page speedup = {speedup}");
    }
}
