//! Multi-tenant serving: one isolated ingest pipeline per admitted producer.
//!
//! [`serve_tenants`] is the engine behind `trace daemon --listen`: it drives a
//! [`TenantServer`] accept/poll loop on the calling thread and binds every
//! admitted tenant to its *own* supervised pipeline — its own [`supervise`]
//! run with its own simulator state, fault ledger, checkpoint file and
//! verdict — running on a dedicated scoped thread. Isolation is structural:
//!
//! * Each pipeline consumes exactly the canonical byte stream the transport
//!   committed for its tenant, through an unchanged [`supervise`] — so a
//!   tenant's verdict is byte-identical to a solo file ingest of its stream
//!   (modulo timing-dependent `conn-*` markers) at any shard thread count,
//!   regardless of what other tenants do.
//! * A pipeline failure (decode error, shard quarantine escalation) kills
//!   only that tenant: the server sees the dead sink, closes the tenant, and
//!   keeps serving the rest.
//! * Backpressure is global but shedding is per-tenant: staged-but-unconsumed
//!   bytes count against [`TenantLimits::stage_budget`], and the server
//!   throttles reads (and therefore acks) to the heaviest tenants first —
//!   committed records are never dropped.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::{Scope, ScopedJoinHandle};

use impress_workloads::source::{TraceSource, TransportEvent};
#[allow(unused_imports)] // doc links
use impress_workloads::transport::TenantLimits;
use impress_workloads::transport::{ServerPoll, TenantServer, TenantSink};

use crate::daemon::{supervise, write_checkpoint_durable, Checkpoint, DaemonOptions};
use crate::runner::Configuration;
use crate::trace_runner::IngestReport;

/// A [`TraceSource`] fed by the server thread over a channel.
///
/// Blocking `recv` is safe here: the source runs on the tenant's dedicated
/// pipeline thread, and the server closes the sending half (end-of-stream)
/// when the tenant finishes, is evicted, or the daemon drains.
#[derive(Debug)]
struct ChannelSource {
    rx: mpsc::Receiver<Vec<u8>>,
    buf: Vec<u8>,
    staged: Arc<AtomicU64>,
    events: Arc<Mutex<Vec<TransportEvent>>>,
}

impl TraceSource for ChannelSource {
    fn next_chunk(&mut self) -> io::Result<Option<&[u8]>> {
        match self.rx.recv() {
            Ok(chunk) => {
                self.staged.fetch_sub(chunk.len() as u64, Ordering::AcqRel);
                self.buf = chunk;
                Ok(Some(&self.buf))
            }
            // Sender dropped: the server closed this tenant's stream.
            Err(_) => Ok(None),
        }
    }

    fn take_transport_events(&mut self) -> Vec<TransportEvent> {
        std::mem::take(&mut self.events.lock().expect("tenant event lock poisoned"))
    }
}

/// Server-side handle to one tenant's pipeline.
struct TenantPipe<'scope> {
    tx: Option<mpsc::Sender<Vec<u8>>>,
    staged: Arc<AtomicU64>,
    events: Arc<Mutex<Vec<TransportEvent>>>,
    handle: Option<ScopedJoinHandle<'scope, io::Result<IngestReport>>>,
}

/// The [`TenantSink`] gluing a [`TenantServer`] to per-tenant [`supervise`]
/// pipelines on scoped threads.
struct PipelineSink<'scope, 'env> {
    scope: &'scope Scope<'scope, 'env>,
    configuration: &'env Configuration,
    options: &'env DaemonOptions,
    checkpoint: Option<&'env Path>,
    pipes: BTreeMap<u64, TenantPipe<'scope>>,
}

impl PipelineSink<'_, '_> {
    /// Checkpoint file for `tenant`: the first tenant owns the configured
    /// path verbatim (solo-compatible), later tenants get `<path>.t<id>`.
    fn checkpoint_path(&self, tenant: u64) -> Option<PathBuf> {
        self.checkpoint.map(|p| {
            if tenant == 1 {
                p.to_path_buf()
            } else {
                let mut name = p.as_os_str().to_owned();
                name.push(format!(".t{tenant}"));
                PathBuf::from(name)
            }
        })
    }

    /// Closes every stream and joins every pipeline into per-tenant reports.
    fn finish(mut self) -> Vec<TenantReport> {
        let mut reports = Vec::with_capacity(self.pipes.len());
        for (tenant, mut pipe) in std::mem::take(&mut self.pipes) {
            pipe.tx = None; // end-of-stream for any pipeline still reading
            let result = match pipe.handle.take().map(ScopedJoinHandle::join) {
                Some(Ok(Ok(report))) => Ok(report),
                Some(Ok(Err(e))) => Err(e.to_string()),
                Some(Err(_)) => Err("tenant pipeline panicked".to_string()),
                None => Err("tenant pipeline never started".to_string()),
            };
            reports.push(TenantReport { tenant, result });
        }
        reports
    }
}

impl TenantSink for PipelineSink<'_, '_> {
    fn open(&mut self, tenant: u64) -> io::Result<()> {
        let (tx, rx) = mpsc::channel();
        let staged = Arc::new(AtomicU64::new(0));
        let events = Arc::new(Mutex::new(Vec::new()));
        let source = ChannelSource {
            rx,
            buf: Vec::new(),
            staged: Arc::clone(&staged),
            events: Arc::clone(&events),
        };
        let mut opts = self.options.clone();
        if tenant != 1 {
            // A checkpoint resume pins one specific stream; it can only mean
            // the first tenant (the solo-compatible slot).
            opts.resume_from = None;
        }
        let cp_path = self.checkpoint_path(tenant);
        let configuration = self.configuration;
        let handle = self.scope.spawn(move || {
            let mut on_checkpoint = move |cp: &Checkpoint| match &cp_path {
                Some(path) => write_checkpoint_durable(path, cp),
                None => Ok(()),
            };
            supervise(source, configuration, &opts, &mut on_checkpoint)
        });
        self.pipes.insert(
            tenant,
            TenantPipe {
                tx: Some(tx),
                staged,
                events,
                handle: Some(handle),
            },
        );
        Ok(())
    }

    fn data(&mut self, tenant: u64, bytes: &[u8]) -> io::Result<()> {
        let pipe = self
            .pipes
            .get_mut(&tenant)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "unknown tenant"))?;
        let tx = pipe
            .tx
            .as_ref()
            .ok_or_else(|| io::Error::new(io::ErrorKind::BrokenPipe, "tenant stream closed"))?;
        pipe.staged.fetch_add(bytes.len() as u64, Ordering::AcqRel);
        tx.send(bytes.to_vec()).map_err(|_| {
            // Receiver gone: the pipeline errored out or panicked. Undo the
            // staging charge and report the sink dead so the server closes
            // this tenant (and only this tenant).
            pipe.staged.fetch_sub(bytes.len() as u64, Ordering::AcqRel);
            io::Error::new(io::ErrorKind::BrokenPipe, "tenant pipeline died")
        })
    }

    fn event(&mut self, tenant: u64, event: TransportEvent) {
        if let Some(pipe) = self.pipes.get_mut(&tenant) {
            pipe.events
                .lock()
                .expect("tenant event lock poisoned")
                .push(event);
        }
    }

    fn close(&mut self, tenant: u64) {
        if let Some(pipe) = self.pipes.get_mut(&tenant) {
            pipe.tx = None; // dropping the sender is end-of-stream
        }
    }

    fn staged(&self, tenant: u64) -> u64 {
        self.pipes
            .get(&tenant)
            .map_or(0, |p| p.staged.load(Ordering::Acquire))
    }
}

/// Outcome of one tenant's pipeline.
#[derive(Debug)]
pub struct TenantReport {
    /// Tenant token the server assigned.
    pub tenant: u64,
    /// The pipeline's ingest report, or the error that killed it. A failed
    /// tenant is an isolated failure — the daemon kept serving the rest.
    pub result: Result<IngestReport, String>,
}

/// Outcome of a multi-tenant serving run: one report per admitted tenant, in
/// tenant-token order.
#[derive(Debug)]
pub struct MultiReport {
    /// Per-tenant reports.
    pub tenants: Vec<TenantReport>,
}

impl MultiReport {
    /// The report for `tenant`, if it was admitted.
    pub fn tenant(&self, tenant: u64) -> Option<&TenantReport> {
        self.tenants.iter().find(|t| t.tenant == tenant)
    }
}

/// Runs a multi-tenant serving session to completion: polls `server` on the
/// calling thread, spawning one supervised pipeline per admitted tenant, and
/// returns every tenant's report once the server finishes (drain flag, or
/// idle timeout with all tenants closed).
///
/// `options.resume_from` (if set) applies to the first tenant only; later
/// tenants always start fresh. `checkpoint` names the first tenant's
/// checkpoint file; tenant *i* > 1 checkpoints to `<checkpoint>.t<i>`.
///
/// # Errors
///
/// Propagates accept-loop I/O errors from [`TenantServer::poll`]. Per-tenant
/// pipeline failures are *not* errors — they are isolated into that tenant's
/// [`TenantReport::result`].
pub fn serve_tenants(
    server: &mut TenantServer,
    configuration: &Configuration,
    options: &DaemonOptions,
    checkpoint: Option<&Path>,
) -> io::Result<MultiReport> {
    std::thread::scope(|scope| {
        let mut sink = PipelineSink {
            scope,
            configuration,
            options,
            checkpoint,
            pipes: BTreeMap::new(),
        };
        let poll_result = loop {
            match server.poll(&mut sink) {
                Ok(ServerPoll::Done) => break Ok(()),
                Ok(ServerPoll::Busy) => {}
                Ok(ServerPoll::Idle) => std::thread::sleep(server.poll_interval()),
                Err(e) => break Err(e),
            }
        };
        // Always close and join every pipeline — even on a poll error —
        // otherwise a still-reading pipeline would deadlock the scope exit.
        let tenants = sink.finish();
        poll_result?;
        Ok(MultiReport { tenants })
    })
}
