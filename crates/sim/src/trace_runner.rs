//! Trace-driven runner: physical-address streams in, verdicts out.
//!
//! This is the `impress-trace` frontend's engine. It consumes recorded access
//! streams (the `impress_workloads::codec` wire format) in two modes:
//!
//! * **Closed-loop replay** ([`TraceRunner::replay`]): rebuilds the recording
//!   run's core models from the trace header and drives the *identical*
//!   epoch-phased [`System`] loop with a [`ReplaySource`] instead of the
//!   synthetic generators. Because per-core access sequences are recorded
//!   per core and the loop is bit-for-bit deterministic at any shard thread
//!   count, a replayed run reproduces the recording run's output exactly.
//! * **Open-loop ingestion** ([`TraceRunner::ingest`]): streams records at
//!   trace-specified (or default) inter-arrival gaps straight into the channel
//!   shards — decode, route, execute on the epoch pool, account — with no core
//!   feedback. This is the high-throughput path for replaying device traces
//!   (rowhammer-tester, DRAMA-style) and emits per-window disturbance and
//!   mitigation telemetry plus an end-of-run [`VerdictReport`].

use std::collections::VecDeque;
use std::io;

use impress_dram::stats::ChannelStats;
use impress_dram::timing::Cycle;
use impress_memctrl::{ChannelShard, MemoryController};
use impress_workloads::codec::{IngestFault, TraceMeta, TraceReader, TraceRecord};
use impress_workloads::source::{AccessSource, TraceSource, TransportEvent};
use impress_workloads::MemoryAccess;

use crate::runner::{Configuration, SweepOptions};
use crate::sharded::{lock_task, make_tasks, QueuedAccess};
use crate::system::{RunOutput, System};

/// Records executed per epoch-pool round during open-loop ingestion (matches the
/// codec's frame size, so one decoded frame is one execute round).
pub(crate) const INGEST_BATCH: usize = 8192;

/// Default inter-arrival gap (DRAM cycles) when a trace carries no gaps: one
/// cache-line transfer per burst slot spread across the baseline's two channels.
pub(crate) const DEFAULT_GAP: u32 = 4;

/// An [`AccessSource`] that replays recorded per-core access streams.
///
/// Construction partitions the stream by core, so the interleaving the recording
/// happened to serialize does not constrain replay — each core's sequence is
/// what matters, exactly as with the synthetic generators.
#[derive(Debug)]
pub struct ReplaySource {
    name: String,
    instructions_per_miss: Vec<f64>,
    streams: Vec<VecDeque<MemoryAccess>>,
}

impl ReplaySource {
    /// Partitions `records` by core under the trace's metadata.
    pub fn new(meta: &TraceMeta, records: &[TraceRecord]) -> Self {
        let mut streams: Vec<VecDeque<MemoryAccess>> =
            (0..meta.cores as usize).map(|_| VecDeque::new()).collect();
        for r in records {
            streams[r.core as usize].push_back(r.to_access());
        }
        Self {
            name: meta.name.clone(),
            instructions_per_miss: meta.instructions_per_miss.clone(),
            streams,
        }
    }

    /// The shortest per-core stream length — the per-core request quota a replay
    /// run can sustain.
    pub fn min_records_per_core(&self) -> u64 {
        self.streams.iter().map(VecDeque::len).min().unwrap_or(0) as u64
    }
}

impl AccessSource for ReplaySource {
    fn cores(&self) -> usize {
        self.streams.len()
    }

    fn instructions_per_miss(&self, core: usize) -> f64 {
        self.instructions_per_miss[core]
    }

    fn next_access(&mut self, core: usize) -> MemoryAccess {
        self.streams[core]
            .pop_front()
            .expect("replay ran past the end of a core's recorded stream")
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Disturbance/mitigation telemetry over one window of ingested records.
///
/// All counters are deltas over the window (derived from the deterministic
/// simulation state, never from wall-clock), so telemetry is reproducible and
/// diffable across runs and thread counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowTelemetry {
    /// Window index (0-based).
    pub index: u64,
    /// Records ingested in this window.
    pub records: u64,
    /// Simulated cycle at which the window ended.
    pub end_cycle: Cycle,
    /// Demand activations in the window.
    pub activations: u64,
    /// Row-buffer hits in the window.
    pub row_hits: u64,
    /// Row-buffer misses in the window.
    pub row_misses: u64,
    /// Row-buffer conflicts in the window.
    pub row_conflicts: u64,
    /// Mitigative (victim-refresh) activations in the window.
    pub mitigative_activations: u64,
    /// RFM commands in the window.
    pub rfm_commands: u64,
}

impl WindowTelemetry {
    /// Builds one window's telemetry as the delta between two cumulative
    /// statistics snapshots (`prev` at the window's start, `snap` at its end).
    pub fn delta(
        index: u64,
        records: u64,
        end_cycle: Cycle,
        prev: &ChannelStats,
        snap: &ChannelStats,
    ) -> Self {
        Self {
            index,
            records,
            end_cycle,
            activations: snap.banks.activations - prev.banks.activations,
            row_hits: snap.banks.row_hits - prev.banks.row_hits,
            row_misses: snap.banks.row_misses - prev.banks.row_misses,
            row_conflicts: snap.banks.row_conflicts - prev.banks.row_conflicts,
            mitigative_activations: snap.banks.mitigative_activations
                - prev.banks.mitigative_activations,
            rfm_commands: snap.banks.rfm_commands - prev.banks.rfm_commands,
        }
    }
}

/// One entry in a run's fault ledger.
///
/// Entries derive only from stream content and driver-side events, never from
/// thread scheduling, so a seeded corrupt-ingest run's ledger is byte-identical
/// across runs and shard thread counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LedgerEntry {
    /// A damaged region the resync decoder skipped.
    Decode(IngestFault),
    /// The stream ended inside a frame (loss beyond the observed bytes is
    /// unknowable in-band; checkpointed record counts bound it out-of-band).
    TruncatedStream {
        /// Byte offset at which the stream ended.
        offset: u64,
    },
    /// The bounded-lag watchdog dropped this window's telemetry (records were
    /// all ingested — telemetry is shed before records).
    ShedWindow {
        /// Index of the shed window.
        window: u64,
    },
    /// A shard-worker panic was contained; the window's records are counted as
    /// lost because their execution cannot be trusted.
    QuarantinedWindow {
        /// Index of the quarantined window.
        window: u64,
        /// Records in the quarantined batch.
        records_lost: u64,
    },
    /// The run resumed from a checkpoint (deterministic prefix re-execution).
    Resume {
        /// Records re-validated against the checkpoint.
        records: u64,
        /// Source byte offset the checkpoint pinned.
        offset: u64,
    },
    /// A transport-layer event from a socket source (reconnect, disconnect,
    /// duplicate delivery, graceful drain, quarantine). Mostly informational:
    /// the protocol's dedup-by-offset and resume guarantee no records are
    /// lost to these, so they never degrade the verdict — but they *are*
    /// timing-dependent, so verdict diffs filter them alongside resume
    /// markers (`grep -v '"kind": "conn-'`). The exception is
    /// [`TransportEvent::Quarantined`], which records that the server banned
    /// the producer for repeated protocol violations and forces the verdict
    /// outcome to `"quarantined"`.
    Transport(TransportEvent),
}

impl LedgerEntry {
    /// Records this entry accounts as lost.
    pub fn records_lost(&self) -> u64 {
        match *self {
            LedgerEntry::Decode(f) => f.records_lost,
            LedgerEntry::QuarantinedWindow { records_lost, .. } => records_lost,
            _ => 0,
        }
    }

    /// Canonical single-line JSON form.
    pub fn to_json_line(&self) -> String {
        match *self {
            LedgerEntry::Decode(f) => format!(
                "{{\"kind\": \"{}\", \"offset\": {}, \"frame_index\": {}, \
                 \"bytes_skipped\": {}, \"records_lost\": {}}}",
                f.kind.label(),
                f.offset,
                f.frame_index,
                f.bytes_skipped,
                f.records_lost
            ),
            LedgerEntry::TruncatedStream { offset } => {
                format!("{{\"kind\": \"truncated-stream\", \"offset\": {offset}}}")
            }
            LedgerEntry::ShedWindow { window } => {
                format!("{{\"kind\": \"shed-window\", \"window\": {window}}}")
            }
            LedgerEntry::QuarantinedWindow {
                window,
                records_lost,
            } => format!(
                "{{\"kind\": \"quarantined-window\", \"window\": {window}, \
                 \"records_lost\": {records_lost}}}"
            ),
            LedgerEntry::Resume { records, offset } => {
                format!("{{\"kind\": \"resume\", \"records\": {records}, \"offset\": {offset}}}")
            }
            LedgerEntry::Transport(event) => match event {
                TransportEvent::SessionResumed { session, offset } => format!(
                    "{{\"kind\": \"conn-resume\", \"session\": {session}, \"offset\": {offset}}}"
                ),
                TransportEvent::Disconnected {
                    session,
                    offset,
                    reason,
                } => format!(
                    "{{\"kind\": \"conn-disconnect\", \"session\": {session}, \
                     \"offset\": {offset}, \"reason\": \"{}\"}}",
                    reason.label()
                ),
                TransportEvent::DuplicateDropped {
                    session,
                    offset,
                    bytes,
                } => format!(
                    "{{\"kind\": \"conn-duplicate\", \"session\": {session}, \
                     \"offset\": {offset}, \"bytes\": {bytes}}}"
                ),
                TransportEvent::Drained { offset } => {
                    format!("{{\"kind\": \"conn-drain\", \"offset\": {offset}}}")
                }
                TransportEvent::Quarantined {
                    session,
                    offset,
                    violations,
                } => format!(
                    "{{\"kind\": \"conn-quarantine\", \"session\": {session}, \
                     \"offset\": {offset}, \"violations\": {violations}}}"
                ),
            },
        }
    }
}

/// The fault ledger of an ingestion run: every deviation from a clean decode
/// and execution, in canonical order (resume markers first, then faults in
/// stream order), so a resumed run's verdict differs from an uninterrupted
/// run's only in resume-marker lines.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultLedger {
    /// Ledger entries.
    pub entries: Vec<LedgerEntry>,
}

impl FaultLedger {
    /// True when nothing degraded the run. Resume markers and most transport
    /// events keep a run clean — a validated resume is not a fault, and
    /// transport events record zero-loss protocol recoveries (the socket
    /// layer's dedup and offset-resume guarantee no records were dropped).
    /// A [`TransportEvent::Quarantined`] entry is the exception: the server
    /// banned the producer, so the stream is untrustworthy past the ban.
    pub fn is_clean(&self) -> bool {
        self.entries.iter().all(|e| match e {
            LedgerEntry::Resume { .. } => true,
            LedgerEntry::Transport(TransportEvent::Quarantined { .. }) => false,
            LedgerEntry::Transport(_) => true,
            _ => false,
        })
    }

    /// Conservative upper bound on records lost across the run.
    pub fn records_lost(&self) -> u64 {
        self.entries.iter().map(LedgerEntry::records_lost).sum()
    }

    /// Run outcome: `"clean"`, `"degraded"` (stream damage survived) or
    /// `"quarantined"` (at least one window's execution was contained, or the
    /// serving daemon banned this producer for protocol violations).
    pub fn outcome(&self) -> &'static str {
        if self.entries.iter().any(|e| {
            matches!(
                e,
                LedgerEntry::QuarantinedWindow { .. }
                    | LedgerEntry::Transport(TransportEvent::Quarantined { .. })
            )
        }) {
            "quarantined"
        } else if self.is_clean() {
            "clean"
        } else {
            "degraded"
        }
    }

    /// Appends an entry, keeping resume markers sorted before faults so the
    /// canonical JSON stays diffable modulo resume lines.
    pub fn push(&mut self, entry: LedgerEntry) {
        if matches!(entry, LedgerEntry::Resume { .. }) {
            let at = self
                .entries
                .iter()
                .take_while(|e| matches!(e, LedgerEntry::Resume { .. }))
                .count();
            self.entries.insert(at, entry);
        } else {
            self.entries.push(entry);
        }
    }

    /// Absorbs the decoder's fault list (plus its truncation flag) in stream
    /// order.
    pub fn absorb_decoder(&mut self, faults: Vec<IngestFault>, truncated_at: Option<u64>) {
        for f in faults {
            self.push(LedgerEntry::Decode(f));
        }
        if let Some(offset) = truncated_at {
            self.push(LedgerEntry::TruncatedStream { offset });
        }
    }

    /// Absorbs transport-layer events drained from a socket source, in
    /// arrival order.
    pub fn absorb_transport(&mut self, events: Vec<TransportEvent>) {
        for event in events {
            self.push(LedgerEntry::Transport(event));
        }
    }

    /// Canonical single-line JSON summary of transport health — session,
    /// disconnect, dedup, drain and quarantine counters aggregated from the
    /// ledger's transport entries. `None` when the run saw no transport
    /// events at all, so file-ingest verdicts carry no transport block and
    /// stay byte-identical to their pre-socket form.
    pub fn transport_summary(&self) -> Option<String> {
        let mut any = false;
        let mut resumed = 0u64;
        let mut disconnects = 0u64;
        let mut duplicates = 0u64;
        let mut dup_bytes = 0u64;
        let mut drains = 0u64;
        let mut quarantines = 0u64;
        for e in &self.entries {
            if let LedgerEntry::Transport(event) = e {
                any = true;
                match *event {
                    TransportEvent::SessionResumed { .. } => resumed += 1,
                    TransportEvent::Disconnected { .. } => disconnects += 1,
                    TransportEvent::DuplicateDropped { bytes, .. } => {
                        duplicates += 1;
                        dup_bytes += bytes;
                    }
                    TransportEvent::Drained { .. } => drains += 1,
                    TransportEvent::Quarantined { .. } => quarantines += 1,
                }
            }
        }
        any.then(|| {
            format!(
                "{{\"sessions\": {}, \"disconnects\": {disconnects}, \
                 \"duplicates_dropped\": {duplicates}, \"bytes_retransmitted\": {dup_bytes}, \
                 \"drains\": {drains}, \"quarantines\": {quarantines}}}",
                1 + resumed,
            )
        })
    }
}

/// The result of an open-loop ingestion run.
#[derive(Debug, Clone)]
pub struct IngestReport {
    /// Records ingested.
    pub records: u64,
    /// Simulated cycle of the last ingested record.
    pub elapsed_cycles: Cycle,
    /// Aggregate memory statistics over the whole run.
    pub memory: ChannelStats,
    /// Per-window telemetry.
    pub windows: Vec<WindowTelemetry>,
    /// End-of-run verdict.
    pub verdict: VerdictReport,
}

/// The end-of-run verdict: what the stream did to the memory system and whether
/// the configured mitigation engaged.
///
/// Every field derives from deterministic simulation state, so two bit-identical
/// runs produce byte-identical reports ([`VerdictReport::to_json`]) — the
/// property the CI trace-smoke diff relies on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerdictReport {
    /// Workload/trace name.
    pub workload: String,
    /// Configuration label the stream ran under.
    pub configuration: String,
    /// One-word verdict: `"mitigated"` (protection configured and it fired),
    /// `"protected-quiet"` (protection configured, nothing to mitigate) or
    /// `"unprotected"`.
    pub verdict: &'static str,
    /// Records (accesses) executed.
    pub records: u64,
    /// Simulated cycles covered.
    pub elapsed_cycles: Cycle,
    /// Demand requests serviced.
    pub requests: u64,
    /// Demand activations.
    pub activations: u64,
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Row-buffer misses.
    pub row_misses: u64,
    /// Row-buffer conflicts.
    pub row_conflicts: u64,
    /// Mitigative activations issued by the defense.
    pub mitigative_activations: u64,
    /// RFM commands issued.
    pub rfm_commands: u64,
    /// Periodic refreshes executed.
    pub refreshes: u64,
    /// Longest single row-open interval observed (the Row-Press exposure bound).
    pub max_row_open_cycles: Cycle,
    /// Fault ledger of the run (empty for clean strict-mode runs).
    pub faults: FaultLedger,
}

impl VerdictReport {
    fn verdict_for(protected: bool, stats: &ChannelStats) -> &'static str {
        if !protected {
            "unprotected"
        } else if stats.banks.mitigative_activations + stats.banks.rfm_commands > 0 {
            "mitigated"
        } else {
            "protected-quiet"
        }
    }

    /// Builds the verdict from aggregate statistics.
    pub fn from_stats(
        workload: &str,
        configuration: &Configuration,
        records: u64,
        elapsed_cycles: Cycle,
        stats: &ChannelStats,
    ) -> Self {
        Self {
            workload: workload.to_string(),
            configuration: configuration.label.clone(),
            verdict: Self::verdict_for(configuration.protection.is_some(), stats),
            records,
            elapsed_cycles,
            requests: stats.requests,
            activations: stats.banks.activations,
            row_hits: stats.banks.row_hits,
            row_misses: stats.banks.row_misses,
            row_conflicts: stats.banks.row_conflicts,
            mitigative_activations: stats.banks.mitigative_activations,
            rfm_commands: stats.banks.rfm_commands,
            refreshes: stats.banks.refreshes,
            max_row_open_cycles: stats.banks.max_open_cycles,
            faults: FaultLedger::default(),
        }
    }

    /// Attaches a fault ledger to the verdict.
    pub fn with_faults(mut self, faults: FaultLedger) -> Self {
        self.faults = faults;
        self
    }

    /// Run outcome derived from the ledger: `"clean"`, `"degraded"` or
    /// `"quarantined"`.
    pub fn outcome(&self) -> &'static str {
        self.faults.outcome()
    }

    /// Builds the verdict from a closed-loop run's output.
    pub fn from_run(output: &RunOutput, configuration: &Configuration) -> Self {
        Self::from_stats(
            &output.workload,
            configuration,
            output.memory.requests,
            output.performance.elapsed_cycles,
            &output.memory,
        )
    }

    /// Canonical JSON form (fixed key order, no floats), byte-identical for
    /// bit-identical runs.
    ///
    /// A run with an empty fault ledger emits the exact v1 schema (so existing
    /// verdict files and CI diffs are untouched); any ledger entry switches to
    /// the extended v2 form of [`VerdictReport::to_json_extended`].
    pub fn to_json(&self) -> String {
        if self.faults.entries.is_empty() {
            format!(
                "{{\n  \"schema\": \"impress-trace-verdict-v1\",\n{}\n}}\n",
                self.json_core_fields()
            )
        } else {
            self.to_json_extended()
        }
    }

    /// Extended (v2) canonical JSON: v1 fields plus `outcome`, an optional
    /// single-line `transport` health summary (present only when the ledger
    /// holds transport events, so file-ingest verdicts are unchanged) and a
    /// `faults` section. Ledger entries are one per line, resume markers
    /// first, so two runs differing only by a validated resume diff only in
    /// resume lines.
    pub fn to_json_extended(&self) -> String {
        let mut entries = String::new();
        for (i, e) in self.faults.entries.iter().enumerate() {
            let comma = if i + 1 < self.faults.entries.len() {
                ","
            } else {
                ""
            };
            entries.push_str(&format!("      {}{}\n", e.to_json_line(), comma));
        }
        let transport = self
            .faults
            .transport_summary()
            .map(|s| format!("  \"transport\": {s},\n"))
            .unwrap_or_default();
        format!(
            "{{\n  \"schema\": \"impress-trace-verdict-v2\",\n{},\n  \"outcome\": {:?},\n{}  \
             \"faults\": {{\n    \"records_lost\": {},\n    \"entries\": [\n{}    ]\n  }}\n}}\n",
            self.json_core_fields(),
            self.outcome(),
            transport,
            self.faults.records_lost(),
            entries,
        )
    }

    /// The v1 field block shared by both schema versions.
    fn json_core_fields(&self) -> String {
        format!(
            "  \"workload\": {:?},\n  \
             \"configuration\": {:?},\n  \"verdict\": {:?},\n  \"records\": {},\n  \
             \"elapsed_cycles\": {},\n  \"requests\": {},\n  \"activations\": {},\n  \
             \"row_hits\": {},\n  \"row_misses\": {},\n  \"row_conflicts\": {},\n  \
             \"mitigative_activations\": {},\n  \"rfm_commands\": {},\n  \
             \"refreshes\": {},\n  \"max_row_open_cycles\": {}",
            self.workload,
            self.configuration,
            self.verdict,
            self.records,
            self.elapsed_cycles,
            self.requests,
            self.activations,
            self.row_hits,
            self.row_misses,
            self.row_conflicts,
            self.mitigative_activations,
            self.rfm_commands,
            self.refreshes,
            self.max_row_open_cycles,
        )
    }
}

/// Drives recorded traces through the simulator.
///
/// Shares [`SweepOptions`] with [`crate::runner::ExperimentRunner`]: the
/// `shard_threads` knob means the same thing in both (workers executing channel
/// shards inside one run), and both guarantee bit-identical output at any value.
#[derive(Debug)]
pub struct TraceRunner {
    system: crate::config::SystemConfig,
    shard_threads: usize,
    window_records: u64,
    /// Whether ingestion stages tracked events through the bank-batched record
    /// kernels. `None` defers to the `IMPRESS_RECORD_BATCH` environment
    /// variable (default on); the output is bit-identical either way.
    record_batch: Option<bool>,
}

impl Default for TraceRunner {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceRunner {
    /// Creates a runner with the paper's baseline system configuration.
    pub fn new() -> Self {
        Self {
            system: crate::config::SystemConfig::baseline(),
            shard_threads: 1,
            window_records: 1 << 20,
            record_batch: None,
        }
    }

    /// Creates a runner taking its thread knobs from shared [`SweepOptions`].
    pub fn from_options(options: &SweepOptions) -> Self {
        let mut runner = Self::new();
        if let Some(threads) = options.shard_threads {
            runner.shard_threads = threads.max(1);
        }
        runner
    }

    /// Executes each run's channel shards on up to `threads` workers (bit-identical
    /// output for every value; `1` executes inline).
    pub fn with_shard_threads(mut self, threads: usize) -> Self {
        self.shard_threads = threads.max(1);
        self
    }

    /// Sets the telemetry window size for [`TraceRunner::ingest`] (in records).
    pub fn with_window_records(mut self, records: u64) -> Self {
        self.window_records = records.max(1);
        self
    }

    /// Forces the ingest record path: `true` stages tracked events through the
    /// bank-batched kernels, `false` records per event. Unset, the
    /// `IMPRESS_RECORD_BATCH` environment variable decides (default batched).
    /// Both paths produce byte-identical verdicts and telemetry.
    pub fn with_record_batching(mut self, on: bool) -> Self {
        self.record_batch = Some(on);
        self
    }

    /// Closed-loop replay: reruns the recorded stream through the full system
    /// model (core pacing, MLP limits, feedback), reproducing the recording
    /// run bit-for-bit at any shard thread count.
    ///
    /// # Panics
    ///
    /// Panics if the trace contains no records for some core.
    pub fn replay(
        &self,
        meta: &TraceMeta,
        records: &[TraceRecord],
        configuration: &Configuration,
    ) -> RunOutput {
        let source = ReplaySource::new(meta, records);
        let quota = source.min_records_per_core();
        assert!(quota > 0, "trace has no records for at least one core");
        let mut config = self.system.clone();
        config.cores = meta.cores as usize;
        config.requests_per_core = quota;
        config = config.with_controller(configuration.controller_config());
        System::new(config, source).run_with_threads(self.shard_threads)
    }

    /// Open-loop ingestion: decode → route → execute → account, with no core
    /// feedback. Records advance simulated time by their recorded gaps (or
    /// [`DEFAULT_GAP`] for gapless traces) and execute on the channel shards in
    /// [`INGEST_BATCH`]-record rounds of the epoch pool.
    ///
    /// Deterministic for any `shard_threads`: routing is a pure function of the
    /// stream, and shards share no state.
    ///
    /// # Errors
    ///
    /// Propagates codec errors (corrupt frames, truncation) from the reader.
    pub fn ingest<S: TraceSource>(
        &self,
        mut reader: TraceReader<S>,
        configuration: &Configuration,
    ) -> io::Result<IngestReport> {
        let controller_config = configuration.controller_config();
        let controller = MemoryController::new(controller_config);
        let (cfg, shards) = controller.into_parts();
        let min_latency = ChannelShard::min_access_latency(&cfg.timings);
        let tasks = make_tasks(shards, min_latency);
        let channels = tasks.len();
        if self
            .record_batch
            .unwrap_or_else(impress_core::engine::record_batching_from_env)
        {
            for i in 0..channels {
                lock_task(&tasks, i).shard.set_record_batching(true);
            }
        }
        let mapping = cfg.mapping;
        let organization = &cfg.organization;
        let has_gaps = reader.meta().has_gaps;
        let workload = reader.meta().name.clone();
        let window_records = self.window_records;

        type IngestLoopOut = (
            u64,
            Cycle,
            Vec<WindowTelemetry>,
            Vec<IngestFault>,
            Vec<TransportEvent>,
            Option<u64>,
        );
        let tasks_ref = &tasks;
        let result: io::Result<IngestLoopOut> = impress_exec::epoch_scope(
            self.shard_threads,
            channels,
            move |i| lock_task(tasks_ref, i).execute(),
            |scope| {
                let mut queues: Vec<Vec<QueuedAccess>> =
                    (0..channels).map(|_| Vec::new()).collect();
                let mut now: Cycle = 0;
                let mut records: u64 = 0;
                let mut batched: usize = 0;
                let mut windows: Vec<WindowTelemetry> = Vec::new();
                let mut window_start_records: u64 = 0;
                let mut prev = ChannelStats::default();

                let flush = |queues: &mut Vec<Vec<QueuedAccess>>, batched: &mut usize| {
                    if *batched == 0 {
                        return;
                    }
                    for (channel, queue) in queues.iter_mut().enumerate() {
                        std::mem::swap(&mut lock_task(tasks_ref, channel).queue, queue);
                    }
                    scope.run_epoch();
                    for (channel, queue) in queues.iter_mut().enumerate() {
                        std::mem::swap(&mut lock_task(tasks_ref, channel).queue, queue);
                        queue.clear();
                    }
                    *batched = 0;
                };

                while let Some(record) = reader.next_record()? {
                    now += if has_gaps {
                        record.gap as Cycle
                    } else {
                        DEFAULT_GAP as Cycle
                    };
                    let location = mapping
                        .decode(record.to_access().address, organization)
                        .map_err(|e| {
                            io::Error::new(
                                io::ErrorKind::InvalidData,
                                format!("record {records}: {e}"),
                            )
                        })?;
                    queues[location.channel as usize].push(QueuedAccess {
                        location,
                        is_write: record.is_write,
                        at: now,
                    });
                    records += 1;
                    batched += 1;
                    if batched == INGEST_BATCH {
                        flush(&mut queues, &mut batched);
                    }
                    if records - window_start_records == window_records {
                        flush(&mut queues, &mut batched);
                        let snap = ChannelStats::merged(
                            (0..channels).map(|i| lock_task(tasks_ref, i).shard.stats()),
                        );
                        windows.push(WindowTelemetry::delta(
                            windows.len() as u64,
                            records - window_start_records,
                            now,
                            &prev,
                            &snap,
                        ));
                        prev = snap;
                        window_start_records = records;
                    }
                }
                flush(&mut queues, &mut batched);
                if records > window_start_records {
                    let snap = ChannelStats::merged(
                        (0..channels).map(|i| lock_task(tasks_ref, i).shard.stats()),
                    );
                    windows.push(WindowTelemetry::delta(
                        windows.len() as u64,
                        records - window_start_records,
                        now,
                        &prev,
                        &snap,
                    ));
                }
                let faults = reader.take_faults();
                let transport = reader.take_transport_events();
                let truncated_at = reader.truncated().then(|| reader.byte_offset());
                Ok((records, now, windows, faults, transport, truncated_at))
            },
        );
        let (records, elapsed_cycles, windows, faults, transport, truncated_at) = result?;
        let mut ledger = FaultLedger::default();
        ledger.absorb_decoder(faults, truncated_at);
        ledger.absorb_transport(transport);

        let memory = ChannelStats::merged(
            tasks
                .into_iter()
                .map(|t| t.into_inner().unwrap_or_else(|e| e.into_inner()).shard)
                .map(|mut shard| {
                    // End-of-run flush: staged spans are mitigation-free so the
                    // stats are already final, but the trackers must land in the
                    // same state a per-record run would leave them in.
                    shard.flush_staged_records();
                    shard.stats()
                }),
        );
        let verdict =
            VerdictReport::from_stats(&workload, configuration, records, elapsed_cycles, &memory)
                .with_faults(ledger);
        Ok(IngestReport {
            records,
            elapsed_cycles,
            memory,
            windows,
            verdict,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use impress_workloads::codec::TraceWriter;
    use impress_workloads::source::SliceSource;
    use impress_workloads::WorkloadMix;

    /// Records `per_core` accesses per core from a fresh mix, round-robin.
    fn record_mix(workload: &str, seed: u64, per_core: u64) -> (TraceMeta, Vec<TraceRecord>) {
        let mut mix = WorkloadMix::by_name(workload, seed).unwrap();
        let cores = AccessSource::cores(&mix);
        let meta = TraceMeta {
            name: workload.to_string(),
            cores: cores as u8,
            has_gaps: false,
            instructions_per_miss: (0..cores)
                .map(|c| AccessSource::instructions_per_miss(&mix, c))
                .collect(),
        };
        let mut records = Vec::new();
        for _ in 0..per_core {
            for core in 0..cores {
                records.push(TraceRecord::from_access(
                    AccessSource::next_access(&mut mix, core),
                    0,
                ));
            }
        }
        (meta, records)
    }

    #[test]
    fn replay_reproduces_the_recording_run_bit_for_bit() {
        let (meta, records) = record_mix("mcf", 3, 1_000);
        let configuration = Configuration::unprotected();

        // The in-process run the trace was recorded from.
        let mut config = crate::config::SystemConfig::baseline();
        config.requests_per_core = 1_000;
        config = config.with_controller(configuration.controller_config());
        let mix = WorkloadMix::by_name("mcf", 3).unwrap();
        let reference = System::new(config, mix).run();

        for threads in [1usize, 2, 4] {
            let replayed = TraceRunner::new().with_shard_threads(threads).replay(
                &meta,
                &records,
                &configuration,
            );
            assert_eq!(
                replayed.performance.elapsed_cycles, reference.performance.elapsed_cycles,
                "threads = {threads}"
            );
            assert_eq!(
                replayed.performance.per_core_ipc,
                reference.performance.per_core_ipc
            );
            assert_eq!(replayed.memory, reference.memory);
            assert_eq!(
                VerdictReport::from_run(&replayed, &configuration),
                VerdictReport::from_run(&reference, &configuration)
            );
        }
    }

    #[test]
    fn ingest_is_deterministic_across_thread_counts() {
        let (meta, records) = record_mix("copy", 5, 600);
        let mut bytes = Vec::new();
        let mut w = TraceWriter::new(&mut bytes, &meta).unwrap();
        for &r in &records {
            w.push(r).unwrap();
        }
        w.finish().unwrap();
        let configuration = Configuration::unprotected();

        let run = |threads: usize| {
            let reader = TraceReader::new(SliceSource::new(&bytes)).unwrap();
            TraceRunner::new()
                .with_shard_threads(threads)
                .with_window_records(1_000)
                .ingest(reader, &configuration)
                .unwrap()
        };
        let reference = run(1);
        assert_eq!(reference.records, records.len() as u64);
        assert_eq!(reference.memory.requests, records.len() as u64);
        assert!(!reference.windows.is_empty());
        let window_total: u64 = reference.windows.iter().map(|w| w.records).sum();
        assert_eq!(window_total, reference.records);
        for threads in [2usize, 4] {
            let out = run(threads);
            assert_eq!(out.memory, reference.memory, "threads = {threads}");
            assert_eq!(out.windows, reference.windows);
            assert_eq!(out.verdict, reference.verdict);
        }
    }

    #[test]
    fn batched_ingest_verdict_is_byte_identical_to_per_record() {
        use impress_core::config::{DefenseKind, ProtectionConfig, TrackerChoice};
        let (meta, records) = record_mix("copy", 11, 600);
        let mut bytes = Vec::new();
        let mut w = TraceWriter::new(&mut bytes, &meta).unwrap();
        for &r in &records {
            w.push(r).unwrap();
        }
        w.finish().unwrap();
        let protected = Configuration::protected(
            "Graphene+ImPress-P",
            ProtectionConfig::paper_default(
                TrackerChoice::Graphene,
                DefenseKind::impress_p_default(),
            ),
        );
        let run = |threads: usize, batched: bool| {
            let reader = TraceReader::new(SliceSource::new(&bytes)).unwrap();
            TraceRunner::new()
                .with_shard_threads(threads)
                .with_window_records(1_000)
                .with_record_batching(batched)
                .ingest(reader, &protected)
                .unwrap()
        };
        for threads in [1usize, 2, 4] {
            let per = run(threads, false);
            let bat = run(threads, true);
            assert_eq!(
                bat.verdict.to_json(),
                per.verdict.to_json(),
                "threads = {threads}"
            );
            assert_eq!(bat.windows, per.windows, "threads = {threads}");
            assert_eq!(bat.memory, per.memory, "threads = {threads}");
        }
    }

    #[test]
    fn verdict_reflects_protection() {
        use impress_core::config::{DefenseKind, ProtectionConfig, TrackerChoice};
        let (meta, records) = record_mix("mcf", 7, 400);
        let unprotected = Configuration::unprotected();
        let protected = Configuration::protected(
            "Graphene+ImPress-P",
            ProtectionConfig::paper_default(
                TrackerChoice::Graphene,
                DefenseKind::impress_p_default(),
            ),
        );
        let runner = TraceRunner::new();
        let a = runner.replay(&meta, &records, &unprotected);
        let va = VerdictReport::from_run(&a, &unprotected);
        assert_eq!(va.verdict, "unprotected");
        let b = runner.replay(&meta, &records, &protected);
        let vb = VerdictReport::from_run(&b, &protected);
        assert!(vb.verdict == "mitigated" || vb.verdict == "protected-quiet");
        // JSON form is stable and parses the key fields back.
        let json = vb.to_json();
        assert!(json.contains("\"schema\": \"impress-trace-verdict-v1\""));
        assert!(json.contains(&format!("\"records\": {}", vb.records)));
    }
}
