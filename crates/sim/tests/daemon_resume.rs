//! Checkpoint/resume determinism under randomized crashes.
//!
//! The daemon's resume contract: kill the process at *any* point, restart from
//! the last durable checkpoint against the same stream, and the final verdict
//! JSON is byte-identical to an uninterrupted run — modulo the resume marker
//! the ledger records. This test simulates the kill with a source that returns
//! an I/O error after serving a randomized number of bytes, then resumes from
//! the last checkpoint the crashed run managed to publish.

use std::io;

use impress_sim::{supervise, Checkpoint, Configuration, DaemonOptions};
use impress_workloads::codec::{TraceMeta, TraceRecord, TraceWriter};
use impress_workloads::source::{SliceSource, TraceSource};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const RECORDS: u64 = 50_000;

/// Serves `data` in small chunks, then fails with `ConnectionReset` once
/// `kill_at` bytes have been delivered — a crash mid-stream.
struct CrashingSource<'a> {
    data: &'a [u8],
    at: usize,
    kill_at: usize,
    chunk: usize,
}

impl TraceSource for CrashingSource<'_> {
    fn next_chunk(&mut self) -> io::Result<Option<&[u8]>> {
        if self.at >= self.kill_at {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "injected crash",
            ));
        }
        if self.at >= self.data.len() {
            return Ok(None);
        }
        let end = (self.at + self.chunk)
            .min(self.data.len())
            .min(self.kill_at);
        let out = &self.data[self.at..end];
        self.at = end;
        Ok(Some(out))
    }
}

fn sample_trace() -> Vec<u8> {
    let meta = TraceMeta {
        name: "resume".to_string(),
        cores: 2,
        has_gaps: false,
        instructions_per_miss: vec![40.0, 60.0],
    };
    let mut w = TraceWriter::new(Vec::new(), &meta).unwrap();
    for i in 0..RECORDS {
        w.push(TraceRecord {
            address: i * 64 + ((i % 512) << 26),
            gap: 0,
            core: (i % 2) as u8,
            is_write: i % 5 == 0,
        })
        .unwrap();
    }
    w.finish().unwrap()
}

fn opts(resume_from: Option<Checkpoint>) -> DaemonOptions {
    DaemonOptions {
        window_records: 10_000,
        checkpoint_every: 20_000,
        shard_threads: 2,
        resume_from,
        ..DaemonOptions::default()
    }
}

/// Drops the ledger's resume-marker lines, leaving everything else untouched.
fn without_resume_marker(json: &str) -> String {
    json.lines()
        .filter(|l| !l.contains("\"kind\": \"resume\""))
        .collect::<Vec<_>>()
        .join("\n")
        + "\n"
}

#[test]
fn resume_after_randomized_kill_points_reproduces_the_verdict() {
    let bytes = sample_trace();
    let configuration = Configuration::unprotected();

    let baseline = supervise(
        SliceSource::new(&bytes),
        &configuration,
        &opts(None),
        &mut |_| Ok(()),
    )
    .unwrap()
    .verdict
    .to_json_extended();

    let mut rng = SmallRng::seed_from_u64(0x5eed_c0de);
    let mut resumed_runs = 0;
    for round in 0..8 {
        // Kill anywhere in the back three quarters of the stream; the first
        // durable checkpoint lands at 28 192 records (~450 KiB in).
        let kill_at = rng.gen_range(bytes.len() / 4..bytes.len());

        let mut checkpoints: Vec<Checkpoint> = Vec::new();
        let crashed = supervise(
            CrashingSource {
                data: &bytes,
                at: 0,
                kill_at,
                chunk: 4096,
            },
            &configuration,
            &opts(None),
            &mut |cp| {
                checkpoints.push(*cp);
                Ok(())
            },
        );
        assert!(
            crashed.is_err(),
            "round {round}: kill at byte {kill_at} did not surface as an error"
        );

        let resume_from = checkpoints.last().copied();
        if resume_from.is_some() {
            resumed_runs += 1;
        }
        let resumed = supervise(
            SliceSource::new(&bytes),
            &configuration,
            &opts(resume_from),
            &mut |_| Ok(()),
        )
        .unwrap()
        .verdict
        .to_json_extended();

        if resume_from.is_some() {
            assert_ne!(
                resumed, baseline,
                "round {round}: a resumed run must record its resume marker"
            );
        }
        assert_eq!(
            without_resume_marker(&resumed),
            baseline,
            "round {round}: verdict diverged after resume from {resume_from:?}"
        );
    }
    // The kill-point range guarantees most rounds crash after the first
    // checkpoint; make sure the resume path was actually exercised.
    assert!(
        resumed_runs >= 4,
        "only {resumed_runs}/8 rounds exercised a real resume"
    );
}

#[test]
fn resume_from_every_published_checkpoint_is_equivalent() {
    let bytes = sample_trace();
    let configuration = Configuration::unprotected();

    let mut checkpoints: Vec<Checkpoint> = Vec::new();
    let baseline = supervise(
        SliceSource::new(&bytes),
        &configuration,
        &opts(None),
        &mut |cp| {
            checkpoints.push(*cp);
            Ok(())
        },
    )
    .unwrap()
    .verdict
    .to_json_extended();
    assert!(!checkpoints.is_empty());

    for cp in checkpoints {
        let resumed = supervise(
            SliceSource::new(&bytes),
            &configuration,
            &opts(Some(cp)),
            &mut |_| Ok(()),
        )
        .unwrap()
        .verdict
        .to_json_extended();
        assert_eq!(
            without_resume_marker(&resumed),
            baseline,
            "verdict diverged resuming from checkpoint at {} records",
            cp.records
        );
    }
}
