//! Hostile-network robustness: seeded transport faults against live
//! endpoints.
//!
//! Every run drives the real `SocketSource` accept loop under `supervise`
//! against the real retrying client, with a seeded [`ConnFaultPlan`] wrapping
//! the client's wire in a [`FaultTransport`]. The contract under attack:
//!
//! - neither endpoint ever panics, whatever the plan injects;
//! - a retrying client always terminates, delivers a byte-identical stream,
//!   and leaves a clean ledger (transport markers only);
//! - a non-retrying client's damage is bounded by the plan oracle — the
//!   daemon recovers exactly the intact prefix records and its ledger
//!   accounts for at least every in-band-detectable lost record.

use std::io;
use std::path::PathBuf;
use std::thread;
use std::time::Duration;

use impress_sim::{supervise, Configuration, DaemonOptions, IngestReport};
use impress_workloads::codec::{TraceMeta, TraceRecord, TraceWriter};
use impress_workloads::source::{FollowPolicy, SliceSource};
use impress_workloads::transport::{
    send_stream, Endpoint, Listener, MemInput, SendOptions, SocketSource, WireLink,
};
use impress_workloads::{ConnFaultPlan, ConnFaultState, FaultTransport, FrameMap};

/// ~2.1 codec frames: big enough that seeded cuts land mid-stream, small
/// enough that a dozen supervised runs stay CI-friendly.
const RECORDS: u64 = 2 * 8192 + 500;

/// DATA frame payload size for every hostile run — the oracle's coordinate
/// system (`delivered_prefix` rounds to this grain).
const DATA_BYTES: usize = 1024;

const SEEDS: [u64; 8] = [1, 2, 3, 5, 8, 13, 21, 42];

fn sample_trace() -> Vec<u8> {
    let meta = TraceMeta {
        name: "hostile".to_string(),
        cores: 2,
        has_gaps: false,
        instructions_per_miss: vec![40.0, 60.0],
    };
    let mut w = TraceWriter::new(Vec::new(), &meta).unwrap();
    for i in 0..RECORDS {
        w.push(TraceRecord {
            address: i * 64 + ((i % 512) << 26),
            gap: 0,
            core: (i % 2) as u8,
            is_write: i % 5 == 0,
        })
        .unwrap();
    }
    w.finish().unwrap()
}

fn opts() -> DaemonOptions {
    DaemonOptions {
        window_records: 4096,
        checkpoint_every: 0,
        shard_threads: 1,
        resync: true,
        ..DaemonOptions::default()
    }
}

fn policy(idle: Duration) -> FollowPolicy {
    FollowPolicy {
        initial_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(20),
        idle_limit: idle,
    }
}

fn unix_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("impress-hostile-{}-{tag}.sock", std::process::id()))
}

fn modulo_markers(json: &str) -> String {
    json.lines()
        .filter(|l| {
            !l.contains("\"kind\": \"resume\"")
                && !l.contains("\"kind\": \"conn-")
                && !l.contains("\"transport\":")
        })
        .collect::<Vec<_>>()
        .join("\n")
        + "\n"
}

fn spawn_daemon(
    endpoint: &Endpoint,
    idle: Duration,
) -> (Endpoint, thread::JoinHandle<io::Result<IngestReport>>) {
    let listener = Listener::bind(endpoint).unwrap();
    let bound = listener.local_endpoint().unwrap();
    let configuration = Configuration::unprotected();
    let handle = thread::spawn(move || {
        supervise(
            SocketSource::new(listener, policy(idle)),
            &configuration,
            &opts(),
            &mut |_| Ok(()),
        )
    });
    (bound, handle)
}

/// Streams `bytes` through a seeded [`FaultTransport`]; the fired-state is
/// shared across reconnects so each op fires exactly once.
fn faulted_send(
    bytes: Vec<u8>,
    endpoint: Endpoint,
    plan: &ConnFaultPlan,
    retry: bool,
    idle: Duration,
) -> thread::JoinHandle<(io::Result<impress_workloads::transport::SendOutcome>, usize)> {
    let state = ConnFaultState::shared(plan);
    thread::spawn(move || {
        let mut input = MemInput::new(bytes);
        let options = SendOptions {
            policy: policy(idle),
            retry,
            data_bytes: DATA_BYTES,
            ..SendOptions::default()
        };
        let dial_state = state.clone();
        let result = send_stream(
            &mut input,
            || WireLink::connect(&endpoint).map(|l| FaultTransport::new(l, dial_state.clone())),
            &options,
        );
        let cuts_fired = state.lock().unwrap().cuts_fired();
        (result, cuts_fired)
    })
}

#[test]
fn retrying_client_survives_every_seeded_plan_with_verdict_identity() {
    let bytes = sample_trace();
    let configuration = Configuration::unprotected();
    let baseline = supervise(
        SliceSource::new(&bytes),
        &configuration,
        &opts(),
        &mut |_| Ok(()),
    )
    .unwrap()
    .verdict
    .to_json_extended();

    for seed in SEEDS {
        let plan = ConnFaultPlan::seeded(seed, bytes.len() as u64);
        let (bound, daemon) = spawn_daemon(
            &Endpoint::Unix(unix_path(&format!("retry{seed}"))),
            Duration::from_secs(2),
        );
        let client = faulted_send(bytes.clone(), bound, &plan, true, Duration::from_secs(5));

        let (result, cuts_fired) = client.join().expect("client must not panic (seed {seed})");
        let outcome = result.expect("retrying client must terminate successfully");
        assert!(outcome.complete, "seed {seed}: FIN must be acked");
        assert_eq!(outcome.acked, bytes.len() as u64, "seed {seed}");
        assert_eq!(
            outcome.sessions,
            1 + cuts_fired as u64,
            "seed {seed}: one reconnect per severed connection"
        );

        let report = daemon
            .join()
            .expect("daemon must not panic")
            .expect("seed {seed}: the supervised run must finish");
        assert_eq!(report.records, RECORDS, "seed {seed}");
        assert!(
            report.verdict.faults.is_clean(),
            "seed {seed}: retry must leave only transport markers: {}",
            report.verdict.to_json_extended()
        );
        assert_eq!(
            modulo_markers(&report.verdict.to_json_extended()),
            modulo_markers(&baseline),
            "seed {seed}: verdict diverged under transport faults"
        );
    }
}

#[test]
fn non_retrying_client_damage_is_bounded_by_the_plan_oracle() {
    let bytes = sample_trace();
    let map = FrameMap::scan(&bytes).unwrap();

    for seed in SEEDS {
        let plan = ConnFaultPlan::seeded(seed, bytes.len() as u64);
        let expect = plan
            .expected_no_retry(&map, DATA_BYTES)
            .expect("the truncation oracle applies to every seeded plan");

        // Short accept-loop idle: once the client dies the daemon must wind
        // down on its own rather than waiting for a reconnect.
        let (bound, daemon) = spawn_daemon(
            &Endpoint::Unix(unix_path(&format!("noretry{seed}"))),
            Duration::from_millis(400),
        );
        let client = faulted_send(bytes.clone(), bound, &plan, false, Duration::from_secs(2));

        let (result, _) = client.join().expect("client must not panic");
        assert_eq!(
            result.is_err(),
            plan.first_cut().is_some(),
            "seed {seed}: a cut kills a non-retrying client, nothing else does"
        );

        let report = daemon
            .join()
            .expect("daemon must not panic")
            .expect("seed {seed}: resync ingest survives a truncated stream");
        let verdict = report.verdict.to_json_extended();
        let lost = report.verdict.faults.records_lost();

        // Recovered records are exactly the intact frames of the delivered
        // prefix; the ledger owns at least every in-band-detectable loss.
        assert_eq!(
            report.records, expect.intact_records,
            "seed {seed}: {verdict}"
        );
        assert!(
            lost >= expect.damaged_records,
            "seed {seed}: ledger lost {lost} < oracle damaged {}",
            expect.damaged_records
        );
        assert!(
            report.records + lost + expect.unaccounted_records >= expect.baseline_records,
            "seed {seed}: recovered + lost must cover the oracle baseline"
        );
        if expect.mid_frame_cut {
            assert!(
                verdict.contains("\"kind\": \"truncated-stream\""),
                "seed {seed}: a mid-frame cut must raise the truncated flag: {verdict}"
            );
        }
    }
}
