//! Multi-tenant ingestion acceptance: concurrent producers, admission
//! control, per-tenant isolation and overload shedding.
//!
//! The contract under test (the PR's acceptance criteria): with several
//! concurrent producers — including a seeded hostile one and a slow-loris —
//! every well-behaved tenant's verdict is byte-identical to a solo file
//! ingest of its stream (modulo the ledgered transport marker lines) at 1, 2
//! and 4 shard threads; over-capacity dials get a typed BUSY; a hostile or
//! stalling tenant is quarantined without taking the daemon down.

use std::sync::atomic::{AtomicBool, Ordering};
use std::thread;
use std::time::Duration;

use impress_sim::daemon::{supervise, DaemonOptions};
use impress_sim::{serve_tenants, Configuration, MultiReport};
use impress_workloads::codec::{TraceMeta, TraceRecord, TraceWriter};
use impress_workloads::source::{FollowPolicy, SliceSource};
use impress_workloads::transport::{
    send_to, Endpoint, Listener, MemInput, SendOptions, TenantLimits, TenantServer,
};
use impress_workloads::{connect_flood, run_hostile_producer, run_slow_loris};

const RECORDS: u64 = 20_000;

/// A per-tenant trace: distinct workload name and address pattern so tenants
/// are distinguishable end to end.
fn tenant_trace(name: &str, salt: u64) -> Vec<u8> {
    let meta = TraceMeta {
        name: name.to_string(),
        cores: 2,
        has_gaps: false,
        instructions_per_miss: vec![40.0, 60.0],
    };
    let mut w = TraceWriter::new(Vec::new(), &meta).unwrap();
    for i in 0..RECORDS {
        w.push(TraceRecord {
            address: i * 64 + ((i.wrapping_mul(salt * 2 + 7) % 512) << 26),
            gap: 0,
            core: (i % 2) as u8,
            is_write: i % 5 == 0,
        })
        .unwrap();
    }
    w.finish().unwrap()
}

fn opts(shard_threads: usize) -> DaemonOptions {
    DaemonOptions {
        window_records: 4096,
        checkpoint_every: 0,
        shard_threads,
        resync: true,
        ..DaemonOptions::listening()
    }
}

fn policy(idle: Duration) -> FollowPolicy {
    FollowPolicy {
        initial_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(20),
        idle_limit: idle,
    }
}

fn modulo_markers(json: &str) -> String {
    json.lines()
        .filter(|l| {
            !l.contains("\"kind\": \"resume\"")
                && !l.contains("\"kind\": \"conn-")
                && !l.contains("\"transport\":")
        })
        .collect::<Vec<_>>()
        .join("\n")
        + "\n"
}

/// Reference: what a solo file ingest of `bytes` reports.
fn solo_verdict(bytes: &[u8], shard_threads: usize) -> String {
    supervise(
        SliceSource::new(bytes),
        &Configuration::unprotected(),
        &opts(shard_threads),
        &mut |_| Ok(()),
    )
    .unwrap()
    .verdict
    .to_json_extended()
}

/// Spawns `serve_tenants` over a fresh loopback TCP listener.
fn spawn_server(
    limits: TenantLimits,
    options: DaemonOptions,
    idle: Duration,
    flag: &'static AtomicBool,
) -> (Endpoint, thread::JoinHandle<std::io::Result<MultiReport>>) {
    let listener = Listener::bind(&Endpoint::parse("tcp://127.0.0.1:0").unwrap()).unwrap();
    let bound = listener.local_endpoint().unwrap();
    let handle = thread::spawn(move || {
        let mut server = TenantServer::new(listener, policy(idle), limits).with_drain_flag(flag);
        let configuration = Configuration::unprotected();
        serve_tenants(&mut server, &configuration, &options, None)
    });
    (bound, handle)
}

/// Per-test drain flag with the `'static` lifetime the server requires.
fn drain_flag() -> &'static AtomicBool {
    Box::leak(Box::new(AtomicBool::new(false)))
}

fn clean_send(endpoint: &Endpoint, bytes: &[u8]) -> u64 {
    let mut input = MemInput::new(bytes.to_vec());
    let outcome = send_to(
        endpoint,
        &mut input,
        &SendOptions {
            policy: policy(Duration::from_secs(10)),
            ..SendOptions::default()
        },
    )
    .expect("clean delivery must complete");
    assert!(outcome.complete, "FIN must be acked");
    assert_eq!(outcome.acked, bytes.len() as u64);
    outcome.tenant
}

#[test]
fn concurrent_producers_match_solo_ingest_at_every_thread_count() {
    let traces: Vec<(String, Vec<u8>)> = ["alpha", "beta", "gamma"]
        .iter()
        .enumerate()
        .map(|(i, name)| ((*name).to_string(), tenant_trace(name, i as u64)))
        .collect();

    for threads in [1usize, 2, 4] {
        let flag = drain_flag();
        let (bound, server) = spawn_server(
            TenantLimits::default(),
            opts(threads),
            Duration::from_secs(10),
            flag,
        );

        // Three clean producers plus one seeded-hostile, all concurrent.
        let clean: Vec<_> = traces
            .iter()
            .map(|(name, bytes)| {
                let ep = bound.clone();
                let name = name.clone();
                let bytes = bytes.clone();
                thread::spawn(move || {
                    let token = clean_send(&ep, &bytes);
                    (name, token, bytes)
                })
            })
            .collect();
        let hostile = {
            let ep = bound.clone();
            let prefix = traces[0].1[..8192].to_vec();
            thread::spawn(move || {
                run_hostile_producer(&ep, 7, &prefix, 16).expect("hostile loop must terminate")
            })
        };

        let clean: Vec<_> = clean.into_iter().map(|h| h.join().unwrap()).collect();
        let hostile_outcome = hostile.join().unwrap();
        assert!(
            hostile_outcome.quarantined,
            "{threads} threads: the violating producer must end up quarantined: \
             {hostile_outcome:?}"
        );

        flag.store(true, Ordering::SeqCst);
        let multi = server
            .join()
            .expect("server must not panic")
            .expect("the accept loop must survive a hostile tenant");
        assert_eq!(
            multi.tenants.len(),
            4,
            "{threads} threads: 3 clean + 1 hostile"
        );

        for (name, token, bytes) in &clean {
            let report = multi
                .tenant(*token)
                .unwrap_or_else(|| panic!("tenant {token} missing from the report"))
                .result
                .as_ref()
                .expect("a clean tenant's pipeline must succeed");
            assert_eq!(&report.verdict.workload, name);
            assert_eq!(report.records, RECORDS);
            assert!(
                report.verdict.faults.is_clean(),
                "{threads} threads, tenant {token}: {}",
                report.verdict.to_json_extended()
            );
            assert_eq!(
                modulo_markers(&report.verdict.to_json_extended()),
                modulo_markers(&solo_verdict(bytes, threads)),
                "{threads} threads: tenant {token} ({name}) diverged from solo ingest"
            );
        }

        // The hostile tenant is isolated: either its pipeline died on the
        // truncated stream, or its verdict carries the quarantine outcome.
        let hostile_report = multi
            .tenant(hostile_outcome.tenant)
            .expect("the hostile tenant was admitted before being banned");
        if let Ok(report) = &hostile_report.result {
            assert_eq!(
                report.verdict.outcome(),
                "quarantined",
                "{threads} threads: {}",
                report.verdict.to_json_extended()
            );
        }
    }
}

#[test]
fn over_capacity_floods_get_typed_busy_and_the_daemon_keeps_serving() {
    let flag = drain_flag();
    let limits = TenantLimits {
        max_clients: 2,
        max_pending: 4,
        ..TenantLimits::default()
    };
    let (bound, server) = spawn_server(limits, opts(1), Duration::from_secs(10), flag);

    let flood = connect_flood(&bound, 12, Duration::from_secs(5));
    assert_eq!(
        flood.admitted + flood.busy + flood.failed,
        12,
        "every dial is classified: {flood:?}"
    );
    assert!(flood.admitted >= 1, "{flood:?}");
    assert!(
        flood.busy >= 1,
        "over-capacity dials must get the typed BUSY reject: {flood:?}"
    );

    // After the flood drains, a clean producer is admitted and served intact.
    let bytes = tenant_trace("after-flood", 3);
    let token = clean_send(&bound, &bytes);

    flag.store(true, Ordering::SeqCst);
    let multi = server
        .join()
        .expect("server must not panic")
        .expect("the accept loop must survive the flood");
    let report = multi
        .tenant(token)
        .expect("the post-flood tenant must be admitted")
        .result
        .as_ref()
        .expect("the post-flood tenant's pipeline must succeed");
    assert_eq!(
        modulo_markers(&report.verdict.to_json_extended()),
        modulo_markers(&solo_verdict(&bytes, 1)),
        "the flood must not disturb a later clean tenant"
    );
}

#[test]
fn slow_loris_is_stall_evicted_into_quarantine_without_disturbing_others() {
    let flag = drain_flag();
    let limits = TenantLimits {
        stall_limit: Duration::from_millis(200),
        quarantine_after: 2,
        ..TenantLimits::default()
    };
    let (bound, server) = spawn_server(limits, opts(2), Duration::from_secs(10), flag);

    let loris = {
        let ep = bound.clone();
        thread::spawn(move || {
            run_slow_loris(&ep, 8, Duration::from_secs(3)).expect("loris loop must terminate")
        })
    };
    let bytes = tenant_trace("steady", 11);
    let token = clean_send(&bound, &bytes);
    let loris_outcome = loris.join().unwrap();
    assert!(
        loris_outcome.quarantined,
        "holding a session open without progress must end in quarantine: {loris_outcome:?}"
    );
    assert!(
        loris_outcome.sessions >= 2,
        "eviction, not instant ban: {loris_outcome:?}"
    );

    flag.store(true, Ordering::SeqCst);
    let multi = server
        .join()
        .expect("server must not panic")
        .expect("the accept loop must survive the slow loris");
    let report = multi
        .tenant(token)
        .expect("the steady tenant must be admitted")
        .result
        .as_ref()
        .expect("the steady tenant's pipeline must succeed");
    assert_eq!(report.records, RECORDS);
    assert_eq!(
        modulo_markers(&report.verdict.to_json_extended()),
        modulo_markers(&solo_verdict(&bytes, 2)),
        "the slow loris must not disturb the steady tenant"
    );
}
