//! Transport determinism: verdicts for socket-delivered traces must be
//! byte-identical to file ingest.
//!
//! The networked ingestion contract: delivering the same recorded trace over
//! TCP or a Unix-domain socket — at any shard thread count, across daemon
//! crashes and client reconnects — yields the same verdict JSON as reading
//! the file directly, modulo the ledgered `resume`/`conn-*` marker lines the
//! transport records. These tests run the real `SocketSource` accept loop
//! under `supervise` against the real `send_to` client over loopback.

use std::io;
use std::path::PathBuf;
use std::sync::atomic::AtomicBool;
use std::sync::atomic::Ordering;
use std::thread;
use std::time::Duration;

use impress_sim::daemon::{supervise, Checkpoint, DaemonOptions};
use impress_sim::{Configuration, IngestReport};
use impress_workloads::codec::{DecodeMode, TraceMeta, TraceReader, TraceRecord, TraceWriter};
use impress_workloads::source::{FollowPolicy, SliceSource, TraceSource, TransportEvent};
use impress_workloads::transport::{
    send_to, Endpoint, Listener, MemInput, SendOptions, SocketSource,
};

const RECORDS: u64 = 50_000;

fn sample_trace() -> Vec<u8> {
    let meta = TraceMeta {
        name: "socket".to_string(),
        cores: 2,
        has_gaps: false,
        instructions_per_miss: vec![40.0, 60.0],
    };
    let mut w = TraceWriter::new(Vec::new(), &meta).unwrap();
    for i in 0..RECORDS {
        w.push(TraceRecord {
            address: i * 64 + ((i % 512) << 26),
            gap: 0,
            core: (i % 2) as u8,
            is_write: i % 5 == 0,
        })
        .unwrap();
    }
    w.finish().unwrap()
}

fn opts(shard_threads: usize, resume_from: Option<Checkpoint>) -> DaemonOptions {
    DaemonOptions {
        window_records: 10_000,
        checkpoint_every: 20_000,
        shard_threads,
        resume_from,
        resync: true,
        ..DaemonOptions::default()
    }
}

fn policy(idle: Duration) -> FollowPolicy {
    FollowPolicy {
        initial_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(20),
        idle_limit: idle,
    }
}

/// Unique Unix-socket path per test invocation.
fn unix_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("impress-sock-{}-{tag}.sock", std::process::id()))
}

/// Drops the timing-dependent ledger lines (`resume` markers, `conn-*`
/// transport events and the aggregate `transport` summary block), leaving
/// every deterministic line untouched.
fn modulo_markers(json: &str) -> String {
    json.lines()
        .filter(|l| {
            !l.contains("\"kind\": \"resume\"")
                && !l.contains("\"kind\": \"conn-")
                && !l.contains("\"transport\":")
        })
        .collect::<Vec<_>>()
        .join("\n")
        + "\n"
}

/// Runs `supervise` over a socket source bound to `endpoint` on its own
/// thread, collecting checkpoints.
#[allow(clippy::type_complexity)]
fn spawn_daemon(
    endpoint: &Endpoint,
    shard_threads: usize,
    resume_from: Option<Checkpoint>,
    idle: Duration,
    drain: Option<&'static AtomicBool>,
) -> (
    Endpoint,
    thread::JoinHandle<(io::Result<IngestReport>, Vec<Checkpoint>)>,
) {
    let listener = Listener::bind(endpoint).unwrap();
    let bound = listener.local_endpoint().unwrap();
    let configuration = Configuration::unprotected();
    let handle = thread::spawn(move || {
        let mut source = SocketSource::new(listener, policy(idle));
        if let Some(flag) = drain {
            source = source.with_drain_flag(flag);
        }
        let mut checkpoints = Vec::new();
        let report = supervise(
            source,
            &configuration,
            &opts(shard_threads, resume_from),
            &mut |cp| {
                checkpoints.push(*cp);
                Ok(())
            },
        );
        (report, checkpoints)
    });
    (bound, handle)
}

fn send_all(endpoint: &Endpoint, bytes: &[u8], idle: Duration) {
    let mut input = MemInput::new(bytes.to_vec());
    let options = SendOptions {
        policy: policy(idle),
        ..SendOptions::default()
    };
    let outcome = send_to(endpoint, &mut input, &options).expect("delivery must complete");
    assert!(outcome.complete, "FIN must be acked");
    assert_eq!(outcome.acked, bytes.len() as u64);
}

#[test]
fn tcp_and_unix_verdicts_match_file_ingest_at_every_thread_count() {
    let bytes = sample_trace();
    let configuration = Configuration::unprotected();
    let baseline = supervise(
        SliceSource::new(&bytes),
        &configuration,
        &opts(1, None),
        &mut |_| Ok(()),
    )
    .unwrap()
    .verdict
    .to_json_extended();

    for threads in [1usize, 2, 4] {
        let unix = Endpoint::Unix(unix_path(&format!("det{threads}")));
        for endpoint in [Endpoint::Tcp("127.0.0.1:0".to_string()), unix] {
            let (bound, daemon) =
                spawn_daemon(&endpoint, threads, None, Duration::from_secs(5), None);
            send_all(&bound, &bytes, Duration::from_secs(5));
            let (report, _) = daemon.join().expect("daemon must not panic");
            let verdict = report.unwrap().verdict.to_json_extended();
            assert_eq!(
                modulo_markers(&verdict),
                modulo_markers(&baseline),
                "verdict diverged over {endpoint} at {threads} shard threads"
            );
        }
    }
}

/// Wraps a socket source and fails with `BrokenPipe` once `cut_at` canonical
/// bytes have been served — `supervise` dies exactly as if the daemon process
/// were SIGKILLed mid-stream, with the listener torn down.
struct DyingSource {
    inner: SocketSource,
    served: u64,
    cut_at: u64,
}

impl TraceSource for DyingSource {
    fn next_chunk(&mut self) -> io::Result<Option<&[u8]>> {
        if self.served >= self.cut_at {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "simulated daemon crash",
            ));
        }
        let chunk = self.inner.next_chunk()?;
        if let Some(c) = &chunk {
            self.served += c.len() as u64;
        }
        Ok(chunk)
    }

    fn take_transport_events(&mut self) -> Vec<TransportEvent> {
        self.inner.take_transport_events()
    }
}

#[test]
fn kill_daemon_mid_stream_then_reconnect_resumes_from_every_checkpoint() {
    let bytes = sample_trace();
    let configuration = Configuration::unprotected();
    let baseline = supervise(
        SliceSource::new(&bytes),
        &configuration,
        &opts(2, None),
        &mut |_| Ok(()),
    )
    .unwrap()
    .verdict
    .to_json_extended();

    // Uninterrupted socket run, collecting every published checkpoint.
    let path = unix_path("ckpt");
    let endpoint = Endpoint::Unix(path.clone());
    let (bound, daemon) = spawn_daemon(&endpoint, 2, None, Duration::from_secs(5), None);
    send_all(&bound, &bytes, Duration::from_secs(5));
    let (report, checkpoints) = daemon.join().expect("daemon must not panic");
    report.unwrap();
    assert!(
        !checkpoints.is_empty(),
        "the run must publish at least one checkpoint"
    );

    // Crash the daemon mid-stream, then restart it with --resume semantics
    // from each checkpoint in turn; the retrying client reconnects to the
    // rebound endpoint and the daemon directs it back to byte 0 for
    // deterministic prefix re-execution.
    for cp in checkpoints {
        let listener = Listener::bind(&endpoint).unwrap();
        let configuration = Configuration::unprotected();
        let crashing = thread::spawn(move || {
            supervise(
                DyingSource {
                    inner: SocketSource::new(listener, policy(Duration::from_secs(5))),
                    served: 0,
                    cut_at: cp.source_offset,
                },
                &configuration,
                &opts(2, None),
                &mut |_| Ok(()),
            )
        });

        let client_endpoint = endpoint.clone();
        let client_bytes = bytes.clone();
        let client = thread::spawn(move || {
            // Generous downtime budget: the client must ride out the crash
            // and the restart below.
            send_all(&client_endpoint, &client_bytes, Duration::from_secs(15));
        });

        let crashed = crashing.join().expect("crashing daemon must not panic");
        assert!(crashed.is_err(), "the cut source must kill the first run");

        let (_, daemon) = spawn_daemon(&endpoint, 2, Some(cp), Duration::from_secs(5), None);
        client.join().expect("client must not panic");
        let (report, _) = daemon.join().expect("resumed daemon must not panic");
        let verdict = report.unwrap().verdict.to_json_extended();
        assert!(
            verdict.contains("\"kind\": \"resume\""),
            "the resumed run must record its resume marker"
        );
        assert_eq!(
            modulo_markers(&verdict),
            modulo_markers(&baseline),
            "verdict diverged resuming from the checkpoint at {} records",
            cp.records
        );
    }
}

#[test]
fn graceful_drain_publishes_goodbye_and_conn_drain_marker() {
    let bytes = sample_trace();
    static DRAIN: AtomicBool = AtomicBool::new(false);
    DRAIN.store(false, Ordering::SeqCst);

    let endpoint = Endpoint::Unix(unix_path("drain"));
    let (bound, daemon) = spawn_daemon(&endpoint, 1, None, Duration::from_secs(10), Some(&DRAIN));

    // Follow mode: the client delivers everything but never FINs, so the
    // session is still open when the drain lands.
    let client_bytes = bytes.clone();
    let client = thread::spawn(move || {
        let mut input = MemInput::new(client_bytes);
        let options = SendOptions {
            policy: policy(Duration::from_secs(10)),
            follow: true,
            ..SendOptions::default()
        };
        send_to(&bound, &mut input, &options).expect("drain is a graceful end, not an error")
    });

    // Loopback delivery of ~640 KiB takes milliseconds; a generous grace
    // period guarantees the full stream is committed before the drain.
    thread::sleep(Duration::from_millis(1500));
    DRAIN.store(true, Ordering::SeqCst);

    let outcome = client.join().expect("client must not panic");
    assert!(
        outcome.goodbye,
        "the daemon must say goodbye, not just close"
    );
    assert!(!outcome.complete, "no FIN was ever acked");
    assert_eq!(outcome.acked, bytes.len() as u64);

    let (report, _) = daemon.join().expect("daemon must not panic");
    let report = report.unwrap();
    assert_eq!(report.records, RECORDS, "every record arrived before drain");
    let verdict = report.verdict.to_json_extended();
    assert!(verdict.contains("\"kind\": \"conn-drain\""));

    // Everything was delivered, so modulo the transport markers the drained
    // verdict matches a clean file ingest.
    let configuration = Configuration::unprotected();
    let baseline = supervise(
        SliceSource::new(&bytes),
        &configuration,
        &opts(1, None),
        &mut |_| Ok(()),
    )
    .unwrap()
    .verdict
    .to_json_extended();
    assert_eq!(modulo_markers(&verdict), modulo_markers(&baseline));
}

#[test]
fn strict_mode_decode_errors_over_sockets_report_offset_and_frame() {
    let mut bytes = sample_trace();
    // Flip a payload bit deep in the stream: strict decode must fail with the
    // same absolute byte offset and frame index whether the bytes came from a
    // file or a socket.
    let n = bytes.len();
    bytes[n / 2] ^= 0x40;

    let file_err = TraceReader::with_mode(SliceSource::new(&bytes), DecodeMode::Strict)
        .and_then(|mut r| r.read_all())
        .expect_err("corruption must fail a strict decode")
        .to_string();
    assert!(
        file_err.contains("at byte") && file_err.contains("frame"),
        "strict errors carry position context: {file_err}"
    );

    let endpoint = Endpoint::Unix(unix_path("strict"));
    let listener = Listener::bind(&endpoint).unwrap();
    let bound = listener.local_endpoint().unwrap();
    let server = thread::spawn(move || {
        let source = SocketSource::new(listener, policy(Duration::from_secs(5)));
        TraceReader::with_mode(source, DecodeMode::Strict)
            .and_then(|mut r| r.read_all())
            .expect_err("corruption must fail a strict decode over the socket")
            .to_string()
    });
    let client_bytes = bytes.clone();
    let client = thread::spawn(move || {
        let mut input = MemInput::new(client_bytes);
        // The server aborts mid-stream on the decode error, so delivery may
        // end in a transport error; only the server-side message matters.
        let options = SendOptions {
            policy: policy(Duration::from_millis(500)),
            retry: false,
            ..SendOptions::default()
        };
        let _ = send_to(&bound, &mut input, &options);
    });
    let socket_err = server.join().expect("server must not panic");
    client.join().expect("client must not panic");
    assert_eq!(
        socket_err, file_err,
        "socket-fed strict errors must carry the same absolute position"
    );
}
