//! Session-churn soak: dozens of seeded connect/disconnect/resume cycles
//! against one multi-tenant daemon, sequential and concurrent.
//!
//! Every producer wraps its wire in a seeded [`ConnFaultPlan`]
//! (disconnects, short writes, stalls, duplicate tails), so each delivery is
//! a churn of severed sessions and offset resumes. The soak asserts the
//! final contract: every tenant's verdict is identical to a solo file ingest
//! (modulo transport markers), nothing is lost, session counts are exactly
//! `1 + cuts`, the ledger stays bounded by the injected cut count — and the
//! whole run is reproducible: a second daemon fed the same seeds produces
//! the same stripped verdicts and the same per-seed session counts.

use std::sync::atomic::{AtomicBool, Ordering};
use std::thread;
use std::time::Duration;

use impress_sim::daemon::{supervise, DaemonOptions};
use impress_sim::{serve_tenants, Configuration, MultiReport};
use impress_workloads::codec::{TraceMeta, TraceRecord, TraceWriter};
use impress_workloads::source::{FollowPolicy, SliceSource};
use impress_workloads::transport::{
    send_stream, Endpoint, Listener, MemInput, SendOptions, TenantLimits, TenantServer, WireLink,
};
use impress_workloads::{ConnFaultPlan, ConnFaultState, FaultTransport};

/// ~1.06 codec frames: cuts land mid-stream, many supervised pipelines stay
/// CI-friendly.
const RECORDS: u64 = 8192 + 500;

const DATA_BYTES: usize = 1024;

/// Total connect/disconnect/resume cycles the soak must reach.
const TARGET_CYCLES: u64 = 50;

fn sample_trace() -> Vec<u8> {
    let meta = TraceMeta {
        name: "churn".to_string(),
        cores: 2,
        has_gaps: false,
        instructions_per_miss: vec![40.0, 60.0],
    };
    let mut w = TraceWriter::new(Vec::new(), &meta).unwrap();
    for i in 0..RECORDS {
        w.push(TraceRecord {
            address: i * 64 + ((i % 512) << 26),
            gap: 0,
            core: (i % 2) as u8,
            is_write: i % 5 == 0,
        })
        .unwrap();
    }
    w.finish().unwrap()
}

fn opts() -> DaemonOptions {
    DaemonOptions {
        window_records: 4096,
        checkpoint_every: 0,
        shard_threads: 1,
        resync: true,
        ..DaemonOptions::listening()
    }
}

fn policy(idle: Duration) -> FollowPolicy {
    FollowPolicy {
        initial_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(20),
        idle_limit: idle,
    }
}

fn modulo_markers(json: &str) -> String {
    json.lines()
        .filter(|l| {
            !l.contains("\"kind\": \"resume\"")
                && !l.contains("\"kind\": \"conn-")
                && !l.contains("\"transport\":")
        })
        .collect::<Vec<_>>()
        .join("\n")
        + "\n"
}

/// Seeds whose planned cut counts add up to at least [`TARGET_CYCLES`]
/// sessions, paired with each seed's planned `1 + cuts` session count.
fn seed_schedule(payload_len: u64) -> Vec<(u64, u64)> {
    let mut schedule = Vec::new();
    let mut planned = 0u64;
    let mut seed = 1u64;
    while planned < TARGET_CYCLES {
        let plan = ConnFaultPlan::seeded(seed, payload_len);
        let cuts = plan.ops.iter().filter(|op| op.cuts()).count() as u64;
        planned += 1 + cuts;
        schedule.push((seed, 1 + cuts));
        seed += 1;
    }
    schedule
}

/// One churning producer: a seeded fault plan over a retrying sender.
/// Returns `(tenant token, sessions opened)`.
fn churn_send(endpoint: &Endpoint, bytes: &[u8], seed: u64) -> (u64, u64) {
    let plan = ConnFaultPlan::seeded(seed, bytes.len() as u64);
    let state = ConnFaultState::shared(&plan);
    let mut input = MemInput::new(bytes.to_vec());
    let options = SendOptions {
        policy: policy(Duration::from_secs(10)),
        data_bytes: DATA_BYTES,
        ..SendOptions::default()
    };
    let ep = endpoint.clone();
    let outcome = send_stream(
        &mut input,
        || WireLink::connect(&ep).map(|l| FaultTransport::new(l, state.clone())),
        &options,
    )
    .unwrap_or_else(|e| panic!("seed {seed}: retrying delivery must complete: {e}"));
    assert!(outcome.complete, "seed {seed}: FIN must be acked");
    assert_eq!(outcome.acked, bytes.len() as u64, "seed {seed}");
    (outcome.tenant, outcome.sessions)
}

/// One full soak round: sequential producers for the first half of the
/// schedule, concurrent for the second. Returns, per seed in schedule order,
/// `(sessions, stripped verdict, ledger entries)`.
fn churn_round(bytes: &[u8], schedule: &[(u64, u64)]) -> Vec<(u64, String, usize)> {
    let flag: &'static AtomicBool = Box::leak(Box::new(AtomicBool::new(false)));
    let listener = Listener::bind(&Endpoint::parse("tcp://127.0.0.1:0").unwrap()).unwrap();
    let bound = listener.local_endpoint().unwrap();
    let limits = TenantLimits {
        max_clients: schedule.len().max(8),
        ..TenantLimits::default()
    };
    let server = thread::spawn(move || {
        let mut server = TenantServer::new(listener, policy(Duration::from_secs(10)), limits)
            .with_drain_flag(flag);
        let configuration = Configuration::unprotected();
        serve_tenants(&mut server, &configuration, &opts(), None)
    });

    let split = schedule.len() / 2;
    let mut by_seed: Vec<(u64, u64, u64)> = Vec::new(); // (seed, tenant, sessions)
    for &(seed, _) in &schedule[..split] {
        let (tenant, sessions) = churn_send(&bound, bytes, seed);
        by_seed.push((seed, tenant, sessions));
    }
    let concurrent: Vec<_> = schedule[split..]
        .iter()
        .map(|&(seed, _)| {
            let ep = bound.clone();
            let bytes = bytes.to_vec();
            thread::spawn(move || {
                let (tenant, sessions) = churn_send(&ep, &bytes, seed);
                (seed, tenant, sessions)
            })
        })
        .collect();
    for handle in concurrent {
        by_seed.push(handle.join().expect("producer must not panic"));
    }

    flag.store(true, Ordering::SeqCst);
    let multi: MultiReport = server
        .join()
        .expect("server must not panic")
        .expect("the accept loop must survive the churn");

    by_seed
        .into_iter()
        .map(|(seed, tenant, sessions)| {
            let report = multi
                .tenant(tenant)
                .unwrap_or_else(|| panic!("seed {seed}: tenant {tenant} missing"))
                .result
                .as_ref()
                .unwrap_or_else(|e| panic!("seed {seed}: pipeline failed: {e}"));
            assert_eq!(report.records, RECORDS, "seed {seed}");
            assert_eq!(
                report.verdict.faults.records_lost(),
                0,
                "seed {seed}: churn must never lose committed records"
            );
            assert!(
                report.verdict.faults.is_clean(),
                "seed {seed}: only transport markers allowed: {}",
                report.verdict.to_json_extended()
            );
            (
                sessions,
                modulo_markers(&report.verdict.to_json_extended()),
                report.verdict.faults.entries.len(),
            )
        })
        .collect()
}

#[test]
fn fifty_churn_cycles_preserve_verdict_identity_and_reproduce_exactly() {
    let bytes = sample_trace();
    let schedule = seed_schedule(bytes.len() as u64);
    let planned: u64 = schedule.iter().map(|&(_, sessions)| sessions).sum();
    assert!(
        planned >= TARGET_CYCLES,
        "schedule must plan >= {TARGET_CYCLES} cycles, got {planned}"
    );

    let baseline = modulo_markers(
        &supervise(
            SliceSource::new(&bytes),
            &Configuration::unprotected(),
            &opts(),
            &mut |_| Ok(()),
        )
        .unwrap()
        .verdict
        .to_json_extended(),
    );

    let first = churn_round(&bytes, &schedule);
    let total: u64 = first.iter().map(|(sessions, _, _)| sessions).sum();
    assert!(
        total >= TARGET_CYCLES,
        "the soak must drive >= {TARGET_CYCLES} sessions, drove {total}"
    );
    for (i, (sessions, stripped, entries)) in first.iter().enumerate() {
        let (seed, planned_sessions) = schedule[i];
        assert_eq!(
            *sessions, planned_sessions,
            "seed {seed}: one session per planned cut, plus the first"
        );
        assert_eq!(
            stripped, &baseline,
            "seed {seed}: verdict diverged from solo ingest"
        );
        // Each cut ledgers at most a resume, a conn-resume and a
        // duplicates-dropped entry; the drain can add one goodbye marker.
        let cuts = planned_sessions - 1;
        assert!(
            *entries as u64 <= 3 * cuts + 1,
            "seed {seed}: ledger must stay bounded: {entries} entries for {cuts} cuts"
        );
    }

    // Reproducibility: same seeds, fresh daemon -> same stripped verdicts and
    // the same per-seed session counts.
    let second = churn_round(&bytes, &schedule);
    for (i, ((s1, v1, _), (s2, v2, _))) in first.iter().zip(second.iter()).enumerate() {
        let (seed, _) = schedule[i];
        assert_eq!(s1, s2, "seed {seed}: session count must reproduce");
        assert_eq!(v1, v2, "seed {seed}: stripped verdict must reproduce");
    }
}
