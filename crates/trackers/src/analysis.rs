//! Sizing and configuration analysis for the trackers (§III-B of the paper).
//!
//! These functions reproduce how the paper derives each tracker's parameters from the
//! Rowhammer threshold (TRH) and the target failure rate:
//!
//! * Graphene: number of Misra-Gries entries ∝ 1/TRH (448 entries/bank for TRH = 4K).
//! * PARA: sampling probability p from the target bank-failure rate (p = 1/184 for TRH = 4K).
//! * Mithril: entries from a calibrated version of Mithril's Theorem 1
//!   (383 entries/bank for TRH = 4K at RFMTH = 80).
//! * MINT: tolerated threshold as a function of RFMTH (1.6K at RFMTH = 80).

use impress_dram::DramTimings;

/// Graphene's internal mitigation threshold for a tolerated Rowhammer threshold `trh`.
///
/// The paper uses an internal threshold of 1333 for TRH = 4K (Appendix A), i.e. TRH/3:
/// the factor of 3 covers the counter-reset epoch straddling plus the blast-radius-2
/// double-counting margin.
pub fn graphene_internal_threshold(trh: u64) -> u64 {
    (trh / 3).max(1)
}

/// Number of Graphene entries per bank needed to tolerate threshold `trh`.
///
/// Misra-Gries needs one entry per `internal_threshold` activations that can occur in a
/// reset window, so entries = ceil(ACT budget / internal threshold). With the DDR5
/// timing of Table I this yields 448 entries for TRH = 4K, 896 for 2K (and for an
/// ImPress-N/ExPress system that must target TRH/2), matching §VI-C.
pub fn graphene_entries(trh: u64, timings: &DramTimings) -> u64 {
    let budget = timings.act_budget_per_refw();
    budget.div_ceil(graphene_internal_threshold(trh)).max(1)
}

/// PARA's per-activation mitigation probability for threshold `trh`, calibrated to the
/// paper's reliability methodology (§III-B): p = 1/184 at TRH = 4K, scaling as 1/TRH.
pub fn para_probability(trh: u64) -> f64 {
    // 4000 / 184 ≈ 21.74 "expected mitigations per TRH activations" keeps the
    // bank failure probability at the paper's 0.1 FIT target.
    const EXPECTED_MITIGATIONS: f64 = 4000.0 / 184.0;
    (EXPECTED_MITIGATIONS / trh as f64).min(1.0)
}

/// PARA's probability derived from first principles: the probability that an aggressor
/// receives `trh` activations with no mitigation must stay below `escape_probability`.
///
/// `p = 1 − escape^(1/trh)`. Provided for sensitivity studies; the paper's headline
/// numbers use [`para_probability`].
pub fn para_probability_for_escape(trh: u64, escape_probability: f64) -> f64 {
    assert!(
        escape_probability > 0.0 && escape_probability < 1.0,
        "escape probability must be in (0, 1)"
    );
    1.0 - escape_probability.powf(1.0 / trh as f64)
}

/// The PARA probability used in the paper's Appendix-B attack-slowdown analysis
/// (Figures 18–19), which uses p = 1/84 at TRH = 4000 (≈ TRH/47.6).
pub fn para_probability_appendix_b(trh: u64) -> f64 {
    const EXPECTED_MITIGATIONS: f64 = 4000.0 / 84.0;
    (EXPECTED_MITIGATIONS / trh as f64).min(1.0)
}

/// Number of Mithril entries per bank needed to tolerate threshold `trh` at the given
/// RFM threshold.
///
/// Mithril's Theorem 1 bounds the tolerated threshold as a base term (a small multiple
/// of RFMTH) plus a counter-error term that shrinks with the number of entries
/// (∝ activation budget / entries). We use the calibrated form
/// `TRH ≈ base + budget_scale / entries` with `base = 16.25 × RFMTH` and
/// `budget_scale = 1.034e6`, which reproduces the paper's quoted sizes:
/// 383 entries for TRH = 4K, ~615 for 2963 (α = 0.35), ~1500 for 2000 (α = 1), all at
/// RFMTH = 80 (Appendix A).
pub fn mithril_entries(trh: u64, rfm_th: u32) -> u64 {
    let base = 16.25 * f64::from(rfm_th);
    let budget_scale = 1.034e6;
    let trh = trh as f64;
    if trh <= base + 1.0 {
        // The threshold is unreachable with this RFM rate; return a sentinel huge table.
        return u64::MAX;
    }
    (budget_scale / (trh - base)).ceil() as u64
}

/// The Rowhammer threshold MINT tolerates for a given RFM threshold.
///
/// §VI-C/Appendix A: at RFMTH = 80, MINT tolerates TRH = 1.6K, i.e. 20 × RFMTH.
pub fn mint_tolerated_threshold(rfm_th: u32) -> u64 {
    20 * u64::from(rfm_th)
}

/// The RFM threshold MINT needs to tolerate Rowhammer threshold `trh`
/// (inverse of [`mint_tolerated_threshold`], rounded down).
pub fn mint_rfm_threshold_for(trh: u64) -> u32 {
    (trh / 20).max(1) as u32
}

/// Number of PRAC counter bits needed to count up to `trh` activations.
pub fn prac_counter_bits(trh: u64) -> u32 {
    64 - trh.leading_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graphene_sizing_matches_paper() {
        let t = DramTimings::ddr5();
        assert_eq!(graphene_internal_threshold(4_000), 1333);
        let e4k = graphene_entries(4_000, &t);
        // §III-B: 448 entries per bank for TRH = 4K. Our activation budget puts us
        // within a few entries of that value.
        assert!((440..=470).contains(&e4k), "entries = {e4k}");
        // ExPress / ImPress-N at alpha=1 target TRH/2 = 2K: entries double (§VI-C).
        let e2k = graphene_entries(2_000, &t);
        assert!(
            e2k >= 2 * e4k - 20 && e2k <= 2 * e4k + 20,
            "entries = {e2k}"
        );
    }

    #[test]
    fn para_probability_matches_paper() {
        assert!((para_probability(4_000) - 1.0 / 184.0).abs() < 1e-9);
        // ImPress-N / ExPress at alpha=1 halve the threshold, doubling p to 1/92 (§VI-C).
        assert!((para_probability(2_000) - 1.0 / 92.0).abs() < 1e-9);
        assert!((para_probability_appendix_b(4_000) - 1.0 / 84.0).abs() < 1e-9);
    }

    #[test]
    fn para_escape_probability_is_consistent() {
        let p = para_probability(4_000);
        let escape = 1.0 - p;
        let escape_after_trh = escape.powi(4_000);
        // With p = 1/184, the probability of hammering 4000 times without a single
        // mitigation is below 1e-9 (the paper's 0.1 FIT target).
        assert!(escape_after_trh < 1e-9, "escape = {escape_after_trh}");
        // First-principles probability for the same escape target is near 1/184.
        let p2 = para_probability_for_escape(4_000, escape_after_trh);
        assert!((p2 - p).abs() / p < 1e-6);
    }

    #[test]
    fn mithril_sizing_matches_paper() {
        let e = mithril_entries(4_000, 80);
        assert!((375..=395).contains(&e), "entries = {e}");
        let e_alpha035 = mithril_entries(2_963, 80);
        assert!((590..=640).contains(&e_alpha035), "entries = {e_alpha035}");
        let e_alpha1 = mithril_entries(2_000, 80);
        assert!((1400..=1600).contains(&e_alpha1), "entries = {e_alpha1}");
    }

    #[test]
    fn mithril_unreachable_threshold_is_flagged() {
        assert_eq!(mithril_entries(100, 80), u64::MAX);
    }

    #[test]
    fn mint_threshold_matches_paper() {
        assert_eq!(mint_tolerated_threshold(80), 1_600);
        assert_eq!(mint_rfm_threshold_for(1_600), 80);
        // ImPress-N compensation: RFM-40 for alpha=1, RFM-60 for alpha=0.35 (Appendix A).
        assert_eq!(mint_rfm_threshold_for(800), 40);
        assert_eq!(mint_rfm_threshold_for(1_185), 59);
    }

    #[test]
    fn prac_counter_width() {
        assert_eq!(prac_counter_bits(4_000), 12);
        assert_eq!(prac_counter_bits(1_000), 10);
    }
}
