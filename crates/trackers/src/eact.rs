//! Equivalent Activation Count (EACT): fixed-point activation weights.
//!
//! ImPress-P converts the time a row is open into an *Equivalent Activation Count*
//! (§VI-A): `EACT = (tON + tPRE) / tRC`, which is at least 1 and may be fractional.
//! The hardware stores the fractional part in a configurable number of bits
//! (7 by default, §VI-B); fewer bits under-estimate the damage and proportionally
//! reduce the tolerated threshold (Figure 12).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign};

use impress_dram::timing::Cycle;

/// Number of fractional bits in the canonical internal representation.
///
/// With `tRC = 128` cycles the natural fractional precision of `(tON + tPRE)/tRC`
/// is 7 bits (§VI-A).
pub const CANONICAL_FRAC_BITS: u32 = 7;

/// An Equivalent Activation Count in fixed-point Q`7` representation.
///
/// `Eact::ONE` is a single conventional activation. Values are always ≥ 1 when produced
/// from row-open durations ([`Eact::from_open_time`]), matching the paper's guarantee
/// that "EACT is guaranteed to be at least 1".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Eact(u32);

impl Eact {
    /// One conventional activation.
    pub const ONE: Eact = Eact(1 << CANONICAL_FRAC_BITS);

    /// Zero equivalent activations (useful as an accumulator identity).
    pub const ZERO: Eact = Eact(0);

    /// Creates an EACT from a raw Q7 fixed-point value.
    pub const fn from_raw(raw: u32) -> Self {
        Self(raw)
    }

    /// Returns the raw Q7 fixed-point value.
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Creates an EACT from a floating-point value, rounding toward zero and keeping
    /// `frac_bits` bits of fraction (the rest is truncated, as hardware would).
    ///
    /// # Panics
    ///
    /// Panics if `value` is negative, not finite, or `frac_bits > 7`.
    pub fn from_f64(value: f64, frac_bits: u32) -> Self {
        assert!(
            value.is_finite() && value >= 0.0,
            "EACT must be non-negative"
        );
        assert!(
            frac_bits <= CANONICAL_FRAC_BITS,
            "at most {CANONICAL_FRAC_BITS} fractional bits are supported"
        );
        let quantized = (value * f64::from(1u32 << frac_bits)).floor() as u64;
        let raw = quantized << (CANONICAL_FRAC_BITS - frac_bits);
        Self(raw.min(u32::MAX as u64) as u32)
    }

    /// Computes the EACT of a row that was open for `open_cycles` (`tON`), per §VI-A:
    /// `EACT = (tON + tPRE)/tRC`, truncated to `frac_bits` fractional bits and clamped
    /// to at least 1.
    ///
    /// # Panics
    ///
    /// Panics if `t_rc` is zero or `frac_bits > 7`.
    pub fn from_open_time(open_cycles: Cycle, t_pre: Cycle, t_rc: Cycle, frac_bits: u32) -> Self {
        assert!(t_rc > 0, "tRC must be positive");
        assert!(
            frac_bits <= CANONICAL_FRAC_BITS,
            "at most {CANONICAL_FRAC_BITS} fractional bits are supported"
        );
        let total = open_cycles + t_pre;
        // Fixed-point division: (total << frac_bits) / tRC, truncating.
        let q = ((total << frac_bits) / t_rc) << (CANONICAL_FRAC_BITS - frac_bits);
        let raw = q.min(u32::MAX as u64 as Cycle) as u32;
        Self(raw.max(Self::ONE.0))
    }

    /// Converts to a floating-point activation count.
    pub fn as_f64(self) -> f64 {
        f64::from(self.0) / f64::from(1u32 << CANONICAL_FRAC_BITS)
    }

    /// The integer (whole-activation) part.
    pub const fn integer_part(self) -> u32 {
        self.0 >> CANONICAL_FRAC_BITS
    }

    /// Multiplies this EACT by an integer factor, saturating on overflow.
    pub fn saturating_mul(self, factor: u32) -> Self {
        Self(self.0.saturating_mul(factor))
    }

    /// Scales a base probability `p` by this EACT, clamped to 1.0 — the modification
    /// ImPress-P applies to probabilistic trackers (`p̂ = p × EACT`, §VI-C).
    pub fn scale_probability(self, p: f64) -> f64 {
        (p * self.as_f64()).min(1.0)
    }
}

impl Default for Eact {
    fn default() -> Self {
        Self::ONE
    }
}

impl Add for Eact {
    type Output = Eact;

    fn add(self, rhs: Eact) -> Eact {
        Eact(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Eact {
    fn add_assign(&mut self, rhs: Eact) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sum for Eact {
    fn sum<I: Iterator<Item = Eact>>(iter: I) -> Eact {
        iter.fold(Eact::ZERO, Add::add)
    }
}

impl fmt::Display for Eact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4}", self.as_f64())
    }
}

/// A fixed-point activation counter accumulating EACT values (Q7, 64-bit).
///
/// Counter-based trackers (Graphene, Mithril, PRAC) are extended "by 7 bits" in
/// ImPress-P (§VI-B); this type is that extended counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EactCounter(u64);

impl EactCounter {
    /// A counter at zero.
    pub const ZERO: EactCounter = EactCounter(0);

    /// Creates a counter holding `acts` whole activations.
    pub const fn from_activations(acts: u64) -> Self {
        Self(acts << CANONICAL_FRAC_BITS)
    }

    /// Adds an EACT to this counter.
    pub fn add(&mut self, eact: Eact) {
        self.0 = self.0.saturating_add(u64::from(eact.raw()));
    }

    /// The number of whole activations accumulated (fraction truncated).
    pub const fn activations(self) -> u64 {
        self.0 >> CANONICAL_FRAC_BITS
    }

    /// The accumulated value as a float.
    pub fn as_f64(self) -> f64 {
        self.0 as f64 / f64::from(1u32 << CANONICAL_FRAC_BITS)
    }

    /// Raw Q7 value.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Creates a counter from a raw Q7 value.
    pub const fn from_raw(raw: u64) -> Self {
        Self(raw)
    }

    /// Returns true if this counter has reached `threshold` whole activations.
    pub const fn reached(self, threshold: u64) -> bool {
        self.activations() >= threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const T_RC: Cycle = 128;
    const T_PRE: Cycle = 32;
    const T_RAS: Cycle = 96;

    #[test]
    fn rowhammer_pattern_has_eact_one() {
        // §VI-A: "if tON is equal to tRAS, this is the same as RH attack, and EACT is 1".
        let e = Eact::from_open_time(T_RAS, T_PRE, T_RC, 7);
        assert_eq!(e, Eact::ONE);
    }

    #[test]
    fn one_extra_trc_gives_eact_two() {
        // §VI-A: "If tON is equal to tRAS+tRC, the access lasts for two tRC and EACT=2".
        let e = Eact::from_open_time(T_RAS + T_RC, T_PRE, T_RC, 7);
        assert_eq!(e.as_f64(), 2.0);
    }

    #[test]
    fn half_trc_gives_fractional_eact() {
        // §VI-A: "if tON=tRAS+tRC/2, EACT=1.5".
        let e = Eact::from_open_time(T_RAS + T_RC / 2, T_PRE, T_RC, 7);
        assert_eq!(e.as_f64(), 1.5);
    }

    #[test]
    fn eact_is_at_least_one() {
        let e = Eact::from_open_time(0, 0, T_RC, 7);
        assert_eq!(e, Eact::ONE);
    }

    #[test]
    fn zero_frac_bits_truncates_to_integer() {
        // With 0 fractional bits ImPress-P degenerates to ImPress-N (integer damage).
        let e = Eact::from_open_time(T_RAS + T_RC / 2, T_PRE, T_RC, 0);
        assert_eq!(e.as_f64(), 1.0);
    }

    #[test]
    fn probability_scaling_clamps_at_one() {
        let e = Eact::from_f64(400.0, 7);
        assert_eq!(e.scale_probability(1.0 / 184.0), 1.0);
        let small = Eact::from_f64(2.0, 7);
        assert!((small.scale_probability(0.25) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn counter_accumulates_fractions() {
        let mut c = EactCounter::ZERO;
        for _ in 0..4 {
            c.add(Eact::from_f64(1.5, 7));
        }
        assert_eq!(c.activations(), 6);
        assert!(c.reached(6));
        assert!(!c.reached(7));
    }

    #[test]
    fn display_shows_fraction() {
        assert_eq!(Eact::from_f64(1.5, 7).to_string(), "1.5000");
    }

    proptest! {
        /// Quantization with fewer fractional bits never over-estimates the EACT and
        /// loses at most 2^-b of precision (the basis of Figure 12).
        #[test]
        fn quantization_error_is_bounded(open in 96u64..200_000u64, bits in 0u32..=7) {
            let exact = (open + T_PRE) as f64 / T_RC as f64;
            let e = Eact::from_open_time(open, T_PRE, T_RC, bits);
            let err = exact - e.as_f64();
            // Clamping to >= 1 can only increase the value when exact < 1, which cannot
            // happen for open >= tRAS; otherwise quantization truncates.
            prop_assert!(err >= -1e-9);
            prop_assert!(err < 1.0 / f64::from(1u32 << bits) + 1e-9);
        }

        /// EACT addition matches floating-point addition to within representation error.
        #[test]
        fn addition_is_consistent(a in 0.0f64..100.0, b in 0.0f64..100.0) {
            let ea = Eact::from_f64(a, 7);
            let eb = Eact::from_f64(b, 7);
            let sum = ea + eb;
            prop_assert!((sum.as_f64() - (ea.as_f64() + eb.as_f64())).abs() < 1e-9);
        }

        /// from_open_time is monotonic in the open time.
        #[test]
        fn monotonic_in_open_time(a in 96u64..100_000u64, delta in 0u64..100_000u64) {
            let e1 = Eact::from_open_time(a, T_PRE, T_RC, 7);
            let e2 = Eact::from_open_time(a + delta, T_PRE, T_RC, 7);
            prop_assert!(e2 >= e1);
        }
    }
}
