//! An open-addressed flat counter table keyed by row index.
//!
//! PRAC conceptually stores one activation counter per DRAM row, but only a small
//! working set of rows is ever touched between refresh windows. The seed modeled this
//! with a `HashMap<RowId, EactCounter>`, which puts SipHash and allocator traffic on
//! the per-activation hot path. [`FlatCounterTable`] replaces it with a flat
//! open-addressed table:
//!
//! * power-of-two capacity, Fibonacci multiplicative hashing, linear probing — the
//!   probe loop is a handful of branch-predictable instructions over two dense arrays;
//! * no per-entry allocation: growing doubles two `Vec`s and rehashes;
//! * `clear` retains capacity, so steady-state operation after the first refresh
//!   window never allocates.
//!
//! Behaviour is observably identical to the map it replaces (same counts, same
//! clear semantics); `tests/flat_equivalence.rs` asserts this property against a
//! `HashMap` reference model under random activation streams.

use impress_dram::address::RowId;

use crate::eact::{Eact, EactCounter};

/// Sentinel key marking an empty slot. Row addresses are bank row indices and DDR5
/// banks top out at 2^17 rows, so `u32::MAX` can never collide with a real row.
const EMPTY: RowId = RowId::MAX;

/// Fibonacci multiplicative hash: spreads consecutive row indices (the common access
/// pattern) across the table while staying a single multiply.
#[inline]
fn fib_hash(row: RowId, mask: usize) -> usize {
    (row.wrapping_mul(0x9E37_79B9) as usize) & mask
}

/// An open-addressed `RowId -> EactCounter` table.
#[derive(Debug, Clone)]
pub struct FlatCounterTable {
    keys: Vec<RowId>,
    counters: Vec<EactCounter>,
    len: usize,
    /// Exact maximum raw counter value over the table. Maintained monotonically
    /// on `add`/`set_counter_raw_at` and recomputed by scan when a counter
    /// decreases (`reset`/`recompute_max`) — decrements only happen on the rare
    /// mitigation path, so the scan stays off the per-record path.
    max_raw: u64,
}

impl Default for FlatCounterTable {
    fn default() -> Self {
        Self::new()
    }
}

impl FlatCounterTable {
    /// Initial capacity (slots) of a fresh table.
    const INITIAL_CAPACITY: usize = 64;

    /// Creates an empty table.
    pub fn new() -> Self {
        Self::with_capacity(Self::INITIAL_CAPACITY)
    }

    /// Creates an empty table with at least `capacity` slots (rounded up to a power
    /// of two).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(Self::INITIAL_CAPACITY).next_power_of_two();
        Self {
            keys: vec![EMPTY; capacity],
            counters: vec![EactCounter::ZERO; capacity],
            len: 0,
            max_raw: 0,
        }
    }

    /// Number of rows currently tracked.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no rows are tracked.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of slots currently allocated.
    pub fn capacity(&self) -> usize {
        self.keys.len()
    }

    /// The counter for `row`, or [`EactCounter::ZERO`] if the row is not tracked.
    #[inline]
    pub fn get(&self, row: RowId) -> EactCounter {
        let mask = self.keys.len() - 1;
        let mut i = fib_hash(row, mask);
        loop {
            let k = self.keys[i];
            if k == row {
                return self.counters[i];
            }
            if k == EMPTY {
                return EactCounter::ZERO;
            }
            i = (i + 1) & mask;
        }
    }

    /// Adds `eact` to `row`'s counter (inserting it at zero first if absent) and
    /// returns the updated counter value.
    #[inline]
    pub fn add(&mut self, row: RowId, eact: Eact) -> EactCounter {
        let i = self.slot_for(row);
        self.counters[i].add(eact);
        self.max_raw = self.max_raw.max(self.counters[i].raw());
        self.counters[i]
    }

    /// Resets `row`'s counter to zero, keeping the row tracked (mirrors the map
    /// version's `*counter = EactCounter::ZERO`).
    #[inline]
    pub fn reset(&mut self, row: RowId) {
        let i = self.slot_for(row);
        self.counters[i] = EactCounter::ZERO;
        self.recompute_max();
    }

    /// Removes every tracked row. Capacity is retained, so a table that has reached
    /// its steady-state size never allocates again.
    pub fn clear(&mut self) {
        self.keys.fill(EMPTY);
        self.counters.fill(EactCounter::ZERO);
        self.len = 0;
        self.max_raw = 0;
    }

    /// The maximum raw (Q7 fixed-point) counter value over every tracked row —
    /// what PRAC's mitigation headroom is computed from.
    #[inline]
    pub fn max_raw(&self) -> u64 {
        self.max_raw
    }

    /// Recomputes [`FlatCounterTable::max_raw`] exactly by scanning the table.
    /// Callers that lower a counter through the raw slot API must call this
    /// afterwards (batch kernels do it once per batch, after any reset).
    pub fn recompute_max(&mut self) {
        self.max_raw = self
            .counters
            .iter()
            .zip(&self.keys)
            .filter(|(_, &k)| k != EMPTY)
            .map(|(c, _)| c.raw())
            .max()
            .unwrap_or(0);
    }

    /// The slot for `row`, inserting it at zero first if absent. The returned
    /// slot stays valid until another row is inserted (same-row operations
    /// never move it), which is what lets a batch kernel probe once per run.
    #[inline]
    pub fn slot_of(&mut self, row: RowId) -> usize {
        self.slot_for(row)
    }

    /// The raw counter value in `slot` (from [`FlatCounterTable::slot_of`]).
    #[inline]
    pub fn counter_raw_at(&self, slot: usize) -> u64 {
        self.counters[slot].raw()
    }

    /// Stores `raw` into `slot`'s counter. The maximum is updated monotonically;
    /// a caller that *lowers* a counter must follow up with
    /// [`FlatCounterTable::recompute_max`].
    #[inline]
    pub fn set_counter_raw_at(&mut self, slot: usize, raw: u64) {
        self.counters[slot] = EactCounter::from_raw(raw);
        self.max_raw = self.max_raw.max(raw);
    }

    /// Iterates over the tracked `(row, counter)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (RowId, EactCounter)> + '_ {
        self.keys
            .iter()
            .zip(&self.counters)
            .filter(|(&k, _)| k != EMPTY)
            .map(|(&k, &c)| (k, c))
    }

    /// Finds (or inserts) the slot for `row`, growing first if the insert would push
    /// the load factor past 7/8.
    #[inline]
    fn slot_for(&mut self, row: RowId) -> usize {
        debug_assert_ne!(row, EMPTY, "row id {EMPTY} is reserved as the empty marker");
        let mask = self.keys.len() - 1;
        let mut i = fib_hash(row, mask);
        loop {
            let k = self.keys[i];
            if k == row {
                return i;
            }
            if k == EMPTY {
                if (self.len + 1) * 8 > self.keys.len() * 7 {
                    self.grow();
                    return self.slot_for(row);
                }
                self.keys[i] = row;
                self.len += 1;
                return i;
            }
            i = (i + 1) & mask;
        }
    }

    fn grow(&mut self) {
        let new_capacity = self.keys.len() * 2;
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY; new_capacity]);
        let old_counters =
            std::mem::replace(&mut self.counters, vec![EactCounter::ZERO; new_capacity]);
        let mask = new_capacity - 1;
        for (k, c) in old_keys.into_iter().zip(old_counters) {
            if k == EMPTY {
                continue;
            }
            let mut i = fib_hash(k, mask);
            while self.keys[i] != EMPTY {
                i = (i + 1) & mask;
            }
            self.keys[i] = k;
            self.counters[i] = c;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_rows_read_zero() {
        let t = FlatCounterTable::new();
        assert_eq!(t.get(42), EactCounter::ZERO);
        assert!(t.is_empty());
    }

    #[test]
    fn add_accumulates_per_row() {
        let mut t = FlatCounterTable::new();
        t.add(1, Eact::ONE);
        t.add(1, Eact::ONE);
        t.add(2, Eact::from_f64(1.5, 7));
        assert_eq!(t.get(1).activations(), 2);
        assert!((t.get(2).as_f64() - 1.5).abs() < 1e-9);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn reset_keeps_the_row_tracked() {
        let mut t = FlatCounterTable::new();
        t.add(9, Eact::ONE);
        t.reset(9);
        assert_eq!(t.get(9), EactCounter::ZERO);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn clear_retains_capacity() {
        let mut t = FlatCounterTable::new();
        for row in 0..1000u32 {
            t.add(row, Eact::ONE);
        }
        let cap = t.capacity();
        assert!(cap >= 1000);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.capacity(), cap);
        assert_eq!(t.get(500), EactCounter::ZERO);
    }

    #[test]
    fn growth_preserves_counts() {
        let mut t = FlatCounterTable::with_capacity(64);
        // Insert far past the initial capacity; every count must survive rehashing.
        for row in 0..10_000u32 {
            for _ in 0..(row % 3 + 1) {
                t.add(row * 7 + 1, Eact::ONE);
            }
        }
        for row in 0..10_000u32 {
            assert_eq!(t.get(row * 7 + 1).activations(), u64::from(row % 3 + 1));
        }
        assert_eq!(t.len(), 10_000);
    }

    #[test]
    fn colliding_rows_probe_to_distinct_slots() {
        // Rows an exact capacity apart hash identically under the power-of-two mask.
        let mut t = FlatCounterTable::with_capacity(64);
        let cap = t.capacity() as u32;
        for i in 0..8u32 {
            t.add(5 + i * cap * 3, Eact::ONE);
        }
        for i in 0..8u32 {
            assert_eq!(t.get(5 + i * cap * 3).activations(), 1);
        }
        assert_eq!(t.len(), 8);
    }

    #[test]
    fn iter_yields_every_tracked_row() {
        let mut t = FlatCounterTable::new();
        for row in [3u32, 99, 7000] {
            t.add(row, Eact::ONE);
        }
        let mut rows: Vec<RowId> = t.iter().map(|(r, _)| r).collect();
        rows.sort_unstable();
        assert_eq!(rows, vec![3, 99, 7000]);
    }
}
