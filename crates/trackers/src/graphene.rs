//! Graphene: Misra-Gries counter-based tracking at the memory controller.
//!
//! Graphene (Park et al., MICRO 2020) keeps a small table of (row, counter) pairs per
//! bank managed with the Misra-Gries frequent-items algorithm, plus a spillover
//! counter. When a row's counter reaches the internal threshold, its victims are
//! refreshed and the counter rolls back to the spillover value. The table is reset once
//! per refresh window.
//!
//! Under ImPress-P the counters accumulate fractional [`Eact`] values instead of +1
//! per activation, which adds 7 bits per entry but leaves the entry count unchanged
//! (§VI-C).
//!
//! # Eviction engines and the observational-equivalence contract
//!
//! On a miss with a full table, Graphene claims any entry whose count does not
//! exceed the spillover count. The seed scanned the table and took the *first*
//! such entry; the [`EvictionEngine::Summary`] engine takes a *minimum-count*
//! entry from the [`CountSummary`] instead (the minimum is at or below the
//! spillover count exactly when any claimable entry exists, so while the two
//! engines' table states agree — i.e. up to the first ambiguous choice — they
//! evict on exactly the same accesses and maintain identical spillover
//! trajectories). Which row is displaced can differ when the choice is
//! ambiguous (two or more claimable entries); from that point the tracked row
//! sets, spillover trajectories and mitigation *counts* may drift apart
//! (min-eviction keeps larger counters tracked, so spillover climbs faster
//! under saturated churn), but the engines remain
//! *observationally equivalent*: both satisfy the Misra-Gries guarantee that any
//! row's untracked activation weight is bounded by the spillover count (at most
//! total-weight/entries), so every row crossing the internal threshold is still
//! mitigated in time. When the choice is unambiguous the engines issue identical
//! mitigation sequences. Both properties are enforced by the
//! `summary_equivalence` proptest suite and the security-harness A/B gate.
//!
//! Invalid entries are claimed **before** any valid entry is considered for
//! eviction, in both engines. This matters: a mitigation rolls a counter back to
//! the spillover value, which can leave a *valid zero-count* entry coexisting
//! with invalid entries — a min-count eviction that ignored validity would then
//! displace a still-tracked row while free slots remain (a priority inversion).
//! The scan engine gets the ordering from its scan structure; the summary engine
//! claims from an explicit free-slot list before consulting the summary. Both are
//! unit-tested against exactly that state.

use impress_dram::address::RowId;
use impress_dram::timing::Cycle;
use impress_dram::DramTimings;

use crate::analysis::{graphene_entries, graphene_internal_threshold};
use crate::eact::{Eact, EactCounter, CANONICAL_FRAC_BITS};
use crate::index::RowSlotIndex;
use crate::storage::{StorageEstimate, COUNTER_BITS, ROW_ADDRESS_BITS};
use crate::summary::{engine_scaffolding, restock_free_slots, CountSummary, EvictionEngine};
use crate::tracker::{MitigationRequest, RowTracker, TrackerKind};

/// One Misra-Gries table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    row: RowId,
    count: EactCounter,
    valid: bool,
}

/// Configuration for a [`Graphene`] tracker instance.
#[derive(Debug, Clone, PartialEq)]
pub struct GrapheneConfig {
    /// Rowhammer threshold this instance must tolerate.
    pub threshold: u64,
    /// Internal mitigation threshold (counter value that triggers a mitigation).
    pub internal_threshold: u64,
    /// Number of table entries per bank.
    pub entries: usize,
    /// Number of fractional EACT bits stored per counter (0 for a plain RH system,
    /// 7 for ImPress-P).
    pub frac_bits: u32,
}

impl GrapheneConfig {
    /// Configuration for tolerating `threshold` with the paper's DDR5 timings and no
    /// fractional bits (plain Rowhammer tracking).
    pub fn for_threshold(threshold: u64) -> Self {
        let timings = DramTimings::ddr5();
        Self {
            threshold,
            internal_threshold: graphene_internal_threshold(threshold),
            entries: graphene_entries(threshold, &timings) as usize,
            frac_bits: 0,
        }
    }

    /// Same as [`GrapheneConfig::for_threshold`] but with fractional counter bits for
    /// ImPress-P (the paper's default uses 7 bits).
    pub fn with_frac_bits(threshold: u64, frac_bits: u32) -> Self {
        Self {
            frac_bits,
            ..Self::for_threshold(threshold)
        }
    }
}

/// The Graphene tracker for a single bank.
#[derive(Debug, Clone)]
pub struct Graphene {
    config: GrapheneConfig,
    engine: EvictionEngine,
    table: Vec<Entry>,
    /// O(1) row → slot map over the valid table entries (pure acceleration of the
    /// match path; victim selection is the eviction engine's job — see
    /// [`crate::index`] and [`crate::summary`]).
    index: RowSlotIndex,
    /// Count-ordered view of the valid entries (summary engine only; empty and
    /// unmaintained under the scan engine).
    summary: CountSummary,
    /// Invalid slots awaiting their first row, popped before any eviction is
    /// considered (summary engine only) — the explicit form of the
    /// invalid-before-eviction invariant.
    free_slots: Vec<u32>,
    spillover: EactCounter,
    mitigations: u64,
}

impl Graphene {
    /// Creates a Graphene tracker sized for `threshold` (no fractional bits),
    /// using the [`EvictionEngine::from_env`] default engine.
    pub fn for_threshold(threshold: u64) -> Self {
        Self::new(GrapheneConfig::for_threshold(threshold))
    }

    /// Creates a Graphene tracker from an explicit configuration, using the
    /// [`EvictionEngine::from_env`] default engine.
    pub fn new(config: GrapheneConfig) -> Self {
        Self::with_engine(config, EvictionEngine::from_env())
    }

    /// Creates a Graphene tracker with an explicit eviction engine (A/B testing
    /// and the equivalence suites use this to pin each side).
    pub fn with_engine(config: GrapheneConfig, engine: EvictionEngine) -> Self {
        let table = vec![
            Entry {
                row: 0,
                count: EactCounter::ZERO,
                valid: false,
            };
            config.entries
        ];
        let index = RowSlotIndex::for_entries(config.entries);
        let (summary, free_slots) = engine_scaffolding(config.entries, engine);
        Self {
            config,
            engine,
            table,
            index,
            summary,
            free_slots,
            spillover: EactCounter::ZERO,
            mitigations: 0,
        }
    }

    /// The configuration this tracker was built with.
    pub fn config(&self) -> &GrapheneConfig {
        &self.config
    }

    /// The eviction engine this tracker runs on.
    pub fn engine(&self) -> EvictionEngine {
        self.engine
    }

    /// Number of mitigations issued so far.
    pub fn mitigations(&self) -> u64 {
        self.mitigations
    }

    /// Current counter value for `row` (whole activations), if tracked.
    pub fn tracked_count(&self, row: RowId) -> Option<u64> {
        self.index
            .get(row)
            .map(|slot| self.table[slot].count.activations())
    }

    /// Current raw (Q7 fixed-point) counter value for `row`, if tracked — the
    /// exact quantity the equivalence and error-bound suites reason about.
    pub fn tracked_raw(&self, row: RowId) -> Option<u64> {
        self.index.get(row).map(|slot| self.table[slot].count.raw())
    }

    /// Raw (Q7 fixed-point) spillover count — the Misra-Gries error term.
    pub fn spillover_raw(&self) -> u64 {
        self.spillover.raw()
    }

    fn quantize(&self, eact: Eact) -> Eact {
        if self.config.frac_bits >= CANONICAL_FRAC_BITS {
            eact
        } else {
            let drop = CANONICAL_FRAC_BITS - self.config.frac_bits;
            Eact::from_raw((eact.raw() >> drop) << drop)
        }
    }

    /// Claims a slot for the missing `row` under the scan engine — the seed's
    /// selection, bit-identical: first invalid entry, else first entry whose
    /// count does not exceed the spillover count — or records the activation
    /// into the spillover counter and returns `None`.
    fn claim_slot_scan(&mut self, row: RowId, eact: Eact) -> Option<usize> {
        let spillover_raw = self.spillover.raw();
        let mut first_invalid = usize::MAX;
        let mut first_replaceable = usize::MAX;
        for (i, e) in self.table.iter().enumerate() {
            if !e.valid {
                // Invalid entries take priority over replaceable ones wherever
                // they sit, so the scan can stop at the first one.
                first_invalid = i;
                break;
            }
            if e.count.raw() <= spillover_raw && first_replaceable == usize::MAX {
                first_replaceable = i;
            }
        }
        let slot = if first_invalid != usize::MAX {
            first_invalid
        } else if first_replaceable != usize::MAX {
            // Evict: the replaced row leaves the index.
            self.index.remove(self.table[first_replaceable].row);
            first_replaceable
        } else {
            self.spillover.add(eact);
            return None;
        };
        self.table[slot] = Entry {
            row,
            count: self.spillover,
            valid: true,
        };
        self.index.insert(row, slot);
        Some(slot)
    }

    /// Claims a slot for the missing `row` under the summary engine: an invalid
    /// slot off the free list first (the explicit invalid-before-eviction
    /// invariant), else a minimum-count victim — claimable exactly when the seed
    /// scan would find any claimable entry. `position` is the miss position
    /// [`RowSlotIndex::locate`] returned, consumed before any other index
    /// mutation so the claim costs one probe, not two.
    ///
    /// The summary is deliberately not updated here: the caller folds the claim,
    /// the EACT increment and any mitigation roll-back into a single
    /// attach/set-count, so a claim costs one splice, not two.
    fn claim_slot_summary(&mut self, row: RowId, eact: Eact, position: usize) -> Option<usize> {
        let spillover_raw = self.spillover.raw();
        let slot = if let Some(free) = self.free_slots.pop() {
            let slot = free as usize;
            self.index.insert_at(position, row, slot);
            slot
        } else {
            match self.summary.min() {
                Some((slot, min_raw)) if min_raw <= spillover_raw => {
                    debug_assert!(
                        self.free_slots.is_empty(),
                        "eviction considered while invalid slots remain"
                    );
                    self.index.insert_at(position, row, slot);
                    self.index.remove(self.table[slot].row);
                    slot
                }
                _ => {
                    self.spillover.add(eact);
                    return None;
                }
            }
        };
        self.table[slot] = Entry {
            row,
            count: self.spillover,
            valid: true,
        };
        Some(slot)
    }
}

impl RowTracker for Graphene {
    fn record(&mut self, row: RowId, eact: Eact, now: Cycle) -> Option<MitigationRequest> {
        let eact = self.quantize(eact);
        // Misra-Gries update. The match path is O(1) via the row → slot index;
        // only when the row is absent does the eviction engine pick a slot (O(1)
        // under the summary engine, O(entries) under the seed's scan).
        let slot = match self.engine {
            EvictionEngine::Scan => match self.index.get(row) {
                Some(slot) => slot,
                None => self.claim_slot_scan(row, eact)?,
            },
            EvictionEngine::Summary => match self.index.locate(row) {
                Ok(slot) => slot,
                Err(position) => self.claim_slot_summary(row, eact, position)?,
            },
        };

        self.table[slot].count.add(eact);
        let mitigation = if self.table[slot]
            .count
            .reached(self.config.internal_threshold)
        {
            // Mitigate and roll the counter back to the spillover value so the row
            // keeps being tracked without immediately re-triggering.
            self.table[slot].count = self.spillover;
            self.mitigations += 1;
            Some(MitigationRequest {
                aggressor: row,
                identified_at: now,
            })
        } else {
            None
        };
        if self.engine == EvictionEngine::Summary {
            // One splice covers every case: a matched slot (or a reclaimed
            // victim, still attached at its old count) moves buckets; a slot
            // fresh off the free list attaches.
            let raw = self.table[slot].count.raw();
            if self.summary.contains(slot) {
                self.summary.set_count(slot, raw);
            } else {
                self.summary.attach(slot, raw);
            }
        }
        mitigation
    }

    fn record_batch(
        &mut self,
        rows: &[RowId],
        eacts: &[Eact],
        now: Cycle,
        out: &mut Vec<MitigationRequest>,
    ) {
        debug_assert_eq!(rows.len(), eacts.len());
        let threshold = self.config.internal_threshold;
        let mut i = 0;
        while i < rows.len() {
            let row = rows[i];
            let mut j = i + 1;
            while j < rows.len() && rows[j] == row {
                j += 1;
            }
            if j < rows.len() {
                self.index.prefetch(rows[j]);
            }
            // Resolve one slot for the whole run: the match path probes the
            // index once; the miss path replays the per-record claim attempts
            // (each failed attempt spills that event's weight, exactly as
            // `record` would, and leaves the index untouched — so under the
            // summary engine the miss position from `locate` stays valid
            // across attempts and the run still costs a single probe).
            let mut k = i;
            let slot = match self.engine {
                EvictionEngine::Scan => match self.index.get(row) {
                    Some(slot) => Some(slot),
                    None => loop {
                        if k == j {
                            break None;
                        }
                        let eact = self.quantize(eacts[k]);
                        match self.claim_slot_scan(row, eact) {
                            Some(slot) => break Some(slot),
                            None => k += 1,
                        }
                    },
                },
                EvictionEngine::Summary => match self.index.locate(row) {
                    Ok(slot) => Some(slot),
                    Err(position) => loop {
                        if k == j {
                            break None;
                        }
                        let eact = self.quantize(eacts[k]);
                        match self.claim_slot_summary(row, eact, position) {
                            Some(slot) => break Some(slot),
                            None => k += 1,
                        }
                    },
                },
            };
            let Some(slot) = slot else {
                // The entire run went to the spillover counter.
                i = j;
                continue;
            };

            // Run-length aggregation: one weighted add when the run cannot
            // cross the internal threshold, a per-event walk on the resolved
            // slot (plain u64 arithmetic, no further probes) when it can.
            let mut sum = 0u64;
            for &e in &eacts[k..j] {
                sum = sum.saturating_add(u64::from(self.quantize(e).raw()));
            }
            let start = self.table[slot].count.raw();
            let end = start.saturating_add(sum);
            // The summary's current count for the slot: equal to `start` on the
            // match path, the evicted victim's old count on a claim (the claim
            // defers its splice to the fold below), absent off the free list.
            let summary_count = if self.engine == EvictionEngine::Summary {
                self.summary.count_of(slot)
            } else {
                None
            };
            // Whether the per-record loop's splices would have moved the slot
            // between buckets at least once. A moved slot sits at the LIFO head
            // of its final bucket even when the final count equals the summary's
            // current one — ties break by this order, so it must be reproduced.
            let mut moved = false;
            let final_raw = if (end >> CANONICAL_FRAC_BITS) < threshold {
                // Counters only grow within a mitigation-free run, so if the
                // end value stays below the threshold every prefix did too.
                // Monotone counts mean a position change happens iff the final
                // count differs from the summary's current one — exactly
                // `set_count`'s semantics, so `moved` stays false.
                end
            } else {
                // Per-event walk on the resolved slot (plain u64 arithmetic, no
                // further probes): mitigation roll-backs make the counts
                // non-monotonic, so several crossings can land inside one run
                // and the slot can leave its bucket and return to it.
                let mut raw = start;
                let mut walk_summary = summary_count.unwrap_or(u64::MAX);
                for &e in &eacts[k..j] {
                    raw = raw.saturating_add(u64::from(self.quantize(e).raw()));
                    if (raw >> CANONICAL_FRAC_BITS) >= threshold {
                        raw = self.spillover.raw();
                        self.mitigations += 1;
                        out.push(MitigationRequest {
                            aggressor: row,
                            identified_at: now,
                        });
                    }
                    if raw != walk_summary {
                        walk_summary = raw;
                        moved = true;
                    }
                }
                raw
            };
            self.table[slot].count = EactCounter::from_raw(final_raw);
            if self.engine == EvictionEngine::Summary {
                // One splice for the whole run: intermediate counts are never
                // observed, and the slot's final in-bucket position is the head
                // whenever any per-record splice would have moved it.
                if summary_count.is_some() {
                    if moved {
                        // Force the move-to-head even when the final count
                        // matches the current bucket (`set_count` would
                        // early-return and leave the slot mid-bucket).
                        self.summary.detach(slot);
                        self.summary.attach(slot, final_raw);
                    } else {
                        self.summary.set_count(slot, final_raw);
                    }
                } else {
                    self.summary.attach(slot, final_raw);
                }
            }
            i = j;
        }
    }

    fn headroom(&self) -> u64 {
        let max_raw = match self.engine {
            EvictionEngine::Summary => self.summary.max().map_or(0, |(_, raw)| raw),
            EvictionEngine::Scan => self
                .table
                .iter()
                .filter(|e| e.valid)
                .map(|e| e.count.raw())
                .max()
                .unwrap_or(0),
        };
        let threshold_raw = self
            .config
            .internal_threshold
            .saturating_mul(u64::from(Eact::ONE.raw()));
        // A counter mitigates on reaching `threshold_raw`. Fresh claims start
        // at the spillover count, so the binding start point is the larger of
        // the current maximum and the spillover; absorbing total weight W can
        // raise any counter (and the spillover) by at most W, which makes
        // W <= threshold_raw - 1 - max(max, spillover) provably safe.
        threshold_raw
            .saturating_sub(1)
            .saturating_sub(max_raw.max(self.spillover.raw()))
    }

    fn on_refresh_window(&mut self, _now: Cycle) {
        for e in &mut self.table {
            e.valid = false;
            e.count = EactCounter::ZERO;
        }
        self.index.clear();
        if self.engine == EvictionEngine::Summary {
            self.summary.clear();
            restock_free_slots(&mut self.free_slots, self.config.entries);
        }
        self.spillover = EactCounter::ZERO;
    }

    fn kind(&self) -> TrackerKind {
        TrackerKind::Graphene
    }

    fn storage(&self) -> StorageEstimate {
        StorageEstimate::per_entry(
            self.config.entries as u64,
            ROW_ADDRESS_BITS + COUNTER_BITS + self.config.frac_bits,
        )
    }

    fn configured_threshold(&self) -> u64 {
        self.config.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_aggressor_is_mitigated_before_threshold() {
        let mut g = Graphene::for_threshold(4_000);
        let mut acts_without_mitigation = 0u64;
        let mut max_streak = 0u64;
        for i in 0..20_000u64 {
            match g.record(42, Eact::ONE, i * 128) {
                Some(m) => {
                    assert_eq!(m.aggressor, 42);
                    max_streak = max_streak.max(acts_without_mitigation);
                    acts_without_mitigation = 0;
                }
                None => acts_without_mitigation += 1,
            }
        }
        max_streak = max_streak.max(acts_without_mitigation);
        // No stretch of unmitigated activations ever approaches the 4K threshold.
        assert!(max_streak <= g.config().internal_threshold + 1);
        assert!(g.mitigations() > 0);
    }

    #[test]
    fn distinct_rows_below_threshold_do_not_mitigate() {
        let mut g = Graphene::for_threshold(4_000);
        for i in 0..100_000u64 {
            // Round-robin over many rows: none accumulates anywhere near the threshold.
            let row = (i % 1000) as RowId;
            assert!(g.record(row, Eact::ONE, i * 128).is_none());
        }
        assert_eq!(g.mitigations(), 0);
    }

    #[test]
    fn fractional_eact_accumulates() {
        let mut g = Graphene::new(GrapheneConfig::with_frac_bits(4_000, 7));
        let eact = Eact::from_f64(2.0, 7);
        let mut mitigated = false;
        // 2.0 EACT per record: the internal threshold (1333) is crossed in ~667 records.
        for i in 0..700u64 {
            if g.record(9, eact, i * 256).is_some() {
                mitigated = true;
                break;
            }
        }
        assert!(mitigated);
    }

    #[test]
    fn refresh_window_resets_state() {
        let mut g = Graphene::for_threshold(4_000);
        for i in 0..1000u64 {
            let _ = g.record(5, Eact::ONE, i * 128);
        }
        assert!(g.tracked_count(5).unwrap_or(0) > 0);
        g.on_refresh_window(1_000_000);
        assert_eq!(g.tracked_count(5), None);
    }

    #[test]
    fn storage_scales_with_frac_bits() {
        let plain = Graphene::for_threshold(4_000);
        let precise = Graphene::new(GrapheneConfig::with_frac_bits(4_000, 7));
        let ratio = precise.storage().relative_to(&plain.storage());
        // §VI-C: ImPress-P adds 7 bits per entry, ~1.2x storage, far below the 2x of
        // halving the threshold.
        assert!(ratio > 1.1 && ratio < 1.3, "ratio = {ratio}");
        let halved = Graphene::for_threshold(2_000);
        let ratio2 = halved.storage().relative_to(&plain.storage());
        assert!(ratio2 > 1.9 && ratio2 < 2.1, "ratio2 = {ratio2}");
    }

    /// The invalid-before-eviction invariant, in the exact state where a naive
    /// min-count eviction would invert it: a mitigation rolls a tracked row's
    /// counter back to the (zero) spillover value while invalid slots remain, so
    /// a subsequent miss sees a valid zero-count entry *and* free slots. The new
    /// row must claim a free slot and the rolled-back row must stay tracked.
    #[test]
    fn invalid_slots_claimed_before_zero_count_eviction_in_both_engines() {
        for engine in [EvictionEngine::Scan, EvictionEngine::Summary] {
            let config = GrapheneConfig {
                threshold: 30,
                internal_threshold: 10,
                entries: 4,
                frac_bits: 0,
            };
            let mut g = Graphene::with_engine(config, engine);
            // Drive row 7 to a mitigation: its counter rolls back to spillover (0),
            // leaving a valid zero-count entry with 3 slots still invalid.
            let mut mitigated = false;
            for i in 0..10u64 {
                mitigated |= g.record(7, Eact::ONE, i * 128).is_some();
            }
            assert!(
                mitigated,
                "{engine}: row 7 should hit the internal threshold"
            );
            assert_eq!(g.tracked_count(7), Some(0), "{engine}");
            // A miss now must claim an invalid slot, not evict the zero-count row 7
            // (whose count equals the spillover count and is therefore claimable).
            g.record(99, Eact::ONE, 2_000);
            assert_eq!(
                g.tracked_count(7),
                Some(0),
                "{engine}: zero-count row evicted while invalid slots remained"
            );
            assert_eq!(g.tracked_count(99), Some(1), "{engine}");
        }
    }

    /// Scan and summary engines stay in lockstep on streams whose eviction
    /// choices are always unambiguous. Two such shapes: a hot set that fits the
    /// table (no evictions, but mitigations and roll-backs), and a single-entry
    /// table (every eviction has exactly one candidate) under heavy churn with
    /// spillover growth. The ambiguity-aware general property lives in
    /// `tests/summary_equivalence.rs`.
    #[test]
    fn engines_agree_on_unambiguous_streams() {
        let lockstep = |entries: usize, rows: u32| {
            let config = GrapheneConfig {
                threshold: 3_000,
                internal_threshold: 100,
                entries,
                frac_bits: 7,
            };
            let mut scan = Graphene::with_engine(config.clone(), EvictionEngine::Scan);
            let mut summary = Graphene::with_engine(config, EvictionEngine::Summary);
            for i in 0..40_000u64 {
                let row = (i % u64::from(rows)) as RowId;
                let eact = Eact::from_f64(1.0 + (row as f64) / 8.0, 7);
                let a = scan.record(row, eact, i * 128);
                let b = summary.record(row, eact, i * 128);
                assert_eq!(a, b, "entries={entries}: diverged at record {i}");
            }
            assert_eq!(scan.mitigations(), summary.mitigations());
            assert!(scan.mitigations() > 0, "entries={entries}: stream too tame");
            assert_eq!(scan.spillover_raw(), summary.spillover_raw());
            for row in 0..rows {
                assert_eq!(
                    scan.tracked_raw(row),
                    summary.tracked_raw(row),
                    "entries={entries} row {row}"
                );
            }
        };
        lockstep(8, 8); // matches + mitigation roll-backs, no eviction
        lockstep(1, 5); // forced (unique-candidate) evictions + spillover growth
    }

    #[test]
    fn spillover_eviction_keeps_heavy_hitter() {
        // Even with more distinct rows than entries, a truly heavy hitter must still
        // be caught (the Misra-Gries guarantee).
        let mut g = Graphene::for_threshold(4_000);
        let entries = g.config().entries as u64;
        let mut caught = false;
        for i in 0..3_000_000u64 {
            // Interleave the aggressor with a sweep over many one-off rows.
            let row = if i % 3 == 0 {
                7
            } else {
                1000 + (i % (entries * 4)) as RowId
            };
            if let Some(m) = g.record(row, Eact::ONE, i * 128) {
                if m.aggressor == 7 {
                    caught = true;
                    break;
                }
            }
        }
        assert!(caught, "heavy hitter escaped Graphene");
    }
}
