//! Graphene: Misra-Gries counter-based tracking at the memory controller.
//!
//! Graphene (Park et al., MICRO 2020) keeps a small table of (row, counter) pairs per
//! bank managed with the Misra-Gries frequent-items algorithm, plus a spillover
//! counter. When a row's counter reaches the internal threshold, its victims are
//! refreshed and the counter rolls back to the spillover value. The table is reset once
//! per refresh window.
//!
//! Under ImPress-P the counters accumulate fractional [`Eact`] values instead of +1
//! per activation, which adds 7 bits per entry but leaves the entry count unchanged
//! (§VI-C).

use impress_dram::address::RowId;
use impress_dram::timing::Cycle;
use impress_dram::DramTimings;

use crate::analysis::{graphene_entries, graphene_internal_threshold};
use crate::eact::{Eact, EactCounter, CANONICAL_FRAC_BITS};
use crate::index::RowSlotIndex;
use crate::storage::{StorageEstimate, COUNTER_BITS, ROW_ADDRESS_BITS};
use crate::tracker::{MitigationRequest, RowTracker, TrackerKind};

/// One Misra-Gries table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    row: RowId,
    count: EactCounter,
    valid: bool,
}

/// Configuration for a [`Graphene`] tracker instance.
#[derive(Debug, Clone, PartialEq)]
pub struct GrapheneConfig {
    /// Rowhammer threshold this instance must tolerate.
    pub threshold: u64,
    /// Internal mitigation threshold (counter value that triggers a mitigation).
    pub internal_threshold: u64,
    /// Number of table entries per bank.
    pub entries: usize,
    /// Number of fractional EACT bits stored per counter (0 for a plain RH system,
    /// 7 for ImPress-P).
    pub frac_bits: u32,
}

impl GrapheneConfig {
    /// Configuration for tolerating `threshold` with the paper's DDR5 timings and no
    /// fractional bits (plain Rowhammer tracking).
    pub fn for_threshold(threshold: u64) -> Self {
        let timings = DramTimings::ddr5();
        Self {
            threshold,
            internal_threshold: graphene_internal_threshold(threshold),
            entries: graphene_entries(threshold, &timings) as usize,
            frac_bits: 0,
        }
    }

    /// Same as [`GrapheneConfig::for_threshold`] but with fractional counter bits for
    /// ImPress-P (the paper's default uses 7 bits).
    pub fn with_frac_bits(threshold: u64, frac_bits: u32) -> Self {
        Self {
            frac_bits,
            ..Self::for_threshold(threshold)
        }
    }
}

/// The Graphene tracker for a single bank.
#[derive(Debug, Clone)]
pub struct Graphene {
    config: GrapheneConfig,
    table: Vec<Entry>,
    /// O(1) row → slot map over the valid table entries (pure acceleration of the
    /// match path; eviction decisions still scan the table — see [`crate::index`]).
    index: RowSlotIndex,
    spillover: EactCounter,
    mitigations: u64,
}

impl Graphene {
    /// Creates a Graphene tracker sized for `threshold` (no fractional bits).
    pub fn for_threshold(threshold: u64) -> Self {
        Self::new(GrapheneConfig::for_threshold(threshold))
    }

    /// Creates a Graphene tracker from an explicit configuration.
    pub fn new(config: GrapheneConfig) -> Self {
        let table = vec![
            Entry {
                row: 0,
                count: EactCounter::ZERO,
                valid: false,
            };
            config.entries
        ];
        let index = RowSlotIndex::for_entries(config.entries);
        Self {
            config,
            table,
            index,
            spillover: EactCounter::ZERO,
            mitigations: 0,
        }
    }

    /// The configuration this tracker was built with.
    pub fn config(&self) -> &GrapheneConfig {
        &self.config
    }

    /// Number of mitigations issued so far.
    pub fn mitigations(&self) -> u64 {
        self.mitigations
    }

    /// Current counter value for `row` (whole activations), if tracked.
    pub fn tracked_count(&self, row: RowId) -> Option<u64> {
        self.index
            .get(row)
            .map(|slot| self.table[slot].count.activations())
    }

    fn quantize(&self, eact: Eact) -> Eact {
        if self.config.frac_bits >= CANONICAL_FRAC_BITS {
            eact
        } else {
            let drop = CANONICAL_FRAC_BITS - self.config.frac_bits;
            Eact::from_raw((eact.raw() >> drop) << drop)
        }
    }
}

impl RowTracker for Graphene {
    fn record(&mut self, row: RowId, eact: Eact, now: Cycle) -> Option<MitigationRequest> {
        let eact = self.quantize(eact);
        // Misra-Gries update. The match path is O(1) via the row → slot index; only
        // when the row is absent does the eviction decision scan the table for the
        // first invalid entry (claimed outright) or, failing that, the first entry
        // whose count does not exceed the spillover count — exactly the slots the
        // seed's three-scan version selected, so behavior is bit-identical.
        let slot = if let Some(slot) = self.index.get(row) {
            slot
        } else {
            let spillover_raw = self.spillover.raw();
            let mut first_invalid = usize::MAX;
            let mut first_replaceable = usize::MAX;
            for (i, e) in self.table.iter().enumerate() {
                if !e.valid {
                    // Invalid entries take priority over replaceable ones wherever
                    // they sit, so the scan can stop at the first one.
                    first_invalid = i;
                    break;
                }
                if e.count.raw() <= spillover_raw && first_replaceable == usize::MAX {
                    first_replaceable = i;
                }
            }
            let i = if first_invalid != usize::MAX {
                first_invalid
            } else if first_replaceable != usize::MAX {
                // Evict: the replaced row leaves the index, the new row enters it.
                self.index.remove(self.table[first_replaceable].row);
                first_replaceable
            } else {
                // No entry to replace: the activation goes to the spillover counter.
                self.spillover.add(eact);
                return None;
            };
            self.table[i] = Entry {
                row,
                count: self.spillover,
                valid: true,
            };
            self.index.insert(row, i);
            i
        };

        self.table[slot].count.add(eact);
        if self.table[slot]
            .count
            .reached(self.config.internal_threshold)
        {
            // Mitigate and roll the counter back to the spillover value so the row
            // keeps being tracked without immediately re-triggering.
            self.table[slot].count = self.spillover;
            self.mitigations += 1;
            Some(MitigationRequest {
                aggressor: row,
                identified_at: now,
            })
        } else {
            None
        }
    }

    fn on_refresh_window(&mut self, _now: Cycle) {
        for e in &mut self.table {
            e.valid = false;
            e.count = EactCounter::ZERO;
        }
        self.index.clear();
        self.spillover = EactCounter::ZERO;
    }

    fn kind(&self) -> TrackerKind {
        TrackerKind::Graphene
    }

    fn storage(&self) -> StorageEstimate {
        StorageEstimate::per_entry(
            self.config.entries as u64,
            ROW_ADDRESS_BITS + COUNTER_BITS + self.config.frac_bits,
        )
    }

    fn configured_threshold(&self) -> u64 {
        self.config.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_aggressor_is_mitigated_before_threshold() {
        let mut g = Graphene::for_threshold(4_000);
        let mut acts_without_mitigation = 0u64;
        let mut max_streak = 0u64;
        for i in 0..20_000u64 {
            match g.record(42, Eact::ONE, i * 128) {
                Some(m) => {
                    assert_eq!(m.aggressor, 42);
                    max_streak = max_streak.max(acts_without_mitigation);
                    acts_without_mitigation = 0;
                }
                None => acts_without_mitigation += 1,
            }
        }
        max_streak = max_streak.max(acts_without_mitigation);
        // No stretch of unmitigated activations ever approaches the 4K threshold.
        assert!(max_streak <= g.config().internal_threshold + 1);
        assert!(g.mitigations() > 0);
    }

    #[test]
    fn distinct_rows_below_threshold_do_not_mitigate() {
        let mut g = Graphene::for_threshold(4_000);
        for i in 0..100_000u64 {
            // Round-robin over many rows: none accumulates anywhere near the threshold.
            let row = (i % 1000) as RowId;
            assert!(g.record(row, Eact::ONE, i * 128).is_none());
        }
        assert_eq!(g.mitigations(), 0);
    }

    #[test]
    fn fractional_eact_accumulates() {
        let mut g = Graphene::new(GrapheneConfig::with_frac_bits(4_000, 7));
        let eact = Eact::from_f64(2.0, 7);
        let mut mitigated = false;
        // 2.0 EACT per record: the internal threshold (1333) is crossed in ~667 records.
        for i in 0..700u64 {
            if g.record(9, eact, i * 256).is_some() {
                mitigated = true;
                break;
            }
        }
        assert!(mitigated);
    }

    #[test]
    fn refresh_window_resets_state() {
        let mut g = Graphene::for_threshold(4_000);
        for i in 0..1000u64 {
            let _ = g.record(5, Eact::ONE, i * 128);
        }
        assert!(g.tracked_count(5).unwrap_or(0) > 0);
        g.on_refresh_window(1_000_000);
        assert_eq!(g.tracked_count(5), None);
    }

    #[test]
    fn storage_scales_with_frac_bits() {
        let plain = Graphene::for_threshold(4_000);
        let precise = Graphene::new(GrapheneConfig::with_frac_bits(4_000, 7));
        let ratio = precise.storage().relative_to(&plain.storage());
        // §VI-C: ImPress-P adds 7 bits per entry, ~1.2x storage, far below the 2x of
        // halving the threshold.
        assert!(ratio > 1.1 && ratio < 1.3, "ratio = {ratio}");
        let halved = Graphene::for_threshold(2_000);
        let ratio2 = halved.storage().relative_to(&plain.storage());
        assert!(ratio2 > 1.9 && ratio2 < 2.1, "ratio2 = {ratio2}");
    }

    #[test]
    fn spillover_eviction_keeps_heavy_hitter() {
        // Even with more distinct rows than entries, a truly heavy hitter must still
        // be caught (the Misra-Gries guarantee).
        let mut g = Graphene::for_threshold(4_000);
        let entries = g.config().entries as u64;
        let mut caught = false;
        for i in 0..3_000_000u64 {
            // Interleave the aggressor with a sweep over many one-off rows.
            let row = if i % 3 == 0 {
                7
            } else {
                1000 + (i % (entries * 4)) as RowId
            };
            if let Some(m) = g.record(row, Eact::ONE, i * 128) {
                if m.aggressor == 7 {
                    caught = true;
                    break;
                }
            }
        }
        assert!(caught, "heavy hitter escaped Graphene");
    }
}
