//! O(1) row → table-slot lookup for fixed-size Misra-Gries tables.
//!
//! Graphene and Mithril keep a few hundred `(row, counter)` entries per bank. Their
//! `record` hot path previously scanned the table linearly on every activation to
//! find the matching entry (~0.4 µs per record at paper sizing on miss-heavy
//! streams). [`RowSlotIndex`] is a small open-addressed hash index maintained beside
//! the table that answers "which slot holds this row?" in O(1):
//!
//! * fixed power-of-two capacity of at least twice the table size (the table can
//!   never hold more rows than it has entries, so the load factor stays ≤ 1/2 and
//!   probe sequences stay short) — no growth, no allocation after construction;
//! * Fibonacci multiplicative hashing with linear probing, like
//!   [`crate::flat::FlatCounterTable`];
//! * deletions use backward-shift compaction instead of tombstones, so eviction-heavy
//!   streams (the worst case for the old scan) cannot degrade the index.
//!
//! The index is pure acceleration: it changes which slot is *found*, never which
//! slot the Misra-Gries algorithm *chooses*. Victim selection on a miss belongs
//! to the eviction engine ([`crate::summary::EvictionEngine`]): under the scan
//! engine the table is scanned exactly as in the seed, so tracker behavior is
//! bit-identical — the property tests in `tests/flat_equivalence.rs` drive the
//! indexed scan-engine trackers against transcriptions of the original
//! multi-scan algorithms and require identical mitigation sequences and counter
//! values. Under the summary engine the victim comes from the count-ordered
//! [`crate::summary::CountSummary`] in O(1), with the observational-equivalence
//! contract pinned by `tests/summary_equivalence.rs`.

use impress_dram::address::RowId;

/// Sentinel key marking an empty index slot (row addresses top out at 2^17).
const EMPTY: RowId = RowId::MAX;

/// Fibonacci multiplicative hash (same spreading as the flat counter table).
#[inline]
fn fib_hash(row: RowId, mask: usize) -> usize {
    (row.wrapping_mul(0x9E37_79B9) as usize) & mask
}

/// An open-addressed `RowId -> slot` map of fixed capacity.
///
/// Each cell packs the key (low 32 bits) and the table slot (high 32 bits) into
/// one `u64`, so a probe — and, more importantly, every backward-shift move on
/// removal — touches one array location instead of two parallel ones.
#[derive(Debug, Clone)]
pub struct RowSlotIndex {
    cells: Vec<u64>,
    len: usize,
}

/// An empty cell: the sentinel key with a zero slot.
const EMPTY_CELL: u64 = EMPTY as u64;

#[inline]
fn pack(row: RowId, slot: usize) -> u64 {
    u64::from(row) | ((slot as u64) << 32)
}

#[inline]
fn cell_key(cell: u64) -> RowId {
    cell as RowId
}

#[inline]
fn cell_slot(cell: u64) -> usize {
    (cell >> 32) as usize
}

impl RowSlotIndex {
    /// Builds an index able to hold `entries` rows (the Misra-Gries table size).
    pub fn for_entries(entries: usize) -> Self {
        let capacity = (entries.max(1) * 2).next_power_of_two().max(16);
        Self {
            cells: vec![EMPTY_CELL; capacity],
            len: 0,
        }
    }

    /// Number of rows currently indexed.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no rows are indexed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn mask(&self) -> usize {
        self.cells.len() - 1
    }

    /// Capacity of the cell array (used by the over-capacity assertions).
    #[inline]
    fn capacity(&self) -> usize {
        self.cells.len()
    }

    /// Prefetches the probe-start cell for `row` (x86_64; no-op elsewhere).
    ///
    /// Batch kernels issue this for the *next* run while the current one is
    /// processed: the index is the one dependent random access per run, so
    /// overlapping its cache miss with the current run's counter update is
    /// most of the batched path's memory-level parallelism.
    #[inline]
    pub fn prefetch(&self, row: RowId) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `fib_hash` masks into `cells`' bounds; prefetching any
        // readable address has no other effect.
        unsafe {
            std::arch::x86_64::_mm_prefetch(
                self.cells.as_ptr().add(fib_hash(row, self.mask())).cast(),
                std::arch::x86_64::_MM_HINT_T0,
            );
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = row;
    }

    /// The table slot holding `row`, if the row is currently tracked.
    ///
    /// The sentinel value itself (`RowId::MAX`, unreachable for real DDR5 rows) is
    /// reported as absent: the `EMPTY` comparison is ordered before the key match so
    /// a sentinel query can never alias an empty slot.
    #[inline]
    pub fn get(&self, row: RowId) -> Option<usize> {
        let mask = self.mask();
        let mut i = fib_hash(row, mask);
        loop {
            let cell = self.cells[i];
            let k = cell_key(cell);
            if k == EMPTY {
                return None;
            }
            if k == row {
                return Some(cell_slot(cell));
            }
            i = (i + 1) & mask;
        }
    }

    /// Looks up `row`, returning its table slot — or, on a miss, the index
    /// position where `row` would be inserted (`Err`), which can be handed
    /// straight to [`RowSlotIndex::insert_at`] to avoid re-probing.
    ///
    /// The returned position is invalidated by *any* intervening mutation of the
    /// index (`insert`/`remove`/`clear`): backward-shift compaction may move a
    /// key into (or out of) the probe path.
    #[inline]
    pub fn locate(&self, row: RowId) -> Result<usize, usize> {
        let mask = self.mask();
        let mut i = fib_hash(row, mask);
        loop {
            let cell = self.cells[i];
            let k = cell_key(cell);
            if k == EMPTY {
                return Err(i);
            }
            if k == row {
                return Ok(cell_slot(cell));
            }
            i = (i + 1) & mask;
        }
    }

    /// Inserts `row` at a position previously returned by
    /// [`RowSlotIndex::locate`]'s `Err`, with no intervening index mutation.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if the position no longer lies on `row`'s probe
    /// path terminus (i.e. the no-intervening-mutation contract was broken) or
    /// if the index is over capacity.
    #[inline]
    pub fn insert_at(&mut self, position: usize, row: RowId, slot: usize) {
        debug_assert_ne!(row, EMPTY, "row id {EMPTY} is reserved as the empty marker");
        debug_assert_eq!(
            self.locate(row).err(),
            Some(position),
            "stale probe position for row {row}"
        );
        // One past the half-capacity bound is allowed: the evict-replace path
        // inserts the incoming row *before* removing the victim (the removal
        // would invalidate the probe position), so a full table is transiently
        // one row over.
        assert!(
            self.len <= self.capacity() / 2,
            "RowSlotIndex sized for half its capacity"
        );
        self.cells[position] = pack(row, slot);
        self.len += 1;
    }

    /// Records that `row` now lives in table slot `slot`.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if `row` is already indexed (trackers insert a row
    /// only after establishing it is absent) or if the index is over capacity.
    #[inline]
    pub fn insert(&mut self, row: RowId, slot: usize) {
        debug_assert_ne!(row, EMPTY, "row id {EMPTY} is reserved as the empty marker");
        debug_assert!(self.get(row).is_none(), "row {row} inserted twice");
        assert!(
            self.len < self.capacity() / 2,
            "RowSlotIndex sized for half its capacity"
        );
        let mask = self.mask();
        let mut i = fib_hash(row, mask);
        while cell_key(self.cells[i]) != EMPTY {
            i = (i + 1) & mask;
        }
        self.cells[i] = pack(row, slot);
        self.len += 1;
    }

    /// Removes `row` from the index (no-op if absent). Returns whether it was present.
    ///
    /// Uses backward-shift compaction: every key in the probe cluster after the
    /// removed one is moved back if (and only if) the vacated position still lies on
    /// its probe path, preserving the linear-probing invariant without tombstones.
    #[inline]
    pub fn remove(&mut self, row: RowId) -> bool {
        let mask = self.mask();
        let mut i = fib_hash(row, mask);
        loop {
            let k = cell_key(self.cells[i]);
            if k == EMPTY {
                return false;
            }
            if k == row {
                break;
            }
            i = (i + 1) & mask;
        }
        let mut hole = i;
        let mut j = (i + 1) & mask;
        loop {
            let cell = self.cells[j];
            let k = cell_key(cell);
            if k == EMPTY {
                break;
            }
            let home = fib_hash(k, mask);
            // `k` may fill the hole iff the hole lies between its home position and
            // its current position (cyclically) — otherwise moving it would place it
            // before its home and break lookups.
            let home_to_hole = hole.wrapping_sub(home) & mask;
            let home_to_j = j.wrapping_sub(home) & mask;
            if home_to_hole <= home_to_j {
                self.cells[hole] = cell;
                hole = j;
            }
            j = (j + 1) & mask;
        }
        self.cells[hole] = EMPTY_CELL;
        self.len -= 1;
        true
    }

    /// Removes every row. Capacity is retained; never allocates.
    pub fn clear(&mut self) {
        if self.len > 0 {
            self.cells.fill(EMPTY_CELL);
            self.len = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut idx = RowSlotIndex::for_entries(8);
        assert!(idx.is_empty());
        idx.insert(100, 3);
        idx.insert(200, 5);
        assert_eq!(idx.get(100), Some(3));
        assert_eq!(idx.get(200), Some(5));
        assert_eq!(idx.get(300), None);
        assert!(idx.remove(100));
        assert!(!idx.remove(100));
        assert_eq!(idx.get(100), None);
        assert_eq!(idx.get(200), Some(5));
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn colliding_rows_survive_backward_shift_removal() {
        // Rows a multiple of the capacity apart hash to the same home slot; removing
        // one from the middle of the cluster must keep the others findable.
        let mut idx = RowSlotIndex::for_entries(8);
        let cap = 16u32; // for_entries(8) -> capacity 16
        let rows: Vec<RowId> = (0..6).map(|i| 5 + i * cap * 7).collect();
        for (slot, &row) in rows.iter().enumerate() {
            idx.insert(row, slot);
        }
        for victim in 0..rows.len() {
            let mut idx = idx.clone();
            assert!(idx.remove(rows[victim]));
            for (slot, &row) in rows.iter().enumerate() {
                if slot == victim {
                    assert_eq!(idx.get(row), None);
                } else {
                    assert_eq!(idx.get(row), Some(slot), "victim {victim} row {row}");
                }
            }
        }
    }

    #[test]
    fn sentinel_row_reads_as_absent() {
        let mut idx = RowSlotIndex::for_entries(8);
        idx.insert(1, 0);
        assert_eq!(idx.get(RowId::MAX), None);
        assert!(!idx.remove(RowId::MAX));
        assert_eq!(idx.get(1), Some(0));
    }

    #[test]
    fn clear_empties_the_index() {
        let mut idx = RowSlotIndex::for_entries(32);
        for row in 0..32u32 {
            idx.insert(row * 3 + 1, row as usize);
        }
        idx.clear();
        assert!(idx.is_empty());
        for row in 0..32u32 {
            assert_eq!(idx.get(row * 3 + 1), None);
        }
    }

    #[test]
    fn churn_many_insert_remove_cycles() {
        // Eviction-heavy usage: the index repeatedly swaps one row for another at a
        // fixed slot, like a full Misra-Gries table on a miss-heavy stream.
        let mut idx = RowSlotIndex::for_entries(4);
        for (slot, base) in [(0usize, 10u32), (1, 11), (2, 12), (3, 13)] {
            idx.insert(base, slot);
        }
        for round in 0..10_000u32 {
            let slot = (round % 4) as usize;
            let old = 10 + (round % 4) + (round / 4) * 4;
            let new = old + 4;
            assert!(idx.remove(old), "round {round}: {old} missing");
            idx.insert(new, slot);
            assert_eq!(idx.get(new), Some(slot));
            assert_eq!(idx.len(), 4);
        }
    }

    #[test]
    #[should_panic(expected = "sized for half")]
    fn overfilling_is_rejected() {
        let mut idx = RowSlotIndex::for_entries(4);
        for row in 0..9u32 {
            idx.insert(row, 0);
        }
    }
}
