//! O(1) row → table-slot lookup for fixed-size Misra-Gries tables.
//!
//! Graphene and Mithril keep a few hundred `(row, counter)` entries per bank. Their
//! `record` hot path previously scanned the table linearly on every activation to
//! find the matching entry (~0.4 µs per record at paper sizing on miss-heavy
//! streams). [`RowSlotIndex`] is a small open-addressed hash index maintained beside
//! the table that answers "which slot holds this row?" in O(1):
//!
//! * fixed power-of-two capacity of at least twice the table size (the table can
//!   never hold more rows than it has entries, so the load factor stays ≤ 1/2 and
//!   probe sequences stay short) — no growth, no allocation after construction;
//! * Fibonacci multiplicative hashing with linear probing, like
//!   [`crate::flat::FlatCounterTable`];
//! * deletions use backward-shift compaction instead of tombstones, so eviction-heavy
//!   streams (the worst case for the old scan) cannot degrade the index.
//!
//! The index is pure acceleration: it changes which slot is *found*, never which
//! slot the Misra-Gries algorithm *chooses*. Eviction decisions still scan the
//! table exactly as before, so tracker behavior is bit-identical — the property
//! tests in `tests/flat_equivalence.rs` drive the indexed trackers against
//! transcriptions of the original multi-scan algorithms and require identical
//! mitigation sequences and counter values.

use impress_dram::address::RowId;

/// Sentinel key marking an empty index slot (row addresses top out at 2^17).
const EMPTY: RowId = RowId::MAX;

/// Fibonacci multiplicative hash (same spreading as the flat counter table).
#[inline]
fn fib_hash(row: RowId, mask: usize) -> usize {
    (row.wrapping_mul(0x9E37_79B9) as usize) & mask
}

/// An open-addressed `RowId -> slot` map of fixed capacity.
#[derive(Debug, Clone)]
pub struct RowSlotIndex {
    keys: Vec<RowId>,
    slots: Vec<u32>,
    len: usize,
}

impl RowSlotIndex {
    /// Builds an index able to hold `entries` rows (the Misra-Gries table size).
    pub fn for_entries(entries: usize) -> Self {
        let capacity = (entries.max(1) * 2).next_power_of_two().max(16);
        Self {
            keys: vec![EMPTY; capacity],
            slots: vec![0; capacity],
            len: 0,
        }
    }

    /// Number of rows currently indexed.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no rows are indexed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn mask(&self) -> usize {
        self.keys.len() - 1
    }

    /// The table slot holding `row`, if the row is currently tracked.
    ///
    /// The sentinel value itself (`RowId::MAX`, unreachable for real DDR5 rows) is
    /// reported as absent: the `EMPTY` comparison is ordered before the key match so
    /// a sentinel query can never alias an empty slot.
    #[inline]
    pub fn get(&self, row: RowId) -> Option<usize> {
        let mask = self.mask();
        let mut i = fib_hash(row, mask);
        loop {
            let k = self.keys[i];
            if k == EMPTY {
                return None;
            }
            if k == row {
                return Some(self.slots[i] as usize);
            }
            i = (i + 1) & mask;
        }
    }

    /// Records that `row` now lives in table slot `slot`.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if `row` is already indexed (trackers insert a row
    /// only after establishing it is absent) or if the index is over capacity.
    #[inline]
    pub fn insert(&mut self, row: RowId, slot: usize) {
        debug_assert_ne!(row, EMPTY, "row id {EMPTY} is reserved as the empty marker");
        debug_assert!(self.get(row).is_none(), "row {row} inserted twice");
        assert!(
            self.len < self.keys.len() / 2,
            "RowSlotIndex sized for half its capacity"
        );
        let mask = self.mask();
        let mut i = fib_hash(row, mask);
        while self.keys[i] != EMPTY {
            i = (i + 1) & mask;
        }
        self.keys[i] = row;
        self.slots[i] = slot as u32;
        self.len += 1;
    }

    /// Removes `row` from the index (no-op if absent). Returns whether it was present.
    ///
    /// Uses backward-shift compaction: every key in the probe cluster after the
    /// removed one is moved back if (and only if) the vacated position still lies on
    /// its probe path, preserving the linear-probing invariant without tombstones.
    pub fn remove(&mut self, row: RowId) -> bool {
        let mask = self.mask();
        let mut i = fib_hash(row, mask);
        loop {
            let k = self.keys[i];
            if k == EMPTY {
                return false;
            }
            if k == row {
                break;
            }
            i = (i + 1) & mask;
        }
        let mut hole = i;
        let mut j = (i + 1) & mask;
        loop {
            let k = self.keys[j];
            if k == EMPTY {
                break;
            }
            let home = fib_hash(k, mask);
            // `k` may fill the hole iff the hole lies between its home position and
            // its current position (cyclically) — otherwise moving it would place it
            // before its home and break lookups.
            let home_to_hole = hole.wrapping_sub(home) & mask;
            let home_to_j = j.wrapping_sub(home) & mask;
            if home_to_hole <= home_to_j {
                self.keys[hole] = k;
                self.slots[hole] = self.slots[j];
                hole = j;
            }
            j = (j + 1) & mask;
        }
        self.keys[hole] = EMPTY;
        self.len -= 1;
        true
    }

    /// Removes every row. Capacity is retained; never allocates.
    pub fn clear(&mut self) {
        if self.len > 0 {
            self.keys.fill(EMPTY);
            self.len = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut idx = RowSlotIndex::for_entries(8);
        assert!(idx.is_empty());
        idx.insert(100, 3);
        idx.insert(200, 5);
        assert_eq!(idx.get(100), Some(3));
        assert_eq!(idx.get(200), Some(5));
        assert_eq!(idx.get(300), None);
        assert!(idx.remove(100));
        assert!(!idx.remove(100));
        assert_eq!(idx.get(100), None);
        assert_eq!(idx.get(200), Some(5));
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn colliding_rows_survive_backward_shift_removal() {
        // Rows a multiple of the capacity apart hash to the same home slot; removing
        // one from the middle of the cluster must keep the others findable.
        let mut idx = RowSlotIndex::for_entries(8);
        let cap = 16u32; // for_entries(8) -> capacity 16
        let rows: Vec<RowId> = (0..6).map(|i| 5 + i * cap * 7).collect();
        for (slot, &row) in rows.iter().enumerate() {
            idx.insert(row, slot);
        }
        for victim in 0..rows.len() {
            let mut idx = idx.clone();
            assert!(idx.remove(rows[victim]));
            for (slot, &row) in rows.iter().enumerate() {
                if slot == victim {
                    assert_eq!(idx.get(row), None);
                } else {
                    assert_eq!(idx.get(row), Some(slot), "victim {victim} row {row}");
                }
            }
        }
    }

    #[test]
    fn sentinel_row_reads_as_absent() {
        let mut idx = RowSlotIndex::for_entries(8);
        idx.insert(1, 0);
        assert_eq!(idx.get(RowId::MAX), None);
        assert!(!idx.remove(RowId::MAX));
        assert_eq!(idx.get(1), Some(0));
    }

    #[test]
    fn clear_empties_the_index() {
        let mut idx = RowSlotIndex::for_entries(32);
        for row in 0..32u32 {
            idx.insert(row * 3 + 1, row as usize);
        }
        idx.clear();
        assert!(idx.is_empty());
        for row in 0..32u32 {
            assert_eq!(idx.get(row * 3 + 1), None);
        }
    }

    #[test]
    fn churn_many_insert_remove_cycles() {
        // Eviction-heavy usage: the index repeatedly swaps one row for another at a
        // fixed slot, like a full Misra-Gries table on a miss-heavy stream.
        let mut idx = RowSlotIndex::for_entries(4);
        for (slot, base) in [(0usize, 10u32), (1, 11), (2, 12), (3, 13)] {
            idx.insert(base, slot);
        }
        for round in 0..10_000u32 {
            let slot = (round % 4) as usize;
            let old = 10 + (round % 4) + (round / 4) * 4;
            let new = old + 4;
            assert!(idx.remove(old), "round {round}: {old} missing");
            idx.insert(new, slot);
            assert_eq!(idx.get(new), Some(slot));
            assert_eq!(idx.len(), 4);
        }
    }

    #[test]
    #[should_panic(expected = "sized for half")]
    fn overfilling_is_rejected() {
        let mut idx = RowSlotIndex::for_entries(4);
        for row in 0..9u32 {
            idx.insert(row, 0);
        }
    }
}
