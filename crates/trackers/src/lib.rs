//! Rowhammer tracker implementations used by the ImPress reproduction.
//!
//! The paper analyses four trackers (§II-C), two at the memory controller and two
//! inside the DRAM device:
//!
//! | Tracker | Mechanism | Location | Module |
//! |---|---|---|---|
//! | Graphene | Misra-Gries counters | Memory controller | [`graphene`] |
//! | PARA | Probabilistic sampling | Memory controller | [`para`] |
//! | Mithril | Counter-based summary, mitigates under RFM | in-DRAM | [`mithril`] |
//! | MINT | Single-entry probabilistic slot selection, mitigates under RFM | in-DRAM | [`mint`] |
//!
//! In addition, [`prac`] implements Per-Row Activation Counting (PRAC), the JEDEC
//! direction mentioned in §VI-F, as an extension.
//!
//! All trackers implement the [`RowTracker`] trait and accept *Equivalent Activation
//! Counts* ([`Eact`]) rather than plain activations, which is exactly the hook ImPress-P
//! needs: a conventional Rowhammer-only system simply passes `Eact::ONE` for every
//! activation, while ImPress-P passes the measured `(tON + tPRE)/tRC`.
//!
//! # Example
//!
//! ```
//! use impress_trackers::{Eact, Graphene, RowTracker};
//!
//! // Graphene sized for a Rowhammer threshold of 4K (the paper's default).
//! let mut tracker = Graphene::for_threshold(4_000);
//! let mut mitigations = 0;
//! for act in 0..2_000u64 {
//!     if tracker.record(7, Eact::ONE, act * 128).is_some() {
//!         mitigations += 1;
//!     }
//! }
//! // 2000 activations of one row cross Graphene's internal threshold at least once.
//! assert!(mitigations >= 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
pub mod eact;
pub mod flat;
pub mod graphene;
pub mod index;
pub mod mint;
pub mod mithril;
pub mod para;
pub mod prac;
pub mod storage;
pub mod summary;
pub mod tracker;

pub use eact::{Eact, EactCounter};
pub use flat::FlatCounterTable;
pub use graphene::Graphene;
pub use index::RowSlotIndex;
pub use mint::Mint;
pub use mithril::Mithril;
pub use para::Para;
pub use prac::Prac;
pub use storage::StorageEstimate;
pub use summary::{CountSummary, EvictionEngine};
pub use tracker::{MitigationRequest, RowTracker, TrackerKind};
