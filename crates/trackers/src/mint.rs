//! MINT: a minimalist in-DRAM tracker with a single entry per bank.
//!
//! MINT (Qureshi et al., MICRO 2024) keeps three registers per bank: the Selected
//! Activation Number (SAN), the Current Activation Number (CAN) and the Selected
//! Address Register (SAR). At each RFM it mitigates the row held in SAR (if any) and
//! randomly selects which activation slot in the next `RFMTH` activations will be
//! captured into SAR. Each activation therefore has a 1/RFMTH chance of being selected.
//!
//! Under ImPress-P, CAN is extended with 7 fractional bits and incremented by the
//! activation's EACT, so a long-open row spans more "slots" and is proportionally more
//! likely to be selected (§VI-C), raising MINT's storage from 4 to 5 bytes per bank.

use impress_dram::address::RowId;
use impress_dram::timing::Cycle;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::analysis::mint_tolerated_threshold;
use crate::eact::{Eact, EactCounter, CANONICAL_FRAC_BITS};
use crate::storage::StorageEstimate;
use crate::tracker::{MitigationRequest, RowTracker, TrackerKind};

/// The MINT tracker for a single bank.
#[derive(Debug, Clone)]
pub struct Mint {
    rfm_threshold: u32,
    frac_bits: u32,
    /// Selected activation number for the current RFM window (in EACT units, Q7).
    san: EactCounter,
    /// Current activation number within the RFM window (in EACT units, Q7).
    can: EactCounter,
    /// Selected address register.
    sar: Option<RowId>,
    rng: SmallRng,
    mitigations: u64,
    selections: u64,
}

impl Mint {
    /// Creates a MINT tracker for the paper's default RFM threshold of 80.
    pub fn paper_default() -> Self {
        Self::new(80, 0, 0x4D1E_7001)
    }

    /// Creates a MINT tracker with an explicit RFM threshold, number of fractional
    /// CAN bits (0 for plain Rowhammer, 7 for ImPress-P) and RNG seed.
    ///
    /// # Panics
    ///
    /// Panics if `rfm_threshold` is zero or `frac_bits > 7`.
    pub fn new(rfm_threshold: u32, frac_bits: u32, seed: u64) -> Self {
        assert!(rfm_threshold > 0, "RFM threshold must be positive");
        assert!(
            frac_bits <= CANONICAL_FRAC_BITS,
            "at most {CANONICAL_FRAC_BITS} fractional bits are supported"
        );
        let mut rng = SmallRng::seed_from_u64(seed);
        let san = Self::draw_san(&mut rng, rfm_threshold);
        Self {
            rfm_threshold,
            frac_bits,
            san,
            can: EactCounter::ZERO,
            sar: None,
            rng,
            mitigations: 0,
            selections: 0,
        }
    }

    fn draw_san(rng: &mut SmallRng, rfm_threshold: u32) -> EactCounter {
        // Select a slot uniformly in (0, RFMTH] in Q7 units; an activation is captured
        // when CAN crosses this value.
        let slots = u64::from(rfm_threshold) << CANONICAL_FRAC_BITS;
        EactCounter::from_raw(rng.gen_range(1..=slots))
    }

    /// The configured RFM threshold.
    pub fn rfm_threshold(&self) -> u32 {
        self.rfm_threshold
    }

    /// The currently selected row (contents of SAR), if any.
    pub fn selected_row(&self) -> Option<RowId> {
        self.sar
    }

    /// Number of mitigations performed under RFM so far.
    pub fn mitigations(&self) -> u64 {
        self.mitigations
    }

    fn quantize(&self, eact: Eact) -> Eact {
        if self.frac_bits >= CANONICAL_FRAC_BITS {
            eact
        } else {
            let drop = CANONICAL_FRAC_BITS - self.frac_bits;
            let truncated = (eact.raw() >> drop) << drop;
            // Without fractional bits MINT still counts every activation as at least 1.
            Eact::from_raw(truncated.max(Eact::ONE.raw()))
        }
    }
}

impl RowTracker for Mint {
    fn record(&mut self, row: RowId, eact: Eact, _now: Cycle) -> Option<MitigationRequest> {
        let eact = self.quantize(eact);
        let before = self.can.raw();
        self.can.add(eact);
        let after = self.can.raw();
        // The row is captured if CAN crosses SAN during this activation.
        let san = self.san.raw();
        if before < san && after >= san {
            self.sar = Some(row);
            self.selections += 1;
        }
        None
    }

    // MINT keeps the default `record_batch` loop: `record` is already a few
    // register updates (no table, no RNG — randomness is drawn in `on_rfm`),
    // so there is nothing for run-length aggregation to amortize.

    fn headroom(&self) -> u64 {
        // `record` never returns a mitigation (MINT only mitigates under RFM,
        // and batch stagers flush before every RFM), so any weight can be
        // deferred.
        u64::MAX
    }

    fn mitigates_on_rfm(&self) -> bool {
        true
    }

    fn on_rfm(&mut self, now: Cycle) -> Option<MitigationRequest> {
        let mitigation = self.sar.take().map(|aggressor| {
            self.mitigations += 1;
            MitigationRequest {
                aggressor,
                identified_at: now,
            }
        });
        // Start a new RFM window: reset CAN and pick a fresh SAN.
        self.can = EactCounter::ZERO;
        self.san = Self::draw_san(&mut self.rng, self.rfm_threshold);
        mitigation
    }

    fn kind(&self) -> TrackerKind {
        TrackerKind::Mint
    }

    fn storage(&self) -> StorageEstimate {
        // SAR row address + SAN (7-bit integer for RFMTH ≤ 128) + CAN (7-bit integer
        // plus ImPress-P fractional bits; §VI-C: only CAN is widened).
        let can_bits = 7 + self.frac_bits;
        let san_bits = 7;
        StorageEstimate {
            entries_per_bank: 1,
            bits_per_entry: 17,
            extra_bits_per_bank: can_bits + san_bits,
        }
    }

    fn configured_threshold(&self) -> u64 {
        mint_tolerated_threshold(self.rfm_threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_rfm_window_selects_at_most_one_row() {
        let mut mint = Mint::paper_default();
        let mut total_mitigations = 0;
        for window in 0..1000u64 {
            for a in 0..80u64 {
                mint.record((a % 16) as RowId, Eact::ONE, window * 80 + a);
            }
            if mint.on_rfm(window * 80 * 128).is_some() {
                total_mitigations += 1;
            }
        }
        // With CAN reaching exactly RFMTH each window, a selection always occurs.
        assert_eq!(total_mitigations, 1000);
    }

    #[test]
    fn selection_is_uniform_over_slots() {
        // A single aggressor occupying half the slots should be selected ~half the time.
        let mut mint = Mint::new(80, 0, 42);
        let mut aggressor_selected = 0u64;
        let windows = 4000u64;
        for w in 0..windows {
            for a in 0..80u64 {
                let row = if a < 40 { 7 } else { 100 + a as RowId };
                mint.record(row, Eact::ONE, w * 80 + a);
            }
            if let Some(m) = mint.on_rfm(w) {
                if m.aggressor == 7 {
                    aggressor_selected += 1;
                }
            }
        }
        let frac = aggressor_selected as f64 / windows as f64;
        assert!((frac - 0.5).abs() < 0.05, "selection fraction = {frac}");
    }

    #[test]
    fn eact_weighting_increases_selection_probability() {
        // One activation with EACT=40 out of an 80-slot window covers half the window.
        let mut mint = Mint::new(80, 7, 43);
        let mut long_selected = 0u64;
        let windows = 4000u64;
        for w in 0..windows {
            mint.record(7, Eact::from_f64(40.0, 7), w * 100);
            for a in 0..40u64 {
                mint.record(100 + a as RowId, Eact::ONE, w * 100 + a + 1);
            }
            if let Some(m) = mint.on_rfm(w) {
                if m.aggressor == 7 {
                    long_selected += 1;
                }
            }
        }
        let frac = long_selected as f64 / windows as f64;
        assert!((frac - 0.5).abs() < 0.05, "selection fraction = {frac}");
    }

    #[test]
    fn storage_grows_by_one_byte_with_impress_p() {
        let plain = Mint::new(80, 0, 0).storage();
        let precise = Mint::new(80, 7, 0).storage();
        // §VI-C: "ImPress-P increases the storage overhead of MINT from 4 bytes to 5 bytes".
        assert_eq!(plain.bytes_per_bank(), 4);
        assert_eq!(precise.bytes_per_bank(), 5);
    }

    #[test]
    fn tolerated_threshold_tracks_rfmth() {
        assert_eq!(Mint::new(80, 0, 0).configured_threshold(), 1_600);
        assert_eq!(Mint::new(40, 0, 0).configured_threshold(), 800);
    }

    #[test]
    fn deterministic_with_same_seed() {
        let mut a = Mint::new(80, 0, 5);
        let mut b = Mint::new(80, 0, 5);
        for w in 0..100u64 {
            for act in 0..80u64 {
                a.record(act as RowId, Eact::ONE, w * 80 + act);
                b.record(act as RowId, Eact::ONE, w * 80 + act);
            }
            assert_eq!(a.on_rfm(w), b.on_rfm(w));
        }
    }
}
