//! Mithril: in-DRAM counter-based tracking that mitigates under RFM.
//!
//! Mithril (Kim et al., HPCA 2022) keeps a Counter-based Summary (a Misra-Gries style
//! table) inside the DRAM device. The memory controller issues an RFM command every
//! `RFMTH` activations; on each RFM, Mithril refreshes the victims of the row with the
//! highest counter and rolls that counter back. Because the mitigation happens under
//! RFM, Mithril adds no performance overhead beyond the RFM commands the system already
//! issues (§ Appendix-A).
//!
//! Under ImPress-P the counters accumulate fractional [`Eact`] values (7 extra bits per
//! entry); the entry count stays the same (§VI-C).

use impress_dram::address::RowId;
use impress_dram::timing::Cycle;

use crate::analysis::mithril_entries;
use crate::eact::{Eact, EactCounter, CANONICAL_FRAC_BITS};
use crate::index::RowSlotIndex;
use crate::storage::{StorageEstimate, COUNTER_BITS, ROW_ADDRESS_BITS};
use crate::tracker::{MitigationRequest, RowTracker, TrackerKind};

#[derive(Debug, Clone, Copy)]
struct Entry {
    row: RowId,
    count: EactCounter,
    valid: bool,
}

/// Configuration for a [`Mithril`] tracker instance.
#[derive(Debug, Clone, PartialEq)]
pub struct MithrilConfig {
    /// Rowhammer threshold this instance must tolerate.
    pub threshold: u64,
    /// RFM threshold (activations per RFM command) assumed by the sizing.
    pub rfm_threshold: u32,
    /// Number of table entries per bank.
    pub entries: usize,
    /// Number of fractional EACT bits stored per counter.
    pub frac_bits: u32,
}

impl MithrilConfig {
    /// Configuration for tolerating `threshold` at the paper's default RFMTH of 80.
    pub fn for_threshold(threshold: u64) -> Self {
        Self::with_rfm_threshold(threshold, 80)
    }

    /// Configuration for tolerating `threshold` at an explicit RFM threshold.
    pub fn with_rfm_threshold(threshold: u64, rfm_threshold: u32) -> Self {
        let entries = mithril_entries(threshold, rfm_threshold);
        Self {
            threshold,
            rfm_threshold,
            entries: entries.min(1 << 20) as usize,
            frac_bits: 0,
        }
    }

    /// Adds ImPress-P fractional counter bits to this configuration.
    pub fn with_frac_bits(mut self, frac_bits: u32) -> Self {
        self.frac_bits = frac_bits;
        self
    }
}

/// The Mithril tracker for a single bank.
#[derive(Debug, Clone)]
pub struct Mithril {
    config: MithrilConfig,
    table: Vec<Entry>,
    /// O(1) row → slot map over the valid table entries (pure acceleration of the
    /// match path; eviction decisions still scan the table — see [`crate::index`]).
    index: RowSlotIndex,
    spillover: EactCounter,
    mitigations: u64,
}

impl Mithril {
    /// Creates a Mithril tracker sized for `threshold` at RFMTH = 80.
    pub fn for_threshold(threshold: u64) -> Self {
        Self::new(MithrilConfig::for_threshold(threshold))
    }

    /// Creates a Mithril tracker from an explicit configuration.
    pub fn new(config: MithrilConfig) -> Self {
        let table = vec![
            Entry {
                row: 0,
                count: EactCounter::ZERO,
                valid: false,
            };
            config.entries
        ];
        let index = RowSlotIndex::for_entries(config.entries);
        Self {
            config,
            table,
            index,
            spillover: EactCounter::ZERO,
            mitigations: 0,
        }
    }

    /// The configuration this tracker was built with.
    pub fn config(&self) -> &MithrilConfig {
        &self.config
    }

    /// Number of mitigations performed under RFM so far.
    pub fn mitigations(&self) -> u64 {
        self.mitigations
    }

    fn quantize(&self, eact: Eact) -> Eact {
        if self.config.frac_bits >= CANONICAL_FRAC_BITS {
            eact
        } else {
            let drop = CANONICAL_FRAC_BITS - self.config.frac_bits;
            Eact::from_raw((eact.raw() >> drop) << drop)
        }
    }
}

impl RowTracker for Mithril {
    fn record(&mut self, row: RowId, eact: Eact, _now: Cycle) -> Option<MitigationRequest> {
        let eact = self.quantize(eact);
        // The match path is O(1) via the row → slot index; only when the row is
        // absent does the eviction decision scan the table for the first invalid
        // entry or, failing that, the first minimum-count entry — exactly the slots
        // the seed's three-scan version selected, so behavior is bit-identical.
        if let Some(slot) = self.index.get(row) {
            self.table[slot].count.add(eact);
            return None;
        }
        let mut first_invalid = usize::MAX;
        let mut min_idx = 0usize;
        let mut min_raw = u64::MAX;
        for (i, e) in self.table.iter().enumerate() {
            if !e.valid {
                // Invalid entries take priority over the minimum-count eviction
                // wherever they sit, so the scan can stop at the first one.
                first_invalid = i;
                break;
            }
            if e.count.raw() < min_raw {
                min_raw = e.count.raw();
                min_idx = i;
            }
        }
        if first_invalid != usize::MAX {
            let mut count = self.spillover;
            count.add(eact);
            self.table[first_invalid] = Entry {
                row,
                count,
                valid: true,
            };
            self.index.insert(row, first_invalid);
        } else if min_raw <= self.spillover.raw() {
            let mut count = self.spillover;
            count.add(eact);
            self.index.remove(self.table[min_idx].row);
            self.table[min_idx] = Entry {
                row,
                count,
                valid: true,
            };
            self.index.insert(row, min_idx);
        } else {
            self.spillover.add(eact);
        }
        // Mithril never mitigates outside of RFM.
        None
    }

    fn on_rfm(&mut self, now: Cycle) -> Option<MitigationRequest> {
        let best = self
            .table
            .iter_mut()
            .filter(|e| e.valid)
            .max_by_key(|e| e.count.raw())?;
        if best.count.raw() == 0 {
            return None;
        }
        let aggressor = best.row;
        // Roll the mitigated row's counter back to the spillover value.
        best.count = self.spillover;
        self.mitigations += 1;
        Some(MitigationRequest {
            aggressor,
            identified_at: now,
        })
    }

    fn on_refresh_window(&mut self, _now: Cycle) {
        for e in &mut self.table {
            e.valid = false;
            e.count = EactCounter::ZERO;
        }
        self.index.clear();
        self.spillover = EactCounter::ZERO;
    }

    fn kind(&self) -> TrackerKind {
        TrackerKind::Mithril
    }

    fn storage(&self) -> StorageEstimate {
        StorageEstimate::per_entry(
            self.config.entries as u64,
            ROW_ADDRESS_BITS + COUNTER_BITS + self.config.frac_bits,
        )
    }

    fn configured_threshold(&self) -> u64 {
        self.config.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sizing_383_entries() {
        let m = Mithril::for_threshold(4_000);
        assert!(
            (375..=395).contains(&m.config().entries),
            "{}",
            m.config().entries
        );
    }

    #[test]
    fn rfm_mitigates_the_hottest_row() {
        let mut m = Mithril::for_threshold(4_000);
        for i in 0..200u64 {
            m.record(11, Eact::ONE, i * 128);
            if i % 4 == 0 {
                m.record(22, Eact::ONE, i * 128 + 64);
            }
        }
        let mitigation = m.on_rfm(100_000).expect("RFM should mitigate");
        assert_eq!(mitigation.aggressor, 11);
    }

    #[test]
    fn record_never_mitigates_directly() {
        let mut m = Mithril::for_threshold(4_000);
        for i in 0..10_000u64 {
            assert!(m.record(3, Eact::ONE, i * 128).is_none());
        }
    }

    #[test]
    fn rfm_on_empty_table_is_none() {
        let mut m = Mithril::for_threshold(4_000);
        assert!(m.on_rfm(0).is_none());
    }

    #[test]
    fn bounded_unmitigated_activations_under_rfm_cadence() {
        // If the controller issues RFM every 80 activations (the paper's RFMTH), the
        // hottest row's count between mitigations stays far below the 4K threshold.
        let mut m = Mithril::for_threshold(4_000);
        let mut hot_count_since_mitigation = 0u64;
        let mut max_seen = 0u64;
        for i in 0..1_000_000u64 {
            let row = if i % 2 == 0 {
                7
            } else {
                (i % 512) as RowId + 100
            };
            if row == 7 {
                hot_count_since_mitigation += 1;
            }
            m.record(row, Eact::ONE, i * 128);
            if i % 80 == 79 {
                if let Some(req) = m.on_rfm(i * 128) {
                    if req.aggressor == 7 {
                        max_seen = max_seen.max(hot_count_since_mitigation);
                        hot_count_since_mitigation = 0;
                    }
                }
            }
        }
        max_seen = max_seen.max(hot_count_since_mitigation);
        assert!(
            max_seen < 4_000,
            "aggressor escaped with {max_seen} activations"
        );
    }

    #[test]
    fn storage_with_frac_bits_is_1_25x() {
        let plain = Mithril::for_threshold(4_000);
        let precise = Mithril::new(MithrilConfig::for_threshold(4_000).with_frac_bits(7));
        let ratio = precise.storage().relative_to(&plain.storage());
        assert!(ratio > 1.15 && ratio < 1.3, "ratio = {ratio}");
    }
}
